"""Router-level accounting.

Everything the router knows that no single replica can: where traffic
went (per-replica rps), how often affinity held (hit rate), how often
the home replica was out of rotation (spill rate), how many forwards
had to be retried on a different replica (failovers), and every
health-state transition with a monotonic timestamp.

All mutation happens on the router's event loop, so no locking is
needed; ``snapshot()`` is called from the loop too (the ``metrics``
op handler).
"""

from __future__ import annotations

import time

__all__ = ["RouterMetrics"]

#: Sliding-window length for per-replica rps (two half-buckets).
_RPS_WINDOW_S = 10.0
#: Transitions kept verbatim in the snapshot (counters never drop).
_TRANSITION_LOG = 50


class _RateCounter:
    """O(1) sliding-window rate: two half-window buckets."""

    def __init__(self, window_s: float = _RPS_WINDOW_S) -> None:
        self.half = window_s / 2.0
        self._epoch = 0
        self._cur = 0
        self._prev = 0
        self._started = time.monotonic()

    def _roll(self, now: float) -> None:
        epoch = int((now - self._started) / self.half)
        if epoch == self._epoch:
            return
        self._prev = self._cur if epoch == self._epoch + 1 else 0
        self._cur = 0
        self._epoch = epoch

    def record(self) -> None:
        self._roll(time.monotonic())
        self._cur += 1

    def rate(self) -> float:
        now = time.monotonic()
        self._roll(now)
        # Weight the previous bucket by how much of it is still inside
        # the window, so the estimate doesn't sawtooth on bucket edges.
        into = (now - self._started) - self._epoch * self.half
        span = min(now - self._started, self.half + into)
        return (self._cur + self._prev) / span if span > 0 else 0.0


class RouterMetrics:
    """Aggregated statistics for one :class:`PhastRouter`."""

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.requests: dict[str, int] = {}          # op -> count
        self.errors: dict[str, int] = {}            # code -> count
        self.forwarded: dict[str, int] = {}         # replica -> count
        self.replica_errors: dict[str, int] = {}    # replica -> count
        self._rates: dict[str, _RateCounter] = {}
        self.affinity_hits = 0
        self.affinity_total = 0
        self.spills = 0          # routed off the home replica
        self.failovers = 0       # re-sent after a failed attempt
        self.warm_deferred = 0   # skipped a warming home on purpose
        self.transitions: dict[str, int] = {}       # "from->to" -> count
        self.transition_log: list[dict] = []

    # -- recording ---------------------------------------------------------

    def record_request(self, op: str) -> None:
        self.requests[op] = self.requests.get(op, 0) + 1

    def record_error(self, code: int) -> None:
        key = str(code)
        self.errors[key] = self.errors.get(key, 0) + 1

    def record_forward(self, replica: str) -> None:
        self.forwarded[replica] = self.forwarded.get(replica, 0) + 1
        rate = self._rates.get(replica)
        if rate is None:
            rate = self._rates[replica] = _RateCounter()
        rate.record()

    def record_replica_error(self, replica: str) -> None:
        self.replica_errors[replica] = self.replica_errors.get(replica, 0) + 1

    def record_routing(self, *, hit: bool, spilled: bool,
                       failovers: int, warm_deferred: bool) -> None:
        """One routed work request's affinity outcome."""
        self.affinity_total += 1
        if hit:
            self.affinity_hits += 1
        if spilled:
            self.spills += 1
        if warm_deferred:
            self.warm_deferred += 1
        self.failovers += failovers

    def record_transition(self, replica: str, old: str, new: str) -> None:
        key = f"{old}->{new}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        self.transition_log.append({
            "t_s": round(time.monotonic() - self.started_at, 3),
            "replica": replica,
            "from": old,
            "to": new,
        })
        del self.transition_log[:-_TRANSITION_LOG]

    # -- reporting ---------------------------------------------------------

    def replica_rps(self, replica: str) -> float:
        rate = self._rates.get(replica)
        return round(rate.rate(), 2) if rate is not None else 0.0

    def snapshot(self, replicas: dict | None = None) -> dict:
        """JSON-able view (the ``metrics`` op payload)."""
        total = self.affinity_total
        snap = {
            "router": True,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests_total": dict(self.requests),
            "errors_total": dict(self.errors),
            "forwarded": dict(self.forwarded),
            "replica_rps": {
                name: self.replica_rps(name) for name in self._rates
            },
            "affinity": {
                "hits": self.affinity_hits,
                "total": total,
                "hit_rate": round(self.affinity_hits / total, 4) if total else None,
                "spills": self.spills,
                "spill_rate": round(self.spills / total, 4) if total else None,
                "failovers": self.failovers,
                "warm_deferred": self.warm_deferred,
            },
            "transitions": {
                "counts": dict(self.transitions),
                "recent": list(self.transition_log),
            },
        }
        if replicas is not None:
            snap["replicas"] = replicas
        return snap
