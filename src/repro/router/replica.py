"""Replica bookkeeping: state machine, wire link, process manager.

Three concerns, one per class:

:class:`Replica`
    What the router believes about one backend — a small state
    machine fed by periodic ``health`` probes and per-request
    transport outcomes::

        unknown --probe ok--> active
        active  --failure---> suspect --more failures--> down
        down    --probe ok--> warming --ramp elapsed---> active
        any     --hold_out--> draining --readmit--------> warming

    A replica that *restarts* (new pid, or ``uptime_seconds`` moving
    backwards — the generation signal added to the ``health`` op for
    exactly this) re-enters through ``warming`` even if no probe ever
    saw it down: its caches are cold, so the router ramps traffic
    back up instead of slamming it.

:class:`ReplicaLink`
    One multiplexed asyncio connection to one replica.  The router
    rewrites request ids per link, so many client requests ride one
    backend connection concurrently; responses are matched back to
    futures by id.  Unlike the blocking client, a timeout does *not*
    force a reconnect — ids keep the stream aligned, and a late
    response is simply dropped.

:class:`ReplicaManager`
    Synchronous process control: spawn ``repro serve`` subprocesses
    over on-disk artifacts (parsing the bound address from the serve
    banner, so ``--port 0`` works), adopt already-running endpoints,
    and drive rolling drain/restart for zero-downtime deploys.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..server.client import ServerClient

__all__ = ["Replica", "ReplicaLink", "ReplicaManager", "ManagedProcess"]

# Replica states.
UNKNOWN = "unknown"
ACTIVE = "active"
WARMING = "warming"
SUSPECT = "suspect"
DOWN = "down"
DRAINING = "draining"

#: States the router may send work to.
ROUTABLE = (ACTIVE, WARMING, SUSPECT)


class ReplicaLink:
    """A multiplexed length-prefixed-JSON connection to one replica."""

    def __init__(self, host: str, port: int, *,
                 connect_timeout: float = 5.0) -> None:
        self.host = host
        self.port = int(port)
        self.connect_timeout = float(connect_timeout)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._read_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._connect_lock: asyncio.Lock | None = None

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def _ensure_connected(self) -> None:
        if self._connect_lock is None:
            self._connect_lock = asyncio.Lock()
        async with self._connect_lock:
            if self.connected:
                return
            from ..server import protocol  # local import keeps module load light

            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.connect_timeout,
            )
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._reader, self._writer = reader, writer
            self._read_task = asyncio.get_running_loop().create_task(
                self._read_loop(reader)
            )

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        from ..server import protocol

        try:
            while True:
                msg = await protocol.read_message(reader)
                if msg is None:
                    break
                fut = self._pending.pop(msg.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(msg)
        except (protocol.ProtocolError, ConnectionError, OSError):
            pass
        finally:
            await self.close()

    async def request(self, msg: dict, timeout: float) -> dict:
        """Forward ``msg`` (id rewritten) and await the matching response.

        Raises ``ConnectionError`` on transport failure and
        ``TimeoutError`` when no response lands within ``timeout``
        seconds; the caller decides about failover.
        """
        try:
            await self._ensure_connected()
        except (OSError, asyncio.TimeoutError) as exc:
            raise ConnectionError(
                f"cannot connect to replica {self.endpoint}: {exc}"
            ) from exc
        self._next_id += 1
        link_id = self._next_id
        fut = asyncio.get_running_loop().create_future()
        self._pending[link_id] = fut
        try:
            from ..server import protocol

            await protocol.write_message(self._writer, {**msg, "id": link_id})
        except (ConnectionError, OSError) as exc:
            self._pending.pop(link_id, None)
            await self.close()
            raise ConnectionError(
                f"lost replica {self.endpoint} while sending: {exc}"
            ) from exc
        try:
            return await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(link_id, None)
            raise TimeoutError(
                f"no response from replica {self.endpoint} within {timeout}s"
            ) from None
        except asyncio.CancelledError:
            self._pending.pop(link_id, None)
            raise

    async def close(self) -> None:
        """Drop the connection; pending requests fail with ConnectionError."""
        writer, self._writer, self._reader = self._writer, None, None
        task, self._read_task = self._read_task, None
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(
                    ConnectionError(f"replica {self.endpoint} connection lost")
                )
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if task is not None and task is not asyncio.current_task():
            task.cancel()


class Replica:
    """One backend's identity, health state, and routing counters."""

    def __init__(self, name: str, host: str, port: int, *,
                 down_after: int = 3, warmup_s: float = 2.0,
                 on_transition=None) -> None:
        self.name = name
        self.host = host
        self.port = int(port)
        self.link = ReplicaLink(host, port)
        self.down_after = int(down_after)
        self.warmup_s = float(warmup_s)
        self._on_transition = on_transition
        self.state = UNKNOWN
        self.generation = 0
        self.inflight = 0
        self.consecutive_failures = 0
        self.pid: int | None = None
        self.last_uptime: float | None = None
        self.last_capacity: float | None = None
        self._warm_started = 0.0
        self._warm_seen = 0
        self._warm_admitted = 0

    @property
    def routable(self) -> bool:
        return self.state in ROUTABLE

    def _transition(self, new: str) -> None:
        if new == self.state:
            return
        old, self.state = self.state, new
        if self._on_transition is not None:
            self._on_transition(self.name, old, new)

    # -- signals -----------------------------------------------------------

    def apply_probe(self, health: dict | None) -> None:
        """Digest one ``health`` probe result (``None`` = probe failed)."""
        if self.state == DRAINING:
            return  # held out on purpose; probes don't re-admit
        if health is None or not health.get("ready", False):
            self.record_failure()
            return
        self.consecutive_failures = 0
        restarted = self._detect_restart(health)
        if restarted:
            self.generation += 1
            self._start_warming()
        elif self.state == DOWN:
            self._start_warming()
        elif self.state == WARMING:
            if time.monotonic() - self._warm_started >= self.warmup_s:
                self._transition(ACTIVE)
        else:  # UNKNOWN, SUSPECT, ACTIVE
            self._transition(ACTIVE)

    def _detect_restart(self, health: dict) -> bool:
        """Generation change: new pid, or uptime that moved backwards."""
        pid = health.get("pid")
        uptime = health.get("uptime_seconds")
        self.last_capacity = health.get("capacity")
        restarted = False
        if pid is not None:
            if self.pid is not None and pid != self.pid:
                restarted = True
            self.pid = pid
        if isinstance(uptime, (int, float)):
            if (self.last_uptime is not None
                    and uptime < self.last_uptime - 0.25):
                restarted = True
            self.last_uptime = float(uptime)
        return restarted

    def record_failure(self) -> None:
        """A probe failure or per-request transport error."""
        if self.state == DRAINING:
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.down_after:
            self._transition(DOWN)
        elif self.state in (ACTIVE, WARMING, SUSPECT):
            self._transition(SUSPECT)
        elif self.state == UNKNOWN:
            self._transition(DOWN)

    def record_success(self) -> None:
        """A forwarded request answered (any envelope): transport is fine."""
        self.consecutive_failures = 0
        if self.state == SUSPECT:
            self._transition(ACTIVE)

    # -- warm-up ramp ------------------------------------------------------

    def _start_warming(self) -> None:
        self._warm_started = time.monotonic()
        self._warm_seen = 0
        self._warm_admitted = 0
        self._transition(WARMING)

    def warm_fraction(self) -> float:
        """How much of its fair traffic share this replica should get."""
        if self.state != WARMING:
            return 1.0
        elapsed = time.monotonic() - self._warm_started
        if elapsed >= self.warmup_s:
            self._transition(ACTIVE)
            return 1.0
        # Never ramp from exactly zero — a cold replica that gets no
        # traffic also re-warms no caches.
        return max(0.1, elapsed / self.warmup_s)

    def admit_warm(self) -> bool:
        """Deterministic thinning toward :meth:`warm_fraction`."""
        fraction = self.warm_fraction()
        if fraction >= 1.0:
            return True
        self._warm_seen += 1
        if (self._warm_admitted + 1) <= fraction * self._warm_seen:
            self._warm_admitted += 1
            return True
        return False

    # -- drain / readmit ---------------------------------------------------

    def hold_out(self) -> None:
        """Remove from rotation (state ``draining``); inflight may remain."""
        self._transition(DRAINING)

    def readmit(self) -> None:
        """Return to rotation through the warm-up ramp."""
        if self.state == DRAINING:
            self.consecutive_failures = 0
            self._start_warming()

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "endpoint": f"{self.host}:{self.port}",
            "state": self.state,
            "generation": self.generation,
            "inflight": self.inflight,
            "consecutive_failures": self.consecutive_failures,
            "pid": self.pid,
            "uptime_seconds": self.last_uptime,
            "capacity": self.last_capacity,
        }


# ---------------------------------------------------------------------------
# Process management


_BANNER = re.compile(r"\bon ([0-9A-Za-z_.\-]+):(\d+)\b")


@dataclass
class ManagedProcess:
    """One replica the manager knows about (spawned or adopted)."""

    name: str
    host: str
    port: int
    proc: subprocess.Popen | None = None
    cmd: list[str] = field(default_factory=list)
    env: dict | None = None
    tail: deque = field(default_factory=lambda: deque(maxlen=50))

    @property
    def spawned(self) -> bool:
        return self.cmd != []

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class ReplicaManager:
    """Spawn/adopt ``repro serve`` replicas; drive rolling restarts.

    Synchronous on purpose: process control happens from the CLI main
    thread, tests, and benchmark harnesses — never from the router's
    event loop.  The router is informed of topology through the
    control object passed to :meth:`rolling_restart` (a
    :class:`~repro.router.service.RouterHandle` or the router's own
    loop-threadsafe wrappers).
    """

    def __init__(self, *, python: str | None = None) -> None:
        self.python = python or sys.executable
        self.replicas: dict[str, ManagedProcess] = {}

    def names(self) -> list[str]:
        return list(self.replicas)

    def spawned_names(self) -> list[str]:
        return [n for n, m in self.replicas.items() if m.spawned]

    # -- topology ----------------------------------------------------------

    def adopt(self, host: str, port: int) -> str:
        """Register an already-running replica (never stopped by us)."""
        name = f"{host}:{int(port)}"
        self.replicas[name] = ManagedProcess(name=name, host=host,
                                             port=int(port))
        return name

    def spawn(self, graph: str, hierarchy: str, *, host: str = "127.0.0.1",
              port: int = 0, workers: int = 1, force_pool: bool = False,
              extra_args: tuple = (), ready_timeout: float = 120.0) -> str:
        """Start one ``repro serve`` replica and wait until it is ready.

        ``port=0`` binds an ephemeral port; the bound address is parsed
        from the serve banner.  Readiness means the ``health`` op
        reports ``ready`` — a listening socket alone still races the
        pool warm-up.
        """
        cmd = [
            self.python, "-m", "repro", "serve", str(graph), str(hierarchy),
            "--host", host, "--port", str(int(port)),
            "--workers", str(int(workers)),
        ]
        if force_pool:
            cmd.append("--force-pool")
        cmd.extend(str(a) for a in extra_args)
        env = dict(os.environ)
        # The child must import repro however the parent did (pytest
        # manipulates sys.path without touching PYTHONPATH).
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        parts = [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        managed = ManagedProcess(name="", host=host, port=0, proc=proc,
                                 cmd=cmd, env=env)
        try:
            bound_host, bound_port = self._await_banner(managed, ready_timeout)
        except Exception:
            self._kill(proc)
            raise
        managed.host, managed.port = bound_host, bound_port
        managed.name = f"{bound_host}:{bound_port}"
        # Pin the resolved port so a restart comes back at the same
        # address (the router's ring is keyed by it).
        managed.cmd = list(cmd)
        port_idx = managed.cmd.index("--port") + 1
        managed.cmd[port_idx] = str(bound_port)
        self.replicas[managed.name] = managed
        try:
            self._await_ready(managed, ready_timeout)
        except Exception:
            self.stop(managed.name, wait_timeout=10.0)
            del self.replicas[managed.name]
            raise
        return managed.name

    def _await_banner(self, managed: ManagedProcess,
                      timeout: float) -> tuple[str, int]:
        """Read serve's stdout until the 'serving … on host:port' line."""
        deadline = time.monotonic() + timeout
        stream = managed.proc.stdout
        while time.monotonic() < deadline:
            line = stream.readline()
            if not line:
                raise RuntimeError(
                    "replica exited before binding: "
                    + " | ".join(managed.tail)
                )
            managed.tail.append(line.rstrip())
            match = _BANNER.search(line)
            if match:
                self._start_drain_thread(managed)
                return match.group(1), int(match.group(2))
        raise TimeoutError(
            f"replica produced no serve banner within {timeout}s"
        )

    @staticmethod
    def _start_drain_thread(managed: ManagedProcess) -> None:
        """Keep consuming stdout so a chatty replica can't block on the pipe."""
        def drain() -> None:
            for line in managed.proc.stdout:
                managed.tail.append(line.rstrip())

        threading.Thread(target=drain, daemon=True,
                         name=f"replica-drain-{managed.port}").start()

    def _await_ready(self, managed: ManagedProcess, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        with ServerClient(managed.host, managed.port,
                          connect_retry_s=timeout, max_retries=0) as probe:
            while True:
                try:
                    if probe.health().get("ready"):
                        return
                except (ConnectionError, OSError, RuntimeError):
                    pass
                if not managed.alive:
                    raise RuntimeError(
                        f"replica {managed.name} died during warm-up: "
                        + " | ".join(managed.tail)
                    )
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"replica {managed.name} not ready within {timeout}s"
                    )
                time.sleep(0.05)

    # -- lifecycle ---------------------------------------------------------

    @staticmethod
    def _kill(proc: subprocess.Popen) -> None:
        try:
            proc.kill()
            proc.wait(timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            pass

    def stop(self, name: str, *, sig: int = signal.SIGTERM,
             wait_timeout: float = 60.0) -> None:
        """Signal a spawned replica and reap it (idempotent).

        SIGTERM triggers the replica's graceful drain; SIGKILL is the
        chaos path (and the escalation when the drain hangs).
        """
        managed = self.replicas[name]
        if not managed.spawned:
            raise ValueError(f"replica {name} was adopted, not spawned")
        proc = managed.proc
        if proc is None:
            return
        if proc.poll() is None:
            try:
                proc.send_signal(sig)
            except OSError:
                pass
            try:
                proc.wait(timeout=wait_timeout)
            except subprocess.TimeoutExpired:
                self._kill(proc)
        else:
            proc.wait()

    def restart(self, name: str, *, ready_timeout: float = 120.0) -> None:
        """Start a fresh process for a stopped spawned replica (same port)."""
        managed = self.replicas[name]
        if not managed.spawned:
            raise ValueError(f"replica {name} was adopted, not spawned")
        if managed.alive:
            raise RuntimeError(f"replica {name} is still running")
        managed.proc = subprocess.Popen(
            managed.cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=managed.env,
        )
        managed.tail.clear()
        self._await_banner(managed, ready_timeout)
        self._await_ready(managed, ready_timeout)

    def stop_all(self, *, sig: int = signal.SIGTERM,
                 wait_timeout: float = 60.0) -> None:
        """Stop every spawned replica (signal all, then reap all)."""
        spawned = [m for m in self.replicas.values()
                   if m.spawned and m.proc is not None]
        for managed in spawned:
            if managed.proc.poll() is None:
                try:
                    managed.proc.send_signal(sig)
                except OSError:
                    pass
        for managed in spawned:
            try:
                managed.proc.wait(timeout=wait_timeout)
            except subprocess.TimeoutExpired:
                self._kill(managed.proc)

    # -- zero-downtime deploys ---------------------------------------------

    def rolling_restart(self, router_ctl=None, *,
                        ready_timeout: float = 120.0) -> list[str]:
        """Drain, restart, and re-admit each spawned replica in turn.

        ``router_ctl`` must expose blocking ``hold_out(name)`` /
        ``readmit(name)`` (a :class:`RouterHandle` does).  ``hold_out``
        returns only after the router has stopped sending the replica
        traffic *and* its in-flight requests have finished, so the
        subsequent SIGTERM drain finds an idle replica — zero lost
        requests by construction.
        """
        restarted = []
        for name in self.spawned_names():
            if router_ctl is not None:
                router_ctl.hold_out(name)
            try:
                self.stop(name)
                self.restart(name, ready_timeout=ready_timeout)
            finally:
                if router_ctl is not None:
                    router_ctl.readmit(name)
            restarted.append(name)
        return restarted
