"""The asyncio front-door router.

One :class:`PhastRouter` process owns the public TCP port.  It speaks
the same length-prefixed JSON protocol as :class:`PhastService` on
both sides — clients connect to it exactly as they would to a single
replica, and it holds one multiplexed connection per replica.

Request flow for the five work ops::

    client frame ──> affinity key ──> ring preference ──> first
    routable replica (warm-up thinning applied) ──> forward with a
    rewritten id ──> response, id restored ──> client

Failover is per request: a transport error or a retryable error
envelope (429 shed, 500 quarantine, 503 broken/draining) sends the
request to the next replica on the *same key's* ring order — every
work op is a pure read over artifacts all replicas share, so a retry
can only repeat the answer.  Non-retryable envelopes (400 bad
request, 504 deadline) pass through untouched.

Health is double-sourced, exactly the PR 4 signals: a periodic
``health`` probe per replica (liveness, readiness, capacity, and the
generation fields — pid + ``uptime_seconds`` — that expose restarts)
plus per-request transport accounting.  A replica that fails
``down_after`` times in a row is held out; one that comes back enters
through a warm-up ramp so its cold caches are not slammed at full
fair share.

Admin ops are answered at the router: ``ping`` locally, ``health`` /
``metrics`` with router-level aggregates (per-replica state and rps,
affinity hit rate, spill rate, transitions), ``info`` proxied from a
live replica and annotated with the topology — so ``ServerClient``
and ``repro client`` work unmodified.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass

from ..server import protocol
from .metrics import RouterMetrics
from .replica import ACTIVE, DRAINING, WARMING, Replica
from .ring import HashRing

__all__ = ["RouterConfig", "PhastRouter", "RouterHandle", "route_in_thread"]

#: Ops forwarded to replicas — derived from the protocol's declarative
#: op registry, so the router can never drift from the service.
WORK_OPS = protocol.WORK_OPS
#: Ops answered at the router.
ADMIN_OPS = protocol.ADMIN_OPS
#: Ops broadcast to every replica with rolling semantics (swap_metric).
CONTROL_OPS = protocol.CONTROL_OPS

#: Error codes worth retrying on a different replica: the home shed
#: (429), quarantined the chunk (500), or is draining/broken (503).
#: 400 and 504 are the request's own fault and pass through.
RETRYABLE_CODES = (protocol.OVERLOADED, protocol.INTERNAL,
                   protocol.UNAVAILABLE)


@dataclass
class RouterConfig:
    """Tunables of one router instance."""

    host: str = "127.0.0.1"
    port: int = 7170
    #: Health-probe period per replica.
    probe_interval_ms: float = 200.0
    #: Per-probe response bound.
    probe_timeout_ms: float = 2_000.0
    #: Consecutive failures (probe or per-request) before ``down``.
    down_after: int = 3
    #: Ramp duration for a replica re-entering rotation.
    warmup_ms: float = 2_000.0
    #: Router-side wait for a forwarded request that carries no
    #: deadline of its own.
    forward_timeout_ms: float = 30_000.0
    #: Extra wait on top of a request's own ``timeout_ms`` — lets the
    #: replica's 504 arrive and pass through instead of racing it.
    forward_grace_ms: float = 1_000.0
    #: Distinct replicas tried per request before giving up.
    max_attempts: int = 3
    #: Virtual nodes per replica on the hash ring.
    vnodes: int = 64

    def __post_init__(self) -> None:
        if self.probe_interval_ms <= 0:
            raise ValueError("probe_interval_ms must be > 0")
        if self.probe_timeout_ms <= 0:
            raise ValueError("probe_timeout_ms must be > 0")
        if self.down_after < 1:
            raise ValueError("down_after must be >= 1")
        if self.warmup_ms < 0:
            raise ValueError("warmup_ms must be >= 0")
        if self.forward_timeout_ms <= 0:
            raise ValueError("forward_timeout_ms must be > 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")


class PhastRouter:
    """A front door fanning one public port out to N replicas."""

    def __init__(self, config: RouterConfig | None = None) -> None:
        self.config = config or RouterConfig()
        self.metrics = RouterMetrics()
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.replicas: dict[str, Replica] = {}
        self._server: asyncio.base_events.Server | None = None
        self._probe_task: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._drained: asyncio.Event | None = None
        self._drain_task: asyncio.Task | None = None
        self.host = self.config.host
        self.port = self.config.port

    # -- topology ----------------------------------------------------------

    def add_replica(self, host: str, port: int, *,
                    name: str | None = None) -> str:
        """Register a replica endpoint (before or after ``start``)."""
        name = name or f"{host}:{int(port)}"
        if name in self.replicas:
            raise ValueError(f"replica {name} already registered")
        self.replicas[name] = Replica(
            name, host, int(port),
            down_after=self.config.down_after,
            warmup_s=self.config.warmup_ms / 1e3,
            on_transition=self.metrics.record_transition,
        )
        self.ring.add(name)
        return name

    async def remove_replica(self, name: str) -> None:
        """Drop a replica from the topology entirely."""
        rep = self.replicas.pop(name)
        self.ring.remove(name)
        await rep.link.close()

    async def hold_out(self, name: str, *, timeout: float = 60.0) -> None:
        """Take a replica out of rotation and wait out its in-flight work.

        Returns only when the router holds zero requests against the
        replica — the point at which a SIGTERM drain of the replica
        cannot lose a routed request.
        """
        rep = self.replicas[name]
        rep.hold_out()
        deadline = time.monotonic() + timeout
        while rep.inflight > 0:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"replica {name} still has {rep.inflight} in-flight "
                    f"requests after {timeout}s"
                )
            await asyncio.sleep(0.01)

    async def readmit(self, name: str) -> None:
        """Return a held-out replica to rotation through the warm ramp."""
        rep = self.replicas[name]
        await rep.link.close()  # the old process's connection is stale
        rep.readmit()
        await self._probe_one(rep)

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, host: str | None = None,
                    port: int | None = None) -> None:
        """Probe every replica once, then bind and serve."""
        if not self.replicas:
            raise RuntimeError("router has no replicas to route to")
        self._drained = asyncio.Event()
        await self._probe_all()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host if host is not None else self.config.host,
            port if port is not None else self.config.port,
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self._probe_task = asyncio.get_running_loop().create_task(
            self._probe_loop()
        )

    async def drain(self) -> None:
        """Stop accepting, finish in-flight forwards, close links."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain_impl()
            )
        await asyncio.shield(self._drain_task)

    async def _drain_impl(self) -> None:
        self._draining = True
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        for rep in self.replicas.values():
            await rep.link.close()
        for writer in list(self._writers):
            writer.close()
        self._drained.set()

    async def wait_drained(self) -> None:
        await self._drained.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- health probing ----------------------------------------------------

    async def _probe_loop(self) -> None:
        period = self.config.probe_interval_ms / 1e3
        while True:
            await asyncio.sleep(period)
            await self._probe_all()

    async def _probe_all(self) -> None:
        reps = list(self.replicas.values())
        if reps:
            await asyncio.gather(*(self._probe_one(r) for r in reps))

    async def _probe_one(self, rep: Replica) -> None:
        if rep.state == DRAINING:
            return
        try:
            resp = await rep.link.request(
                {"op": "health"}, self.config.probe_timeout_ms / 1e3
            )
            health = resp if resp.get("ok") else None
        except (ConnectionError, TimeoutError, OSError):
            health = None
        rep.apply_probe(health)

    # -- connection handling (same discipline as PhastService) -------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    msg = await protocol.read_message(reader)
                except (protocol.ProtocolError, ConnectionError):
                    break
                if msg is None:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._respond(msg, writer, write_lock)
                )
                for registry in (conn_tasks, self._tasks):
                    registry.add(task)
                    task.add_done_callback(registry.discard)
        finally:
            for task in list(conn_tasks):
                task.cancel()
            if conn_tasks:
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, msg: dict, writer: asyncio.StreamWriter,
                       write_lock: asyncio.Lock) -> None:
        response = await self._process(msg)
        try:
            async with write_lock:
                await protocol.write_message(writer, response)
        except (ConnectionError, RuntimeError, OSError):
            pass

    # -- request processing ------------------------------------------------

    async def _process(self, msg: dict) -> dict:
        req_id = msg.get("id")
        op = msg.get("op")
        if not isinstance(op, str):
            return self._error(req_id, protocol.BAD_REQUEST, "missing 'op'")
        self.metrics.record_request(op)
        if op == "ping":
            return protocol.ok_response(req_id, pong=True)
        if op == "health":
            return protocol.ok_response(req_id, **self._health())
        if op == "metrics":
            return protocol.ok_response(req_id, metrics=self.metrics.snapshot(
                replicas={n: r.snapshot() for n, r in self.replicas.items()}
            ))
        if op == "info":
            return await self._info(req_id)
        if op not in WORK_OPS and op not in CONTROL_OPS:
            return self._error(
                req_id, protocol.BAD_REQUEST,
                f"unknown op {op!r}; known: "
                f"{WORK_OPS + CONTROL_OPS + ADMIN_OPS}",
            )
        if self._draining:
            return self._error(req_id, protocol.UNAVAILABLE,
                               "router is draining")
        try:
            if op in CONTROL_OPS:
                return await self._broadcast_control(req_id, op, msg)
            return await self._route_work(req_id, op, msg)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # router bug — never kill the connection
            return self._error(req_id, protocol.INTERNAL,
                               f"router error: {type(exc).__name__}: {exc}")

    def _error(self, req_id, code: int, message: str) -> dict:
        self.metrics.record_error(code)
        return protocol.error_response(req_id, code, message)

    def _health(self) -> dict:
        replicas = {n: r.snapshot() for n, r in self.replicas.items()}
        routable = [r for r in self.replicas.values() if r.routable]
        if self._draining:
            status = "draining"
        elif not routable:
            status = "down"
        elif all(r.state == ACTIVE for r in self.replicas.values()):
            status = "ok"
        else:
            status = "degraded"
        return {
            "status": status,
            "ready": not self._draining and bool(routable),
            "router": True,
            "replica_count": len(self.replicas),
            "routable": len(routable),
            "replicas": replicas,
        }

    async def _info(self, req_id) -> dict:
        """Proxy ``info`` from a live replica, annotated with topology."""
        last_exc: Exception | None = None
        for rep in self.replicas.values():
            if not rep.routable:
                continue
            try:
                resp = await rep.link.request(
                    {"op": "info"}, self.config.probe_timeout_ms / 1e3
                )
            except (ConnectionError, TimeoutError) as exc:
                last_exc = exc
                continue
            resp["id"] = req_id
            resp["router"] = {
                "replicas": len(self.replicas),
                "routable": sum(r.routable for r in self.replicas.values()),
                "via": rep.name,
            }
            return resp
        return self._error(
            req_id, protocol.UNAVAILABLE,
            f"no replica answered info: {last_exc}",
        )

    # -- routing -----------------------------------------------------------

    @staticmethod
    def affinity_key(op: str, msg: dict) -> str:
        """The cache-locality key a request should stick to.

        ``matrix`` keys on the (deduplicated, sorted) target set —
        the replica-side :class:`SelectionCache` is keyed the same
        way, so repeat target sets keep hitting their warm selection.
        Everything else keys on the source vertex, which keeps a hot
        origin's upward search space and batcher lane on one replica.
        """
        if op == "matrix":
            targets = msg.get("targets")
            if isinstance(targets, list):
                return "matrix:" + ",".join(
                    str(t) for t in sorted(set(map(str, targets)))
                )
            return f"matrix:{targets!r}"
        return f"src:{msg.get('source')!r}"

    def _forward_timeout(self, msg: dict) -> float:
        timeout_ms = msg.get("timeout_ms")
        if isinstance(timeout_ms, bool) or not isinstance(timeout_ms, (int, float)):
            return self.config.forward_timeout_ms / 1e3
        return (float(timeout_ms) + self.config.forward_grace_ms) / 1e3

    async def _route_work(self, req_id, op: str, msg: dict) -> dict:
        key = self.affinity_key(op, msg)
        preference = self.ring.preference(key)
        home = preference[0] if preference else None
        timeout = self._forward_timeout(msg)
        attempts = 0
        warm_deferred = False
        last_error: dict | None = None

        def account(routed_to: str | None) -> None:
            self.metrics.record_routing(
                hit=routed_to is not None and routed_to == home,
                spilled=routed_to != home,
                failovers=max(0, attempts - 1),
                warm_deferred=warm_deferred,
            )

        for rank, name in enumerate(preference):
            rep = self.replicas.get(name)
            if rep is None or not rep.routable:
                continue
            if attempts >= self.config.max_attempts:
                break
            if rep.state == WARMING and not rep.admit_warm():
                # Thin a warming replica's share only when a warmer
                # one exists to take the request instead.
                others = (
                    r for o, r in self.replicas.items()
                    if o != name and o in preference[rank + 1:]
                )
                if any(r.routable and r.state != WARMING for r in others):
                    warm_deferred = True
                    continue
            attempts += 1
            rep.inflight += 1
            self.metrics.record_forward(name)
            try:
                resp = await rep.link.request(msg, timeout)
            except (ConnectionError, TimeoutError) as exc:
                rep.record_failure()
                self.metrics.record_replica_error(name)
                last_error = protocol.error_response(
                    req_id, protocol.UNAVAILABLE,
                    f"replica {name} failed: {exc}",
                )
                continue
            finally:
                rep.inflight -= 1
            rep.record_success()
            resp["id"] = req_id
            if resp.get("ok"):
                account(name)
                return resp
            code = (resp.get("error") or {}).get("code")
            if code in RETRYABLE_CODES:
                self.metrics.record_replica_error(name)
                last_error = resp
                continue
            # 400 / 504: the request's own outcome — pass through.
            account(name)
            self.metrics.record_error(code or protocol.INTERNAL)
            return resp

        account(None)
        if last_error is not None:
            code = (last_error.get("error") or {}).get("code", protocol.UNAVAILABLE)
            self.metrics.record_error(code)
            return last_error
        return self._error(
            req_id, protocol.UNAVAILABLE,
            f"no routable replica for {op} "
            f"({len(self.replicas)} configured, 0 accepting)",
        )

    async def _broadcast_control(self, req_id, op: str, msg: dict) -> dict:
        """Apply a control op (swap_metric) to every replica, rolling.

        Replicas are updated **one at a time, sequentially**: while one
        replica quiesces and swaps, the others keep answering on
        whatever metric they hold, so the fleet never stops serving and
        every individual answer is single-metric.  Cross-replica skew
        during the roll is inherent to rolling updates; affinity
        routing keeps a client's repeat keys pinned to one replica,
        which bounds how visible the skew is.

        The response reports per-replica outcomes.  ``ok`` is true only
        when every replica (including ones currently out of rotation —
        a held-out replica would otherwise re-enter with stale weights)
        accepted the op.  On partial failure the operator re-issues the
        swap (idempotent: a replica already on the new weights just
        swaps to them again) or rolls back by swapping the old weights.
        """
        timeout = self._forward_timeout(msg)
        results: dict[str, dict] = {}
        failed = 0
        for name, rep in list(self.replicas.items()):
            try:
                resp = await rep.link.request(msg, timeout)
            except (ConnectionError, TimeoutError, OSError) as exc:
                rep.record_failure()
                self.metrics.record_replica_error(name)
                failed += 1
                results[name] = {
                    "ok": False,
                    "error": {"code": protocol.UNAVAILABLE,
                              "message": f"replica {name} failed: {exc}"},
                }
                continue
            rep.record_success()
            if not resp.get("ok"):
                failed += 1
                self.metrics.record_replica_error(name)
            results[name] = {
                k: v for k, v in resp.items() if k not in ("id",)
            }
        if failed or not results:
            return self._error(
                req_id, protocol.UNAVAILABLE,
                f"{op} failed on {failed} of {len(results)} replicas: "
                + repr({n: r.get("error") for n, r in results.items()
                        if not r.get("ok")}),
            )
        return protocol.ok_response(req_id, replicas=results)


# ---------------------------------------------------------------------------
# Thread-hosted routing (tests, benchmarks, notebooks)


class RouterHandle:
    """A router running on a private event loop in a daemon thread.

    Besides the lifecycle of :class:`ServerHandle`, it exposes
    blocking ``hold_out`` / ``readmit`` wrappers so synchronous code
    (a :class:`ReplicaManager` doing a rolling restart, a test) can
    drive the router's rotation from outside its loop.
    """

    def __init__(self, router: PhastRouter, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.router = router
        self.thread = thread
        self.loop = loop

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    def hold_out(self, name: str, *, timeout: float = 60.0) -> None:
        asyncio.run_coroutine_threadsafe(
            self.router.hold_out(name, timeout=timeout), self.loop
        ).result(timeout + 10.0)

    def readmit(self, name: str, *, timeout: float = 60.0) -> None:
        asyncio.run_coroutine_threadsafe(
            self.router.readmit(name), self.loop
        ).result(timeout)

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the router and join its thread (idempotent)."""
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.router.drain())
            )
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("router thread did not drain in time")

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def route_in_thread(
    router: PhastRouter, *, host: str = "127.0.0.1", port: int = 0,
    start_timeout: float = 60.0,
) -> RouterHandle:
    """Start ``router`` on a fresh event loop in a daemon thread.

    ``port=0`` binds an ephemeral port; read it back from
    ``handle.port``.  The thread exits once the router has drained.
    """
    started = threading.Event()
    holder: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop

        async def main() -> None:
            try:
                await router.start(host=host, port=port)
            except BaseException as exc:
                holder["error"] = exc
                raise
            finally:
                started.set()
            await router.wait_drained()

        try:
            loop.run_until_complete(main())
        except BaseException as exc:
            holder.setdefault("error", exc)
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="phast-router", daemon=True)
    thread.start()
    if not started.wait(start_timeout):
        raise RuntimeError("router failed to start in time")
    if "error" in holder:
        raise RuntimeError(f"router failed to start: {holder['error']}")
    return RouterHandle(router, thread, holder["loop"])
