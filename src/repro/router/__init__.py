"""Front-door routing: one public port over N ``repro serve`` replicas.

The single-node stack (:mod:`repro.server`) keeps a PHAST sweep's data
hot in one process's caches; this package adds the *horizontal* step —
a single asyncio router process owns the public TCP port and fans
requests out to replicas, each running its own warm
:class:`~repro.core.pool.PhastPool` over the same read-only graph/CH
artifacts.  The router speaks the existing length-prefixed JSON
protocol on both sides, so every existing client (``ServerClient``,
``repro client``, the benchmarks) works unmodified against it.

Why affinity routing: a replica's throughput depends on state that
*accretes per process* — the engine's upward search-space LRU
(``search_cache``), the MicroBatcher's same-source lane coalescing,
and the matrix op's :class:`~repro.core.rphast.SelectionCache`.
Spraying requests uniformly would cold-miss all three on every
replica.  The router therefore routes by consistent hashing on the
query *source* (so a depot's repeat traffic lands on one replica) and
on the *target-set hash* for ``matrix`` (so one replica keeps each
selection warm), spilling to the next replica on the ring only when
the home replica is out of rotation.

Modules
-------
:mod:`~repro.router.ring`
    Consistent-hash ring with virtual nodes: stable key → replica
    assignment that moves only ~1/N of keys when the set changes.
:mod:`~repro.router.replica`
    Per-replica state machine (active / warming / suspect / down /
    draining), the multiplexed asyncio connection to one replica, and
    :class:`ReplicaManager` — spawn or adopt ``repro serve``
    processes and drive rolling drain/restart.
:mod:`~repro.router.metrics`
    Router-level accounting: per-replica rps, spill rate, affinity
    hit rate, health-state transitions.
:mod:`~repro.router.service`
    :class:`PhastRouter`, the asyncio front door, plus
    :func:`route_in_thread` for tests and benchmarks.
"""

from .metrics import RouterMetrics
from .replica import Replica, ReplicaLink, ReplicaManager
from .ring import HashRing
from .service import PhastRouter, RouterConfig, RouterHandle, route_in_thread

__all__ = [
    "HashRing",
    "PhastRouter",
    "Replica",
    "ReplicaLink",
    "ReplicaManager",
    "RouterConfig",
    "RouterHandle",
    "RouterMetrics",
    "route_in_thread",
]
