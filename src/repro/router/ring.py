"""Consistent hashing with virtual nodes.

The router's affinity contract is *stability*: a query source (or a
matrix target-set hash) should keep landing on the same replica so
that replica's caches stay hot, and a replica joining or leaving
should remap only ~1/N of the key space instead of reshuffling
everything (a modulo scheme would cold-miss every cache on every
membership change).

Classic Karger-style ring: each member owns ``vnodes`` points on a
2^64 circle (blake2b of ``"name#i"``); a key routes to the first
member point at or clockwise-after its own hash.  ``preference()``
returns *all* members in ring order from the key's position — the
router walks that list for failover, so the spill target of a key is
as stable as its home.

Members are never removed on failure — a down replica merely gets
skipped at dispatch time.  Removal is reserved for topology changes
(a replica permanently leaving), which keeps transient failures from
churning every key's home.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _point(data: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Stable key → member assignment over a mutable member set."""

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: list[int] = []        # sorted vnode hashes
        self._owner: dict[int, str] = {}    # vnode hash -> member name
        self._members: set[str] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    @property
    def members(self) -> frozenset[str]:
        return frozenset(self._members)

    def add(self, name: str) -> None:
        """Add a member (idempotent)."""
        if name in self._members:
            return
        self._members.add(name)
        for i in range(self.vnodes):
            h = _point(f"{name}#{i}")
            # A 64-bit collision across members is ~impossible at the
            # scales here; first owner wins so add order can't flip an
            # existing assignment.
            if h not in self._owner:
                self._owner[h] = name
                bisect.insort(self._points, h)

    def remove(self, name: str) -> None:
        """Remove a member (idempotent)."""
        if name not in self._members:
            return
        self._members.discard(name)
        dead = [h for h, owner in self._owner.items() if owner == name]
        for h in dead:
            del self._owner[h]
            idx = bisect.bisect_left(self._points, h)
            del self._points[idx]

    def primary(self, key: str) -> str | None:
        """The key's home member, or ``None`` on an empty ring."""
        order = self.preference(key, limit=1)
        return order[0] if order else None

    def preference(self, key: str, limit: int | None = None) -> list[str]:
        """Distinct members in ring order starting at ``key``'s hash.

        Element 0 is the key's *home*; the rest are its failover
        order, equally stable under membership changes elsewhere on
        the ring.
        """
        if not self._points:
            return []
        want = len(self._members) if limit is None else min(limit, len(self._members))
        start = bisect.bisect_right(self._points, _point(key))
        order: list[str] = []
        seen: set[str] = set()
        for i in range(len(self._points)):
            owner = self._owner[self._points[(start + i) % len(self._points)]]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) >= want:
                    break
        return order
