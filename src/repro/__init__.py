"""PHAST: Hardware-Accelerated Shortest Path Trees — reproduction.

Reproduces Delling, Goldberg, Nowatzyk & Werneck (IPDPS 2011): the
PHAST algorithm for single-source shortest path trees on road networks,
its multi-tree / multi-core / GPU variants, the contraction-hierarchy
substrate it builds on, the baselines it is measured against, and the
applications it enables.

Quickstart::

    from repro import contract_graph, PhastEngine, europe_like

    road = europe_like(scale=64)
    ch = contract_graph(road)
    engine = PhastEngine(ch)
    tree = engine.tree(source=0)   # distances to all vertices

Subpackages
-----------
``repro.graph``
    CSR graph substrate, layouts, generators, DIMACS I/O.
``repro.pq``
    Priority queues (binary/4-ary heap, Dial, multi-level buckets).
``repro.sssp``
    Dijkstra and BFS baselines.
``repro.ch``
    Contraction hierarchies preprocessing and point-to-point queries.
``repro.core``
    PHAST itself: sweep structure, engines, parallel drivers, GPHAST.
``repro.simulator``
    Hardware models: caches, machine catalog, GPU, cost/energy models.
``repro.apps``
    Diameter, arc flags, reach, betweenness.
"""

from .apps import (
    arcflags_query,
    betweenness,
    compute_arc_flags,
    diameter,
    exact_reaches,
    partition_graph,
)
from .ch import CHParams, ContractionHierarchy, ch_query, contract_graph
from .core import (
    GphastEngine,
    PhastEngine,
    RPhastEngine,
    SelectionCache,
    parents_in_original_graph,
    phast_scalar,
    tree_level_parallel,
    trees_per_core,
)
from .graph import (
    INF,
    GraphBuilder,
    StaticGraph,
    dfs_order,
    europe_like,
    random_graph,
    read_gr,
    road_network,
    usa_like,
    write_gr,
)
from .sssp import ShortestPathTree, bfs, dijkstra

__version__ = "1.0.0"

__all__ = [
    "INF",
    "StaticGraph",
    "GraphBuilder",
    "road_network",
    "europe_like",
    "usa_like",
    "random_graph",
    "dfs_order",
    "read_gr",
    "write_gr",
    "dijkstra",
    "bfs",
    "ShortestPathTree",
    "CHParams",
    "ContractionHierarchy",
    "contract_graph",
    "ch_query",
    "PhastEngine",
    "phast_scalar",
    "RPhastEngine",
    "SelectionCache",
    "GphastEngine",
    "trees_per_core",
    "tree_level_parallel",
    "parents_in_original_graph",
    "diameter",
    "partition_graph",
    "compute_arc_flags",
    "arcflags_query",
    "exact_reaches",
    "betweenness",
    "__version__",
]
