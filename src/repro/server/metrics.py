"""Serving metrics: counters plus batch / wait / latency histograms.

Everything here is updated from two places — the event loop and the
sweep executor thread — so one lock guards the lot (the histograms are
plain Python and each update is a few list operations; contention is
negligible next to a sweep).

``snapshot()`` is the payload of the ``metrics`` request op, which
doubles as the server's health endpoint.
"""

from __future__ import annotations

import threading
import time

from ..utils.timing import LatencyHistogram

__all__ = ["ServerMetrics"]


class ServerMetrics:
    """Aggregated serving statistics for one :class:`PhastService`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.requests: dict[str, int] = {}
        self.errors: dict[str, int] = {}
        # Per-op wire-to-wire latency (request decoded -> response built).
        self.latency: dict[str, LatencyHistogram] = {}
        # Micro-batching telemetry.
        self.batch_sizes: dict[int, int] = {}
        self.batch_failures = 0
        self.lanes_total = 0
        self.batch_wait = LatencyHistogram()
        self.sweep_time = LatencyHistogram()
        # Matrix (many-to-many) telemetry.
        self.matrix_requests = 0
        self.matrix_cells = 0
        # Metric hot-swap telemetry.
        self.swaps_total = 0
        self.metric_generation = 0

    def uptime_seconds(self) -> float:
        """Monotonic seconds since this server instance constructed its
        metrics — the restart-detection signal of the ``health`` op (a
        router sees it move backwards exactly when the process is new)."""
        return round(time.monotonic() - self.started_at, 3)

    def record_request(self, op: str) -> None:
        with self._lock:
            self.requests[op] = self.requests.get(op, 0) + 1

    def record_error(self, code: int) -> None:
        with self._lock:
            key = str(code)
            self.errors[key] = self.errors.get(key, 0) + 1

    def record_latency(self, op: str, seconds: float) -> None:
        with self._lock:
            hist = self.latency.get(op)
            if hist is None:
                hist = self.latency[op] = LatencyHistogram()
            hist.observe(seconds)

    def record_batch(self, size: int, waits_s: list[float],
                     sweep_s: float, lanes: int | None = None) -> None:
        """One dispatched micro-batch: its size, per-request queueing
        delays, the sweep's execution time, and how many sweep lanes
        it needed (fewer than ``size`` when requests share sources)."""
        with self._lock:
            self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1
            self.lanes_total += size if lanes is None else lanes
            for w in waits_s:
                self.batch_wait.observe(max(0.0, w))
            self.sweep_time.observe(sweep_s)

    def record_batch_failure(self) -> None:
        """One dispatched micro-batch whose sweep raised."""
        with self._lock:
            self.batch_failures += 1

    def record_matrix(self, cells: int) -> None:
        """One answered matrix request of ``cells`` = rows x cols."""
        with self._lock:
            self.matrix_requests += 1
            self.matrix_cells += int(cells)

    def record_swap(self, generation: int) -> None:
        """One completed metric hot swap; ``generation`` is the new one."""
        with self._lock:
            self.swaps_total += 1
            self.metric_generation = int(generation)

    def snapshot(self, admission: dict | None = None,
                 pool: dict | None = None,
                 selection_cache: dict | None = None) -> dict:
        """JSON-able view of everything above."""
        with self._lock:
            batches = sum(self.batch_sizes.values())
            coalesced = sum(s * c for s, c in self.batch_sizes.items())
            snap = {
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "requests_total": dict(self.requests),
                "errors_total": dict(self.errors),
                "latency_ms": {
                    op: hist.summary() for op, hist in self.latency.items()
                },
                "batches": {
                    "count": batches,
                    "failures": self.batch_failures,
                    "size_histogram": {
                        str(s): c for s, c in sorted(self.batch_sizes.items())
                    },
                    "mean_size": round(coalesced / batches, 3) if batches else 0.0,
                    "mean_lanes": round(self.lanes_total / batches, 3) if batches else 0.0,
                    "wait_ms": self.batch_wait.summary(),
                    "sweep_ms": self.sweep_time.summary(),
                },
                "matrix": {
                    "requests": self.matrix_requests,
                    "cells_total": self.matrix_cells,
                },
                "swaps": {
                    "total": self.swaps_total,
                    "metric_generation": self.metric_generation,
                },
            }
        if admission is not None:
            snap["admission"] = admission
        if pool is not None:
            snap["pool"] = pool
        if selection_cache is not None:
            snap["selection_cache"] = selection_cache
        return snap
