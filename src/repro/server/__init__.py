"""Long-lived query serving over a warm PHAST hierarchy.

The batch layer (:mod:`repro.core.pool`) answers *offline* workloads:
one caller, many sources, one call.  This package closes the remaining
gap to the ROADMAP's north star — a resident process answering a
*stream* of concurrent queries — by exploiting the same economics
online: a PHAST sweep costs nearly the same for 1 or ``k`` sources, so
coalescing concurrent tree-shaped requests into one k-lane sweep
multiplies service rate exactly like dynamic batching in an inference
server.

Modules
-------
:mod:`~repro.server.protocol`
    Length-prefixed JSON framing (stdlib only) shared by the asyncio
    server and the blocking client.
:mod:`~repro.server.admission`
    Bounded-queue admission control with load shedding and drain mode.
:mod:`~repro.server.scheduler`
    The dynamic micro-batching scheduler: coalesce up to ``batch_max``
    sweep requests or ``max_wait_ms``, dispatch one multi-source sweep,
    fan results back out to per-request futures.
:mod:`~repro.server.metrics`
    Request counters plus batch-size / wait / latency histograms.
:mod:`~repro.server.service`
    The asyncio TCP service tying it together: five query types
    (point-to-point, one-to-many, full tree, isochrone, travel-time
    matrix), deadlines, graceful drain on SIGINT/SIGTERM.
:mod:`~repro.server.client`
    Blocking client library used by ``repro client``, the tests and
    the closed-loop load generator.
"""

from .admission import AdmissionController
from .client import ServerClient, ServerError
from .metrics import ServerMetrics
from .protocol import ProtocolError
from .scheduler import DeadlineExceeded, MicroBatcher, SweepRequest
from .service import PhastService, ServerConfig, serve_in_thread

__all__ = [
    "AdmissionController",
    "DeadlineExceeded",
    "MicroBatcher",
    "PhastService",
    "ProtocolError",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "ServerMetrics",
    "SweepRequest",
    "serve_in_thread",
]
