"""Wire protocol: 4-byte big-endian length prefix + UTF-8 JSON body.

One frame per message in both directions.  JSON keeps the protocol
inspectable and stdlib-only; the length prefix makes framing exact
under pipelining (a client may have many requests in flight on one
connection — responses carry the request ``id`` and may arrive out of
order).

Requests::

    {"id": 7, "op": "tree", "source": 42, "timeout_ms": 250.0}

Responses::

    {"id": 7, "ok": true, ...payload}
    {"id": 7, "ok": false, "error": {"code": 429, "message": "..."}}

Error codes follow the familiar HTTP meanings so operators need no
legend: 400 bad request, 429 shed by admission control, 500 internal,
503 draining/unavailable, 504 deadline exceeded.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from dataclasses import dataclass, field

__all__ = [
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RequestValidationError",
    "BAD_REQUEST",
    "OVERLOADED",
    "INTERNAL",
    "UNAVAILABLE",
    "DEADLINE",
    "Param",
    "OpSpec",
    "OPS",
    "OPS_BY_NAME",
    "WORK_OPS",
    "ADMIN_OPS",
    "CONTROL_OPS",
    "validate_request",
    "encode_message",
    "decode_body",
    "read_message",
    "write_message",
    "send_message",
    "recv_message",
    "ok_response",
    "error_response",
]

#: Bumped when the op set or a request/response shape changes in a way
#: clients must feature-detect.  Version 2 added the registry itself,
#: ``swap_metric``, and the ``protocol_version``/``ops`` fields in
#: ``health``/``info``.
PROTOCOL_VERSION = 2

#: Hard cap on one frame; a full-tree response at paper scale (18M
#: vertices) would not fit, but such deployments should use
#: ``one_to_many`` — the cap protects the server from hostile lengths.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

BAD_REQUEST = 400
OVERLOADED = 429
INTERNAL = 500
UNAVAILABLE = 503
DEADLINE = 504


class ProtocolError(RuntimeError):
    """The peer sent a frame this protocol cannot accept."""


def encode_message(obj: dict) -> bytes:
    """One wire frame (header + JSON body) for ``obj``."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame cap"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse one frame body; a non-object payload is a protocol error."""
    try:
        obj = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object")
    return obj


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (cap "
            f"{MAX_MESSAGE_BYTES}); closing"
        )


# -- asyncio side (server) ---------------------------------------------------


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Next message from ``reader``; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("connection closed mid-header") from exc
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_body(body)


async def write_message(writer: asyncio.StreamWriter, obj: dict) -> None:
    """Send one message and wait for the transport buffer to drain."""
    writer.write(encode_message(obj))
    await writer.drain()


# -- blocking side (client) --------------------------------------------------


def send_message(sock: socket.socket, obj: dict) -> None:
    """Send one message over a blocking socket."""
    sock.sendall(encode_message(obj))


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None  # clean EOF on a frame boundary
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Next message from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


# -- response envelopes ------------------------------------------------------


def ok_response(req_id, **payload) -> dict:
    return {"id": req_id, "ok": True, **payload}


def error_response(req_id, code: int, message: str) -> dict:
    return {"id": req_id, "ok": False,
            "error": {"code": int(code), "message": str(message)}}


# -- op registry -------------------------------------------------------------
#
# One declarative table describes every operation the protocol knows:
# its kind (how it is admitted and routed), its request fields (how it
# is validated), and its handler binding (which PhastService method
# answers it).  The service's dispatch, the router's forwarding sets,
# the client's field normalization, and the ``health``/``info``
# feature-detection payloads are all derived from this table — adding
# an op is one row, not five hand-synchronized edits.


class RequestValidationError(ValueError):
    """A request failed the registry's declarative validation (400)."""


@dataclass(frozen=True)
class Param:
    """One request field of an op.

    ``type`` is one of:

    ``vertex``
        An integer vertex id in ``[0, n)``.
    ``vertex_list``
        A non-empty list of vertex ids in ``[0, n)``.
    ``nonneg_int``
        An integer ``>= 0``.
    ``int_list``
        A non-empty list of integers ``>= 0`` (metric weights).
    ``bool``
        A JSON boolean.
    ``str``
        A string; constrain with ``choices``.
    ``number_or_null``
        A number or ``null`` (deadlines).
    """

    name: str
    type: str
    required: bool = True
    default: object = None
    choices: tuple = ()
    #: Deprecated singular/plural spellings normalized onto this
    #: field by clients (`sources`/`targets` unification).
    aliases: tuple = ()


@dataclass(frozen=True)
class OpSpec:
    """One operation: name, kind, request schema, handler binding.

    ``kind`` drives admission and routing:

    ``work``
        Shortest-path work.  Passes admission control on the server;
        the router forwards it to one replica (with failover).
    ``admin``
        Read-only introspection.  Answered even while draining;
        answered at the router (or proxied) without admission.
    ``control``
        Mutates serving state (``swap_metric``).  Runs as an exclusive
        batcher request on the server; the router broadcasts it to
        every replica with rolling semantics.
    """

    name: str
    kind: str
    handler: str
    summary: str = ""
    params: tuple = field(default_factory=tuple)


_TIMEOUT = Param("timeout_ms", "number_or_null", required=False,
                 default="unset")

OPS: tuple[OpSpec, ...] = (
    OpSpec(
        "query", "work", "_run_query",
        "point-to-point distance via the bidirectional CH search",
        params=(
            Param("source", "vertex", aliases=("sources",)),
            Param("target", "vertex", aliases=("targets",)),
            Param("stall", "bool", required=False, default=False),
            _TIMEOUT,
        ),
    ),
    OpSpec(
        "tree", "work", "_run_sweep",
        "full shortest path tree from one source",
        params=(
            Param("source", "vertex", aliases=("sources",)),
            _TIMEOUT,
        ),
    ),
    OpSpec(
        "one_to_many", "work", "_run_sweep",
        "distances from one source to a target list",
        params=(
            Param("source", "vertex", aliases=("sources",)),
            Param("targets", "vertex_list"),
            _TIMEOUT,
        ),
    ),
    OpSpec(
        "isochrone", "work", "_run_sweep",
        "vertices within a budget of one source",
        params=(
            Param("source", "vertex", aliases=("sources",)),
            Param("budget", "nonneg_int"),
            _TIMEOUT,
        ),
    ),
    OpSpec(
        "matrix", "work", "_run_matrix",
        "k x m travel-time matrix over a cached restricted selection",
        params=(
            Param("sources", "vertex_list"),
            Param("targets", "vertex_list"),
            Param("backend", "str", required=False, default="rphast",
                  choices=("rphast", "buckets")),
            _TIMEOUT,
        ),
    ),
    OpSpec(
        "swap_metric", "control", "_run_swap",
        "hot-swap edge weights over the resident topology",
        params=(
            Param("weights", "int_list", required=False),
            Param("path", "str", required=False),
            _TIMEOUT,
        ),
    ),
    OpSpec("ping", "admin", "_admin_ping", "liveness"),
    OpSpec("info", "admin", "_admin_info", "instance facts"),
    OpSpec("metrics", "admin", "_admin_metrics", "serving statistics"),
    OpSpec("health", "admin", "_admin_health", "readiness"),
)

OPS_BY_NAME: dict[str, OpSpec] = {spec.name: spec for spec in OPS}
WORK_OPS: tuple[str, ...] = tuple(s.name for s in OPS if s.kind == "work")
ADMIN_OPS: tuple[str, ...] = tuple(s.name for s in OPS if s.kind == "admin")
CONTROL_OPS: tuple[str, ...] = tuple(
    s.name for s in OPS if s.kind == "control"
)


def _validate_vertex(name: str, value, n: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestValidationError(f"{name!r} must be an integer")
    if not 0 <= value < n:
        raise RequestValidationError(
            f"{name!r} must be a vertex id in [0, {n}) (got {value})"
        )
    return value


def _validate_param(param: Param, value, n: int):
    name = param.name
    kind = param.type
    if kind == "vertex":
        return _validate_vertex(name, value, n)
    if kind == "vertex_list":
        if not isinstance(value, list) or not value:
            raise RequestValidationError(
                f"{name!r} must be a non-empty list of vertex ids in [0, {n})"
            )
        return [_validate_vertex(name, v, n) for v in value]
    if kind == "nonneg_int":
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise RequestValidationError(f"{name!r} must be an integer >= 0")
        return value
    if kind == "int_list":
        if (not isinstance(value, list) or not value
                or not all(isinstance(v, int) and not isinstance(v, bool)
                           and v >= 0 for v in value)):
            raise RequestValidationError(
                f"{name!r} must be a non-empty list of integers >= 0"
            )
        return value
    if kind == "bool":
        if not isinstance(value, bool):
            raise RequestValidationError(f"{name!r} must be a boolean")
        return value
    if kind == "str":
        if not isinstance(value, str):
            raise RequestValidationError(f"{name!r} must be a string")
        if param.choices and value not in param.choices:
            raise RequestValidationError(
                f"unknown {name} {value!r}; known: {param.choices}"
            )
        return value
    if kind == "number_or_null":
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RequestValidationError(
                f"{name!r} must be a number or null"
            )
        return value
    raise AssertionError(f"unknown param type {kind!r}")


def validate_request(spec: OpSpec, msg: dict, n: int) -> dict:
    """Parse one request against ``spec``; raises on the first bad field.

    Returns the validated fields by name.  Absent optional fields get
    their declared defaults (``timeout_ms`` defaults to the sentinel
    ``"unset"`` so the server can distinguish "no field" from an
    explicit ``null``).
    """
    fields: dict = {}
    for param in spec.params:
        if param.name in msg:
            fields[param.name] = _validate_param(param, msg[param.name], n)
        elif param.required:
            raise RequestValidationError(f"missing required field {param.name!r}")
        else:
            fields[param.name] = param.default
    return fields
