"""Wire protocol: 4-byte big-endian length prefix + UTF-8 JSON body.

One frame per message in both directions.  JSON keeps the protocol
inspectable and stdlib-only; the length prefix makes framing exact
under pipelining (a client may have many requests in flight on one
connection — responses carry the request ``id`` and may arrive out of
order).

Requests::

    {"id": 7, "op": "tree", "source": 42, "timeout_ms": 250.0}

Responses::

    {"id": 7, "ok": true, ...payload}
    {"id": 7, "ok": false, "error": {"code": 429, "message": "..."}}

Error codes follow the familiar HTTP meanings so operators need no
legend: 400 bad request, 429 shed by admission control, 500 internal,
503 draining/unavailable, 504 deadline exceeded.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "BAD_REQUEST",
    "OVERLOADED",
    "INTERNAL",
    "UNAVAILABLE",
    "DEADLINE",
    "encode_message",
    "decode_body",
    "read_message",
    "write_message",
    "send_message",
    "recv_message",
    "ok_response",
    "error_response",
]

#: Hard cap on one frame; a full-tree response at paper scale (18M
#: vertices) would not fit, but such deployments should use
#: ``one_to_many`` — the cap protects the server from hostile lengths.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

BAD_REQUEST = 400
OVERLOADED = 429
INTERNAL = 500
UNAVAILABLE = 503
DEADLINE = 504


class ProtocolError(RuntimeError):
    """The peer sent a frame this protocol cannot accept."""


def encode_message(obj: dict) -> bytes:
    """One wire frame (header + JSON body) for ``obj``."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame cap"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse one frame body; a non-object payload is a protocol error."""
    try:
        obj = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object")
    return obj


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (cap "
            f"{MAX_MESSAGE_BYTES}); closing"
        )


# -- asyncio side (server) ---------------------------------------------------


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Next message from ``reader``; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("connection closed mid-header") from exc
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_body(body)


async def write_message(writer: asyncio.StreamWriter, obj: dict) -> None:
    """Send one message and wait for the transport buffer to drain."""
    writer.write(encode_message(obj))
    await writer.drain()


# -- blocking side (client) --------------------------------------------------


def send_message(sock: socket.socket, obj: dict) -> None:
    """Send one message over a blocking socket."""
    sock.sendall(encode_message(obj))


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None  # clean EOF on a frame boundary
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Next message from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


# -- response envelopes ------------------------------------------------------


def ok_response(req_id, **payload) -> dict:
    return {"id": req_id, "ok": True, **payload}


def error_response(req_id, code: int, message: str) -> dict:
    return {"id": req_id, "ok": False,
            "error": {"code": int(code), "message": str(message)}}
