"""Blocking client for the query service.

One :class:`ServerClient` owns one TCP connection and issues one
request at a time (closed-loop).  It is deliberately synchronous —
load generators and applications scale by running one client per
thread, which is also how the benchmark applies offered load.  Not
thread-safe; share nothing, connect per thread.
"""

from __future__ import annotations

import socket
import time

import numpy as np

from . import protocol

__all__ = ["ServerClient", "ServerError"]


class ServerError(RuntimeError):
    """The server answered with an error envelope."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = int(code)
        self.message = message


class ServerClient:
    """Issue queries against a running :class:`~repro.server.service.PhastService`.

    Parameters
    ----------
    host, port:
        Where the service listens.
    timeout:
        Socket timeout in seconds for each send/receive.
    connect_retry_s:
        Keep retrying the initial connection for this many seconds —
        lets scripts start a client right after forking the server.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7171, *,
                 timeout: float = 60.0, connect_retry_s: float = 0.0) -> None:
        self.host = host
        self.port = int(port)
        self._timeout = timeout
        self._next_id = 0
        self._sock = self._connect(connect_retry_s)

    def _connect(self, retry_s: float) -> socket.socket:
        deadline = time.monotonic() + retry_s
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self._timeout
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- plumbing ----------------------------------------------------------

    def call(self, op: str, **params) -> dict:
        """One request/response round trip; raises :class:`ServerError`."""
        self._next_id += 1
        req_id = self._next_id
        protocol.send_message(self._sock, {"id": req_id, "op": op, **params})
        resp = protocol.recv_message(self._sock)
        if resp is None:
            raise ConnectionError("server closed the connection")
        if resp.get("id") != req_id:
            raise protocol.ProtocolError(
                f"response id {resp.get('id')!r} != request id {req_id}"
            )
        if not resp.get("ok"):
            err = resp.get("error") or {}
            raise ServerError(err.get("code", protocol.INTERNAL),
                              err.get("message", "unknown server error"))
        return resp

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the four query types ---------------------------------------------

    def query(self, source: int, target: int, *, stall: bool = False,
              timeout_ms: float | None = "unset") -> dict:
        """Point-to-point distance: ``{"distance", "reachable", "settled"}``."""
        params = {"source": source, "target": target, "stall": stall}
        if timeout_ms != "unset":
            params["timeout_ms"] = timeout_ms
        return self.call("query", **params)

    def tree(self, source: int, *, timeout_ms: float | None = "unset") -> np.ndarray:
        """Full distance array from ``source`` (int64, INF = unreachable)."""
        params = {"source": source}
        if timeout_ms != "unset":
            params["timeout_ms"] = timeout_ms
        resp = self.call("tree", **params)
        return np.asarray(resp["dist"], dtype=np.int64)

    def one_to_many(self, source: int, targets, *,
                    timeout_ms: float | None = "unset") -> np.ndarray:
        """Distances from ``source`` to each of ``targets`` (int64)."""
        params = {"source": source, "targets": [int(t) for t in targets]}
        if timeout_ms != "unset":
            params["timeout_ms"] = timeout_ms
        resp = self.call("one_to_many", **params)
        return np.asarray(resp["dist"], dtype=np.int64)

    def isochrone(self, source: int, budget: int, *,
                  timeout_ms: float | None = "unset") -> np.ndarray:
        """Sorted vertex ids within ``budget`` of ``source`` (int64)."""
        params = {"source": source, "budget": int(budget)}
        if timeout_ms != "unset":
            params["timeout_ms"] = timeout_ms
        resp = self.call("isochrone", **params)
        return np.asarray(resp["vertices"], dtype=np.int64)

    # -- admin -------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def info(self) -> dict:
        resp = self.call("info")
        resp.pop("id", None)
        resp.pop("ok", None)
        return resp

    def metrics(self) -> dict:
        return self.call("metrics")["metrics"]
