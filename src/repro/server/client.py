"""Blocking client for the query service.

One :class:`ServerClient` owns one TCP connection and issues one
request at a time (closed-loop).  It is deliberately synchronous —
load generators and applications scale by running one client per
thread, which is also how the benchmark applies offered load.  Not
thread-safe; share nothing, connect per thread.

The connection is *persistent*: it is established once (eagerly, so
construction surfaces an unreachable endpoint immediately) and reused
for every subsequent call — on the router path each per-call connect
would otherwise add a syscall round trip and a three-way handshake in
front of a sub-millisecond query.  The client reconnects only after a
transport failure or a read timeout; :attr:`connects_total` /
:attr:`reconnects_total` make the reuse observable, and the tests pin
it (N calls, one socket).

Failure semantics
-----------------
Every query op is a pure read, so lost-connection retries are safe:
``call`` reconnects and retries transient transport failures (refused
connection, reset, server closed mid-request) with exponential
backoff plus jitter, up to ``max_retries`` times.  Application-level
failures — :class:`ServerError` envelopes and
:class:`~repro.server.protocol.ProtocolError` — are never retried:
the server answered; asking again would repeat the answer.

A per-call read ``timeout=`` bounds how long one response may take.
When it fires the connection is dropped (the frame stream is now
desynchronized — a late response would misalign request ids) and
``TimeoutError`` is raised naming the endpoint; the next call
reconnects.
"""

from __future__ import annotations

import random
import socket
import time
import warnings

import numpy as np

from . import protocol

__all__ = ["ServerClient", "ServerError"]

#: Default for optional wire fields: "the caller said nothing", as
#: distinct from an explicit ``None`` (which travels as JSON null).
_UNSET = "unset"


def _shim(op: str, old_name: str, old_val, new_name: str, new_val):
    """Accept a deprecated keyword alongside its replacement.

    The typed wrappers moved to the unified plural keywords
    (``sources``/``targets``); the singular forms still work so
    existing callers don't break, but warn.  Exactly one of the two
    must be given.
    """
    if old_val is not None:
        if new_val is not None:
            raise TypeError(
                f"{op}() got both {new_name!r} and deprecated {old_name!r}"
            )
        warnings.warn(
            f"{op}(..., {old_name}=) is deprecated; use {new_name}=",
            DeprecationWarning, stacklevel=3,
        )
        return old_val
    if new_val is None:
        raise TypeError(f"{op}() missing required argument: {new_name!r}")
    return new_val


class ServerError(RuntimeError):
    """The server answered with an error envelope."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = int(code)
        self.message = message


class ServerClient:
    """Issue queries against a running :class:`~repro.server.service.PhastService`.

    Parameters
    ----------
    host, port:
        Where the service listens.
    timeout:
        Default socket timeout in seconds for each send/receive;
        ``call(..., timeout=)`` overrides it for one read.
    connect_retry_s:
        Keep retrying the initial connection for this many seconds —
        lets scripts start a client right after forking the server.
    max_retries:
        How many times ``call`` re-attempts after a transient
        connection failure (0 disables retrying).
    backoff_s:
        Base delay before the first retry; doubles per attempt, with
        uniform jitter in ``[0.5x, 1.5x)`` so a thundering herd of
        clients does not reconnect in lockstep.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7171, *,
                 timeout: float = 60.0, connect_retry_s: float = 0.0,
                 max_retries: int = 2, backoff_s: float = 0.05) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        self.host = host
        self.port = int(port)
        self._timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self._next_id = 0
        #: Connections established over this client's lifetime; the
        #: first connect counts, so ``reconnects_total`` is
        #: ``connects_total - 1``.
        self.connects_total = 0
        self._sock: socket.socket | None = self._connect(connect_retry_s)

    @property
    def _endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self, retry_s: float) -> socket.socket:
        deadline = time.monotonic() + retry_s
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self._timeout
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self.connects_total += 1
                return sock
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"cannot connect to {self._endpoint}: {exc}"
                    ) from exc
                time.sleep(0.05)

    @property
    def connected(self) -> bool:
        """A live (as far as we know) connection is being reused."""
        return self._sock is not None

    @property
    def reconnects_total(self) -> int:
        """How many times the persistent connection had to be rebuilt."""
        return max(0, self.connects_total - 1)

    def _drop(self) -> None:
        """Discard the connection; the next call reconnects."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- plumbing ----------------------------------------------------------

    def call(self, op: str, *, timeout: float | None = None, **params) -> dict:
        """One request/response round trip; raises :class:`ServerError`.

        ``timeout`` bounds this call's response read (seconds); when it
        fires, ``TimeoutError`` is raised and the connection dropped.
        Transient connection failures are retried with backoff; the
        request ids restart per connection, so a retry never collides
        with a stale in-flight response.
        """
        delay = self.backoff_s
        for attempt in range(self.max_retries + 1):
            if attempt:
                time.sleep(delay * (0.5 + random.random()))
                delay *= 2
            try:
                return self._call_once(op, params, timeout)
            except ConnectionError:
                self._drop()
                if attempt >= self.max_retries:
                    raise
        raise AssertionError("unreachable")

    def _call_once(self, op: str, params: dict, timeout: float | None) -> dict:
        if self._sock is None:
            self._sock = self._connect(0.0)
            self._next_id = 0
        sock = self._sock
        self._next_id += 1
        req_id = self._next_id
        try:
            protocol.send_message(sock, {"id": req_id, "op": op, **params})
        except OSError as exc:
            raise ConnectionError(
                f"lost connection to {self._endpoint} while sending: {exc}"
            ) from exc
        if timeout is not None:
            sock.settimeout(timeout)
        try:
            resp = protocol.recv_message(sock)
        except TimeoutError as exc:
            self._drop()  # frame stream is desynchronized now
            limit = self._timeout if timeout is None else timeout
            raise TimeoutError(
                f"no response from {self._endpoint} within {limit}s"
            ) from exc
        except OSError as exc:
            raise ConnectionError(
                f"lost connection to {self._endpoint} while reading: {exc}"
            ) from exc
        finally:
            if timeout is not None and self._sock is sock:
                sock.settimeout(self._timeout)
        if resp is None:
            raise ConnectionError(
                f"{self._endpoint} closed the connection mid-request"
            )
        if resp.get("id") != req_id:
            raise protocol.ProtocolError(
                f"response id {resp.get('id')!r} != request id {req_id}"
            )
        if not resp.get("ok"):
            err = resp.get("error") or {}
            raise ServerError(err.get("code", protocol.INTERNAL),
                              err.get("message", "unknown server error"))
        return resp

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- unified call core -------------------------------------------------

    def _call(self, op: str, *, timeout: float | None = None,
              **fields) -> dict:
        """Registry-normalized request core every typed wrapper rides.

        Field names follow the *unified* surface — ``sources`` /
        ``targets`` everywhere — and are mapped onto the wire names the
        op registry declares: an op whose wire field is the singular
        ``source`` accepts a scalar or a length-1 sequence under
        ``sources``; list-typed wire fields accept a scalar and wrap
        it.  Fields left at the ``_UNSET`` sentinel are omitted from
        the frame.  Unknown ops (a newer server) pass fields through
        untouched.
        """
        spec = protocol.OPS_BY_NAME.get(op)
        params: dict = {}
        by_name = {p.name: p for p in spec.params} if spec else {}
        by_alias = {
            alias: p
            for p in (spec.params if spec else ())
            for alias in p.aliases
        }
        for key, value in fields.items():
            if isinstance(value, str) and value == _UNSET:
                continue
            param = by_name.get(key) or by_alias.get(key)
            if param is None:
                params[key] = value
                continue
            if param.type == "vertex" and not isinstance(value, (int, np.integer)):
                seq = list(value)
                if len(seq) != 1:
                    raise ValueError(
                        f"op {op!r} takes exactly one {param.name}; "
                        f"got {len(seq)} under {key!r}"
                    )
                value = seq[0]
            elif param.type in ("vertex_list", "int_list"):
                if isinstance(value, (int, np.integer)):
                    value = [value]
                value = [int(v) for v in value]
            if param.type in ("vertex", "nonneg_int"):
                value = int(value)
            params[param.name] = value
        return self.call(op, timeout=timeout, **params)

    # -- the query types ---------------------------------------------------

    def query(self, sources=None, targets=None, *, stall: bool = False,
              timeout_ms: float | None = _UNSET,
              source=None, target=None) -> dict:
        """Point-to-point distance: ``{"distance", "reachable", "settled"}``.

        ``sources``/``targets`` each take one vertex (scalar or
        length-1 sequence).  The old ``source=``/``target=`` keywords
        still work but are deprecated.
        """
        sources = _shim("query", "source", source, "sources", sources)
        targets = _shim("query", "target", target, "targets", targets)
        return self._call("query", sources=sources, targets=targets,
                          stall=stall, timeout_ms=timeout_ms)

    def tree(self, sources=None, *, timeout_ms: float | None = _UNSET,
             source=None) -> np.ndarray:
        """Full distance array from one source (int64, INF = unreachable)."""
        sources = _shim("tree", "source", source, "sources", sources)
        resp = self._call("tree", sources=sources, timeout_ms=timeout_ms)
        return np.asarray(resp["dist"], dtype=np.int64)

    def one_to_many(self, sources=None, targets=None, *,
                    timeout_ms: float | None = _UNSET,
                    source=None) -> np.ndarray:
        """Distances from one source to each of ``targets`` (int64)."""
        sources = _shim("one_to_many", "source", source, "sources", sources)
        resp = self._call("one_to_many", sources=sources, targets=targets,
                          timeout_ms=timeout_ms)
        return np.asarray(resp["dist"], dtype=np.int64)

    def matrix(self, sources, targets, *, backend: str | None = None,
               timeout_ms: float | None = _UNSET) -> np.ndarray:
        """Travel-time matrix: row ``i`` = distances from ``sources[i]``
        to each of ``targets`` (int64, INF = unreachable).

        ``backend`` selects the server-side algorithm: ``"rphast"``
        (cached restricted sweeps, the default) or ``"buckets"`` (the
        Knopp-style ablation baseline).
        """
        resp = self._call(
            "matrix", sources=sources, targets=targets,
            backend=backend if backend is not None else _UNSET,
            timeout_ms=timeout_ms,
        )
        return np.asarray(resp["matrix"], dtype=np.int64)

    def isochrone(self, sources=None, budget: int | None = None, *,
                  timeout_ms: float | None = _UNSET,
                  source=None) -> np.ndarray:
        """Sorted vertex ids within ``budget`` of one source (int64)."""
        sources = _shim("isochrone", "source", source, "sources", sources)
        resp = self._call("isochrone", sources=sources, budget=budget,
                          timeout_ms=timeout_ms)
        return np.asarray(resp["vertices"], dtype=np.int64)

    # -- control -----------------------------------------------------------

    def swap_metric(self, weights=None, *, path: str | None = None,
                    timeout_ms: float | None = _UNSET,
                    timeout: float | None = None) -> dict:
        """Hot-swap the serving metric; returns the swap report.

        Exactly one of ``weights`` (per-base-arc edge weights, any
        integer sequence / NumPy array) or ``path`` (a metric artifact
        on the *server's* filesystem, written by ``repro customize``)
        must be given.  Against a router this rolls the swap over
        every replica; the report then carries per-replica payloads.
        """
        fields: dict = {"timeout_ms": timeout_ms}
        if weights is not None:
            fields["weights"] = np.asarray(weights).tolist()
        if path is not None:
            fields["path"] = path
        resp = self._call("swap_metric", timeout=timeout, **fields)
        resp.pop("id", None)
        resp.pop("ok", None)
        return resp

    # -- admin -------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def info(self) -> dict:
        resp = self.call("info")
        resp.pop("id", None)
        resp.pop("ok", None)
        return resp

    def metrics(self) -> dict:
        return self.call("metrics")["metrics"]

    def health(self) -> dict:
        """Supervision health: status, capacity, pool and admission state."""
        resp = self.call("health")
        resp.pop("id", None)
        resp.pop("ok", None)
        return resp
