"""Blocking client for the query service.

One :class:`ServerClient` owns one TCP connection and issues one
request at a time (closed-loop).  It is deliberately synchronous —
load generators and applications scale by running one client per
thread, which is also how the benchmark applies offered load.  Not
thread-safe; share nothing, connect per thread.

The connection is *persistent*: it is established once (eagerly, so
construction surfaces an unreachable endpoint immediately) and reused
for every subsequent call — on the router path each per-call connect
would otherwise add a syscall round trip and a three-way handshake in
front of a sub-millisecond query.  The client reconnects only after a
transport failure or a read timeout; :attr:`connects_total` /
:attr:`reconnects_total` make the reuse observable, and the tests pin
it (N calls, one socket).

Failure semantics
-----------------
Every query op is a pure read, so lost-connection retries are safe:
``call`` reconnects and retries transient transport failures (refused
connection, reset, server closed mid-request) with exponential
backoff plus jitter, up to ``max_retries`` times.  Application-level
failures — :class:`ServerError` envelopes and
:class:`~repro.server.protocol.ProtocolError` — are never retried:
the server answered; asking again would repeat the answer.

A per-call read ``timeout=`` bounds how long one response may take.
When it fires the connection is dropped (the frame stream is now
desynchronized — a late response would misalign request ids) and
``TimeoutError`` is raised naming the endpoint; the next call
reconnects.
"""

from __future__ import annotations

import random
import socket
import time

import numpy as np

from . import protocol

__all__ = ["ServerClient", "ServerError"]


class ServerError(RuntimeError):
    """The server answered with an error envelope."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = int(code)
        self.message = message


class ServerClient:
    """Issue queries against a running :class:`~repro.server.service.PhastService`.

    Parameters
    ----------
    host, port:
        Where the service listens.
    timeout:
        Default socket timeout in seconds for each send/receive;
        ``call(..., timeout=)`` overrides it for one read.
    connect_retry_s:
        Keep retrying the initial connection for this many seconds —
        lets scripts start a client right after forking the server.
    max_retries:
        How many times ``call`` re-attempts after a transient
        connection failure (0 disables retrying).
    backoff_s:
        Base delay before the first retry; doubles per attempt, with
        uniform jitter in ``[0.5x, 1.5x)`` so a thundering herd of
        clients does not reconnect in lockstep.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7171, *,
                 timeout: float = 60.0, connect_retry_s: float = 0.0,
                 max_retries: int = 2, backoff_s: float = 0.05) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        self.host = host
        self.port = int(port)
        self._timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self._next_id = 0
        #: Connections established over this client's lifetime; the
        #: first connect counts, so ``reconnects_total`` is
        #: ``connects_total - 1``.
        self.connects_total = 0
        self._sock: socket.socket | None = self._connect(connect_retry_s)

    @property
    def _endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self, retry_s: float) -> socket.socket:
        deadline = time.monotonic() + retry_s
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self._timeout
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self.connects_total += 1
                return sock
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"cannot connect to {self._endpoint}: {exc}"
                    ) from exc
                time.sleep(0.05)

    @property
    def connected(self) -> bool:
        """A live (as far as we know) connection is being reused."""
        return self._sock is not None

    @property
    def reconnects_total(self) -> int:
        """How many times the persistent connection had to be rebuilt."""
        return max(0, self.connects_total - 1)

    def _drop(self) -> None:
        """Discard the connection; the next call reconnects."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- plumbing ----------------------------------------------------------

    def call(self, op: str, *, timeout: float | None = None, **params) -> dict:
        """One request/response round trip; raises :class:`ServerError`.

        ``timeout`` bounds this call's response read (seconds); when it
        fires, ``TimeoutError`` is raised and the connection dropped.
        Transient connection failures are retried with backoff; the
        request ids restart per connection, so a retry never collides
        with a stale in-flight response.
        """
        delay = self.backoff_s
        for attempt in range(self.max_retries + 1):
            if attempt:
                time.sleep(delay * (0.5 + random.random()))
                delay *= 2
            try:
                return self._call_once(op, params, timeout)
            except ConnectionError:
                self._drop()
                if attempt >= self.max_retries:
                    raise
        raise AssertionError("unreachable")

    def _call_once(self, op: str, params: dict, timeout: float | None) -> dict:
        if self._sock is None:
            self._sock = self._connect(0.0)
            self._next_id = 0
        sock = self._sock
        self._next_id += 1
        req_id = self._next_id
        try:
            protocol.send_message(sock, {"id": req_id, "op": op, **params})
        except OSError as exc:
            raise ConnectionError(
                f"lost connection to {self._endpoint} while sending: {exc}"
            ) from exc
        if timeout is not None:
            sock.settimeout(timeout)
        try:
            resp = protocol.recv_message(sock)
        except TimeoutError as exc:
            self._drop()  # frame stream is desynchronized now
            limit = self._timeout if timeout is None else timeout
            raise TimeoutError(
                f"no response from {self._endpoint} within {limit}s"
            ) from exc
        except OSError as exc:
            raise ConnectionError(
                f"lost connection to {self._endpoint} while reading: {exc}"
            ) from exc
        finally:
            if timeout is not None and self._sock is sock:
                sock.settimeout(self._timeout)
        if resp is None:
            raise ConnectionError(
                f"{self._endpoint} closed the connection mid-request"
            )
        if resp.get("id") != req_id:
            raise protocol.ProtocolError(
                f"response id {resp.get('id')!r} != request id {req_id}"
            )
        if not resp.get("ok"):
            err = resp.get("error") or {}
            raise ServerError(err.get("code", protocol.INTERNAL),
                              err.get("message", "unknown server error"))
        return resp

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the four query types ---------------------------------------------

    def query(self, source: int, target: int, *, stall: bool = False,
              timeout_ms: float | None = "unset") -> dict:
        """Point-to-point distance: ``{"distance", "reachable", "settled"}``."""
        params = {"source": source, "target": target, "stall": stall}
        if timeout_ms != "unset":
            params["timeout_ms"] = timeout_ms
        return self.call("query", **params)

    def tree(self, source: int, *, timeout_ms: float | None = "unset") -> np.ndarray:
        """Full distance array from ``source`` (int64, INF = unreachable)."""
        params = {"source": source}
        if timeout_ms != "unset":
            params["timeout_ms"] = timeout_ms
        resp = self.call("tree", **params)
        return np.asarray(resp["dist"], dtype=np.int64)

    def one_to_many(self, source: int, targets, *,
                    timeout_ms: float | None = "unset") -> np.ndarray:
        """Distances from ``source`` to each of ``targets`` (int64)."""
        params = {"source": source, "targets": [int(t) for t in targets]}
        if timeout_ms != "unset":
            params["timeout_ms"] = timeout_ms
        resp = self.call("one_to_many", **params)
        return np.asarray(resp["dist"], dtype=np.int64)

    def matrix(self, sources, targets, *, backend: str | None = None,
               timeout_ms: float | None = "unset") -> np.ndarray:
        """Travel-time matrix: row ``i`` = distances from ``sources[i]``
        to each of ``targets`` (int64, INF = unreachable).

        ``backend`` selects the server-side algorithm: ``"rphast"``
        (cached restricted sweeps, the default) or ``"buckets"`` (the
        Knopp-style ablation baseline).
        """
        params = {
            "sources": [int(s) for s in sources],
            "targets": [int(t) for t in targets],
        }
        if backend is not None:
            params["backend"] = backend
        if timeout_ms != "unset":
            params["timeout_ms"] = timeout_ms
        resp = self.call("matrix", **params)
        return np.asarray(resp["matrix"], dtype=np.int64)

    def isochrone(self, source: int, budget: int, *,
                  timeout_ms: float | None = "unset") -> np.ndarray:
        """Sorted vertex ids within ``budget`` of ``source`` (int64)."""
        params = {"source": source, "budget": int(budget)}
        if timeout_ms != "unset":
            params["timeout_ms"] = timeout_ms
        resp = self.call("isochrone", **params)
        return np.asarray(resp["vertices"], dtype=np.int64)

    # -- admin -------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def info(self) -> dict:
        resp = self.call("info")
        resp.pop("id", None)
        resp.pop("ok", None)
        return resp

    def metrics(self) -> dict:
        return self.call("metrics")["metrics"]

    def health(self) -> dict:
        """Supervision health: status, capacity, pool and admission state."""
        resp = self.call("health")
        resp.pop("id", None)
        resp.pop("ok", None)
        return resp
