"""The dynamic micro-batching scheduler.

PHAST's cost structure makes batching almost free throughput: one
k-source sweep costs roughly ``C(k) = alpha + beta * k`` with
``alpha >> beta`` (the level loop, reduceat plans and memory walk are
paid once; only the lane arithmetic scales with ``k``).  Per-request
service time therefore drops from ``alpha + beta`` to
``alpha / k + beta`` — the identical amortization an inference server
gets from batching GPU forwards, which is why the same scheduling
policy fits:

* the first queued request opens a *batch window*;
* everything queued behind it joins immediately — dispatches are
  serialized, so requests arriving during the previous sweep have
  already piled up (continuous batching);
* the window then stays open only while sweep-shaped requests (tree /
  one-to-many / isochrone — anything needing one source's distance
  row) keep arriving: it closes on an idle gap of ``max_wait_ms / 8``,
  at ``batch_max`` lanes, or after ``max_wait_ms`` total, whichever
  comes first;
* the batch runs as one multi-source sweep on the pool, off the event
  loop — requests sharing a source share one lane (singleflight-style
  coalescing) — and each request's row is post-processed into its
  response payload while still on the executor thread;
* results fan back out to per-request futures.

Under light load the window adds at most one idle gap of latency to a
lone request.  Under heavy load batches form during the previous
sweep, ride toward ``batch_max`` lanes, and throughput approaches the
``C(k)/k`` bound.  ``batching=False`` degenerates to strict
dispatch-one — the ablation the server benchmark compares against.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from ..core.supervisor import ChunkQuarantined, PoolBroken

__all__ = ["DeadlineExceeded", "SchedulerStopped", "SweepRequest", "MicroBatcher"]


class DeadlineExceeded(Exception):
    """The request's deadline passed before its batch was dispatched."""


class SchedulerStopped(Exception):
    """The scheduler shut down with this request still queued."""


class SweepRequest:
    """One queued sweep-shaped request.

    ``finalize(row)`` turns the request's distance row into its
    response payload; it runs on the executor thread right after the
    sweep, while the row is hot in cache and before the pool's shared
    output buffer can be reused by the next batch.

    *Exclusive* requests pass ``execute`` instead: a no-argument
    callable returning the payload, run on the executor thread after
    the batch's shared sweep (matrix requests use this — their pool
    call has its own fan-out and doesn't fit a single lane).  Routing
    them through the batcher keeps every pool access on the one
    dispatch thread while they still get deadline checks and ride the
    same admission accounting.
    """

    __slots__ = ("op", "source", "finalize", "future", "enqueued_at",
                 "deadline", "execute")

    def __init__(
        self,
        op: str,
        source: int,
        finalize: Callable | None,
        *,
        deadline: float | None = None,
        execute: Callable | None = None,
    ) -> None:
        if (finalize is None) == (execute is None):
            raise ValueError("exactly one of finalize/execute is required")
        self.op = op
        self.source = int(source)
        self.finalize = finalize
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.enqueued_at = time.monotonic()
        self.deadline = deadline
        self.execute = execute

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    @property
    def live(self) -> bool:
        """Still awaiting a result (not cancelled by a disconnect)."""
        return not self.future.done()


class _Close:
    pass


_CLOSE = _Close()


class MicroBatcher:
    """Coalesce sweep requests into multi-source dispatches.

    Parameters
    ----------
    sweep_fn:
        ``sweep_fn(sources) -> rows`` computing one distance row per
        source (a :class:`~repro.core.pool.PhastPool` ``trees`` call).
        Runs on ``executor``; dispatches are serialized, so ``sweep_fn``
        never runs concurrently with itself.
    executor:
        Where sweeps (and row post-processing) run.
    batch_max:
        Lane cap per dispatch.
    max_wait_ms:
        Batch window: how long the first request of a batch may wait
        for company.
    batching:
        ``False`` dispatches every request alone (the ablation mode).
    metrics:
        Optional :class:`~repro.server.metrics.ServerMetrics`.
    """

    def __init__(
        self,
        sweep_fn: Callable,
        *,
        executor,
        batch_max: int = 16,
        max_wait_ms: float = 2.0,
        batching: bool = True,
        metrics=None,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.sweep_fn = sweep_fn
        self.executor = executor
        self.batch_max = int(batch_max)
        self.max_wait_ms = float(max_wait_ms)
        self.batching = bool(batching)
        self.metrics = metrics
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="phast-microbatcher"
            )

    async def stop(self) -> None:
        """Stop the dispatch loop; queued requests fail fast.

        Call only after request intake has ceased (the service drains
        in-flight work first, so the queue is normally empty here).
        """
        if self._stopped:
            return
        self._stopped = True
        await self._queue.put(_CLOSE)
        if self._task is not None:
            await self._task
            self._task = None

    # -- intake ------------------------------------------------------------

    def submit(self, request: SweepRequest) -> None:
        """Queue one request (event-loop thread only)."""
        if self._stopped:
            raise SchedulerStopped("scheduler is stopped")
        self._queue.put_nowait(request)

    @property
    def depth(self) -> int:
        """Requests queued but not yet claimed by a batch."""
        return self._queue.qsize()

    # -- dispatch loop -----------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        closing = False
        while not closing:
            item = await self._queue.get()
            if item is _CLOSE:
                break
            batch = [item]
            closing = await self._fill_window(batch)
            await self._dispatch(loop, batch)
        # Fail anything that slipped in after the close sentinel.
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if isinstance(item, SweepRequest) and item.live:
                item.future.set_exception(SchedulerStopped("server stopped"))

    async def _fill_window(self, batch: list) -> bool:
        """Fill the batch window; True when _CLOSE was seen.

        Everything already queued joins immediately (requests pile up
        in the queue while the previous sweep runs, so under steady
        load batches form for free — continuous batching).  In
        batching mode the window then stays open while arrivals keep
        coming: each new request buys the next one ``max_wait_ms / 8``
        of grace, up to ``max_wait_ms`` total.  An idle gap closes the
        window early — with closed-loop clients, whoever is going to
        join a batch arrives in a burst right after the previous
        responses flush, and waiting out a fixed window past that
        burst would only stall lanes that are already full.
        """
        if not self.batching:
            return False  # dispatch-one: the ablation coalesces nothing
        while len(batch) < self.batch_max and not self._queue.empty():
            item = self._queue.get_nowait()
            if item is _CLOSE:
                return True
            batch.append(item)
        if self.batch_max == 1 or self.max_wait_ms == 0:
            return False
        deadline = time.monotonic() + self.max_wait_ms / 1e3
        gap = self.max_wait_ms / 1e3 / 8
        while len(batch) < self.batch_max:
            timeout = min(gap, deadline - time.monotonic())
            if timeout <= 0:
                break
            try:
                item = await asyncio.wait_for(self._queue.get(), timeout)
            except asyncio.TimeoutError:
                break  # idle gap: nobody else is coming right now
            if item is _CLOSE:
                return True
            batch.append(item)
        return False

    async def _dispatch(self, loop, batch: list) -> None:
        now = time.monotonic()
        live: list[SweepRequest] = []
        for req in batch:
            if not req.live:
                continue  # client went away; drop the lane
            if req.expired(now):
                req.future.set_exception(DeadlineExceeded(
                    f"deadline exceeded before dispatch "
                    f"(queued {1e3 * (now - req.enqueued_at):.1f} ms)"
                ))
                continue
            live.append(req)
        if not live:
            return
        waits = [now - req.enqueued_at for req in live]
        try:
            payloads, sweep_s, lanes = await loop.run_in_executor(
                self.executor, self._sweep_and_finalize, live
            )
        except BaseException as exc:  # pool failure: fail the whole batch
            if self.metrics is not None:
                self.metrics.record_batch_failure()
            # Structured pool faults keep their type so the service can
            # map them to distinct status codes (quarantine vs broken).
            if isinstance(exc, (ChunkQuarantined, PoolBroken)):
                failure: BaseException = exc
            else:
                failure = RuntimeError(f"sweep failed: {exc}")
            for req in live:
                if req.live:
                    req.future.set_exception(failure)
            return
        if self.metrics is not None:
            self.metrics.record_batch(len(live), waits, sweep_s, lanes=lanes)
        for req, payload in zip(live, payloads):
            if req.live:
                if isinstance(payload, BaseException):
                    req.future.set_exception(payload)
                else:
                    req.future.set_result(payload)

    def _sweep_and_finalize(self, live: list) -> tuple[list, float, int]:
        """Executor-side: one multi-source sweep + per-request fan-out.

        Requests sharing a source share one sweep lane (singleflight-
        style coalescing): a batch of k requests from u distinct
        origins costs a u-lane sweep, so hot origins — depots, hubs,
        popular tiles — get cheaper the more concurrently they are
        asked about.
        """
        t0 = time.monotonic()
        lane: dict[int, int] = {}
        for req in live:
            if req.execute is None:
                lane.setdefault(req.source, len(lane))
        rows = self.sweep_fn(list(lane)) if lane else None
        payloads: list = []
        for req in live:
            try:
                if req.execute is not None:
                    payloads.append(req.execute())
                else:
                    payloads.append(req.finalize(rows[lane[req.source]]))
            except Exception as exc:
                payloads.append(exc)
        return payloads, time.monotonic() - t0, len(lane)
