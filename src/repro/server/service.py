"""The asyncio TCP query service over a warm :class:`PhastPool`.

One process, one preprocessed hierarchy, four query types:

``query``
    Point-to-point distance via the bidirectional CH search — already
    sub-millisecond alone, so these bypass the batcher and run straight
    on the executor.
``tree`` / ``one_to_many`` / ``isochrone``
    All sweep-shaped (each needs one source's full distance row); they
    enter the :class:`~repro.server.scheduler.MicroBatcher` and ride a
    shared k-lane sweep, differing only in how the row is post-processed
    (whole row / gather at targets / threshold).
``matrix``
    k×m travel-time matrices.  The restricted (RPHAST) selection for
    the target set is built once, cached in an LRU keyed by target-set
    hash, published to the pool workers as a retireable shared-memory
    segment, and swept in multi-source lane groups chunked over the
    workers.  Rides the batcher as an *exclusive* request so all pool
    access stays on the single dispatch thread.  A ``backend:
    "buckets"`` override answers with the Knopp-style bucket algorithm
    instead (ablation/cross-check path).
``ping`` / ``info`` / ``metrics`` / ``health``
    Liveness, instance facts, serving statistics, and readiness (pool
    live-worker count, restart/retry/quarantine counters, queue depth).

The event loop only parses frames, routes, and awaits futures; all
NumPy work happens on a small thread pool.  Sweeps are serialized by
the batcher (`PhastPool` is single-caller), point-to-point queries run
concurrently — they touch only their own heaps and dicts.

Shutdown follows the drain discipline: stop accepting connections,
refuse new work with 503, let admitted requests finish, stop the
scheduler, close the pool (unlinking its shared memory), then close
lingering connections.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..ch.query import ch_query
from ..core.many_to_many import many_to_many_buckets
from ..core.pool import PhastPool
from ..core.rphast import RPhastEngine, SelectionCache
from ..core.supervisor import ChunkQuarantined, PoolBroken
from ..graph.csr import INF
from . import protocol
from .admission import AdmissionController
from .metrics import ServerMetrics
from .scheduler import (
    DeadlineExceeded,
    MicroBatcher,
    SchedulerStopped,
    SweepRequest,
)

__all__ = ["ServerConfig", "PhastService", "ServerHandle", "serve_in_thread"]

#: Derived from the declarative op registry (single source of truth);
#: re-exported here because the serving stack historically imported
#: them from this module.
WORK_OPS = protocol.WORK_OPS
ADMIN_OPS = protocol.ADMIN_OPS
CONTROL_OPS = protocol.CONTROL_OPS
#: Matrix backends: restricted sweeps (default) vs Knopp buckets.
MATRIX_BACKENDS = ("rphast", "buckets")


@dataclass
class ServerConfig:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 7171
    #: Lane cap per dispatched sweep (and, unless overridden, the
    #: pool's ``sources_per_sweep``).
    batch_max: int = 16
    #: Batch window in milliseconds (0 disables waiting).
    max_wait_ms: float = 2.0
    #: ``False`` dispatches one request per sweep (the ablation mode).
    batching: bool = True
    #: Admission bound on in-flight work requests.
    max_pending: int = 256
    #: Default per-request deadline; ``None`` disables deadlines.
    default_timeout_ms: float | None = 30_000.0
    #: Pool workers (1 = in-process serial pool, the single-host default).
    num_workers: int | None = 1
    #: Pool lanes per worker sweep pass; 0 means "use batch_max".
    sources_per_sweep: int = 0
    #: Spawn pool worker processes even on a single-CPU host.
    force_pool: bool = False
    #: Threads for sweeps + point-to-point queries.
    executor_threads: int = 4
    #: Engine-side LRU of upward search spaces (entries; 0 disables).
    #: Repeat origins — depots, hubs, popular tiles — skip the
    #: per-source CH search entirely on a hit.
    search_cache: int = 1024
    #: Pool supervisor scan period (worker-death detection latency).
    heartbeat_interval_ms: float = 200.0
    #: Per-chunk wall-clock deadline for wedged-worker reclaim
    #: (``None`` disables; size well above the slowest honest chunk).
    chunk_timeout_ms: float | None = None
    #: Worker deaths one chunk may cause before quarantine.
    max_chunk_retries: int = 2
    #: Lifetime respawn budget (``None`` = pool default, 3x workers).
    max_respawns: int | None = None
    #: How often the degraded-admission loop samples pool capacity.
    health_poll_ms: float = 250.0
    #: LRU capacity of the RPHAST selection cache (distinct target
    #: sets with warm restricted structures + live pool publications).
    selection_cache: int = 32
    #: Per-engine upward search cache for matrix sources (entries).
    matrix_search_cache: int = 256

    def __post_init__(self) -> None:
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.executor_threads < 1:
            raise ValueError("executor_threads must be >= 1")
        if self.search_cache < 0:
            raise ValueError("search_cache must be >= 0")
        if self.heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat_interval_ms must be > 0")
        if self.chunk_timeout_ms is not None and self.chunk_timeout_ms <= 0:
            raise ValueError("chunk_timeout_ms must be > 0 (or None)")
        if self.health_poll_ms <= 0:
            raise ValueError("health_poll_ms must be > 0")
        if self.selection_cache < 1:
            raise ValueError("selection_cache must be >= 1")
        if self.matrix_search_cache < 0:
            raise ValueError("matrix_search_cache must be >= 0")


class _BadRequest(Exception):
    pass


class PhastService:
    """A resident hierarchy answering a stream of concurrent queries.

    Parameters
    ----------
    ch:
        The preprocessed :class:`~repro.ch.hierarchy.ContractionHierarchy`.
        May be ``None`` when ``topology`` + ``metric`` are given.
    topology:
        A :class:`~repro.ch.CHTopology`.  Keeping it resident is what
        enables the ``swap_metric`` op: a swap customizes new weights
        over this fixed structure on the serving host.  When ``ch`` is
        ``None``, the initial hierarchy is instantiated from
        ``topology`` + ``metric``.
    metric:
        The initial :class:`~repro.ch.CHMetric` (required iff ``ch``
        is ``None`` and ``topology`` is given).
    graph:
        The original graph (optional; only reported by ``info``).
    config:
        A :class:`ServerConfig`; defaults serve a single-host setup.
    """

    def __init__(self, ch=None, *, topology=None, metric=None, graph=None,
                 config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.topology = topology
        if ch is None:
            if topology is None or metric is None:
                raise ValueError(
                    "PhastService needs either a hierarchy or a "
                    "topology + metric pair"
                )
            ch = topology.instantiate(metric)
        self.ch = ch
        self.n = int(ch.n)
        self.graph = graph
        self.metrics = ServerMetrics()
        self.admission = AdmissionController(self.config.max_pending)
        lanes = self.config.sources_per_sweep or self.config.batch_max
        self.pool = PhastPool(
            ch,
            num_workers=self.config.num_workers,
            sources_per_sweep=lanes,
            force_pool=self.config.force_pool,
            search_cache=self.config.search_cache,
            heartbeat_interval=self.config.heartbeat_interval_ms / 1e3,
            chunk_timeout=(None if self.config.chunk_timeout_ms is None
                           else self.config.chunk_timeout_ms / 1e3),
            max_chunk_retries=self.config.max_chunk_retries,
            max_respawns=self.config.max_respawns,
        )
        # RPHAST selections for the matrix op: LRU of
        # (frozen engine, pool publication handle) keyed by target-set
        # hash.  Touched only from the batcher's dispatch thread
        # (matrix requests are exclusive), so no locking is needed;
        # eviction retires the selection's shared-memory segment.
        self.selections = SelectionCache(
            self.config.selection_cache, on_evict=self._retire_selection
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="phast-serve",
        )
        self.batcher = MicroBatcher(
            self._sweep,
            executor=self._executor,
            batch_max=self.config.batch_max,
            max_wait_ms=self.config.max_wait_ms,
            batching=self.config.batching,
            metrics=self.metrics,
        )
        self._server: asyncio.base_events.Server | None = None
        self._tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._drained: asyncio.Event | None = None
        self._drain_task: asyncio.Task | None = None
        self._capacity_task: asyncio.Task | None = None
        self.host = self.config.host
        self.port = self.config.port

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, host: str | None = None, port: int | None = None) -> None:
        """Bind and start serving (returns once listening)."""
        loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        # Warm the sweep path so the first client doesn't pay for lazy
        # buffer allocation.
        await loop.run_in_executor(self._executor, self.pool.trees, [0])
        self._server = await asyncio.start_server(
            self._handle_connection,
            host if host is not None else self.config.host,
            port if port is not None else self.config.port,
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self.batcher.start()
        self._capacity_task = loop.create_task(self._capacity_loop())

    async def _capacity_loop(self) -> None:
        """Feed pool liveness into admission (degraded mode)."""
        period = self.config.health_poll_ms / 1e3
        while True:
            try:
                self.admission.set_capacity(self.pool.capacity_fraction())
            except Exception:
                pass  # never let a glitch kill the feedback loop
            await asyncio.sleep(period)

    async def drain(self) -> None:
        """Graceful shutdown: finish admitted work, refuse the rest."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain_impl()
            )
        await asyncio.shield(self._drain_task)

    async def _drain_impl(self) -> None:
        self._draining = True
        self.admission.start_draining()
        if self._capacity_task is not None:
            self._capacity_task.cancel()
            try:
                await self._capacity_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # In-flight request tasks resolve through the batcher; new ones
        # can still appear briefly from open connections, but they are
        # refused at admission, so this loop terminates.
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        await self.batcher.stop()
        self._executor.shutdown(wait=True)
        self.selections.clear()
        self.pool.close()
        for writer in list(self._writers):
            writer.close()
        self._drained.set()

    async def wait_drained(self) -> None:
        """Block until :meth:`drain` has completed."""
        await self._drained.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- sweep plumbing ----------------------------------------------------

    def _sweep(self, sources: list[int]) -> np.ndarray:
        """One multi-source sweep (executor thread; serialized)."""
        return self.pool.trees(sources)

    # -- matrix plumbing ---------------------------------------------------

    def _retire_selection(self, key: str, entry: tuple) -> None:
        """Selection-cache eviction hook: unlink the pool publication."""
        _engine, (name, _specs) = entry
        self.pool.retire_publication(name)

    def _selection(self, targets: np.ndarray) -> tuple:
        """The cached (engine, publication) for a target set, built on miss.

        Runs on the batcher dispatch thread only (exclusive request),
        which serializes cache access and pool publication.  Keys are
        prefixed with the metric generation: a selection embeds copied
        arc weights, so an entry built under generation g must never
        answer a request under generation g+1.
        """
        key = (f"g{self.pool.metric_generation}:"
               + SelectionCache.key_of(targets))
        entry = self.selections.get(key)
        if entry is None:
            engine = RPhastEngine(self.ch, targets).freeze()
            publication = self.pool.publish_arrays(engine.selection_arrays())
            entry = (engine, publication)
            self.selections.put(key, entry)
        return entry

    def _matrix_payload(self, sources: list[int], targets: list[int],
                        backend: str) -> dict:
        """Compute one k×m matrix (executor thread, exclusive dispatch)."""
        hits_before = self.selections.hits
        if backend == "buckets":
            mat = many_to_many_buckets(self.ch, sources, targets)
            cached = False
        else:
            t_arr = np.asarray(targets, dtype=np.int64)
            engine, publication = self._selection(t_arr)
            cached = self.selections.hits > hits_before
            rows = self.pool.matrix(
                sources,
                selection=publication,
                search_cache=self.config.matrix_search_cache,
            )
            # Rows come back aligned to the engine's deduplicated,
            # sorted target set; re-map to the request's column order.
            cols = np.searchsorted(engine.targets, t_arr)
            mat = rows[:, cols]
        self.metrics.record_matrix(mat.size)
        return {
            "matrix": mat.tolist(),
            "rows": int(mat.shape[0]),
            "cols": int(mat.shape[1]),
            "backend": backend,
            "selection_cached": cached,
        }

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    msg = await protocol.read_message(reader)
                except (protocol.ProtocolError, ConnectionError):
                    break
                if msg is None:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._respond(msg, writer, write_lock)
                )
                for registry in (conn_tasks, self._tasks):
                    registry.add(task)
                    task.add_done_callback(registry.discard)
        finally:
            # A dropped connection cancels its pending requests, so
            # their batch lanes are freed instead of computed for
            # nobody.
            for task in list(conn_tasks):
                task.cancel()
            if conn_tasks:
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, msg: dict, writer: asyncio.StreamWriter,
                       write_lock: asyncio.Lock) -> None:
        response = await self._process(msg)
        try:
            async with write_lock:
                await protocol.write_message(writer, response)
        except (ConnectionError, RuntimeError, OSError):
            pass  # peer went away; nothing to tell it

    # -- request processing ------------------------------------------------

    async def _process(self, msg: dict) -> dict:
        req_id = msg.get("id")
        op = msg.get("op")
        t0 = time.monotonic()
        if not isinstance(op, str):
            return self._error(req_id, protocol.BAD_REQUEST, "missing 'op'")
        self.metrics.record_request(op)
        spec = protocol.OPS_BY_NAME.get(op)
        if spec is None:
            return self._error(
                req_id, protocol.BAD_REQUEST,
                f"unknown op {op!r}; known: "
                f"{tuple(s.name for s in protocol.OPS)}",
            )
        if spec.kind == "admin":
            return getattr(self, spec.handler)(req_id)
        # work and control ops both pass admission: control mutates
        # serving state and must be refused while draining exactly
        # like work, and counting it keeps the drain loop exact.
        reason = self.admission.try_acquire()
        if reason is not None:
            code = (protocol.UNAVAILABLE
                    if reason == AdmissionController.DRAINING
                    else protocol.OVERLOADED)
            return self._error(req_id, code, f"request rejected: {reason}")
        try:
            fields = protocol.validate_request(spec, msg, self.n)
            response = await getattr(self, spec.handler)(
                req_id, op, msg, fields
            )
        except (protocol.RequestValidationError, _BadRequest) as exc:
            response = self._error(req_id, protocol.BAD_REQUEST, str(exc))
        except DeadlineExceeded as exc:
            response = self._error(req_id, protocol.DEADLINE, str(exc))
        except SchedulerStopped as exc:
            response = self._error(req_id, protocol.UNAVAILABLE, str(exc))
        except PoolBroken as exc:
            # No workers and no respawn budget: the instance can't do
            # sweep work anymore — clients should fail over.
            response = self._error(
                req_id, protocol.UNAVAILABLE, f"PoolBroken: {exc}"
            )
        except ChunkQuarantined as exc:
            response = self._error(
                req_id, protocol.INTERNAL, f"ChunkQuarantined: {exc}"
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            response = self._error(
                req_id, protocol.INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self.admission.release()
        self.metrics.record_latency(op, time.monotonic() - t0)
        return response

    def _error(self, req_id, code: int, message: str) -> dict:
        self.metrics.record_error(code)
        return protocol.error_response(req_id, code, message)

    # -- admin handlers (bound via the op registry) ------------------------

    def _admin_ping(self, req_id) -> dict:
        return protocol.ok_response(req_id, pong=True)

    def _admin_info(self, req_id) -> dict:
        return protocol.ok_response(
            req_id,
            n=self.n,
            m=int(self.graph.m) if self.graph is not None else None,
            protocol_version=protocol.PROTOCOL_VERSION,
            ops=list(protocol.WORK_OPS + protocol.CONTROL_OPS
                     + protocol.ADMIN_OPS),
            metric_generation=self.pool.metric_generation,
            topology_resident=self.topology is not None,
            batching=self.config.batching,
            batch_max=self.config.batch_max,
            max_wait_ms=self.config.max_wait_ms,
            workers=self.pool.num_workers,
            serial_pool=self.pool.serial,
            selection_cache=self.config.selection_cache,
            draining=self._draining,
        )

    def _admin_health(self, req_id) -> dict:
        return protocol.ok_response(req_id, **self._health())

    def _admin_metrics(self, req_id) -> dict:
        pool_health = self.pool.health()
        return protocol.ok_response(
            req_id,
            metrics=self.metrics.snapshot(
                admission=self.admission.snapshot(),
                selection_cache=self.selections.snapshot(),
                pool={
                    "workers": self.pool.num_workers,
                    "serial": self.pool.serial,
                    "batches_run": self.pool.batches_run,
                    "trees_computed": self.pool.trees_computed,
                    "alive": pool_health["workers_alive"],
                    "deaths": pool_health["deaths"],
                    "restarts": pool_health["restarts"],
                    "wedged": pool_health["wedged"],
                    "chunk_retries": pool_health["chunk_retries"],
                    "chunks_quarantined": pool_health["chunks_quarantined"],
                },
            ),
        )

    def _health(self) -> dict:
        """Readiness payload: pool liveness + admission pressure.

        ``uptime_seconds``, ``address`` and ``pid`` are the *generation*
        signals: a router probing this op can tell a replica that
        restarted (uptime moved backwards / new pid) from one that was
        merely slow — a restarted replica has cold caches and deserves
        a warm-up ramp, not full fair-share traffic.
        """
        pool_health = self.pool.health()
        capacity = self.pool.capacity_fraction()
        if self._draining:
            status = "draining"
        elif capacity >= 1.0:
            status = "ok"
        elif capacity > 0.0:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "ready": not self._draining and capacity > 0.0,
            "capacity": capacity,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "ops": list(protocol.WORK_OPS + protocol.CONTROL_OPS
                        + protocol.ADMIN_OPS),
            "metric_generation": self.pool.metric_generation,
            "topology_resident": self.topology is not None,
            "uptime_seconds": self.metrics.uptime_seconds(),
            "address": f"{self.host}:{self.port}",
            "pid": os.getpid(),
            "pool": pool_health,
            "admission": self.admission.snapshot(),
        }

    def _deadline(self, msg: dict) -> float | None:
        timeout_ms = msg.get("timeout_ms", self.config.default_timeout_ms)
        if timeout_ms is None:
            return None
        if isinstance(timeout_ms, bool) or not isinstance(timeout_ms, (int, float)):
            raise _BadRequest("'timeout_ms' must be a number or null")
        return time.monotonic() + float(timeout_ms) / 1e3

    async def _run_sweep(self, req_id, op: str, msg: dict,
                         fields: dict) -> dict:
        deadline = self._deadline(msg)
        source = fields["source"]
        if op == "tree":
            finalize = _finalize_tree
        elif op == "one_to_many":
            idx = np.asarray(fields["targets"], dtype=np.int64)
            finalize = lambda row, idx=idx: {"dist": row[idx].tolist()}
        else:  # isochrone
            budget = fields["budget"]
            finalize = lambda row, budget=budget: _finalize_isochrone(row, budget)
        request = SweepRequest(op, source, finalize, deadline=deadline)
        self.batcher.submit(request)
        payload = await request.future
        return protocol.ok_response(req_id, **payload)

    async def _run_matrix(self, req_id, op: str, msg: dict,
                          fields: dict) -> dict:
        deadline = self._deadline(msg)
        sources, targets = fields["sources"], fields["targets"]
        backend = fields["backend"]
        request = SweepRequest(
            "matrix", -1, None, deadline=deadline,
            execute=lambda: self._matrix_payload(sources, targets, backend),
        )
        self.batcher.submit(request)
        payload = await request.future
        return protocol.ok_response(req_id, **payload)

    async def _run_query(self, req_id, op: str, msg: dict,
                         fields: dict) -> dict:
        deadline = self._deadline(msg)
        source, target = fields["source"], fields["target"]
        stall = fields["stall"]
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded("deadline exceeded on arrival")
        loop = asyncio.get_running_loop()
        # Capture the hierarchy once: a concurrent swap_metric replaces
        # self.ch, and reading it exactly once pins this answer to a
        # single metric generation (old or new, never a mix).
        ch = self.ch
        result = await loop.run_in_executor(
            self._executor,
            lambda: ch_query(ch, source, target, stall=stall),
        )
        distance = int(result.distance)
        return protocol.ok_response(
            req_id,
            distance=distance,
            reachable=distance < int(INF),
            settled=int(result.settled_forward + result.settled_backward),
        )

    # -- metric hot swap ---------------------------------------------------

    async def _run_swap(self, req_id, op: str, msg: dict,
                        fields: dict) -> dict:
        deadline = self._deadline(msg)
        weights, path = fields["weights"], fields["path"]
        if (weights is None) == (path is None):
            raise _BadRequest(
                "swap_metric takes exactly one of 'weights' (inline base-arc"
                " weights) or 'path' (a saved metric artifact)"
            )
        if self.topology is None:
            raise _BadRequest(
                "this server holds no topology artifact; start it from a "
                "topology + metric (repro serve --topology ...) to enable "
                "swap_metric"
            )
        # Exclusive batcher request: runs alone on the dispatch thread,
        # strictly between micro-batches — the quiesce point the pool's
        # swap_metric() requires.  Queued sweeps before it finish on
        # the old metric; sweeps after it run on the new one.
        request = SweepRequest(
            "swap_metric", -1, None, deadline=deadline,
            execute=lambda: self._swap_payload(weights, path),
        )
        self.batcher.submit(request)
        payload = await request.future
        return protocol.ok_response(req_id, **payload)

    def _swap_payload(self, weights, path) -> dict:
        """Customize + instantiate + pool swap (dispatch thread, exclusive)."""
        from ..ch.customize import customize
        from ..graph.serialize import load_metric

        t0 = time.monotonic()
        if path is not None:
            metric = load_metric(path, topology=self.topology)
        else:
            w = np.asarray(weights, dtype=np.int64)
            if w.shape != (self.topology.num_base_arcs,):
                raise _BadRequest(
                    f"'weights' must have one entry per base arc "
                    f"({self.topology.num_base_arcs}, got {w.size})"
                )
            metric = customize(self.topology, w)
        t1 = time.monotonic()
        new_ch = self.topology.instantiate(metric)
        t2 = time.monotonic()
        generation = self.pool.swap_metric(new_ch)
        # Point-to-point queries capture self.ch per request; from here
        # on every new capture sees the new metric.
        self.ch = new_ch
        # Published RPHAST selections embed copied arc lengths, so the
        # whole cache is stale: clearing retires every publication
        # (via on_evict) and the generation-prefixed keys below make a
        # post-swap request rebuild rather than resurrect by hash.
        self.selections.clear()
        t3 = time.monotonic()
        self.metrics.record_swap(generation)
        return {
            "metric_generation": generation,
            "customize_seconds": t1 - t0,
            "instantiate_seconds": t2 - t1,
            "swap_seconds": t3 - t2,
            "source": "artifact" if path is not None else "inline",
        }


def _finalize_tree(row: np.ndarray) -> dict:
    return {"dist": row.tolist()}


def _finalize_isochrone(row: np.ndarray, budget: int) -> dict:
    vertices = np.flatnonzero(row <= budget)
    return {"vertices": vertices.tolist(), "count": int(vertices.size)}


# ---------------------------------------------------------------------------
# Thread-hosted serving (tests, benchmarks, notebooks)


class ServerHandle:
    """A service running on a private event loop in a daemon thread."""

    def __init__(self, service: PhastService, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.service = service
        self.thread = thread
        self.loop = loop

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the service and join its thread (idempotent)."""
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.service.drain())
            )
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("server thread did not drain in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    service: PhastService, *, host: str = "127.0.0.1", port: int = 0,
    start_timeout: float = 60.0,
) -> ServerHandle:
    """Start ``service`` on a fresh event loop in a daemon thread.

    ``port=0`` binds an ephemeral port; read it back from
    ``handle.port``.  The thread exits once the service has drained.
    """
    started = threading.Event()
    holder: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop

        async def main() -> None:
            try:
                await service.start(host=host, port=port)
            except BaseException as exc:
                holder["error"] = exc
                raise
            finally:
                started.set()
            await service.wait_drained()

        try:
            loop.run_until_complete(main())
        except BaseException as exc:
            holder.setdefault("error", exc)
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="phast-server", daemon=True)
    thread.start()
    if not started.wait(start_timeout):
        raise RuntimeError("server failed to start in time")
    if "error" in holder:
        raise RuntimeError(f"server failed to start: {holder['error']}")
    return ServerHandle(service, thread, holder["loop"])
