"""Admission control: a bounded house, shed load at the door.

A saturated PHAST server must reject early rather than queue without
bound: every admitted tree request pins a future, a queue slot, and
eventually a sweep lane, so an unbounded backlog turns overload into
memory growth plus deadline misses for *everyone* (the classic
goodput collapse).  The controller keeps one number — requests
admitted but not yet finished — under ``max_pending`` and refuses the
rest with a 429-style error the client can back off on.

Draining is the second gate: once the server begins shutting down,
new work is refused with 503 while admitted work runs to completion.

Degraded mode is the third: when pool workers die, serving capacity
drops before the replacements finish booting.  The service feeds the
pool's live-worker fraction into :meth:`set_capacity`, which shrinks
the effective admission bound proportionally — the instance sheds the
load it can no longer carry with fast 429s instead of queueing
requests it would only time out, and recovers automatically as
respawned workers rejoin.
"""

from __future__ import annotations

import threading

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded in-flight-request gate with rejection accounting.

    Thread-safe: the event loop admits, executor threads may release.
    """

    #: Rejection reasons (keys of :attr:`rejected`).
    OVERLOADED = "overloaded"
    DRAINING = "draining"
    DEGRADED = "degraded"

    def __init__(self, max_pending: int) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = int(max_pending)
        self._lock = threading.Lock()
        self._pending = 0
        self._draining = False
        self._capacity = 1.0
        self.admitted_total = 0
        self.rejected = {self.OVERLOADED: 0, self.DRAINING: 0,
                         self.DEGRADED: 0}

    @property
    def pending(self) -> int:
        """Requests admitted and not yet released."""
        return self._pending

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def capacity(self) -> float:
        """Fraction of nominal serving capacity currently available."""
        return self._capacity

    def start_draining(self) -> None:
        """Refuse all new work from now on (idempotent)."""
        self._draining = True

    def set_capacity(self, fraction: float) -> None:
        """Scale admission to the live fraction of serving capacity.

        Called periodically by the service with the pool's live-worker
        fraction; admission never drops below one in-flight request,
        so a pool that is merely *rebuilding* (workers respawning)
        keeps trickling work instead of blackholing.
        """
        with self._lock:
            self._capacity = min(1.0, max(0.0, float(fraction)))

    def _effective_locked(self) -> int:
        return max(1, int(round(self.max_pending * self._capacity)))

    def try_acquire(self) -> str | None:
        """Admit one request; returns ``None`` or the rejection reason."""
        with self._lock:
            if self._draining:
                self.rejected[self.DRAINING] += 1
                return self.DRAINING
            limit = self._effective_locked()
            if self._pending >= limit:
                # DEGRADED is reserved for rejections that exist only
                # because the bound was scaled down; an instance whose
                # backlog fills the full nominal bound is OVERLOADED
                # no matter how much capacity it has lost, so the two
                # counters operators alert on stay distinguishable.
                reason = (self.OVERLOADED if self._pending >= self.max_pending
                          else self.DEGRADED)
                self.rejected[reason] += 1
                return reason
            self._pending += 1
            self.admitted_total += 1
            return None

    def release(self) -> None:
        """One admitted request finished (however it ended)."""
        with self._lock:
            if self._pending <= 0:
                raise RuntimeError("release() without matching try_acquire()")
            self._pending -= 1

    def snapshot(self) -> dict:
        """JSON-able accounting for the metrics endpoint."""
        with self._lock:
            return {
                "max_pending": self.max_pending,
                "effective_max_pending": self._effective_locked(),
                "capacity": self._capacity,
                "pending": self._pending,
                "draining": self._draining,
                "admitted_total": self.admitted_total,
                "rejected": dict(self.rejected),
            }
