"""Persistent shared-memory batch execution (the PHAST "server" layer).

Sections V and VII of the paper share one shape: millions of
independent shortest path trees over a single read-only hierarchy.
The original ``trees_per_core`` driver paid three avoidable costs on
every call: it forked a fresh process pool, rebuilt every worker's
:class:`~repro.core.phast.PhastEngine` (a full
:class:`~repro.core.sweep.SweepStructure` sort), and pickled an
n-length ``int64`` array per source back through a pipe.

:class:`PhastPool` keeps the whole apparatus resident instead:

* **Publish once** — the hierarchy's flat arrays (sweep structure,
  upward graph, plus any application CSR graphs and auxiliary arrays)
  are copied into one ``multiprocessing.shared_memory`` segment at
  pool construction.  Workers attach by name and wrap zero-copy NumPy
  views, so the scheme works identically under ``fork`` and ``spawn``
  and never duplicates the hierarchy through copy-on-write page
  faults.
* **Write in place** — full-distance batches land in a shared output
  matrix (one row per source) written directly by the workers; no
  per-source pickling.
* **Warm engines, balanced dispatch** — each worker builds its engine
  once at boot and keeps it across batches, sweeping ``k`` sources per
  pass (the Section IV-B lanes).  The parent hands chunks out over
  per-worker pipes with a small prefetch, topping workers up as
  results return — the load balance of a shared queue without shared
  locks a dying worker could wedge.
* **In-worker reducers** — a :class:`TreeReducer` folds every tree
  into a small per-worker state (max for diameter, flag ORs for arc
  flags, partial sums for betweenness) that is merged in the parent,
  so APSP-scale runs never materialize ``n × n`` distances.

* **Supervised workers** — a :class:`~repro.core.supervisor.WorkerSupervisor`
  monitor thread watches heartbeats, per-chunk deadlines and
  ``Process.exitcode``; dead or wedged workers are killed and
  respawned (re-attaching to the existing segments) and their
  in-flight chunks are re-dispatched to survivors.  Sweeps are
  deterministic and source-independent, so re-computed chunks are
  bit-identical and a worker crash is invisible to callers.  A chunk
  that repeatedly kills its workers is quarantined with a structured
  :class:`~repro.core.supervisor.ChunkQuarantined` error instead of
  cascading, and every queue operation is deadline-aware, so no
  failure mode can block a batch forever.

The pool is the batch layer the applications
(:mod:`repro.apps.diameter`, :mod:`repro.apps.arcflags`,
:mod:`repro.apps.reach`, :mod:`repro.apps.betweenness`) and the
``trees_per_core`` compatibility shim run on.
"""

from __future__ import annotations

import atexit
import os
import pickle
import signal
import threading
import time
import traceback
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Mapping, Sequence

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..graph.csr import StaticGraph
from .parallel import resolve_workers
from .phast import PhastEngine
from .rphast import RPhastEngine
from .supervisor import (
    ChunkQuarantined,
    FaultPlan,
    PoolBroken,
    WorkerSupervisor,
    apply_fault,
    parse_fault_plan,
    segment_name,
)
from .sweep import SweepStructure

__all__ = [
    "PhastPool",
    "TaskPool",
    "TaskContext",
    "TreeReducer",
    "WorkerContext",
    "install_signal_guard",
    "ChunkQuarantined",
    "PoolBroken",
    "FaultPlan",
]


# ---------------------------------------------------------------------------
# Teardown guard
#
# A shared-memory segment outlives its creating process unless someone
# unlinks it: a SIGTERM that kills the parent mid-batch would leave the
# published hierarchy (tens of MB at scale) pinned in /dev/shm forever.
# Every live pool registers here; ``atexit`` covers normal interpreter
# exits (including unhandled exceptions), and :func:`install_signal_guard`
# covers hard interrupts for long-lived processes such as ``repro serve``.

_LIVE_POOLS: "weakref.WeakSet[_BasePool]" = weakref.WeakSet()
_GUARDED_SIGNALS: dict = {}


def _close_live_pools(emergency: bool = False) -> None:
    for pool in list(_LIVE_POOLS):
        try:
            if emergency:
                pool._emergency_close()
            else:
                pool.close()
        except Exception:
            pass


atexit.register(_close_live_pools)


def _guard_handler(signum, frame):
    # Emergency path: the interrupted main thread may be parked inside
    # a queue ``put``/``get`` holding that queue's non-reentrant lock,
    # so the graceful close (which talks to workers over those queues)
    # could deadlock the handler.  Kill workers directly and unlink.
    _close_live_pools(emergency=True)
    prev = _GUARDED_SIGNALS.pop(signum, signal.SIG_DFL)
    if callable(prev):
        signal.signal(signum, prev)
        prev(signum, frame)
    elif prev is signal.SIG_IGN:
        signal.signal(signum, prev)
    else:
        # Re-deliver with the default action so exit codes / shell
        # semantics are exactly those of an unguarded process.
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def install_signal_guard(signums: Sequence[int] = (signal.SIGINT, signal.SIGTERM)) -> None:
    """Unlink every live pool's segments before dying of a signal.

    Chains to (and then restores) the handler that was installed
    before, so guarded processes keep their normal signal semantics —
    ``SIGINT`` still raises ``KeyboardInterrupt``, ``SIGTERM`` still
    terminates with the conventional exit status.  Idempotent; only
    callable from the main thread (a no-op elsewhere, matching
    ``signal.signal`` rules).
    """
    for signum in signums:
        if signum in _GUARDED_SIGNALS:
            continue
        try:
            prev = signal.getsignal(signum)
            signal.signal(signum, _guard_handler)
        except (ValueError, OSError):  # non-main thread / exotic signum
            continue
        _GUARDED_SIGNALS[signum] = prev


# ---------------------------------------------------------------------------
# Reducer protocol


class TreeReducer:
    """Fold shortest path trees into a small aggregate, inside workers.

    Subclass and implement the four hooks; instances must be picklable
    (module-level classes with plain attributes), because the reducer
    travels to the workers once per batch.

    ``make_state``/``fold``/``finish`` run in the worker; ``merge``
    runs in the parent over the per-worker results.  ``ctx`` is a
    :class:`WorkerContext` giving access to any CSR graphs and
    auxiliary arrays published at pool construction.
    """

    def make_state(self, ctx: "WorkerContext"):
        """Fresh per-worker accumulator for one batch."""
        raise NotImplementedError

    def fold(self, ctx: "WorkerContext", state, index: int, source: int,
             dist: np.ndarray):
        """Fold one tree (``dist`` indexed by original ID); return state."""
        raise NotImplementedError

    def finish(self, ctx: "WorkerContext", state):
        """Last in-worker step; the return value is pickled to the parent."""
        return state

    def merge(self, states: list):
        """Combine the per-worker results (parent side)."""
        raise NotImplementedError


class WorkerContext:
    """Read-only resources a :class:`TreeReducer` sees inside a worker.

    Attributes
    ----------
    n:
        Vertex count of the hierarchy.
    """

    def __init__(
        self,
        n: int,
        graph_arrays: Mapping[str, tuple],
        extra_arrays: Mapping[str, np.ndarray],
        graphs: Mapping[str, StaticGraph] | None = None,
    ) -> None:
        self.n = n
        self._graph_arrays = dict(graph_arrays)
        self._graphs: dict[str, StaticGraph] = dict(graphs or {})
        self._arrays = dict(extra_arrays)

    def graph(self, name: str) -> StaticGraph:
        """A CSR graph published at pool construction (zero-copy view)."""
        if name not in self._graphs:
            if name not in self._graph_arrays:
                raise KeyError(
                    f"graph {name!r} was not published to this pool; pass it "
                    "via PhastPool(..., graphs={...})"
                )
            first, head, lens = self._graph_arrays[name]
            self._graphs[name] = StaticGraph.from_csr(first, head, lens)
        return self._graphs[name]

    def array(self, name: str) -> np.ndarray:
        """An auxiliary array published at pool construction."""
        if name not in self._arrays:
            raise KeyError(
                f"array {name!r} was not published to this pool; pass it "
                "via PhastPool(..., arrays={...})"
            )
        return self._arrays[name]


# ---------------------------------------------------------------------------
# Shared-memory publication

#: Byte alignment of every published array inside the segment.
_ALIGN = 64


@dataclass(frozen=True)
class _ArraySpec:
    key: str
    dtype: str
    shape: tuple
    offset: int


def _create_segment(size: int, tag: str | None = None) -> shared_memory.SharedMemory:
    """A fresh segment named ``repro-<pid>[-<tag>]-<hex>`` (see ``repro doctor``).

    The attributable name lets operators match leaked segments to a
    dead creator process; a random-collision retry keeps creation
    robust, falling back to an anonymous kernel-chosen name.
    """
    for _ in range(8):
        try:
            return shared_memory.SharedMemory(
                name=segment_name(tag), create=True, size=max(size, 1)
            )
        except FileExistsError:
            continue
    return shared_memory.SharedMemory(create=True, size=max(size, 1))


def _publish(
    arrays: dict[str, np.ndarray], tag: str | None = None
) -> tuple[shared_memory.SharedMemory, list[_ArraySpec]]:
    """Copy ``arrays`` into one fresh shared-memory segment."""
    specs: list[_ArraySpec] = []
    offset = 0
    normalized = {k: np.ascontiguousarray(a) for k, a in arrays.items()}
    for key, a in normalized.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        specs.append(_ArraySpec(key, a.dtype.str, a.shape, offset))
        offset += a.nbytes
    shm = _create_segment(offset, tag)
    for spec in specs:
        src = normalized[spec.key]
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        view[...] = src
    return shm, specs


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    Python < 3.13 registers every attached segment with the resource
    tracker, which would try to unlink it again when the *worker*
    exits.  The parent owns the segment, so attaching must not
    register: sending ``unregister`` afterwards instead would also
    cancel the *parent's* registration under ``fork`` (one shared
    tracker), making the parent's eventual unlink complain.
    """
    try:  # Python >= 3.13
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig


def _views(shm: shared_memory.SharedMemory, specs: Sequence[_ArraySpec]) -> dict[str, np.ndarray]:
    return {
        spec.key: np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        for spec in specs
    }


class TaskContext:
    """What a task-mode worker holds between chunks (see :class:`TaskPool`).

    Attributes
    ----------
    boot:
        Zero-copy views of the arrays published at pool construction.
    state:
        Scratch dict that persists for the worker process's lifetime.
        Handlers memoize expensive derived state here (e.g. the
        preprocessing workers' replica adjacency), keyed by the
        segment names it was built from, so a re-publication
        invalidates it naturally.
    """

    def __init__(
        self,
        boot_views: Mapping[str, np.ndarray],
        local_segments: dict | None = None,
    ) -> None:
        self.boot = dict(boot_views)
        self.state: dict = {}
        self._attached: dict[str, tuple] = {}
        self._local = local_segments

    def attach(self, name: str, specs) -> Mapping[str, np.ndarray]:
        """Views of a :meth:`TaskPool.publish_arrays` segment, cached by name.

        On the serial path (``specs is None``) the "segment" is the
        parent's in-process array dict, returned as-is.
        """
        if self._local is not None and name in self._local:
            return self._local[name]
        entry = self._attached.get(name)
        if entry is None:
            shm = _attach(name)
            entry = (shm, _views(shm, specs))
            self._attached[name] = entry
        return entry[1]

    def release(self, keep: Sequence[str] = ()) -> None:
        """Close attached segments whose names are not in ``keep``.

        Callers must drop their own views (including anything in
        :attr:`state` built over them) first; a still-exported buffer
        keeps the mapping open until the worker exits — harmless once
        the parent unlinked the name, but it holds memory.
        """
        keep_set = set(keep)
        for name in [n for n in self._attached if n not in keep_set]:
            shm, views = self._attached.pop(name)
            views.clear()
            try:
                shm.close()
            except BufferError:
                pass

    def close(self) -> None:
        self.state.clear()
        self.release()


class _WorkerHierarchy:
    """The slice of a hierarchy a pooled engine needs (``n`` + ``G↑``).

    The sweep structure is rebuilt from shared arrays separately, so
    the downward graph and preprocessing metadata never travel to the
    workers; touching them raises instead of silently lying.
    """

    def __init__(self, n: int, upward: StaticGraph) -> None:
        self.n = n
        self.upward = upward

    def __getattr__(self, name: str):
        raise AttributeError(
            f"hierarchy field {name!r} is not published to pool workers "
            "(only n and the upward graph are)"
        )


# ---------------------------------------------------------------------------
# Worker process


def _sweep_keys(sweep: SweepStructure) -> dict[str, np.ndarray]:
    return {
        "sw:pos_of": sweep.pos_of,
        "sw:vertex_at": sweep.vertex_at,
        "sw:level_first": sweep.level_first,
        "sw:arc_first": sweep.arc_first,
        "sw:arc_tail_pos": sweep.arc_tail_pos,
        "sw:arc_len": sweep.arc_len,
        "sw:arc_via": sweep.arc_via,
        "sw:level_of_pos": sweep.level_of_pos,
    }


def _build_worker_state(views: dict[str, np.ndarray], meta: dict):
    """Reconstruct the engine + context from shared-memory views."""
    n = meta["n"]
    sweep = SweepStructure.from_arrays(
        n=n,
        num_levels=meta["num_levels"],
        pos_of=views["sw:pos_of"],
        vertex_at=views["sw:vertex_at"],
        level_first=views["sw:level_first"],
        arc_first=views["sw:arc_first"],
        arc_tail_pos=views["sw:arc_tail_pos"],
        arc_len=views["sw:arc_len"],
        arc_via=views["sw:arc_via"],
        level_of_pos=views["sw:level_of_pos"],
    )
    upward = StaticGraph.from_csr(
        views["up:first"], views["up:arc_head"], views["up:arc_len"]
    )
    ch = _WorkerHierarchy(n, upward)
    engine = PhastEngine(
        ch, reorder=meta["reorder"], sweep=sweep,
        search_cache=meta.get("search_cache", 0),
    )
    graph_arrays = {
        name: (
            views[f"g:{name}:first"],
            views[f"g:{name}:arc_head"],
            views[f"g:{name}:arc_len"],
        )
        for name in meta["graphs"]
    }
    extra = {name: views[f"a:{name}"] for name in meta["arrays"]}
    ctx = WorkerContext(n, graph_arrays, extra)
    return engine, ctx


#: Per-process LRU cap on rebuilt restricted (RPHAST) engines; bounds
#: how many retired-but-still-attached selection segments a worker pins.
_MATRIX_ENGINE_CACHE = 4


def _restricted_engine(ch, task_ctx: TaskContext, batch: dict) -> RPhastEngine:
    """The restricted engine for a published selection, LRU-cached.

    Cached in ``task_ctx.state`` keyed by segment name: a republished
    target set gets a fresh segment name, so stale engines age out
    naturally, and eviction releases the underlying attachment.
    """
    name = batch["sel_name"]
    cache: OrderedDict = task_ctx.state.setdefault(
        "rphast:engines", OrderedDict()
    )
    eng = cache.get(name)
    if eng is None:
        views = task_ctx.attach(name, batch["sel_specs"])
        eng = RPhastEngine.from_arrays(
            ch, views, search_cache=batch.get("search_cache", 0)
        )
        cache[name] = eng
        while len(cache) > _MATRIX_ENGINE_CACHE:
            cache.popitem(last=False)
        task_ctx.release(keep=cache.keys())
    else:
        cache.move_to_end(name)
    return eng


def _matrix_rows(reng: RPhastEngine, k: int, start: int,
                 chunk: list) -> dict[int, np.ndarray]:
    """Restricted lane sweeps for one chunk of matrix sources.

    Returns per-source target rows keyed by global row index.  Rows are
    |T|-sized and travel back through the result pipe (no shared output
    segment), so a re-dispatched chunk is trivially bit-identical and a
    failed matrix batch needs no writer fencing.
    """
    results: dict[int, np.ndarray] = {}
    for i in range(0, len(chunk), k):
        sub = chunk[i : i + k]
        base = start + i
        if len(sub) == 1:
            results[base] = reng.distances(int(sub[0]))
        else:
            rows = reng.sweep_lanes(sub)
            for j in range(len(sub)):
                results[base + j] = rows[j]
    return results


def _run_chunk(engine: PhastEngine, ctx: WorkerContext, k: int, batch: dict,
               start: int, chunk: list, out: np.ndarray | None,
               task_ctx: TaskContext | None = None):
    """Process one chunk; every chunk is self-contained and restartable.

    Reduce-mode chunks return a *per-chunk* finished state (the app
    reducers' ``merge`` is associative, and the parent merges chunk
    states in chunk order, so the result is deterministic no matter
    which worker ran which chunk or how often one was re-dispatched).
    """
    mode = batch["mode"]
    if mode == "matrix":
        reng = _restricted_engine(engine.ch, task_ctx, batch)
        return _matrix_rows(reng, k, start, chunk)
    if mode == "task":
        fn = batch["fn"]
        common = batch["common"]
        return {
            start + j: fn(ctx, common, item) for j, item in enumerate(chunk)
        }
    reducer: TreeReducer | None = batch.get("reducer")
    fn: Callable | None = batch.get("fn")
    state = reducer.make_state(ctx) if mode == "reduce" else None
    results: dict[int, object] = {}
    count = 0
    for i in range(0, len(chunk), k):
        sub = chunk[i : i + k]
        base = start + i
        if mode == "dist" and len(sub) > 1:
            # Lanes scatter straight into the shared rows: no
            # intermediate per-source array at all.
            engine.trees(sub, out=out[base : base + len(sub)])
            count += len(sub)
            continue
        if len(sub) == 1:
            if mode == "dist":
                engine.tree(sub[0], dist_out=out[base])
                count += 1
                continue
            rows = engine.tree(sub[0]).dist[None, :]
        else:
            rows = engine.trees(sub)
        for j, (s, row) in enumerate(zip(sub, rows)):
            if mode == "reduce":
                state = reducer.fold(ctx, state, base + j, s, row)
            else:
                results[base + j] = fn(s, row)
            count += 1
    if mode == "dist":
        return count
    if mode == "reduce":
        return reducer.finish(ctx, state)
    return results


def _heartbeat_loop(hb, idx: int, interval: float, stop: threading.Event) -> None:
    """Beat-thread body: stamp liveness ~2x per supervisor interval.

    Runs as a daemon thread so the beat continues while the main
    thread is deep inside a NumPy sweep; a process that stops beating
    is genuinely frozen (SIGSTOP, unkillable page-in), not merely busy.
    The stop event is process-local: the beat must never touch shared
    locks, because a SIGKILL landing while a shared semaphore is held
    would wedge every other participant forever.
    """
    while True:
        hb[idx] = time.monotonic()
        if stop.wait(interval):
            return


#: Worker-side poll granularity on the work pipe; bounds how long a
#: shutdown request can go unnoticed.
_WORKER_POLL_S = 0.1


def _pool_worker(slot, incarnation, shm_name, specs, meta, work_conn,
                 result_conn, hb, claims, fault, fault_budget):
    # Transport is a pair of simplex pipes private to this worker: a
    # single reader and single writer per pipe means no shared locks,
    # so a SIGKILL at any instant cannot wedge the pool (unlike a
    # shared mp.Queue, whose internal semaphore dies locked with its
    # holder).  Liveness travels through the lock-free hb/claims
    # arrays instead.
    hb[2 * slot] = time.monotonic()
    beat_stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop,
        args=(hb, 2 * slot, meta["hb_interval"] / 2.0, beat_stop),
        daemon=True,
        name=f"phast-worker-{slot}-heartbeat",
    ).start()
    shm = None
    out_shm: shared_memory.SharedMemory | None = None
    out_name: str | None = None
    try:
        shm = _attach(shm_name)
        views = _views(shm, specs)
        if meta.get("kind") == "task":
            engine, ctx = None, TaskContext(views)
            task_ctx = ctx
        else:
            engine, ctx = _build_worker_state(views, meta)
            # Sweep workers still need a TaskContext: matrix-mode
            # chunks attach published RPHAST selections through it.
            task_ctx = TaskContext(views)
    except BaseException:
        try:
            result_conn.send((None, None, slot, "boot_error",
                              traceback.format_exc()))
        except (OSError, ValueError, BrokenPipeError):
            pass
        return
    k = meta["k"]
    n = meta["n"]
    metric_gen = 0  # boot segment carries generation-0 weights
    metric_shm: shared_memory.SharedMemory | None = None
    try:
        while True:
            if not work_conn.poll(_WORKER_POLL_S):
                continue
            try:
                item = work_conn.recv()
            except (EOFError, OSError):
                break  # parent is gone
            if item is None:  # graceful shutdown
                break
            batch, chunk_id, start, chunk = item
            # Publish the claim BEFORE the start stamp: once the stamp
            # is non-zero the supervisor trusts the claim for poison
            # accounting, so the order must never expose a stale one.
            claims[2 * slot] = batch["id"]
            claims[2 * slot + 1] = chunk_id
            hb[2 * slot + 1] = time.monotonic()
            try:
                apply_fault(fault, fault_budget, slot, chunk_id)
                metric = batch.get("metric")
                if metric is not None and metric[0] != metric_gen:
                    # The batch names a newer metric generation: attach
                    # its weight segment, overlay the metric-dependent
                    # views, and rebuild the engine over them.  This
                    # runs BEFORE any tree of the chunk, and a respawned
                    # worker (booted on generation-0 weights) passes
                    # through here on its first post-swap chunk, so no
                    # chunk is ever computed on a stale metric.
                    gen, mname, mspecs = metric
                    new_mshm = _attach(mname)
                    mviews = _views(new_mshm, mspecs)
                    views.update(mviews)
                    task_ctx.boot.update(mviews)
                    # Restricted engines were built over old weights
                    # (selections embed copied arc lengths): drop them
                    # and their attachments; fresh selections arrive
                    # under new segment names.
                    task_ctx.state.pop("rphast:engines", None)
                    task_ctx.release()
                    if engine is not None:
                        engine, ctx = _build_worker_state(views, meta)
                    if metric_shm is not None:
                        try:
                            metric_shm.close()
                        except BufferError:
                            pass  # a lingering view; freed on exit
                    metric_shm = new_mshm
                    metric_gen = gen
                out = None
                if batch["mode"] == "dist":
                    if batch["out_name"] != out_name:
                        if out_shm is not None:
                            out_shm.close()
                        out_shm = _attach(batch["out_name"])
                        out_name = batch["out_name"]
                    out = np.ndarray(
                        (batch["out_rows"], n), dtype=np.int64,
                        buffer=out_shm.buf,
                    )
                payload = _run_chunk(engine, ctx, k, batch, start, chunk,
                                     out, task_ctx)
                result_conn.send((batch["id"], chunk_id, slot, "ok", payload))
            except (OSError, ValueError, BrokenPipeError):
                break  # parent is gone; nobody to report to
            except BaseException:
                try:
                    result_conn.send((batch["id"], chunk_id, slot, "error",
                                      traceback.format_exc()))
                except (OSError, ValueError, BrokenPipeError):
                    break
            finally:
                hb[2 * slot + 1] = 0.0
    finally:
        beat_stop.set()
        try:
            task_ctx.close()
        except Exception:
            pass
        try:
            if out_shm is not None:
                out_shm.close()
        except BufferError:
            pass
        try:
            if metric_shm is not None:
                metric_shm.close()
        except BufferError:
            pass
        try:
            if shm is not None:
                shm.close()
        except BufferError:
            pass


# ---------------------------------------------------------------------------
# The pool


class _Channel:
    """Parent-side endpoints of one worker incarnation's pipe pair."""

    __slots__ = ("process", "incarnation", "work", "result")

    def __init__(self, process, incarnation: int, work, result) -> None:
        self.process = process
        self.incarnation = incarnation
        self.work = work
        self.result = result

    def alive(self) -> bool:
        return self.process.exitcode is None

    def close(self) -> None:
        for conn in (self.work, self.result):
            try:
                conn.close()
            except OSError:
                pass


class _BasePool:
    """Worker-pool machinery shared by the pool flavours.

    Owns everything that is independent of *what* the workers compute:
    shared-memory publication (boot segment plus retireable
    :meth:`publish_arrays` segments), per-worker simplex pipe pairs,
    the :class:`~repro.core.supervisor.WorkerSupervisor` (heartbeats,
    chunk deadlines, respawn, quarantine), supervised dispatch with
    deterministic re-dispatch of a dead worker's chunks, and teardown
    that can never leak ``/dev/shm`` segments.

    Subclasses supply the boot payload (:meth:`_published_arrays`),
    the worker-side interpretation (:meth:`_worker_meta`, keyed by
    ``meta["kind"]``) and the in-process fallback
    (:meth:`_execute_serial`).
    """

    def _init_base(
        self,
        *,
        num_workers: int | None,
        force_pool: bool,
        chunk_size: int | None,
        heartbeat_interval: float,
        chunk_timeout: float | None,
        max_chunk_retries: int,
        max_respawns: int | None,
        fault_plan: FaultPlan | str | None,
        sources_per_sweep: int = 1,
    ) -> None:
        if max_chunk_retries < 1:
            raise ValueError("max_chunk_retries must be >= 1")
        self.k = int(sources_per_sweep)
        self.chunk_size = chunk_size
        self.batches_run = 0
        self.trees_computed = 0
        self.chunk_retries = 0
        self.chunks_quarantined = 0
        self._closed = False
        self._batch_counter = 0
        self.heartbeat_interval = float(heartbeat_interval)
        self.chunk_timeout = chunk_timeout
        self.max_chunk_retries = int(max_chunk_retries)
        self.max_respawns = max_respawns
        if isinstance(fault_plan, str):
            fault_plan = parse_fault_plan(fault_plan)
        elif fault_plan is None:
            fault_plan = parse_fault_plan(os.environ.get("REPRO_FAULT"))
        self._fault_plan = fault_plan
        self._fault_budget = None
        self._last_boot_error: str | None = None
        self._supervisor: WorkerSupervisor | None = None
        self._channels: list[_Channel | None] = []
        self._inflight = 0
        #: Chunks kept queued per worker beyond the one in flight; keeps
        #: pipes shallow so a dead worker strands at most this many.
        self._prefetch = 2

        if force_pool:
            if num_workers is None:
                num_workers, _ = resolve_workers(None)
            num_workers = max(1, num_workers)
            self._fell_back = False
        else:
            num_workers, self._fell_back = resolve_workers(num_workers)
        self.num_workers = num_workers
        self._serial = num_workers <= 1 and not force_pool

        self._shm: shared_memory.SharedMemory | None = None
        self._out_shm: shared_memory.SharedMemory | None = None
        self._retired: list[shared_memory.SharedMemory] = []
        self._out_rows = 0
        #: Dynamically published segments, by name (publish_arrays).
        self._dynamic: dict[str, shared_memory.SharedMemory] = {}
        #: Serial-path stand-in for dynamic segments: name -> array dict.
        self._local_segments: dict[str, dict[str, np.ndarray]] = {}
        self._local_counter = 0
        #: ``(generation, segment_name, specs)`` of the current metric
        #: overlay, or ``None`` before the first :meth:`swap_metric`.
        #: Rides along in every batch so workers re-point lazily.
        self._metric_handle: tuple[int, str, list] | None = None

    # -- subclass hooks ----------------------------------------------------

    def _published_arrays(self) -> dict[str, np.ndarray]:
        """Arrays to copy into the boot segment workers attach to."""
        raise NotImplementedError

    def _worker_meta(self) -> dict:
        """Picklable worker boot metadata; must carry ``kind``/``k``/``n``."""
        raise NotImplementedError

    def _execute_serial(self, batch: dict, items: list, out=None):
        raise NotImplementedError

    # -- dynamic publications ----------------------------------------------

    def publish_arrays(
        self, arrays: Mapping[str, np.ndarray], *, tag: str | None = None
    ) -> tuple[str, list[_ArraySpec] | None]:
        """Publish named arrays as a fresh, individually retireable segment.

        Returns a ``(name, specs)`` handle that travels to task
        handlers (inside ``common``/items) so they can attach by name
        via :meth:`TaskContext.attach`.  On the serial path the arrays
        are kept in-process under a synthetic name — same handle
        shape, no shared memory, ``specs`` is ``None``.  ``tag``
        embeds a classification token in the segment name
        (``repro-<pid>-<tag>-<hex>``) so ``repro doctor`` can tell
        what a leaked segment was.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._serial:
            self._local_counter += 1
            name = f"local-{self._local_counter}"
            # Copy like the shm path does: a publication is a snapshot,
            # and callers mutate their arrays after publishing.
            self._local_segments[name] = {
                k: np.array(a, order="C") for k, a in arrays.items()
            }
            return name, None
        shm, specs = _publish(dict(arrays), tag)
        self._dynamic[shm.name] = shm
        return shm.name, specs

    def retire_publication(self, name: str) -> None:
        """Unlink a :meth:`publish_arrays` segment (live views stay valid)."""
        if self._serial:
            self._local_segments.pop(name, None)
            return
        shm = self._dynamic.pop(name, None)
        if shm is not None:
            self._retire(shm)

    # -- lifecycle ---------------------------------------------------------

    def _start_workers(self, context: str) -> None:
        import multiprocessing as mp

        ctx = mp.get_context(context)
        self._channels = [None] * self.num_workers
        self._shm, specs = _publish(self._published_arrays())
        meta = self._worker_meta()
        meta["hb_interval"] = self.heartbeat_interval
        if self._fault_plan is not None and self._fault_plan.times is not None:
            # Shared trigger budget: respawned workers see the same
            # counter, so "times=1" means one crash pool-wide, ever.
            self._fault_budget = ctx.Value("i", self._fault_plan.times)
        self._supervisor = WorkerSupervisor(
            ctx,
            self.num_workers,
            heartbeat_interval=self.heartbeat_interval,
            chunk_timeout=self.chunk_timeout,
            max_respawns=self.max_respawns,
        )
        shm_name = self._shm.name
        sup = self._supervisor
        fault, fault_budget = self._fault_plan, self._fault_budget
        channels = self._channels

        def spawn(slot: int, incarnation: int):
            # Simplex pipes, one pair per worker incarnation: the only
            # shared mutable state a worker can die holding is its own
            # channel, which dies with it (kill-safety — see
            # _pool_worker).  Runs in the supervisor thread on respawn;
            # the slot assignment below is atomic, and the batch loop
            # picks the fresh channel up on its next poll.
            work_r, work_w = ctx.Pipe(duplex=False)
            result_r, result_w = ctx.Pipe(duplex=False)
            p = ctx.Process(
                target=_pool_worker,
                args=(
                    slot, incarnation, shm_name, specs, meta, work_r,
                    result_w, sup.hb, sup.claims, fault, fault_budget,
                ),
                daemon=True,
                name=f"phast-pool-worker-{slot}.{incarnation}",
            )
            p.start()
            work_r.close()
            result_w.close()
            channels[slot] = _Channel(p, incarnation, work_w, result_r)
            return p

        sup.start(spawn)

    def close(self) -> None:
        """Shut workers down and unlink every shared-memory segment.

        Idempotent; also invoked by ``__exit__`` and the finalizer, so
        an exception inside a ``with`` block cannot leak ``/dev/shm``
        segments.
        """
        if self._closed:
            return
        self._closed = True
        if not self._serial and self._supervisor is not None:
            self._supervisor.stop()  # no more respawns behind our back
            for ch in self._channels:
                if ch is None:
                    continue
                try:
                    ch.work.send(None)  # graceful shutdown request
                except (OSError, ValueError, BrokenPipeError):
                    pass
            for ch in self._channels:
                if ch is None:
                    continue
                ch.process.join(timeout=10)
                if ch.process.is_alive():
                    ch.process.terminate()
                    ch.process.join(timeout=5)
                ch.close()
        self._unlink_segments()

    def _emergency_close(self) -> None:
        """Signal-safe teardown: kill workers, unlink, touch no queues.

        Runs inside the :func:`install_signal_guard` handler, i.e. on
        top of an interrupted main-thread frame that may hold a queue
        lock mid-``put``.  Everything here is lock-free with respect to
        the queues: ``terminate`` is a plain ``kill(2)``, ``join`` a
        ``waitpid``, and unlinking only touches ``/dev/shm`` names.
        The supervisor is aborted via flags only (no joins), so a
        respawn can't race the teardown.
        """
        if self._closed:
            return
        self._closed = True
        procs = []
        if self._supervisor is not None:
            self._supervisor.abort()
            procs = [ch.process for ch in self._channels if ch is not None]
        for p in procs:
            try:
                p.terminate()
            except Exception:
                pass
        for p in procs:
            try:
                p.join(timeout=5)
                if p.is_alive():
                    p.kill()
                    p.join(timeout=5)
            except Exception:
                pass
        self._unlink_segments()

    def _unlink_segments(self) -> None:
        for shm in (self._shm, self._out_shm, *self._dynamic.values()):
            if shm is not None:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                try:
                    shm.close()
                except BufferError:
                    # A caller still holds a view; the name is already
                    # unlinked, the mapping dies with the last view.
                    pass
        self._dynamic = {}
        self._local_segments = {}
        for shm in self._retired:
            try:
                shm.close()
            except BufferError:
                pass
        self._shm = self._out_shm = None
        self._retired = []

    def _retire(self, shm: shared_memory.SharedMemory) -> None:
        """Unlink a superseded segment, deferring close past live views."""
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        try:
            shm.close()
        except BufferError:
            self._retired.append(shm)

    def __enter__(self) -> "_BasePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    @property
    def serial(self) -> bool:
        """True when batches run in-process (no worker processes)."""
        return self._serial

    @property
    def fell_back(self) -> bool:
        """True when a multi-worker request degraded to serial (1 CPU)."""
        return self._fell_back

    # -- internals ---------------------------------------------------------

    def _chunks(self, sources: list[int]) -> list[tuple[int, list[int]]]:
        size = self.chunk_size
        if size is None:
            per = -(-len(sources) // (self.num_workers * 4))
            size = max(self.k, min(64, per))
            size = self.k * (-(-size // self.k))
        return [
            (i, sources[i : i + size]) for i in range(0, len(sources), size)
        ]

    def _execute(self, batch: dict, sources: list[int], out=None):
        if self._closed:
            raise RuntimeError("pool is closed")
        self.batches_run += 1
        self.trees_computed += len(sources)
        if self._serial:
            return self._execute_serial(batch, sources, out)
        self._batch_counter += 1
        batch = dict(batch)
        batch["id"] = self._batch_counter
        if self._metric_handle is not None:
            # Snapshot the handle into the batch: every chunk of this
            # batch names the same metric generation, so a batch can
            # never mix metrics no matter how chunks are re-dispatched
            # across worker deaths or an interleaved swap.
            batch["metric"] = self._metric_handle
        if batch["mode"] == "dist":
            batch["out_name"] = self._out_shm.name
            batch["out_rows"] = self._out_rows
        payloads = self._run_supervised(batch, self._chunks(sources))
        if batch["mode"] == "dist":
            return None
        return payloads

    def _run_supervised(self, batch: dict, chunks: list) -> list:
        """Dispatch chunks over per-worker pipes; collect under supervision.

        The parent drives dispatch: each live worker holds at most
        ``1 + _prefetch`` chunks (one in flight, the rest queued in its
        pipe), and is topped up as results return, which load-balances
        exactly like a shared queue.  Because assignment is
        parent-side, a dead worker's chunks are known precisely and
        re-dispatched to survivors; quarantine accounting only charges
        the chunk the worker was *actively* computing (its claim), not
        innocent prefetched ones.  Every wait is bounded
        (``connection.wait`` with a timeout), duplicate completions are
        deduplicated by chunk id (first result wins), and reduce-mode
        states merge in chunk order — so results are bit-identical no
        matter how many deaths and re-dispatches occurred.

        A batch that *fails* (quarantine, worker error) does not get
        to leave quietly: for dist mode,
        :meth:`_quiesce_stale_writers` first fences every chunk still
        held by a surviving worker, because those write into the
        shared output segment the next batch will reuse.
        """
        from multiprocessing import connection as _mpconn

        sup = self._supervisor
        sup.pop_events()  # discard deaths that predate this batch
        outstanding: dict[int, tuple[int, list]] = {
            cid: (start, chunk) for cid, (start, chunk) in enumerate(chunks)
        }
        self._inflight = len(outstanding)
        pending = list(sorted(outstanding, reverse=True))  # pop() = lowest cid
        assigned: dict[int, tuple[int, int]] = {}
        load: dict[tuple[int, int], set] = {}
        payloads: dict[int, object] = {}
        deaths: dict[int, int] = {}
        poll = min(0.2, max(0.02, self.heartbeat_interval))

        def fill() -> None:
            for slot, ch in enumerate(self._channels):
                if not pending:
                    return
                if ch is None or not ch.alive():
                    continue
                key = (slot, ch.incarnation)
                held = load.setdefault(key, set())
                while pending and len(held) <= self._prefetch:
                    cid = pending[-1]
                    start, chunk = outstanding[cid]
                    try:
                        ch.work.send((batch, cid, start, chunk))
                    except (OSError, ValueError, BrokenPipeError):
                        break  # dying worker; its DeathEvent requeues
                    pending.pop()
                    assigned[cid] = key
                    held.add(cid)

        try:
            while outstanding:
                fill()
                # Wait only on live workers' pipes: a dead
                # incarnation's result conn sits at EOF — permanently
                # "ready" — so including it would busy-spin the parent
                # for as long as the slot stays dead (the whole batch,
                # once the respawn budget is exhausted).  Dead workers
                # hand their chunks back through DeathEvents instead.
                conns = [
                    ch.result for ch in self._channels
                    if ch is not None and ch.alive()
                ]
                if conns:
                    try:
                        ready = _mpconn.wait(conns, timeout=poll)
                    except OSError:
                        ready = []
                else:
                    time.sleep(poll)  # nothing alive yet: await respawn
                    ready = []
                for conn in ready:
                    while True:
                        try:
                            if not conn.poll(0):
                                break
                            msg = conn.recv()
                        except (EOFError, OSError):
                            break  # dead worker; its DeathEvent follows
                        batch_id, cid, _slot, status, payload = msg
                        if status == "boot_error":
                            self._last_boot_error = payload
                        elif batch_id != batch["id"]:
                            pass  # stale: a superseded earlier batch
                        elif status == "error":
                            raise RuntimeError(
                                "pool worker failed:\n" + payload
                            )
                        elif cid in outstanding:
                            payloads[cid] = payload
                            del outstanding[cid]
                            self._inflight = len(outstanding)
                            key = assigned.pop(cid, None)
                            if key is not None:
                                load.get(key, set()).discard(cid)
                for ev in sup.pop_events():
                    # Requeue everything the dead incarnation held —
                    # the claimed chunk plus any stranded in its pipe —
                    # BEFORE the quarantine check, so a quarantine
                    # raise leaves ``assigned`` holding only chunks of
                    # still-live workers for the fence below to wait
                    # out.  Then drop the dead channel so its EOF pipe
                    # never re-enters the wait set.
                    for cid in sorted(load.pop((ev.slot, ev.incarnation),
                                               set())):
                        assigned.pop(cid, None)
                        if cid in outstanding:
                            self.chunk_retries += 1
                            pending.append(cid)
                    self._retire_channel(ev.slot, ev.incarnation)
                    if (ev.batch_id == batch["id"]
                            and ev.chunk_id is not None
                            and ev.chunk_id in outstanding):
                        cid = ev.chunk_id
                        deaths[cid] = deaths.get(cid, 0) + 1
                        if deaths[cid] >= self.max_chunk_retries:
                            self.chunks_quarantined += 1
                            raise ChunkQuarantined(
                                cid, outstanding[cid][1], deaths[cid],
                                ev.reason,
                            )
                if outstanding and not sup.healthy():
                    detail = ""
                    if self._last_boot_error:
                        detail = ("; last worker boot failure:\n"
                                  + self._last_boot_error)
                    raise PoolBroken(
                        f"all {self.num_workers} pool workers are gone and "
                        f"the respawn budget is exhausted{detail}"
                    )
        except Exception:
            # A failed dist batch abandons chunks that surviving
            # workers are still executing (in flight or prefetched in
            # their pipes) — and those scatter rows straight into the
            # shared output segment the NEXT batch will reuse.  Fence
            # them out before propagating so no stale writer can
            # corrupt a later call's results.
            if batch["mode"] == "dist":
                self._quiesce_stale_writers(batch, assigned, load, poll)
            raise
        finally:
            self._inflight = 0
        return [payloads[cid] for cid in sorted(payloads)]

    def _retire_channel(self, slot: int, incarnation: int) -> None:
        """Drop a dead incarnation's channel (close fds, free the slot).

        Serialised against the supervisor's spawn path: a death's
        respawn runs before its event becomes visible, but a later
        scan-pass retry of an empty slot could install a fresh channel
        concurrently, and an unsynchronised ``None`` store here would
        clobber it (leaving a live worker no one can reach).
        """
        sup = self._supervisor
        with sup.lock:
            ch = self._channels[slot]
            if ch is None or ch.incarnation != incarnation:
                return  # already replaced by a respawn
            self._channels[slot] = None
        ch.close()

    def _quiesce_stale_writers(self, batch: dict, assigned: dict,
                               load: dict, poll: float) -> None:
        """Wait out every handed-out chunk of a failed dist batch.

        A chunk is guaranteed write-free once its result message
        arrived (workers send after the scatter completes) or its
        holder died (a dead process cannot write), so this drains
        result pipes — discarding payloads — and consumes death
        events until ``assigned`` is empty.  With ``chunk_timeout``
        set, the supervisor bounds every straggler; without it, a
        writer that outlives the grace period forces the output
        segment to be retired instead, so stale scatters land in the
        orphaned mapping rather than the buffer the next
        :meth:`alloc_output` hands back.
        """
        from multiprocessing import connection as _mpconn

        sup = self._supervisor
        if self.chunk_timeout is not None:
            # A worker holds at most 1 + prefetch stale chunks, each
            # bounded by the deadline plus detection and kill slack.
            grace = (1 + self._prefetch) * (
                self.chunk_timeout + 10 * self.heartbeat_interval + 5.0
            )
        else:
            grace = 30.0
        deadline = time.monotonic() + grace
        while assigned and time.monotonic() < deadline:
            for ev in sup.pop_events():
                for cid in load.pop((ev.slot, ev.incarnation), set()):
                    assigned.pop(cid, None)
                self._retire_channel(ev.slot, ev.incarnation)
            conns = [
                ch.result for ch in self._channels
                if ch is not None and ch.alive()
            ]
            if not conns:
                time.sleep(poll)
                continue
            try:
                ready = _mpconn.wait(conns, timeout=poll)
            except OSError:
                ready = []
            for conn in ready:
                while True:
                    try:
                        if not conn.poll(0):
                            break
                        msg = conn.recv()
                    except (EOFError, OSError):
                        break  # death; its DeathEvent resolves the load
                    batch_id, cid, _slot, status, _payload = msg
                    if batch_id != batch["id"]:
                        continue
                    key = assigned.pop(cid, None)
                    if key is not None:
                        load.get(key, set()).discard(cid)
        if assigned and self._out_shm is not None:
            # Stale writers survived the grace period (wedged worker,
            # no chunk deadline configured): abandon the live output
            # segment so they can never touch a future batch's rows.
            self._retire(self._out_shm)
            self._out_shm = None
            self._out_rows = 0

    # -- health ------------------------------------------------------------

    def health(self) -> dict:
        """Liveness/fault counters for readiness probes and metrics."""
        base = {
            "serial": self._serial,
            "workers_configured": self.num_workers,
            "chunk_retries": self.chunk_retries,
            "chunks_quarantined": self.chunks_quarantined,
        }
        if self._serial:
            base.update(
                workers_alive=0 if self._closed else 1,
                deaths=0, restarts=0, wedged=0,
                respawn_budget=0, queue_depth=0,
            )
            return base
        stats = self._supervisor.stats()
        depth = self._inflight
        base.update(
            workers_alive=0 if self._closed else stats["alive"],
            deaths=stats["deaths"],
            restarts=stats["restarts"],
            wedged=stats["wedged"],
            respawn_budget=stats["respawn_budget"],
            queue_depth=depth,
        )
        return base

    def capacity_fraction(self) -> float:
        """Live workers / configured workers, in [0, 1] (serial: 1.0)."""
        if self._closed:
            return 0.0
        if self._serial:
            return 1.0
        return min(1.0, self._supervisor.alive_count() / max(1, self.num_workers))

    @property
    def supervisor(self) -> WorkerSupervisor | None:
        """The worker supervisor (``None`` on the serial path)."""
        return self._supervisor

class PhastPool(_BasePool):
    """Persistent worker pool computing shortest path trees in batches.

    Parameters
    ----------
    ch:
        The shared hierarchy.  Its sweep structure is built once in the
        parent and published to every worker.
    num_workers:
        Worker processes (default: CPU count capped by
        :func:`~repro.utils.workers.resolve_workers`).  ``1`` (or the
        single-CPU fallback) runs everything in-process with no shared
        memory at all — same results, no IPC.
    sources_per_sweep:
        The ``k`` of Section IV-B applied inside each worker.
    context:
        ``"fork"`` (default) or ``"spawn"``; shared-memory attach works
        under both, so spawn-only platforms are first-class.
    force_pool:
        Spin up worker processes even on a single-CPU host (the
        multiprocessing path stays testable everywhere).
    graphs:
        Named CSR graphs to publish for reducers (e.g. the original
        graph for arc flags / reach, the reverse graph for
        betweenness).  Zero-copy views inside workers.
    arrays:
        Named auxiliary NumPy arrays to publish (e.g. a partition's
        cell assignment).
    reorder:
        Passed through to every worker's engine.
    search_cache:
        Capacity of each engine's LRU cache of upward CH search
        spaces (0 disables, the default).  Worth enabling for serving
        workloads where sources repeat — the per-source scalar search
        is then paid once per distinct origin.
    chunk_size:
        Sources per work-queue chunk; default balances ~4 chunks per
        worker, rounded to a multiple of ``sources_per_sweep``.
    heartbeat_interval:
        Supervisor scan period in seconds.  Worker deaths are detected
        within roughly one interval; workers beat at twice this rate.
    chunk_timeout:
        Per-chunk wall-clock deadline in seconds (``None`` disables).
        A worker whose chunk exceeds it is considered wedged, killed,
        and replaced; the chunk is re-dispatched.  Size it well above
        the slowest legitimate chunk.
    max_chunk_retries:
        Worker deaths a single chunk may cause before it is
        quarantined with :class:`ChunkQuarantined` (default 2: a chunk
        that kills two workers is poison, not bad luck).
    max_respawns:
        Total replacement workers over the pool's lifetime (default
        ``3 * num_workers``).  When exhausted with no survivors,
        batches fail with :class:`PoolBroken`.
    fault_plan:
        Deterministic fault injection for chaos testing: a
        :class:`FaultPlan`, a spec string (``"crash:chunk=2"``), or
        ``None`` to read the ``REPRO_FAULT`` environment variable.
        Only worker processes fault; the serial path ignores plans.
    """

    def __init__(
        self,
        ch: ContractionHierarchy,
        *,
        num_workers: int | None = None,
        sources_per_sweep: int = 1,
        context: str = "fork",
        force_pool: bool = False,
        graphs: Mapping[str, StaticGraph] | None = None,
        arrays: Mapping[str, np.ndarray] | None = None,
        reorder: bool = True,
        chunk_size: int | None = None,
        search_cache: int = 0,
        heartbeat_interval: float = 0.2,
        chunk_timeout: float | None = None,
        max_chunk_retries: int = 2,
        max_respawns: int | None = None,
        fault_plan: FaultPlan | str | None = None,
    ) -> None:
        if sources_per_sweep < 1:
            raise ValueError("sources_per_sweep must be >= 1")
        self.ch = ch
        self.n = ch.n
        self.reorder = bool(reorder)
        self.search_cache = int(search_cache)
        self._graphs = dict(graphs or {})
        self._arrays = {
            name: np.ascontiguousarray(a) for name, a in (arrays or {}).items()
        }
        self._init_base(
            num_workers=num_workers,
            force_pool=force_pool,
            chunk_size=chunk_size,
            heartbeat_interval=heartbeat_interval,
            chunk_timeout=chunk_timeout,
            max_chunk_retries=max_chunk_retries,
            max_respawns=max_respawns,
            fault_plan=fault_plan,
            sources_per_sweep=sources_per_sweep,
        )

        # Parent-side engine: the serial path runs on it, and the
        # process path publishes its sweep arrays (built exactly once).
        self._engine = PhastEngine(
            ch, reorder=self.reorder, search_cache=self.search_cache
        )
        # Serial-path twin of the workers' restricted-engine cache.
        self._restricted_local: OrderedDict[str, RPhastEngine] = OrderedDict()
        self._metric_generation = 0
        if not self._serial:
            self._start_workers(context)
        _LIVE_POOLS.add(self)

    # -- boot payload ------------------------------------------------------

    def _published_arrays(self) -> dict[str, np.ndarray]:
        published: dict[str, np.ndarray] = {}
        published.update(_sweep_keys(self._engine.sweep))
        published["up:first"] = self.ch.upward.first
        published["up:arc_head"] = self.ch.upward.arc_head
        published["up:arc_len"] = self.ch.upward.arc_len
        for name, g in self._graphs.items():
            published[f"g:{name}:first"] = g.first
            published[f"g:{name}:arc_head"] = g.arc_head
            published[f"g:{name}:arc_len"] = g.arc_len
        for name, a in self._arrays.items():
            published[f"a:{name}"] = a
        return published

    def _worker_meta(self) -> dict:
        return {
            "kind": "sweep",
            "n": self.n,
            "num_levels": self._engine.sweep.num_levels,
            "reorder": self.reorder,
            "k": self.k,
            "search_cache": self.search_cache,
            "graphs": list(self._graphs),
            "arrays": list(self._arrays),
        }

    # -- metric hot swap ---------------------------------------------------

    @property
    def metric_generation(self) -> int:
        """Monotone counter bumped by every :meth:`swap_metric`."""
        return self._metric_generation

    def swap_metric(self, new_ch: ContractionHierarchy) -> int:
        """Re-point the pool at a structurally identical hierarchy.

        The new hierarchy must share the old one's *topology* — same
        vertex ranks and the exact same upward/downward arc sets — and
        differ only in weights (and vias), i.e. it came from
        ``customize()`` over the same :class:`~repro.ch.CHTopology`
        (or a re-contraction that reproduced the structure).  Only the
        metric-dependent arrays (``sw:arc_len``, ``sw:arc_via``,
        ``up:arc_len``) are published, as a generation-tagged segment
        ``repro-<pid>-m<gen>-<hex>``; workers re-point lazily on their
        next chunk, guided by the generation each batch carries, and
        the superseded segment is retired immediately (attached
        mappings survive the unlink).

        Must be called with no batch in flight — the caller provides
        the quiesce point (the server does it between micro-batches).
        Restricted-selection publications embed copied arc lengths, so
        callers holding :meth:`publish_arrays` selection handles must
        retire and republish them after a swap; the workers' cached
        restricted engines are dropped automatically.

        Returns the new metric generation.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._inflight:
            raise RuntimeError(
                "swap_metric requires a quiesced pool (a batch is in flight)"
            )
        old = self.ch
        if new_ch.n != old.n:
            raise ValueError(
                f"metric swap changed vertex count: {old.n} -> {new_ch.n}"
            )
        for field_name, a, b in (
            ("rank", old.rank, new_ch.rank),
            ("upward.first", old.upward.first, new_ch.upward.first),
            ("upward.arc_head", old.upward.arc_head, new_ch.upward.arc_head),
            ("downward_rev.first", old.downward_rev.first,
             new_ch.downward_rev.first),
            ("downward_rev.arc_head", old.downward_rev.arc_head,
             new_ch.downward_rev.arc_head),
        ):
            if not np.array_equal(a, b):
                raise ValueError(
                    f"metric swap changed hierarchy structure ({field_name} "
                    "differs); hot swap needs a customize() over the same "
                    "topology, not a fresh contraction"
                )
        engine = PhastEngine(
            new_ch, reorder=self.reorder, search_cache=self.search_cache
        )
        # The sweep permutation is a pure function of structure; with
        # the structure checks above this can only fire on a bug, but
        # a mixed layout would silently corrupt distances, so verify.
        old_sw, new_sw = self._engine.sweep, engine.sweep
        if not (
            np.array_equal(old_sw.pos_of, new_sw.pos_of)
            and np.array_equal(old_sw.arc_first, new_sw.arc_first)
            and np.array_equal(old_sw.arc_tail_pos, new_sw.arc_tail_pos)
        ):
            raise ValueError(
                "metric swap produced a different sweep layout; refusing"
            )
        gen = self._metric_generation + 1
        if not self._serial:
            name, specs = self.publish_arrays(
                {
                    "sw:arc_len": new_sw.arc_len,
                    "sw:arc_via": new_sw.arc_via,
                    "up:arc_len": new_ch.upward.arc_len,
                },
                tag=f"m{gen}",
            )
            old_name = (
                self._metric_handle[1] if self._metric_handle else None
            )
            self._metric_handle = (gen, name, specs)
            if old_name is not None:
                self.retire_publication(old_name)
        self.ch = new_ch
        self._engine = engine
        # Serial-path restricted engines were built over old weights.
        self._restricted_local.clear()
        self._metric_generation = gen
        return gen

    # -- output buffers ----------------------------------------------------

    def alloc_output(self, rows: int) -> np.ndarray:
        """A ``(rows, n)`` int64 matrix workers can write in place.

        The pool owns one reusable output segment; a second call (or a
        larger :meth:`trees` batch) may remap it, invalidating earlier
        views — treat the returned array as valid until the next batch.
        """
        if rows < 1:
            raise ValueError("rows must be >= 1")
        if self._serial:
            return np.empty((rows, self.n), dtype=np.int64)
        nbytes = rows * self.n * 8
        if self._out_shm is None or self._out_rows < rows:
            if self._out_shm is not None:
                self._retire(self._out_shm)
            self._out_shm = _create_segment(nbytes)
            self._out_rows = rows
        full = np.ndarray(
            (self._out_rows, self.n), dtype=np.int64, buffer=self._out_shm.buf
        )
        return full[:rows]

    def _own_output(self, out: np.ndarray, rows: int) -> bool:
        if self._serial:
            return True
        if self._out_shm is None:
            return False
        full = np.ndarray(
            (self._out_rows, self.n), dtype=np.int64, buffer=self._out_shm.buf
        )
        return bool(np.shares_memory(out, full))

    # -- execution ---------------------------------------------------------

    def trees(
        self, sources: Sequence[int], *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """All distances for every source, written into shared rows.

        Returns a ``(len(sources), n)`` view (row ``i`` = distances
        from ``sources[i]``, indexed by original vertex ID).  ``out``
        may be a matrix from :meth:`alloc_output` to control the
        buffer's lifetime; by default the pool's internal buffer is
        (re)used, so copy rows you need to keep across batches.
        """
        sources = [int(s) for s in sources]
        if not sources:
            return np.empty((0, self.n), dtype=np.int64)
        rows = len(sources)
        if out is None:
            out = self.alloc_output(rows)
        else:
            if out.shape != (rows, self.n) or out.dtype != np.int64:
                raise ValueError(
                    f"out must be a ({rows}, {self.n}) int64 matrix"
                )
            if not self._own_output(out, rows):
                raise ValueError(
                    "out must come from this pool's alloc_output() so "
                    "workers can reach it"
                )
        self._execute({"mode": "dist"}, sources, out)
        return out

    def reduce(self, sources: Sequence[int], reducer: TreeReducer):
        """Fold every tree through ``reducer`` inside the workers."""
        sources = [int(s) for s in sources]
        if not sources:
            return reducer.merge([])
        states = self._execute({"mode": "reduce", "reducer": reducer}, sources)
        return reducer.merge(states)

    def map(self, sources: Sequence[int], fn: Callable[[int, np.ndarray], object]) -> list:
        """Apply ``fn(source, dist)`` per tree in the workers, in order.

        ``fn`` must be picklable (module-level) when worker processes
        are active; use :meth:`trees` + a parent-side loop otherwise.
        """
        sources = [int(s) for s in sources]
        if not sources:
            return []
        parts = self._execute({"mode": "map", "fn": fn}, sources)
        merged: dict[int, object] = {}
        for part in parts:
            merged.update(part)
        return [merged[i] for i in range(len(sources))]

    def matrix(
        self,
        sources: Sequence[int],
        *,
        selection: tuple,
        search_cache: int = 0,
    ) -> np.ndarray:
        """Distance matrix rows over a published restricted selection.

        ``selection`` is the ``(name, specs)`` handle returned by
        :meth:`publish_arrays` for an ``RPhastEngine``'s
        ``selection_arrays()``.  Sources are chunked over the workers,
        each sweeping ``sources_per_sweep`` lanes per restricted pass;
        the result is ``(len(sources), |targets|)`` with columns
        aligned to the engine's (deduplicated, sorted) target set.

        Rows travel back through the result pipes rather than the
        shared dist segment — they are |targets|-sized, so the pickle
        cost is negligible and a failed batch leaves no stale writers
        behind.  Restricted sweeps are deterministic, so the matrix is
        bit-identical for every worker count and across worker deaths.
        """
        sources = [int(s) for s in sources]
        if not sources:
            return np.empty((0, 0), dtype=np.int64)
        name, specs = selection
        batch = {
            "mode": "matrix",
            "sel_name": name,
            "sel_specs": specs,
            "search_cache": int(search_cache),
        }
        parts = self._execute(batch, sources)
        merged: dict[int, np.ndarray] = {}
        for part in parts:
            merged.update(part)
        return np.stack([merged[i] for i in range(len(sources))])

    def retire_publication(self, name: str) -> None:
        self._restricted_local.pop(name, None)
        super().retire_publication(name)

    def _restricted_serial(self, batch: dict) -> RPhastEngine:
        name = batch["sel_name"]
        eng = self._restricted_local.get(name)
        if eng is None:
            views = self._local_segments[name]
            eng = RPhastEngine.from_arrays(
                self.ch, views, search_cache=batch.get("search_cache", 0)
            )
            self._restricted_local[name] = eng
            while len(self._restricted_local) > _MATRIX_ENGINE_CACHE:
                self._restricted_local.popitem(last=False)
        else:
            self._restricted_local.move_to_end(name)
        return eng

    def _execute_serial(self, batch: dict, sources: list[int], out=None):
        if batch["mode"] == "matrix":
            return [
                _matrix_rows(self._restricted_serial(batch), self.k, 0, sources)
            ]
        ctx = WorkerContext(self.n, {}, self._arrays, graphs=self._graphs)
        engine = self._engine
        k = self.k
        mode = batch["mode"]
        reducer = batch.get("reducer")
        fn = batch.get("fn")
        state = reducer.make_state(ctx) if mode == "reduce" else None
        results: dict[int, object] = {}
        for i in range(0, len(sources), k):
            sub = sources[i : i + k]
            if mode == "dist":
                if len(sub) == 1:
                    engine.tree(sub[0], dist_out=out[i])
                else:
                    engine.trees(sub, out=out[i : i + len(sub)])
                continue
            if len(sub) == 1:
                rows = engine.tree(sub[0]).dist[None, :]
            else:
                rows = engine.trees(sub)
            for j, (s, row) in enumerate(zip(sub, rows)):
                if mode == "reduce":
                    state = reducer.fold(ctx, state, i + j, s, row)
                else:
                    results[i + j] = fn(s, row)
        if mode == "dist":
            return None
        if mode == "reduce":
            return [reducer.finish(ctx, state)]
        return [results]


class TaskPool(_BasePool):
    """Generic task-mode pool on the :class:`PhastPool` machinery.

    Where a :class:`PhastPool` worker holds a warm sweep engine, a
    ``TaskPool`` worker holds a :class:`TaskContext` — views of the
    boot-published arrays plus a scratch ``state`` dict that persists
    across chunks — and executes an arbitrary module-level handler
    ``fn(ctx, common, item)`` per submitted item.  Everything else is
    inherited: shared-memory publication, per-worker simplex pipes,
    the supervisor (heartbeats, chunk deadlines, respawn, quarantine)
    and deterministic re-dispatch of a dead worker's chunks.

    Handlers must be pure functions of (published segments, ``common``,
    item): a re-dispatched chunk re-executes the handler on a
    survivor, and only determinism makes that invisible to callers.
    State that evolves between submissions (e.g. the parallel
    preprocessing coordinator's per-epoch graph snapshots) goes
    through :meth:`publish_arrays` / :meth:`retire_publication`;
    handlers attach by name via :meth:`TaskContext.attach`.

    Items are dispatched one per chunk with no prefetch — task items
    are coarse (a shard of vertices, not a single tree), so spreading
    them over every live worker matters more than pipelining pipe
    latency.
    """

    def __init__(
        self,
        *,
        arrays: Mapping[str, np.ndarray] | None = None,
        num_workers: int | None = None,
        context: str = "fork",
        force_pool: bool = False,
        chunk_size: int | None = 1,
        heartbeat_interval: float = 0.2,
        chunk_timeout: float | None = None,
        max_chunk_retries: int = 2,
        max_respawns: int | None = None,
        fault_plan: FaultPlan | str | None = None,
    ) -> None:
        self._boot_arrays = {
            name: np.ascontiguousarray(a) for name, a in (arrays or {}).items()
        }
        self._init_base(
            num_workers=num_workers,
            force_pool=force_pool,
            chunk_size=chunk_size,
            heartbeat_interval=heartbeat_interval,
            chunk_timeout=chunk_timeout,
            max_chunk_retries=max_chunk_retries,
            max_respawns=max_respawns,
            fault_plan=fault_plan,
        )
        self._prefetch = 0
        self._serial_ctx: TaskContext | None = None
        if not self._serial:
            self._start_workers(context)
        _LIVE_POOLS.add(self)

    def _published_arrays(self) -> dict[str, np.ndarray]:
        return dict(self._boot_arrays)

    def _worker_meta(self) -> dict:
        return {"kind": "task", "k": 1, "n": 0}

    def submit(self, fn: Callable, items: Sequence, common=None) -> list:
        """Run ``fn(ctx, common, item)`` for every item; results in order.

        ``fn`` and the items must be picklable (module-level function,
        plain-data items); ``common`` is batch-constant data shipped
        once per chunk.
        """
        items = list(items)
        if not items:
            return []
        parts = self._execute(
            {"mode": "task", "fn": fn, "common": common}, items
        )
        merged: dict[int, object] = {}
        for part in parts:
            merged.update(part)
        return [merged[i] for i in range(len(items))]

    def _execute_serial(self, batch: dict, items: list, out=None):
        if self._serial_ctx is None:
            self._serial_ctx = TaskContext(
                dict(self._boot_arrays), local_segments=self._local_segments
            )
        fn, common = batch["fn"], batch["common"]
        return [
            {i: fn(self._serial_ctx, common, item)
             for i, item in enumerate(items)}
        ]


def picklable(obj) -> bool:
    """True when ``obj`` survives a pickle round trip (worker transport)."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False
