"""RPHAST: PHAST restricted to a target set (one-to-many queries).

PHAST always sweeps *all* vertices, which is wasteful when only
distances to a target set ``T`` are needed (travel-time matrices,
k-nearest-POI queries).  The restriction the authors developed in the
follow-up work ("Faster Batched Shortest Paths in Road Networks",
Delling, Goldberg & Werneck) — and which the PHAST paper's one-to-all
framing invites — keeps only the part of the downward graph that can
reach ``T``:

* **selection** (target-dependent, source-independent): collect every
  vertex that reaches some target through downward arcs, by a reverse
  traversal over ``G↓`` from ``T``; freeze the induced sub-sweep in
  level order.
* **query** (per source): the usual upward CH search, then the linear
  sweep over the restricted structure only.

Correctness needs no new argument: for any ``t ∈ T``, the downward
portion of the shortest ``s → t`` path lies entirely inside the
selected set (each of its vertices reaches ``t`` through downward
arcs), so the restricted sweep relaxes every arc PHAST would have used
for ``t``.

For ``|T| ≪ n`` the selected set is a small cone and one-to-many
queries run orders of magnitude faster than a full sweep.

Matrix workloads layer two more reuse levels on top:

* multi-source *lane* sweeps (:meth:`RPhastEngine.sweep_lanes`) relax
  each restricted arc once for a whole group of sources, the same
  trick ``PhastEngine.trees`` uses on the full sweep;
* a :class:`SelectionCache` keeps frozen selections alive across
  requests keyed by target-set hash, so repeated queries against the
  same depot/POI sets pay selection once.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..ch.query import upward_search
from ..graph.csr import INF
from ..utils.segments import gather_ranges

__all__ = ["RPhastEngine", "SelectionCache"]

#: Arrays that fully describe a selection (see
#: :meth:`RPhastEngine.selection_arrays`); everything else an engine
#: needs is derived from these plus the hierarchy's upward graph.
SELECTION_KEYS = (
    "targets",
    "vertex_at",
    "target_pos",
    "arc_tail_pos",
    "arc_len",
    "arc_first",
    "level_first",
)


class RPhastEngine:
    """One-to-many engine over a fixed target set.

    Parameters
    ----------
    ch:
        Preprocessed hierarchy.
    targets:
        Target vertex IDs; duplicates are collapsed.
    search_cache:
        When positive, LRU-cache the per-source upward searches (in
        restricted-position form) for up to this many distinct
        sources — the same pattern as ``PhastEngine(search_cache=…)``.

    Notes
    -----
    Selection cost is proportional to the restricted subgraph, and is
    paid once per target set; queries reuse it for any number of
    sources (the asymmetry mirrors PHAST's own preprocessing/query
    split, one level down).

    Engines keep reusable sweep buffers, so a single instance is not
    safe for concurrent queries from multiple threads.
    """

    #: Same cutover as ``PhastEngine.SCALAR_ARC_THRESHOLD``: leading
    #: levels with fewer arcs than this are swept with plain Python
    #: scalars, where the NumPy call overhead dwarfs the work.
    SCALAR_ARC_THRESHOLD = 48

    #: Default lane width of :meth:`many_to_many`; matches the pool's
    #: default ``sources_per_sweep``.
    DEFAULT_LANES = 16

    def __init__(
        self,
        ch: ContractionHierarchy,
        targets,
        *,
        search_cache: int = 0,
    ) -> None:
        self.ch = ch
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        if targets.size == 0:
            raise ValueError("target set must be non-empty")
        if targets.min() < 0 or targets.max() >= ch.n:
            raise ValueError("target out of range")
        self.targets = targets
        self._build(ch, targets)
        self._prepare_query_state(search_cache)

    # ------------------------------------------------------------------
    # Selection

    def _build(self, ch: ContractionHierarchy, targets: np.ndarray) -> None:
        down = ch.downward_rev
        # Reverse traversal over G-down from the targets: the stored
        # adjacency lists exactly the higher-ranked tails of each
        # vertex's incoming downward arcs, i.e. its "parents" here.
        # Frontier-at-a-time: one gather over the CSR ranges of the
        # whole frontier per round instead of a Python stack.
        in_set = np.zeros(ch.n, dtype=bool)
        in_set[targets] = True
        frontier = targets
        while frontier.size:
            arc_idx, _ = gather_ranges(down.first, frontier)
            parents = down.arc_head[arc_idx]
            frontier = np.unique(parents[~in_set[parents]])
            in_set[frontier] = True
        selected = np.flatnonzero(in_set)

        # Order the selected vertices by descending level (ties by ID),
        # and renumber them 0..s-1 in sweep order.
        levels = ch.level[selected]
        order = np.lexsort((selected, -levels))
        self.vertex_at = selected[order]
        self.size = int(selected.size)
        self._pos_of = np.full(ch.n, -1, dtype=np.int64)
        self._pos_of[self.vertex_at] = np.arange(self.size, dtype=np.int64)
        self.target_pos = self._pos_of[self.targets]

        # Restricted arc arrays: all incoming downward arcs of selected
        # vertices (their tails are selected by construction), grouped
        # by head sweep position.
        arc_idx, _ = gather_ranges(down.first, self.vertex_at)
        if arc_idx.size:
            self.arc_tail_pos = self._pos_of[down.arc_head[arc_idx]]
            self.arc_len = np.ascontiguousarray(down.arc_len[arc_idx])
        else:
            self.arc_tail_pos = np.zeros(0, dtype=np.int64)
            self.arc_len = np.zeros(0, dtype=np.int64)
        counts = down.first[self.vertex_at + 1] - down.first[self.vertex_at]
        self.arc_first = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)

        # Level blocks over the restricted positions.
        lv = ch.level[self.vertex_at]
        cuts = np.flatnonzero(lv[1:] != lv[:-1]) + 1
        self.level_first = np.concatenate(([0], cuts, [self.size])).astype(
            np.int64
        )

    def _prepare_query_state(self, search_cache: int) -> None:
        """Derive sweep plans and buffers from the selection arrays.

        Everything here is a pure function of the arrays in
        :data:`SELECTION_KEYS`, so :meth:`from_arrays` can rebuild an
        engine from a published selection without redoing the
        traversal.
        """
        # Restricted selections are dominated by small levels, so the
        # same scalar-prefix trick PhastEngine uses matters even more
        # here (see PhastEngine.SCALAR_ARC_THRESHOLD).
        threshold = self.SCALAR_ARC_THRESHOLD
        scalar_levels = 0
        for i in range(self.level_first.size - 1):
            lo, hi = int(self.level_first[i]), int(self.level_first[i + 1])
            if int(self.arc_first[hi] - self.arc_first[lo]) >= threshold:
                break
            scalar_levels += 1
        self._scalar_levels = scalar_levels
        self._prefix_positions = int(self.level_first[scalar_levels])
        prefix_arcs = int(self.arc_first[self._prefix_positions])
        self._prefix_first = self.arc_first[: self._prefix_positions + 1].tolist()
        self._prefix_tails = self.arc_tail_pos[:prefix_arcs].tolist()
        self._prefix_lens = self.arc_len[:prefix_arcs].tolist()

        # Per-level reduceat plans, precomputed once: slice bounds plus
        # segment starts/occupancy, so the per-query loop allocates no
        # boundary arrays.
        self._level_plans = []
        max_arcs = 0
        max_width = 0
        for i in range(self.level_first.size - 1):
            lo, hi = int(self.level_first[i]), int(self.level_first[i + 1])
            alo, ahi = int(self.arc_first[lo]), int(self.arc_first[hi])
            bounds = self.arc_first[lo : hi + 1] - alo
            nonempty = bounds[:-1] < bounds[1:]
            starts = np.ascontiguousarray(bounds[:-1][nonempty])
            self._level_plans.append((lo, hi, alo, ahi, starts, nonempty))
            max_arcs = max(max_arcs, ahi - alo)
            max_width = max(max_width, hi - lo)

        self._dist = np.empty(self.size, dtype=np.int64)
        self._dist_multi: np.ndarray | None = None
        self._cand = np.empty(max_arcs, dtype=np.int64)
        self._values = np.empty(max_width, dtype=np.int64)

        self._search_cache_cap = int(search_cache)
        self._search_cache: OrderedDict[int, tuple] = OrderedDict()
        self.search_cache_hits = 0
        self.search_cache_misses = 0

    # ------------------------------------------------------------------
    # Sharing a selection across processes

    def selection_arrays(self) -> dict[str, np.ndarray]:
        """The arrays that define this selection, keyed for publication.

        Compact by design — ``_pos_of`` (full ``n``) is rebuilt on the
        far side — so a published selection costs O(selected), not
        O(n).  Feed the result to ``PhastPool.publish_arrays`` and
        rebuild with :meth:`from_arrays`.
        """
        return {key: getattr(self, key) for key in SELECTION_KEYS}

    @classmethod
    def from_arrays(
        cls,
        ch: ContractionHierarchy,
        views: dict[str, np.ndarray],
        *,
        search_cache: int = 0,
    ) -> "RPhastEngine":
        """Rebuild an engine from :meth:`selection_arrays` output.

        ``ch`` only needs ``n`` and the upward graph (a worker-side
        ``_WorkerHierarchy`` qualifies); the downward traversal is not
        repeated.
        """
        eng = cls.__new__(cls)
        eng.ch = ch
        for key in SELECTION_KEYS:
            setattr(eng, key, np.asarray(views[key]))
        eng.size = int(eng.vertex_at.size)
        eng._pos_of = np.full(ch.n, -1, dtype=np.int64)
        eng._pos_of[eng.vertex_at] = np.arange(eng.size, dtype=np.int64)
        eng._prepare_query_state(search_cache)
        return eng

    def freeze(self) -> "RPhastEngine":
        """Mark the selection arrays read-only (cache-safety) and return self."""
        for key in SELECTION_KEYS:
            arr = getattr(self, key)
            if arr.flags.owndata:
                arr.flags.writeable = False
        self._pos_of.flags.writeable = False
        return self

    # ------------------------------------------------------------------
    # Queries

    @property
    def num_arcs(self) -> int:
        """Downward arcs the restricted sweep scans."""
        return int(self.arc_len.size)

    def _search_by_position(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        """Upward search from ``source``, projected onto restricted positions.

        Returns ``(marked_pos, marked_val)`` sorted by position;
        LRU-cached when the engine was built with ``search_cache``.
        """
        cap = self._search_cache_cap
        if cap:
            cached = self._search_cache.get(source)
            if cached is not None:
                self._search_cache.move_to_end(source)
                self.search_cache_hits += 1
                return cached
            self.search_cache_misses += 1
        space = upward_search(self.ch, source)
        pos = self._pos_of[space.vertices]
        keep = pos >= 0
        pos, vals = pos[keep], space.dists[keep]
        order = np.argsort(pos)
        result = (pos[order], vals[order])
        if cap:
            for arr in result:
                arr.flags.writeable = False
            self._search_cache[source] = result
            if len(self._search_cache) > cap:
                self._search_cache.popitem(last=False)
        return result

    def _scalar_prefix_sweep(
        self, dist: np.ndarray, marked_pos: np.ndarray, marked_val: np.ndarray
    ) -> int:
        P = self._prefix_positions
        first = self._prefix_first
        tails = self._prefix_tails
        lens = self._prefix_lens
        inf = int(INF)
        mk = 0
        out = [0] * P
        for p in range(P):
            best = inf
            for i in range(first[p], first[p + 1]):
                c = out[tails[i]] + lens[i]
                if c < best:
                    best = c
            while mk < marked_pos.size and marked_pos[mk] == p:
                v = int(marked_val[mk])
                if v < best:
                    best = v
                mk += 1
            out[p] = best if best < inf else inf
        dist[:P] = out
        return mk

    def distances(self, source: int, *, all_selected: bool = False) -> np.ndarray:
        """Distances from ``source`` to the targets (one restricted sweep).

        Returns an array aligned with the (deduplicated, sorted)
        ``self.targets``; with ``all_selected=True``, labels for every
        selected vertex instead, aligned with ``self.vertex_at``.
        """
        marked_pos, marked_val = self._search_by_position(int(source))

        dist = self._dist
        mk = 0
        if self._prefix_positions:
            mk = self._scalar_prefix_sweep(dist, marked_pos, marked_val)
        arc_tail_pos = self.arc_tail_pos
        arc_len = self.arc_len
        for lo, hi, alo, ahi, starts, nonempty in self._level_plans[
            self._scalar_levels :
        ]:
            values = self._values[: hi - lo]
            values.fill(INF)
            if ahi > alo:
                cand = self._cand[: ahi - alo]
                # dist never exceeds INF and INF + max arc length still
                # fits in int64 (see graph.csr.INF), so the clamp below
                # is exact, not a truncation.
                np.add(dist[arc_tail_pos[alo:ahi]], arc_len[alo:ahi], out=cand)
                seg = np.minimum.reduceat(cand, starts)
                np.minimum(seg, INF, out=seg)
                values[nonempty] = seg
            mk_hi = int(np.searchsorted(marked_pos, hi, side="left"))
            if mk_hi > mk:
                np.minimum.at(
                    values, marked_pos[mk:mk_hi] - lo, marked_val[mk:mk_hi]
                )
                mk = mk_hi
            dist[lo:hi] = values
        if all_selected:
            return dist.copy()
        return dist[self.target_pos].copy()

    def sweep_lanes(self, sources) -> np.ndarray:
        """Distances for a lane group in ONE restricted sweep.

        Same multi-lane trick as ``PhastEngine.trees``: the distance
        matrix is ``(positions, k)`` row-major, each arc relaxation is
        a width-``k`` vector op, and all upward-search entry points are
        merged into a single position-sorted stream.  Returns
        ``(len(sources), len(targets))``.
        """
        sources = np.asarray(sources, dtype=np.int64)
        k = int(sources.size)
        if k == 0:
            return np.empty((0, self.targets.size), dtype=np.int64)
        if self._dist_multi is None or self._dist_multi.shape[1] != k:
            self._dist_multi = np.empty((self.size, k), dtype=np.int64)
        dist = self._dist_multi

        searches = [self._search_by_position(int(s)) for s in sources]
        mpos = np.concatenate([p for p, _ in searches])
        mlane = np.concatenate(
            [
                np.full(p.size, lane, dtype=np.int64)
                for lane, (p, _) in enumerate(searches)
            ]
        )
        mval = np.concatenate([v for _, v in searches])
        order = np.argsort(mpos, kind="stable")
        mpos, mlane, mval = mpos[order], mlane[order], mval[order]

        arc_tail_pos = self.arc_tail_pos
        arc_len = self.arc_len
        mk = 0
        for lo, hi, alo, ahi, starts, nonempty in self._level_plans:
            values = np.full((hi - lo, k), INF, dtype=np.int64)
            if ahi > alo:
                cand = dist[arc_tail_pos[alo:ahi], :] + arc_len[alo:ahi, None]
                seg = np.minimum.reduceat(cand, starts, axis=0)
                np.minimum(seg, INF, out=seg)
                values[nonempty] = seg
            mk_hi = int(np.searchsorted(mpos, hi, side="left"))
            if mk_hi > mk:
                np.minimum.at(
                    values,
                    (mpos[mk:mk_hi] - lo, mlane[mk:mk_hi]),
                    mval[mk:mk_hi],
                )
                mk = mk_hi
            dist[lo:hi, :] = values
        return np.ascontiguousarray(dist[self.target_pos, :].T)

    def many_to_many(self, sources, *, lanes: int | None = None) -> np.ndarray:
        """Distance matrix ``(len(sources), len(targets))``.

        The batched building block of travel-time-matrix services: one
        restricted *lane-group* sweep per ``lanes`` sources over the
        shared selection (instead of one sweep per source).
        """
        if lanes is None:
            lanes = self.DEFAULT_LANES
        if lanes < 1:
            raise ValueError("lanes must be positive")
        sources = np.asarray(sources, dtype=np.int64)
        out = np.empty((sources.size, self.targets.size), dtype=np.int64)
        for i in range(0, int(sources.size), lanes):
            group = sources[i : i + lanes]
            if group.size == 1:
                out[i] = self.distances(int(group[0]))
            else:
                out[i : i + group.size] = self.sweep_lanes(group)
        return out

    def cache_info(self) -> dict[str, int]:
        """Upward ``search_cache`` occupancy and hit counters."""
        return {
            "capacity": self._search_cache_cap,
            "entries": len(self._search_cache),
            "hits": self.search_cache_hits,
            "misses": self.search_cache_misses,
        }


class SelectionCache:
    """LRU cache of frozen :class:`RPhastEngine` selections.

    Keys are target-set hashes (:meth:`key_of`), values are whatever
    the caller stores — typically ``(engine, publication_handle)`` on a
    server.  An optional ``on_evict(key, value)`` hook runs when an
    entry falls off the LRU end (or on :meth:`clear`), which is where
    the server retires the selection's shared-memory publication.

    Not thread-safe by itself; the server funnels every access through
    the single MicroBatcher dispatch thread.
    """

    def __init__(
        self,
        capacity: int = 32,
        *,
        on_evict: Callable[[str, object], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.on_evict = on_evict
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_of(targets) -> str:
        """Order-insensitive content hash of a target set."""
        t = np.unique(np.asarray(targets, dtype=np.int64))
        return hashlib.blake2b(t.tobytes(), digest_size=16).hexdigest()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str):
        """The cached value, bumped to most-recent, or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            old_key, old_value = self._entries.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(old_key, old_value)

    def engine(self, ch: ContractionHierarchy, targets, **kwargs) -> RPhastEngine:
        """Cached-or-built engine for ``targets`` (library-side helper).

        The server uses :meth:`get`/:meth:`put` directly because its
        values also carry the pool publication handle.
        """
        key = self.key_of(targets)
        entry = self.get(key)
        if entry is None:
            entry = RPhastEngine(ch, targets, **kwargs).freeze()
            self.put(key, entry)
        return entry

    def clear(self) -> None:
        """Evict everything, running ``on_evict`` for each entry."""
        while self._entries:
            old_key, old_value = self._entries.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(old_key, old_value)

    def snapshot(self) -> dict[str, int]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
