"""RPHAST: PHAST restricted to a target set (one-to-many queries).

PHAST always sweeps *all* vertices, which is wasteful when only
distances to a target set ``T`` are needed (travel-time matrices,
k-nearest-POI queries).  The restriction the authors developed in the
follow-up work ("Faster Batched Shortest Paths in Road Networks",
Delling, Goldberg & Werneck) — and which the PHAST paper's one-to-all
framing invites — keeps only the part of the downward graph that can
reach ``T``:

* **selection** (target-dependent, source-independent): collect every
  vertex that reaches some target through downward arcs, by a reverse
  traversal over ``G↓`` from ``T``; freeze the induced sub-sweep in
  level order.
* **query** (per source): the usual upward CH search, then the linear
  sweep over the restricted structure only.

Correctness needs no new argument: for any ``t ∈ T``, the downward
portion of the shortest ``s → t`` path lies entirely inside the
selected set (each of its vertices reaches ``t`` through downward
arcs), so the restricted sweep relaxes every arc PHAST would have used
for ``t``.

For ``|T| ≪ n`` the selected set is a small cone and one-to-many
queries run orders of magnitude faster than a full sweep.
"""

from __future__ import annotations

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..ch.query import upward_search
from ..graph.csr import INF
from ..utils.segments import segment_minimum

__all__ = ["RPhastEngine"]


class RPhastEngine:
    """One-to-many engine over a fixed target set.

    Parameters
    ----------
    ch:
        Preprocessed hierarchy.
    targets:
        Target vertex IDs; duplicates are collapsed.

    Notes
    -----
    Selection cost is proportional to the restricted subgraph, and is
    paid once per target set; queries reuse it for any number of
    sources (the asymmetry mirrors PHAST's own preprocessing/query
    split, one level down).
    """

    def __init__(self, ch: ContractionHierarchy, targets) -> None:
        self.ch = ch
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        if targets.size == 0:
            raise ValueError("target set must be non-empty")
        if targets.min() < 0 or targets.max() >= ch.n:
            raise ValueError("target out of range")
        self.targets = targets
        self._build(ch, targets)

    def _build(self, ch: ContractionHierarchy, targets: np.ndarray) -> None:
        down = ch.downward_rev
        # Reverse traversal over G-down from the targets: the stored
        # adjacency lists exactly the higher-ranked tails of each
        # vertex's incoming downward arcs, i.e. its "parents" here.
        in_set = np.zeros(ch.n, dtype=bool)
        in_set[targets] = True
        stack = [int(t) for t in targets]
        while stack:
            v = stack.pop()
            for u in down.neighbors(v):
                if not in_set[u]:
                    in_set[u] = True
                    stack.append(int(u))
        selected = np.flatnonzero(in_set)

        # Order the selected vertices by descending level (ties by ID),
        # and renumber them 0..s-1 in sweep order.
        levels = ch.level[selected]
        order = np.lexsort((selected, -levels))
        self.vertex_at = selected[order]
        self.size = int(selected.size)
        self._pos_of = np.full(ch.n, -1, dtype=np.int64)
        self._pos_of[self.vertex_at] = np.arange(self.size, dtype=np.int64)
        self.target_pos = self._pos_of[self.targets]

        # Restricted arc arrays: all incoming downward arcs of selected
        # vertices (their tails are selected by construction), grouped
        # by head sweep position.
        starts = down.first[self.vertex_at]
        counts = down.first[self.vertex_at + 1] - starts
        total = int(counts.sum())
        if total:
            group_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
            within = np.arange(total, dtype=np.int64) - np.repeat(
                group_start, counts
            )
            arc_idx = np.repeat(starts, counts) + within
            self.arc_tail_pos = self._pos_of[down.arc_head[arc_idx]]
            self.arc_len = down.arc_len[arc_idx]
        else:
            self.arc_tail_pos = np.zeros(0, dtype=np.int64)
            self.arc_len = np.zeros(0, dtype=np.int64)
        self.arc_first = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)

        # Level blocks over the restricted positions.
        lv = ch.level[self.vertex_at]
        cuts = np.flatnonzero(lv[1:] != lv[:-1]) + 1
        self.level_first = np.concatenate(([0], cuts, [self.size])).astype(
            np.int64
        )
        self._dist = np.empty(self.size, dtype=np.int64)

        # Restricted selections are dominated by small levels, so the
        # same scalar-prefix trick PhastEngine uses matters even more
        # here (see PhastEngine.SCALAR_ARC_THRESHOLD).
        threshold = 48
        scalar_levels = 0
        for i in range(self.level_first.size - 1):
            lo, hi = int(self.level_first[i]), int(self.level_first[i + 1])
            if int(self.arc_first[hi] - self.arc_first[lo]) >= threshold:
                break
            scalar_levels += 1
        self._scalar_levels = scalar_levels
        self._prefix_positions = int(self.level_first[scalar_levels])
        prefix_arcs = int(self.arc_first[self._prefix_positions])
        self._prefix_first = self.arc_first[: self._prefix_positions + 1].tolist()
        self._prefix_tails = self.arc_tail_pos[:prefix_arcs].tolist()
        self._prefix_lens = self.arc_len[:prefix_arcs].tolist()

    @property
    def num_arcs(self) -> int:
        """Downward arcs the restricted sweep scans."""
        return int(self.arc_len.size)

    def distances(self, source: int, *, all_selected: bool = False) -> np.ndarray:
        """Distances from ``source`` to the targets (one restricted sweep).

        Returns an array aligned with the (deduplicated, sorted)
        ``self.targets``; with ``all_selected=True``, labels for every
        selected vertex instead, aligned with ``self.vertex_at``.
        """
        space = upward_search(self.ch, source)
        pos = self._pos_of[space.vertices]
        keep = pos >= 0
        pos, vals = pos[keep], space.dists[keep]
        order = np.argsort(pos)
        marked_pos, marked_val = pos[order], vals[order]

        dist = self._dist
        mk = 0
        if self._prefix_positions:
            P = self._prefix_positions
            first = self._prefix_first
            tails = self._prefix_tails
            lens = self._prefix_lens
            inf = int(INF)
            out = [0] * P
            for p in range(P):
                best = inf
                for i in range(first[p], first[p + 1]):
                    c = out[tails[i]] + lens[i]
                    if c < best:
                        best = c
                while mk < marked_pos.size and marked_pos[mk] == p:
                    v = int(marked_val[mk])
                    if v < best:
                        best = v
                    mk += 1
                out[p] = best if best < inf else inf
            dist[:P] = out
        for i in range(self._scalar_levels, self.level_first.size - 1):
            lo, hi = int(self.level_first[i]), int(self.level_first[i + 1])
            alo, ahi = int(self.arc_first[lo]), int(self.arc_first[hi])
            cand = dist[self.arc_tail_pos[alo:ahi]] + self.arc_len[alo:ahi]
            boundaries = self.arc_first[lo : hi + 1] - alo
            values = segment_minimum(cand, boundaries)
            np.minimum(values, INF, out=values)
            mk_hi = mk
            while mk_hi < marked_pos.size and marked_pos[mk_hi] < hi:
                mk_hi += 1
            if mk_hi > mk:
                np.minimum.at(
                    values, marked_pos[mk:mk_hi] - lo, marked_val[mk:mk_hi]
                )
            mk = mk_hi
            dist[lo:hi] = values
        if all_selected:
            return dist.copy()
        return dist[self.target_pos].copy()

    def many_to_many(self, sources) -> np.ndarray:
        """Distance matrix ``(len(sources), len(targets))``.

        The batched building block of travel-time-matrix services: one
        restricted sweep per source over the shared selection.
        """
        sources = np.asarray(sources, dtype=np.int64)
        out = np.empty((sources.size, self.targets.size), dtype=np.int64)
        for i, s in enumerate(sources):
            out[i] = self.distances(int(s))
        return out
