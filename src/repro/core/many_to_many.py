"""Bucket-based many-to-many distances over a contraction hierarchy.

The classic CH matrix algorithm (Knopp et al.) the RPHAST approach is
usually compared against: every target ``t`` runs a *backward* upward
search and deposits ``(t, d(v, t))`` into a bucket at each settled
vertex ``v``; every source then runs a forward upward search and, at
each settled vertex ``u`` with label ``d(s, u)``, scans ``u``'s bucket
to improve ``D[s, t] = min(..., d(s, u) + d(u, t))``.

Correctness is the usual CH argument: the maximum-rank vertex of a
shortest ``s → t`` path is reached exactly by both the forward search
from ``s`` (in ``G↑``) and the backward search from ``t`` (over the
reversed downward graph), so its bucket entry witnesses the true
distance.  Labels of other vertices are upper bounds and can only
*over*-estimate, never break, the minimum.

Work scales with (sources + targets) × search-space size — independent
of ``n`` once the hierarchy exists, which is why both this and RPHAST
beat |S| full PHAST sweeps for small matrices.
"""

from __future__ import annotations

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..ch.query import _relax_from
from ..graph.csr import INF

__all__ = ["many_to_many_buckets"]


def many_to_many_buckets(
    ch: ContractionHierarchy,
    sources,
    targets,
) -> np.ndarray:
    """Distance matrix ``(len(sources), len(targets))`` via buckets.

    Sources and targets are used as given (duplicates allowed); entries
    are :data:`~repro.graph.INF` where no path exists.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.size and (sources.min() < 0 or sources.max() >= ch.n):
        raise ValueError("source out of range")
    if targets.size and (targets.min() < 0 or targets.max() >= ch.n):
        raise ValueError("target out of range")

    # Backward phase: searches from each target over the reversed
    # downward graph (the same adjacency the CH query's backward
    # direction uses) fill the buckets.
    buckets: dict[int, list[tuple[int, int]]] = {}
    for j, t in enumerate(targets):
        settled, dist, _parent = _relax_from(ch.downward_rev, int(t))
        for v in settled:
            buckets.setdefault(v, []).append((j, dist[v]))

    # Forward phase: scan buckets along each source's upward search.
    out = np.full((sources.size, targets.size), INF, dtype=np.int64)
    for i, s in enumerate(sources):
        settled, dist, _parent = _relax_from(ch.upward, int(s))
        row = out[i]
        for u in settled:
            bucket = buckets.get(u)
            if not bucket:
                continue
            du = dist[u]
            for j, dt in bucket:
                total = du + dt
                if total < row[j]:
                    row[j] = total
    return out
