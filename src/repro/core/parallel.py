"""Parallel PHAST (Section V).

Two orthogonal strategies, both reproduced here:

* **Tree per core** — different sources are independent, so workers
  process disjoint source sets.  Implemented with worker processes
  (Python threads cannot parallelize the scalar parts).  Each worker
  owns one warm :class:`~repro.core.phast.PhastEngine` attached to the
  hierarchy through a shared-memory segment — the same "one copy of
  the read-only graph, pin a worker per core" discipline the paper
  applies (Section VIII-E).  :func:`trees_per_core` is the one-shot
  driver; :class:`~repro.core.pool.PhastPool` keeps the workers and
  segments resident across batches.
* **Intra-tree level parallelism** — vertices of one level can be
  processed concurrently because downward arcs never connect vertices
  of equal level (Lemma 4.1).  Each level's position range is split
  into blocks handed to a thread pool; NumPy kernels release the GIL,
  so blocks genuinely overlap for large levels.  This mirrors the
  paper's 4-core single-tree variant and is the scheduling model GPHAST
  inherits.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..graph.csr import INF
from ..utils.workers import DEFAULT_WORKER_CAP, resolve_workers
from .phast import PhastEngine

__all__ = [
    "trees_per_core",
    "tree_level_parallel",
    "block_boundaries",
    "resolve_workers",
    "DEFAULT_WORKER_CAP",
]

def trees_per_core(
    ch: ContractionHierarchy,
    sources: Sequence[int],
    *,
    num_workers: int | None = None,
    sources_per_sweep: int = 1,
    reduce: Callable[[int, np.ndarray], object] | None = None,
    force_pool: bool = False,
):
    """Compute many trees with one engine per worker process.

    Compatibility shim over :class:`~repro.core.pool.PhastPool`: a
    pool is created for the call and torn down afterwards.  Workloads
    issuing repeated batches should hold a :class:`PhastPool` directly
    and amortize the worker startup, hierarchy publication and engine
    builds across batches — that is the whole point of the pool.

    Parameters
    ----------
    ch:
        The shared hierarchy (published once via shared memory).
    sources:
        Roots, processed in order; results are returned in the same
        order.
    num_workers:
        Worker processes (default: CPU count, capped per
        :func:`resolve_workers`).  On a single-CPU machine multi-worker
        requests fall back to the serial engine unless ``force_pool``
        is set.
    sources_per_sweep:
        The ``k`` of Section IV-B applied inside each worker.
    reduce:
        Optional per-tree reducer ``(source, dist) -> value``; applied
        in the workers when picklable (pass one whenever
        ``len(sources) × n`` distances would not fit in memory), in
        the parent over the shared output matrix otherwise (closures
        cannot travel to persistent workers).
    force_pool:
        Spin up the process pool even when the fallback would trigger —
        for exercising the multiprocessing path on single-core boxes.

    Returns
    -------
    List of per-source results (reduced values, or distance arrays).
    """
    from .pool import PhastPool, picklable

    sources = [int(s) for s in sources]
    if not sources:
        return []
    with PhastPool(
        ch,
        num_workers=num_workers,
        sources_per_sweep=sources_per_sweep,
        force_pool=force_pool,
    ) as pool:
        if reduce is not None and (pool.serial or picklable(reduce)):
            return pool.map(sources, reduce)
        mat = pool.trees(sources)
        if reduce is not None:
            return [reduce(s, mat[i].copy()) for i, s in enumerate(sources)]
        # Rows are views into the pool's shared buffer, which dies with
        # the pool — hand back owning copies.
        return [mat[i].copy() for i in range(len(sources))]


def block_boundaries(lo: int, hi: int, num_blocks: int) -> list[tuple[int, int]]:
    """Split position range ``[lo, hi)`` into ~equal contiguous blocks."""
    size = hi - lo
    if size <= 0:
        return []
    num_blocks = max(1, min(num_blocks, size))
    cuts = np.linspace(lo, hi, num_blocks + 1).astype(np.int64)
    return [(int(a), int(b)) for a, b in zip(cuts[:-1], cuts[1:]) if b > a]


def tree_level_parallel(
    engine: PhastEngine,
    source: int,
    *,
    num_threads: int = 4,
    min_block: int = 2048,
) -> np.ndarray:
    """One PHAST tree with intra-level block parallelism.

    Levels are processed in descending order with a barrier between
    them; inside a level, position blocks go to a thread pool.  Small
    levels (fewer than ``min_block`` vertices) are processed inline —
    exactly the regime where the paper notes parallelization stops
    paying off (the topmost levels hold a handful of vertices).

    Returns distances indexed by original vertex ID.
    """
    if not engine.reorder:
        raise ValueError("level-parallel sweep requires a reordered engine")
    sw = engine.sweep
    dist = engine._dist
    marked_pos, marked_val = engine._search_by_position(source)
    mk = 0

    def run_block(i: int, blo: int, bhi: int) -> None:
        alo = int(sw.arc_first[blo])
        ahi = int(sw.arc_first[bhi])
        cand = dist[engine._tails[alo:ahi]] + sw.arc_len[alo:ahi]
        boundaries = sw.arc_first[blo : bhi + 1] - alo
        from ..utils.segments import segment_minimum

        values = segment_minimum(cand, boundaries)
        np.minimum(values, INF, out=values)
        dist[blo:bhi] = values

    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        for i in range(sw.num_levels):
            lo, hi = sw.level_slice(i)
            if hi - lo >= min_block and num_threads > 1:
                blocks = block_boundaries(lo, hi, num_threads)
                futures = [pool.submit(run_block, i, a, b) for a, b in blocks]
                for f in futures:
                    f.result()
            else:
                run_block(i, lo, hi)
            # Fold the CH search space entries of this level.
            mk_hi = mk
            while mk_hi < marked_pos.size and marked_pos[mk_hi] < hi:
                mk_hi += 1
            if mk_hi > mk:
                idx = marked_pos[mk:mk_hi]
                np.minimum.at(dist, idx, marked_val[mk:mk_hi])
            mk = mk_hi
    out = np.empty(sw.n, dtype=np.int64)
    out[sw.vertex_at] = dist
    return out
