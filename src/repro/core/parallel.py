"""Parallel PHAST (Section V).

Two orthogonal strategies, both reproduced here:

* **Tree per core** — different sources are independent, so workers
  process disjoint source sets.  Implemented with forked worker
  processes (Python threads cannot parallelize the scalar parts).  Each
  worker owns one :class:`~repro.core.phast.PhastEngine`, inheriting
  the read-only hierarchy via fork's copy-on-write pages — the same
  "copy the graph to each NUMA node, pin the thread" discipline the
  paper applies (Section VIII-E).
* **Intra-tree level parallelism** — vertices of one level can be
  processed concurrently because downward arcs never connect vertices
  of equal level (Lemma 4.1).  Each level's position range is split
  into blocks handed to a thread pool; NumPy kernels release the GIL,
  so blocks genuinely overlap for large levels.  This mirrors the
  paper's 4-core single-tree variant and is the scheduling model GPHAST
  inherits.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..graph.csr import INF
from .phast import PhastEngine

__all__ = [
    "trees_per_core",
    "tree_level_parallel",
    "block_boundaries",
    "resolve_workers",
]


def resolve_workers(num_workers: int | None = None) -> tuple[int, bool]:
    """Effective worker count for :func:`trees_per_core`.

    Returns ``(workers, fell_back)``.  ``fell_back`` is ``True`` when
    more than one worker was requested (or implied by the default) but
    the machine has a single CPU, so forking a process pool would only
    add IPC overhead on top of zero parallel speedup — the driver runs
    the serial engine instead.  Benchmarks surface the flag so a
    single-core run is never mistaken for a parallel measurement.
    """
    cpus = os.cpu_count() or 1
    if num_workers is None:
        num_workers = min(8, cpus)
    if num_workers > 1 and cpus <= 1:
        return 1, True
    return max(1, num_workers), False

# Worker-process state, inherited through fork and initialized lazily.
_WORKER_CH: ContractionHierarchy | None = None
_WORKER_ENGINE: PhastEngine | None = None
_WORKER_K: int = 1
_WORKER_REDUCE: Callable | None = None


def _worker_run(sources: list[int]):
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        _WORKER_ENGINE = PhastEngine(_WORKER_CH)
    eng = _WORKER_ENGINE
    results = []
    k = _WORKER_K
    for i in range(0, len(sources), k):
        chunk = sources[i : i + k]
        if len(chunk) == 1:
            dists = eng.tree(chunk[0]).dist[None, :]
        else:
            dists = eng.trees(chunk)
        for s, row in zip(chunk, dists):
            results.append(
                _WORKER_REDUCE(s, row) if _WORKER_REDUCE else row.copy()
            )
    return results


def trees_per_core(
    ch: ContractionHierarchy,
    sources: Sequence[int],
    *,
    num_workers: int | None = None,
    sources_per_sweep: int = 1,
    reduce: Callable[[int, np.ndarray], object] | None = None,
    force_pool: bool = False,
):
    """Compute many trees with one engine per worker process.

    Parameters
    ----------
    ch:
        The shared hierarchy (copy-on-write inherited by workers).
    sources:
        Roots, processed in order; results are returned in the same
        order.
    num_workers:
        Worker processes (default: CPU count, capped at 8).  On a
        single-CPU machine multi-worker requests fall back to the
        serial engine (see :func:`resolve_workers`) unless
        ``force_pool`` is set.
    sources_per_sweep:
        The ``k`` of Section IV-B applied inside each worker.
    reduce:
        Optional per-tree reducer ``(source, dist) -> value`` applied in
        the worker; pass one whenever ``len(sources) × n`` distances
        would not fit in memory (e.g. diameter keeps one max per tree).
    force_pool:
        Spin up the process pool even when the fallback would trigger —
        for exercising the multiprocessing path on single-core boxes.

    Returns
    -------
    List of per-source results (reduced values, or distance arrays).
    """
    sources = [int(s) for s in sources]
    if not sources:
        return []
    if force_pool:
        if num_workers is None:
            num_workers = min(8, os.cpu_count() or 1)
        num_workers = max(1, num_workers)
    else:
        num_workers, _ = resolve_workers(num_workers)
    if num_workers <= 1:
        global _WORKER_CH, _WORKER_ENGINE, _WORKER_K, _WORKER_REDUCE
        _WORKER_CH, _WORKER_ENGINE = ch, None
        _WORKER_K, _WORKER_REDUCE = sources_per_sweep, reduce
        return _worker_run(sources)

    import multiprocessing as mp

    ctx = mp.get_context("fork")
    # Round-robin split: tree cost is uniform, so equal-sized chunks
    # balance well and keep per-worker engines warm.
    num_workers = min(num_workers, len(sources))
    chunks = [sources[i::num_workers] for i in range(num_workers)]

    _set_worker_globals(ch, sources_per_sweep, reduce)
    with ctx.Pool(processes=len(chunks)) as pool:
        parts = pool.map(_worker_run, chunks)
    # Stitch the round-robin split back into source order.
    out: list = [None] * len(sources)
    for w, chunk in enumerate(chunks):
        for j, _s in enumerate(chunk):
            out[w + j * len(chunks)] = parts[w][j]
    return out


def _set_worker_globals(ch, k, reduce) -> None:
    global _WORKER_CH, _WORKER_ENGINE, _WORKER_K, _WORKER_REDUCE
    _WORKER_CH = ch
    _WORKER_ENGINE = None
    _WORKER_K = k
    _WORKER_REDUCE = reduce


def block_boundaries(lo: int, hi: int, num_blocks: int) -> list[tuple[int, int]]:
    """Split position range ``[lo, hi)`` into ~equal contiguous blocks."""
    size = hi - lo
    if size <= 0:
        return []
    num_blocks = max(1, min(num_blocks, size))
    cuts = np.linspace(lo, hi, num_blocks + 1).astype(np.int64)
    return [(int(a), int(b)) for a, b in zip(cuts[:-1], cuts[1:]) if b > a]


def tree_level_parallel(
    engine: PhastEngine,
    source: int,
    *,
    num_threads: int = 4,
    min_block: int = 2048,
) -> np.ndarray:
    """One PHAST tree with intra-level block parallelism.

    Levels are processed in descending order with a barrier between
    them; inside a level, position blocks go to a thread pool.  Small
    levels (fewer than ``min_block`` vertices) are processed inline —
    exactly the regime where the paper notes parallelization stops
    paying off (the topmost levels hold a handful of vertices).

    Returns distances indexed by original vertex ID.
    """
    if not engine.reorder:
        raise ValueError("level-parallel sweep requires a reordered engine")
    sw = engine.sweep
    dist = engine._dist
    marked_pos, marked_val = engine._search_by_position(source)
    mk = 0

    def run_block(i: int, blo: int, bhi: int) -> None:
        alo = int(sw.arc_first[blo])
        ahi = int(sw.arc_first[bhi])
        cand = dist[engine._tails[alo:ahi]] + sw.arc_len[alo:ahi]
        boundaries = sw.arc_first[blo : bhi + 1] - alo
        from ..utils.segments import segment_minimum

        values = segment_minimum(cand, boundaries)
        np.minimum(values, INF, out=values)
        dist[blo:bhi] = values

    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        for i in range(sw.num_levels):
            lo, hi = sw.level_slice(i)
            if hi - lo >= min_block and num_threads > 1:
                blocks = block_boundaries(lo, hi, num_threads)
                futures = [pool.submit(run_block, i, a, b) for a, b in blocks]
                for f in futures:
                    f.result()
            else:
                run_block(i, lo, hi)
            # Fold the CH search space entries of this level.
            mk_hi = mk
            while mk_hi < marked_pos.size and marked_pos[mk_hi] < hi:
                mk_hi += 1
            if mk_hi > mk:
                idx = marked_pos[mk:mk_hi]
                np.minimum.at(dist, idx, marked_val[mk:mk_hi])
            mk = mk_hi
    out = np.empty(sw.n, dtype=np.int64)
    out[sw.vertex_at] = dist
    return out
