"""Worker supervision for the batch pool (and chaos tooling around it).

PHAST sweeps are embarrassingly parallel *and* deterministic: any
chunk of sources produces bit-identical distance rows no matter which
worker computes it, or when.  That property makes worker-level fault
tolerance almost free — a crashed worker's in-flight chunk can simply
be handed to a survivor — yet the original :class:`PhastPool` turned
any worker death (OOM kill, segfault in a native library, stray
signal) into a stalled batch and a dead server.  This module supplies
the missing supervision pieces:

:class:`WorkerSupervisor`
    A monitor thread owned by the pool.  It watches each worker's
    ``Process.exitcode``, a shared heartbeat array (stale heartbeat =
    frozen process), and a per-chunk start stamp (stamp older than
    ``chunk_timeout`` = wedged worker).  Dead or wedged workers are
    killed and replaced by fresh processes that re-attach to the
    existing shared-memory segments; each death is published as a
    :class:`DeathEvent` so the pool can re-dispatch the victim's
    in-flight chunk to survivors.

:class:`FaultPlan` / ``REPRO_FAULT``
    A deterministic fault-injection hook compiled into the worker
    loop: crash (``SIGKILL`` to self, the OOM-killer stand-in), hang
    (block forever inside a chunk — only the chunk deadline can catch
    it), or slow (sleep before each matching chunk).  Faults can be
    scoped to a chunk id and/or worker slot and bounded by a shared
    trigger budget, so chaos tests are reproducible.

Structured failures
    :class:`ChunkQuarantined` (a chunk whose processing killed
    ``max_chunk_retries`` workers is failed instead of cascading
    through the whole pool) and :class:`PoolBroken` (no live workers
    and no respawn budget left).

Segment hygiene
    Pool segments are named ``repro-<pid>-<hex>`` so operators can
    attribute them; :func:`scan_segments` / :func:`unlink_orphans`
    implement the ``repro doctor`` subcommand that recovers a host
    whose ``/dev/shm`` fills up with segments leaked by killed runs.
"""

from __future__ import annotations

import os
import secrets
import signal
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "FaultPlan",
    "parse_fault_plan",
    "apply_fault",
    "ChunkQuarantined",
    "PoolBroken",
    "DeathEvent",
    "WorkerSupervisor",
    "SEGMENT_PREFIX",
    "SegmentInfo",
    "segment_name",
    "scan_segments",
    "unlink_orphans",
]


# ---------------------------------------------------------------------------
# Structured failures


class ChunkQuarantined(RuntimeError):
    """A chunk repeatedly killed its worker and was taken out of play.

    Raised by the pool instead of letting a poison chunk (one whose
    sweep reliably crashes the process that runs it) grind through the
    respawn budget.  Carries enough structure for a server to answer
    the affected requests with a real error instead of a stall.
    """

    def __init__(self, chunk_id: int, sources, deaths: int, reason: str) -> None:
        self.chunk_id = int(chunk_id)
        self.sources = [int(s) for s in sources]
        self.deaths = int(deaths)
        self.reason = reason
        head = ", ".join(str(s) for s in self.sources[:8])
        if len(self.sources) > 8:
            head += ", ..."
        super().__init__(
            f"chunk {self.chunk_id} (sources [{head}]) quarantined after "
            f"killing {self.deaths} worker(s); last death: {reason}"
        )


class PoolBroken(RuntimeError):
    """Every worker is gone and the respawn budget is exhausted."""


# ---------------------------------------------------------------------------
# Deterministic fault injection

_FAULT_KINDS = ("crash", "hang", "slow")


@dataclass(frozen=True)
class FaultPlan:
    """One injected fault, compiled into the worker chunk loop.

    Parameters
    ----------
    kind:
        ``"crash"`` (SIGKILL to self — indistinguishable from an OOM
        kill), ``"hang"`` (block inside the chunk forever; only a
        ``chunk_timeout`` can reclaim the worker), or ``"slow"``
        (sleep ``ms`` before the chunk — stretches batches so chaos
        tests can land a kill mid-flight).
    chunk:
        Trigger only on this chunk id within a batch (``None`` = any).
    worker:
        Trigger only in this worker slot (``None`` = any).
    times:
        Total trigger budget shared across all workers and respawns
        (``None`` = unlimited).  The default injects exactly once for
        crash/hang — the "one incident" chaos scenario — and
        unlimited for slow.
    ms:
        Sleep for ``kind="slow"``.
    """

    kind: str
    chunk: int | None = None
    worker: int | None = None
    times: int | None = field(default=None)
    ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {_FAULT_KINDS} (got {self.kind!r})"
            )
        if self.chunk is not None and self.chunk < 0:
            raise ValueError("fault chunk must be >= 0")
        if self.worker is not None and self.worker < 0:
            raise ValueError("fault worker must be >= 0")
        if self.times is not None and self.times < 1:
            raise ValueError("fault times must be >= 1 (or None for unlimited)")
        if self.ms < 0:
            raise ValueError("fault ms must be >= 0")
        if self.times is None and self.kind in ("crash", "hang"):
            # Default budget: one incident (a crash loop is the
            # poison-chunk scenario and must be asked for explicitly).
            object.__setattr__(self, "times", 1)


def parse_fault_plan(spec: str | None) -> FaultPlan | None:
    """Parse a ``REPRO_FAULT`` spec: ``kind[:key=value,...]``.

    Examples: ``crash``, ``crash:chunk=2``, ``crash:chunk=2,times=2``
    (the poison-chunk scenario), ``hang:chunk=1``, ``slow:ms=25``,
    ``slow:ms=25,worker=0``.  Empty/None specs return ``None``.
    """
    if spec is None or not spec.strip():
        return None
    head, _, rest = spec.strip().partition(":")
    kind = head.strip().lower()
    fields: dict = {}
    for part in (p for p in rest.split(",") if p.strip()):
        key, sep, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not sep:
            raise ValueError(f"fault field {part!r} is not key=value")
        try:
            if key == "chunk":
                fields["chunk"] = None if value in ("any", "*") else int(value)
            elif key == "worker":
                fields["worker"] = None if value in ("any", "*") else int(value)
            elif key == "times":
                fields["times"] = None if value in ("inf", "*") else int(value)
            elif key == "ms":
                fields["ms"] = float(value)
            else:
                raise ValueError(
                    f"unknown fault field {key!r} "
                    "(known: chunk, worker, times, ms)"
                )
        except ValueError as exc:
            if "fault field" in str(exc):
                raise
            raise ValueError(f"bad fault field {part!r}: {exc}") from None
    return FaultPlan(kind=kind, **fields)


def apply_fault(plan: FaultPlan | None, budget, slot: int, chunk_id: int) -> None:
    """Worker-side hook: fire ``plan`` if this (worker, chunk) matches.

    ``budget`` is a shared ``multiprocessing.Value`` trigger counter
    (``None`` = unlimited), decremented atomically so respawned
    workers and concurrent matches cannot over-fire.
    """
    if plan is None:
        return
    if plan.chunk is not None and plan.chunk != chunk_id:
        return
    if plan.worker is not None and plan.worker != slot:
        return
    if budget is not None:
        with budget.get_lock():
            if budget.value <= 0:
                return
            budget.value -= 1
    if plan.kind == "slow":
        time.sleep(plan.ms / 1e3)
        return
    if plan.kind == "hang":
        # The heartbeat thread keeps beating: only the supervisor's
        # per-chunk deadline can reclaim a hung worker, which is
        # exactly the path this fault exists to exercise.
        while True:
            time.sleep(3600)
    os.kill(os.getpid(), signal.SIGKILL)


# ---------------------------------------------------------------------------
# The supervisor


@dataclass(frozen=True)
class DeathEvent:
    """One worker death, as observed by the monitor thread.

    ``batch_id``/``chunk_id`` identify the chunk the worker held when
    it died (``None`` when it died idle); the pool re-dispatches that
    chunk to survivors and counts deaths per chunk for quarantine.
    """

    slot: int
    incarnation: int
    reason: str
    exitcode: int | None
    batch_id: int | None
    chunk_id: int | None


class _WorkerHandle:
    __slots__ = ("process", "slot", "incarnation")

    def __init__(self, process, slot: int, incarnation: int) -> None:
        self.process = process
        self.slot = slot
        self.incarnation = incarnation


class WorkerSupervisor:
    """Monitor thread + shared health arrays for one pool's workers.

    The supervisor owns two small shared arrays the workers write into
    (lock-free: each slot is written by exactly one live process, and
    8-byte aligned stores are atomic on every platform we run on):

    * ``hb`` (float64, 2 per slot): ``hb[2s]`` last heartbeat stamp
      (written ~2x per ``heartbeat_interval`` by a worker-side beat
      thread, so it keeps beating even while a sweep runs), and
      ``hb[2s+1]`` the start stamp of the chunk in flight (0 = idle).
    * ``claims`` (int64, 2 per slot): ``(batch_id, chunk_id)`` of the
      chunk in flight — what the pool re-dispatches after a death.

    Detection policy, every ``heartbeat_interval``: a non-``None``
    ``exitcode`` is a death; a chunk stamp older than ``chunk_timeout``
    (when set) is a wedged worker (killed, then handled as a death);
    a heartbeat older than ``heartbeat_timeout`` is a frozen process
    (SIGSTOP, unkillable pageout) — same treatment.  Each death is
    recorded as a :class:`DeathEvent` and, while the respawn budget
    lasts, the slot is refilled with a fresh process that re-attaches
    to the existing shared-memory segments.
    """

    def __init__(
        self,
        ctx,
        num_slots: int,
        *,
        heartbeat_interval: float = 0.2,
        chunk_timeout: float | None = None,
        max_respawns: int | None = None,
    ) -> None:
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be > 0 (or None)")
        self.num_slots = num_slots
        self.heartbeat_interval = float(heartbeat_interval)
        self.chunk_timeout = chunk_timeout
        #: Freeze detection must tolerate scheduler starvation on
        #: oversubscribed hosts; the beat thread runs at interval/2.
        self.heartbeat_timeout = max(10.0 * self.heartbeat_interval, 5.0)
        self.hb = ctx.Array("d", 2 * num_slots, lock=False)
        self.claims = ctx.Array("q", 2 * num_slots, lock=False)
        self.respawn_budget = (
            3 * num_slots if max_respawns is None else int(max_respawns)
        )
        self.deaths = 0
        self.restarts = 0
        self.wedged = 0
        self._workers: list[_WorkerHandle | None] = [None] * num_slots
        self._spawn_fn = None
        self._incarnation = num_slots
        self._events: list[DeathEvent] = []
        self._spawn_failures: list[str] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._closing = False
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, spawn_fn) -> None:
        """Spawn every slot via ``spawn_fn(slot, incarnation)``; monitor."""
        self._spawn_fn = spawn_fn
        now = time.monotonic()
        with self._lock:
            for slot in range(self.num_slots):
                self.hb[2 * slot] = now
                self._workers[slot] = _WorkerHandle(spawn_fn(slot, slot), slot, slot)
        self._thread = threading.Thread(
            target=self._run, name="phast-pool-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop monitoring and respawning (workers are the pool's to join)."""
        with self._lock:
            self._closing = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def abort(self) -> None:
        """Signal-safe stop: flags only, no joins, no locks."""
        self._closing = True
        self._stop.set()

    # -- monitoring --------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.scan()
            except Exception:
                pass  # the monitor must survive any transient

    def scan(self) -> None:
        """One detection pass (the monitor calls this periodically)."""
        with self._lock:
            self._scan_locked(time.monotonic())

    def _scan_locked(self, now: float) -> None:
        if self._closing:
            return
        for slot in range(self.num_slots):
            handle = self._workers[slot]
            if handle is None:
                # A previous respawn attempt failed at spawn time and
                # left the slot empty.  Retry every scan pass while the
                # budget lasts: a transient fork failure (EAGAIN under
                # memory pressure) heals, and a persistent one drains
                # the budget so ``healthy()`` goes false and the batch
                # loop raises PoolBroken instead of waiting forever on
                # a slot nothing will ever fill.
                self._respawn_locked(slot)
                continue
            process = handle.process
            code = process.exitcode
            if code is not None:
                self._death_locked(
                    slot, handle, f"worker exited with code {code}", code
                )
                continue
            if self.chunk_timeout is not None:
                started = self.hb[2 * slot + 1]
                if started > 0 and now - started > self.chunk_timeout:
                    self._kill_locked(
                        slot,
                        handle,
                        f"chunk deadline exceeded "
                        f"({now - started:.1f}s > {self.chunk_timeout:.1f}s)",
                    )
                    continue
            beat = self.hb[2 * slot]
            if beat > 0 and now - beat > self.heartbeat_timeout:
                self._kill_locked(
                    slot, handle, f"heartbeat stale for {now - beat:.1f}s"
                )

    def _kill_locked(self, slot: int, handle: _WorkerHandle, reason: str) -> None:
        self.wedged += 1
        try:
            handle.process.kill()
        except Exception:
            pass
        handle.process.join(timeout=5)
        self._death_locked(slot, handle, reason, handle.process.exitcode)

    def _death_locked(self, slot: int, handle: _WorkerHandle, reason: str,
                      exitcode) -> None:
        # The dead process cannot write anymore, so its claim arrays
        # are stable; a chunk stamp > 0 means it died holding a chunk.
        active = self.hb[2 * slot + 1] > 0
        self.deaths += 1
        self._events.append(DeathEvent(
            slot=slot,
            incarnation=handle.incarnation,
            reason=reason,
            exitcode=exitcode,
            batch_id=int(self.claims[2 * slot]) if active else None,
            chunk_id=int(self.claims[2 * slot + 1]) if active else None,
        ))
        del self._events[:-256]
        self._workers[slot] = None
        self._respawn_locked(slot)

    def _respawn_locked(self, slot: int) -> None:
        if self._closing or self._spawn_fn is None or self.respawn_budget <= 0:
            return
        self.respawn_budget -= 1
        incarnation = self._incarnation
        self._incarnation += 1
        self.hb[2 * slot] = time.monotonic()
        self.hb[2 * slot + 1] = 0.0
        self.claims[2 * slot] = 0
        self.claims[2 * slot + 1] = 0
        try:
            process = self._spawn_fn(slot, incarnation)
        except Exception as exc:  # fork failure: the slot stays empty
            self._spawn_failures.append(repr(exc))
            return
        self._workers[slot] = _WorkerHandle(process, slot, incarnation)
        self.restarts += 1

    # -- pool-facing queries -----------------------------------------------

    @property
    def lock(self) -> threading.Lock:
        """Serialises slot mutation (spawn/respawn run under it).

        The pool takes it when retiring a dead incarnation's channel
        so a concurrent scan-pass respawn can't have its freshly
        installed channel clobbered.
        """
        return self._lock

    def pop_events(self) -> list[DeathEvent]:
        """Drain the pending death events (consumed by the batch loop)."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def alive_count(self) -> int:
        with self._lock:
            return sum(
                1 for h in self._workers
                if h is not None and h.process.exitcode is None
            )

    def can_respawn(self) -> bool:
        return not self._closing and self.respawn_budget > 0

    def healthy(self) -> bool:
        """False only when nothing is alive and nothing can come back."""
        return self.alive_count() > 0 or self.can_respawn()

    def all_idle(self) -> bool:
        """No live worker currently holds a chunk."""
        with self._lock:
            return all(
                self.hb[2 * s + 1] == 0
                for s in range(self.num_slots)
                if self._workers[s] is not None
            )

    def processes(self) -> list:
        with self._lock:
            return [h.process for h in self._workers if h is not None]

    def stats(self) -> dict:
        """JSON-able counters for ``health``/``metrics`` endpoints."""
        return {
            "alive": self.alive_count(),
            "deaths": self.deaths,
            "restarts": self.restarts,
            "wedged": self.wedged,
            "respawn_budget": self.respawn_budget,
            "spawn_failures": len(self._spawn_failures),
        }


# ---------------------------------------------------------------------------
# Shared-memory segment hygiene (`repro doctor`)

#: Every pool segment is named ``repro-<creator pid>-<hex>`` so a
#: leaked segment can be attributed to a (possibly dead) process.
SEGMENT_PREFIX = "repro-"
SHM_DIR = "/dev/shm"


def segment_name(tag: str | None = None) -> str:
    """A fresh pool segment name carrying the creator's pid.

    ``tag`` inserts a classification token between the pid and the
    random suffix (``repro-<pid>-<tag>-<hex>``); metric-swap segments
    use ``m<generation>`` so ``repro doctor`` can attribute a weight
    segment stranded by a failed swap.  Tags must be alphanumeric —
    a dash would break the pid/tag/suffix split.
    """
    if tag is not None and (not tag or not tag.isalnum()):
        raise ValueError(f"segment tag must be alphanumeric, got {tag!r}")
    mid = f"{tag}-" if tag is not None else ""
    return f"{SEGMENT_PREFIX}{os.getpid()}-{mid}{secrets.token_hex(4)}"


@dataclass(frozen=True)
class SegmentInfo:
    """One shared-memory segment as seen by ``repro doctor``."""

    name: str
    path: str
    size_bytes: int
    pid: int | None
    owner_alive: bool
    #: ``"pool"`` (boot/output/selection), ``"metric"`` (a
    #: ``swap_metric`` weight segment), or ``"unknown"``.
    kind: str = "pool"
    #: Metric generation parsed from an ``m<gen>`` tag, else ``None``.
    generation: int | None = None
    #: Seconds since the segment file was last modified (None if the
    #: stat raced with an unlink).
    age_seconds: float | None = None

    @property
    def orphaned(self) -> bool:
        """Safe to unlink: the creating process is verifiably gone."""
        return self.pid is not None and not self.owner_alive


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def scan_segments(prefix: str = SEGMENT_PREFIX,
                  shm_dir: str = SHM_DIR) -> list[SegmentInfo]:
    """List shared-memory segments matching the pool's naming prefix.

    A segment whose embedded creator pid no longer exists is flagged
    orphaned.  Segments whose name cannot be attributed to a pid are
    reported but never considered orphaned (we refuse to guess).
    """
    if not os.path.isdir(shm_dir):
        return []
    now = time.time()
    infos: list[SegmentInfo] = []
    for entry in sorted(os.listdir(shm_dir)):
        if not entry.startswith(prefix):
            continue
        path = os.path.join(shm_dir, entry)
        try:
            st = os.stat(path)
        except OSError:
            continue  # raced with an unlink
        pid: int | None = None
        kind = "unknown"
        generation: int | None = None
        rest = entry[len(prefix):]
        head, _, tail = rest.partition("-")
        if head.isdigit():
            pid = int(head)
            kind = "pool"
            tag = tail.split("-", 1)[0]
            if len(tag) > 1 and tag[0] == "m" and tag[1:].isdigit():
                kind = "metric"
                generation = int(tag[1:])
        infos.append(SegmentInfo(
            name=entry,
            path=path,
            size_bytes=st.st_size,
            pid=pid,
            owner_alive=_pid_alive(pid) if pid is not None else True,
            kind=kind,
            generation=generation,
            age_seconds=max(0.0, now - st.st_mtime),
        ))
    return infos


def unlink_orphans(infos: list[SegmentInfo] | None = None, *,
                   prefix: str = SEGMENT_PREFIX,
                   shm_dir: str = SHM_DIR) -> list[SegmentInfo]:
    """Unlink every orphaned segment; returns what was removed."""
    if infos is None:
        infos = scan_segments(prefix, shm_dir)
    removed: list[SegmentInfo] = []
    for info in infos:
        if not info.orphaned:
            continue
        try:
            os.unlink(info.path)
        except FileNotFoundError:
            continue
        except OSError:
            continue  # permissions: leave it for the operator
        removed.append(info)
    return removed
