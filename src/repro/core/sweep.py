"""The PHAST sweep data structure.

:class:`SweepStructure` freezes everything the linear sweep needs into
flat arrays ordered for locality, following Section IV-A:

* vertices are assigned *sweep positions* sorted by descending CH level
  (ties broken by input ID, preserving whatever locality — e.g. a DFS
  layout — the input order had);
* the downward arcs into each vertex are stored contiguously, grouped
  by head, in sweep-position order, so one pass over the arc arrays
  visits heads sequentially;
* per-level boundaries into both the position range and the arc range
  let the sweep (and its parallel/GPU variants) process one level at a
  time with pure slice arithmetic.

The structure is source-independent — built once per hierarchy, reused
by every query, which is the asymmetry PHAST exploits.
"""

from __future__ import annotations

import numpy as np

from ..ch.hierarchy import ContractionHierarchy

__all__ = ["SweepStructure"]


class SweepStructure:
    """Level-ordered downward graph, frozen for linear sweeps.

    Attributes
    ----------
    n:
        Vertex count.
    pos_of:
        ``pos_of[v]`` is the sweep position of original vertex ``v``.
    vertex_at:
        Inverse permutation: original ID at each sweep position.
    num_levels:
        Number of CH levels.
    level_first:
        Array of length ``num_levels + 1``; level block ``i`` (the
        ``i``-th *scanned*, i.e. the ``i``-th highest level) covers
        sweep positions ``level_first[i] .. level_first[i+1]-1``.
    arc_first:
        CSR offsets per sweep position into the arc arrays
        (length ``n + 1``).
    arc_tail_pos:
        Sweep position of each downward arc's tail.
    arc_len:
        Length of each downward arc.
    arc_via:
        Shortcut middle vertex (original ID) per arc, -1 for original
        arcs; used when reconstructing parent pointers in ``G+``.

    Notes
    -----
    The per-arc arrays (``arc_tail_pos``, ``arc_len``) and the offset
    array ``arc_first`` are narrowed to 32-bit when the instance fits
    (position and arc counts and lengths below 2³¹) — the
    paper's GPU lays arcs out exactly so (4-byte tail + 4-byte length,
    4-byte offsets), and halving the scanned bytes is part of what the
    sweep's memory-bandwidth bound is about.  Arithmetic against the
    ``int64`` distance array promotes, so consumers are unaffected.
    """

    __slots__ = (
        "n",
        "pos_of",
        "vertex_at",
        "num_levels",
        "level_first",
        "arc_first",
        "arc_tail_pos",
        "arc_len",
        "arc_via",
        "level_of_pos",
    )

    def __init__(self, ch: ContractionHierarchy) -> None:
        n = ch.n
        self.n = n
        levels = ch.level
        order = np.lexsort((np.arange(n), -levels))  # by (-level, id)
        self.vertex_at = order.astype(np.int64)
        self.pos_of = np.empty(n, dtype=np.int64)
        self.pos_of[order] = np.arange(n, dtype=np.int64)
        self.level_of_pos = levels[order]
        self.num_levels = int(levels.max()) + 1 if n else 0

        # Level boundaries over sweep positions (descending level).
        # level_first[i] = first position whose level <= max_level - i.
        counts = np.bincount(levels, minlength=self.num_levels)[::-1]
        self.level_first = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)

        # Downward arcs: ch.downward_rev stores, per head v, the tails u
        # (rank[u] > rank[v]).  Re-group by head *sweep position*.
        down = ch.downward_rev
        heads_orig = down.arc_tails()  # head of the downward arc
        tails_orig = down.arc_head  # tail (higher-ranked endpoint)
        head_pos = self.pos_of[heads_orig]
        arc_order = np.argsort(head_pos, kind="stable")
        head_pos = head_pos[arc_order]
        self.arc_tail_pos = self.pos_of[tails_orig[arc_order]]
        self.arc_len = down.arc_len[arc_order].astype(np.int64)
        self.arc_via = ch.downward_via[arc_order].astype(np.int64)
        self.arc_first = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self.arc_first, head_pos + 1, 1)
        np.cumsum(self.arc_first, out=self.arc_first)

        # Narrow to the GPU layout's 32-bit entries when they fit.
        m = int(self.arc_len.size)
        max_len = int(self.arc_len.max()) if m else 0
        if n <= np.iinfo(np.int32).max and max_len <= np.iinfo(np.int32).max:
            self.arc_tail_pos = self.arc_tail_pos.astype(np.int32)
            self.arc_len = self.arc_len.astype(np.int32)
        # int32 rather than uint32: unsigned offsets promote through
        # cumsum/concatenate to uint64 and then float64 downstream.
        if m <= np.iinfo(np.int32).max:
            self.arc_first = self.arc_first.astype(np.int32)

    @classmethod
    def from_arrays(
        cls,
        *,
        n: int,
        num_levels: int,
        pos_of: np.ndarray,
        vertex_at: np.ndarray,
        level_first: np.ndarray,
        arc_first: np.ndarray,
        arc_tail_pos: np.ndarray,
        arc_len: np.ndarray,
        arc_via: np.ndarray,
        level_of_pos: np.ndarray,
    ) -> "SweepStructure":
        """Wrap prebuilt sweep arrays without re-sorting anything.

        Used by :class:`~repro.core.pool.PhastPool` workers, which
        receive the arrays as zero-copy shared-memory views: the
        structure is built once in the parent and merely re-wrapped
        here, so attaching costs O(1) instead of an O(n log n) rebuild
        per worker.
        """
        self = cls.__new__(cls)
        self.n = int(n)
        self.num_levels = int(num_levels)
        self.pos_of = pos_of
        self.vertex_at = vertex_at
        self.level_first = level_first
        self.arc_first = arc_first
        self.arc_tail_pos = arc_tail_pos
        self.arc_len = arc_len
        self.arc_via = arc_via
        self.level_of_pos = level_of_pos
        return self

    @property
    def num_arcs(self) -> int:
        """Downward arcs scanned per sweep."""
        return int(self.arc_len.size)

    def level_slice(self, i: int) -> tuple[int, int]:
        """Sweep-position range of the ``i``-th scanned level block."""
        return int(self.level_first[i]), int(self.level_first[i + 1])

    def level_arc_slice(self, i: int) -> tuple[int, int]:
        """Arc range feeding the ``i``-th scanned level block."""
        lo, hi = self.level_slice(i)
        return int(self.arc_first[lo]), int(self.arc_first[hi])

    def level_sizes(self) -> np.ndarray:
        """Vertices per scanned level block (descending level order)."""
        return np.diff(self.level_first)

    @property
    def nbytes(self) -> int:
        """Bytes of the sweep arrays (GPU memory accounting uses this)."""
        return (
            self.arc_first.nbytes
            + self.arc_tail_pos.nbytes
            + self.arc_len.nbytes
            + self.level_first.nbytes
        )
