"""GPHAST: the PHAST sweep on a (modeled) GPU (Section VI).

The CPU stays responsible for the upward CH searches; the linear sweep
is "outsourced" to the GPU — here, executed numerically by the same
vectorized kernel PHAST uses, while a :class:`~repro.simulator.gpu.
GpuCostModel` charges the schedule (one kernel per level, one thread
per vertex and tree, coalesced transactions) to a real card's spec
sheet.  Distances are therefore exact and bit-identical to PHAST; the
*time* is the model's output, reported alongside.

The paper's rejected design — reordering vertices by degree so warps
process equal-degree vertices — is also modeled
(:meth:`GphastEngine.degree_ordered_report`) to reproduce the
Section VI observation that it hurts tail-label locality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..simulator.gpu import GTX_580, GpuCostModel, GpuSpec, GpuSweepReport
from .phast import PhastEngine

__all__ = ["GphastEngine", "GphastResult"]


@dataclass
class GphastResult:
    """Distances plus the modeled GPU cost of producing them."""

    sources: np.ndarray
    dist: np.ndarray  # (k, n), original vertex IDs
    report: GpuSweepReport
    ch_search_ms_estimate: float
    parents: list[np.ndarray] | None = None  # per source, in G+


class GphastEngine:
    """GPHAST query engine: exact sweeps, modeled GPU timing.

    Parameters
    ----------
    ch:
        Preprocessed hierarchy.
    gpu:
        Card to model (default: the paper's GTX 580).
    """

    def __init__(self, ch: ContractionHierarchy, gpu: GpuSpec = GTX_580) -> None:
        self.engine = PhastEngine(ch, reorder=True)
        self.model = GpuCostModel(gpu)
        sw = self.engine.sweep
        self._level_verts = sw.level_sizes()
        self._level_arcs = np.diff(sw.arc_first[sw.level_first])

    @property
    def sweep(self):
        return self.engine.sweep

    def check_memory(self, k: int) -> bool:
        """Does the graph plus ``k`` label arrays fit on the card?"""
        sw = self.engine.sweep
        return (
            self.model.device_memory_mb(sw.n, sw.num_arcs, k)
            <= self.model.spec.mem_gb * 1024
        )

    def trees(self, sources) -> GphastResult:
        """Compute ``k = len(sources)`` trees in one modeled sweep."""
        sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        k = int(sources.size)
        if k == 1:
            dist = self.engine.tree(int(sources[0])).dist[None, :]
        else:
            dist = self.engine.trees(sources)
        report = self.model.sweep_cost(
            self._level_verts,
            self._level_arcs,
            k,
            n=self.engine.sweep.n,
            m=self.engine.sweep.num_arcs,
        )
        # CH searches run on the CPU; the paper measures < 0.05 ms per
        # source including the < 2 KB host-to-device copy.
        ch_ms = 0.05 * k
        return GphastResult(
            sources=sources, dist=dist, report=report, ch_search_ms_estimate=ch_ms
        )

    def trees_with_parents(self, sources) -> GphastResult:
        """Trees plus parent pointers, with the reconstruction modeled.

        Section VII-B-b uses "GPHAST with tree reconstruction" to cut
        arc-flag preprocessing to minutes: recovering parents costs one
        extra pass over the arc list per tree (checking the identity
        ``d(v) = d(u) + l(u, v)``), which the model charges as pure
        additional streaming traffic.
        """
        sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        result = self.trees(sources)
        k = int(sources.size)
        result.parents = [
            self.engine._parents_gplus(int(s), result.dist[i])
            for i, s in enumerate(sources)
        ]
        sw = self.engine.sweep
        # Extra pass: arc records + tail labels + parent writes, per tree.
        extra_bytes = k * (sw.num_arcs * 12 + sw.n * 4)
        extra_ms = extra_bytes / (self.model.spec.mem_bandwidth_gbs * 1e9) * 1e3
        r = result.report
        r.total_ms += extra_ms
        r.per_tree_ms = r.total_ms / max(1, k)
        r.memory_ms += extra_ms
        return result

    def degree_ordered_report(self, k: int = 1) -> GpuSweepReport:
        """Model the rejected degree-ordered warp assignment.

        Sorting vertices by degree within a level makes warps uniform
        but destroys the level-locality of tail labels: the gather hits
        a different transaction per lane.  The model charges the gather
        at full transaction width per lane with no k-lane sharing,
        which is what the paper observed ("a strong negative effect on
        the locality of the distance labels").
        """
        spec = self.model.spec
        degraded = GpuCostModel(
            GpuSpec(
                name=spec.name + " (degree-ordered)",
                sms=spec.sms,
                cores_per_sm=spec.cores_per_sm,
                warp_size=spec.warp_size,
                core_clock_mhz=spec.core_clock_mhz,
                mem_clock_mhz=spec.mem_clock_mhz,
                mem_bandwidth_gbs=spec.mem_bandwidth_gbs,
                mem_gb=spec.mem_gb,
                kernel_launch_us=spec.kernel_launch_us,
                # Every lane's gather fetches its own 32-byte segment.
                transaction_bytes=32 * max(1, k),
                instr_per_relaxation=spec.instr_per_relaxation,
                instr_per_label_write=spec.instr_per_label_write,
            )
        )
        return degraded.sweep_cost(
            self._level_verts, self._level_arcs, k,
            n=self.engine.sweep.n, m=self.engine.sweep.num_arcs,
        )
