"""The PHAST algorithm: single-source shortest path trees in two phases.

A query (Section III) is:

1. a forward CH search from the source in ``G↑`` (tiny — hundreds of
   vertices), and
2. a *linear sweep* over all vertices in descending level order,
   relaxing each vertex's incoming downward arcs.

Phase 2's scan order is source-independent, so
:class:`~repro.core.sweep.SweepStructure` pre-sorts everything by level
(Section IV-A) and the sweep becomes a handful of contiguous NumPy
operations per level — the reproduction's stand-in for the paper's
SSE-vectorized C++ loop.  A scalar reference implementation
(:func:`phast_scalar`) keeps the fast path honest in tests.

Initialization is *implicit* (Section IV-C): the sweep writes every
label exactly once per query (empty in-arc segments produce ∞, the CH
search space is folded in per level), so the distance array is never
globally reset.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..ch.query import upward_search
from ..graph.csr import INF, StaticGraph
from ..sssp.result import ShortestPathTree
from ..utils.segments import segment_minimum
from .sweep import SweepStructure

__all__ = ["PhastEngine", "phast_scalar"]


class PhastEngine:
    """Reusable PHAST query engine over one contraction hierarchy.

    Parameters
    ----------
    ch:
        Preprocessed hierarchy (see :func:`repro.ch.contract_graph`).
    reorder:
        ``True`` (default) sweeps over level-contiguous positions — the
        paper's "reordered by level" variant with sequential output
        writes.  ``False`` keeps original vertex IDs and uses
        scatter/gather per level — the "original ordering" variant of
        Table I, which does the same work with worse locality.
    explicit_init:
        ``True`` re-fills the whole distance array with ∞ before every
        query instead of relying on implicit initialization; exists for
        the Section IV-C ablation.
    sweep:
        A prebuilt :class:`~repro.core.sweep.SweepStructure` for ``ch``
        (by default one is built here).  Pool workers pass the shared
        sweep arrays so every worker skips the O(n log n) rebuild.

    Notes
    -----
    The engine owns a persistent distance buffer, so queries after the
    first perform no O(n) initialization (implicit init).  Engines are
    not thread-safe; use one per worker.
    """

    #: Levels with fewer incoming arcs than this are swept with plain
    #: Python loops: the hierarchy's top levels hold a handful of
    #: vertices each, and fixed NumPy call overhead would dominate
    #: there (the small-kernel regime the paper notes for its GPU
    #: kernels too).
    SCALAR_ARC_THRESHOLD = 48

    def __init__(
        self,
        ch: ContractionHierarchy,
        *,
        reorder: bool = True,
        explicit_init: bool = False,
        sweep: SweepStructure | None = None,
        search_cache: int = 0,
    ) -> None:
        self.ch = ch
        self.sweep = SweepStructure(ch) if sweep is None else sweep
        self.reorder = bool(reorder)
        self.explicit_init = bool(explicit_init)
        # LRU of upward CH search spaces.  The space of a source is a
        # pure function of the (read-only) hierarchy, and computing it
        # is the only per-source scalar work of a sweep — a server
        # answering repeat origins (depots, hubs, popular tiles) skips
        # it entirely on a hit.  ~a few KB per entry.
        self._search_cache_cap = int(search_cache)
        self._search_cache: "OrderedDict[int, tuple]" = OrderedDict()
        self.search_cache_hits = 0
        self.search_cache_misses = 0
        n = ch.n
        if self.reorder:
            self._tails = self.sweep.arc_tail_pos
        else:
            # Original-ID mode: translate sweep positions back to IDs.
            self._tails = self.sweep.vertex_at[self.sweep.arc_tail_pos]
        self._dist = np.empty(n, dtype=np.int64)
        self._dist_multi: np.ndarray | None = None
        self.last_stats: dict = {}
        self._prepare_scalar_prefix()

    def _prepare_scalar_prefix(self) -> None:
        """Precompute the leading small levels handled by scalar code.

        Only meaningful for the reordered implicit-init fast path; the
        prefix is contiguous because the sweep is level-descending and
        every arc's tail position precedes its head position, so the
        prefix is self-contained.
        """
        sw = self.sweep
        scalar_levels = 0
        if self.reorder and not self.explicit_init:
            for i in range(sw.num_levels):
                alo, ahi = sw.level_arc_slice(i)
                if ahi - alo >= self.SCALAR_ARC_THRESHOLD:
                    break
                scalar_levels += 1
        self._scalar_levels = scalar_levels
        self._prefix_positions = int(sw.level_first[scalar_levels])
        prefix_arcs = int(sw.arc_first[self._prefix_positions])
        # Python-list shadows: scalar indexing of lists is several times
        # faster than scalar indexing of NumPy arrays.
        self._prefix_first = sw.arc_first[: self._prefix_positions + 1].tolist()
        self._prefix_tails = sw.arc_tail_pos[:prefix_arcs].tolist()
        self._prefix_lens = sw.arc_len[:prefix_arcs].tolist()
        # Per-level reduceat plans (static across queries): slice
        # bounds, the starts of non-empty head segments, and the mask
        # of heads with any incoming arc.
        self._level_plans: list[tuple[int, int, int, int, np.ndarray, np.ndarray]] = []
        for i in range(sw.num_levels):
            lo, hi = sw.level_slice(i)
            alo, ahi = sw.level_arc_slice(i)
            bounds = sw.arc_first[lo : hi + 1] - alo
            nonempty = bounds[:-1] < bounds[1:]
            starts = bounds[:-1][nonempty]
            self._level_plans.append((lo, hi, alo, ahi, starts, nonempty))

    # -- internals --------------------------------------------------------

    def _search_by_position(
        self, source: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """CH search space as (sorted sweep positions, labels)."""
        if self._search_cache_cap:
            cached = self._search_cache.get(source)
            if cached is not None:
                self._search_cache.move_to_end(source)
                self.search_cache_hits += 1
                self.last_stats["ch_search_size"] = cached[0].size
                return cached
            self.search_cache_misses += 1
        space = upward_search(self.ch, source)
        pos = self.sweep.pos_of[space.vertices]
        order = np.argsort(pos)
        self.last_stats["ch_search_size"] = space.size
        result = (pos[order], space.dists[order])
        if self._search_cache_cap:
            for arr in result:
                arr.flags.writeable = False
            self._search_cache[source] = result
            if len(self._search_cache) > self._search_cache_cap:
                self._search_cache.popitem(last=False)
        return result

    def _level_values(
        self,
        i: int,
        dist: np.ndarray,
        marked_pos: np.ndarray,
        marked_val: np.ndarray,
        mk_lo: int,
    ) -> tuple[np.ndarray, int, int, int]:
        """Compute the labels of level block ``i``.

        Returns ``(values, lo, hi, next_mk_lo)`` where ``values`` are
        the final labels of sweep positions ``lo .. hi - 1`` and
        ``next_mk_lo`` advances the pointer into the marked (CH search)
        entries.
        """
        sw = self.sweep
        lo, hi, alo, ahi, starts, nonempty = self._level_plans[i]
        cand = dist[self._tails[alo:ahi]] + sw.arc_len[alo:ahi]
        values = np.full(hi - lo, INF, dtype=np.int64)
        if starts.size:
            seg = np.minimum.reduceat(cand, starts)
            np.minimum(seg, INF, out=seg)
            values[nonempty] = seg
        # Fold the CH search space entries that fall in this block.
        mk_hi = mk_lo
        while mk_hi < marked_pos.size and marked_pos[mk_hi] < hi:
            mk_hi += 1
        if mk_hi > mk_lo:
            idx = marked_pos[mk_lo:mk_hi] - lo
            np.minimum.at(values, idx, marked_val[mk_lo:mk_hi])
        return values, lo, hi, mk_hi

    # -- single tree --------------------------------------------------------

    def tree(
        self,
        source: int,
        *,
        with_parents: bool = False,
        dist_out: np.ndarray | None = None,
    ) -> ShortestPathTree:
        """Compute all distances from ``source`` (one PHAST query).

        Distances are returned indexed by *original* vertex IDs.  With
        ``with_parents=True`` the parents are recovered in ``G+``
        (shortcut arcs allowed; see :mod:`repro.core.trees` for
        original-graph trees).  ``dist_out`` (length-``n`` int64)
        receives the labels in place — pool workers pass rows of a
        shared output matrix so no per-query array is allocated.
        """
        sw = self.sweep
        dist = self._dist
        if self.explicit_init:
            dist.fill(INF)
        marked_pos, marked_val = self._search_by_position(source)
        if self.explicit_init:
            # With a pre-filled array the search space can be scattered
            # up front; the sweep then folds dist itself per level.
            idx = marked_pos if self.reorder else sw.vertex_at[marked_pos]
            dist[idx] = np.minimum(dist[idx], marked_val)
        mk = 0
        start_level = 0
        if self._scalar_levels:
            mk = self._scalar_prefix_sweep(dist, marked_pos, marked_val)
            start_level = self._scalar_levels
        for i in range(start_level, sw.num_levels):
            if self.explicit_init:
                lo, hi = sw.level_slice(i)
                alo, ahi = sw.level_arc_slice(i)
                cand = dist[self._tails[alo:ahi]] + sw.arc_len[alo:ahi]
                boundaries = sw.arc_first[lo : hi + 1] - alo
                block = dist[lo:hi] if self.reorder else dist[sw.vertex_at[lo:hi]]
                values = segment_minimum(cand, boundaries, initial=block)
                np.minimum(values, INF, out=values)
            else:
                values, lo, hi, mk = self._level_values(
                    i, dist, marked_pos, marked_val, mk
                )
            if self.reorder:
                dist[lo:hi] = values
            else:
                dist[sw.vertex_at[lo:hi]] = values
        if self.reorder:
            out = dist_out if dist_out is not None else np.empty(sw.n, dtype=np.int64)
            out[sw.vertex_at] = dist
        elif dist_out is not None:
            np.copyto(dist_out, dist)
            out = dist_out
        else:
            out = dist.copy()
        tree = ShortestPathTree(source=source, dist=out, scanned=sw.n)
        if with_parents:
            tree.parent = self._parents_gplus(source, out)
        return tree

    def tree_with_sweep_parents(self, source: int) -> ShortestPathTree:
        """One query computing parents *during* the sweep (Section VII-A).

        "When scanning v during the linear sweep phase, it suffices to
        remember the arc (u, v) responsible for d(v)" — per level, the
        first arc achieving the segment minimum is recovered with one
        vectorized comparison; vertices realized by the CH search take
        their upward-search parent.  Parents are in ``G+`` (shortcuts
        allowed).  Requires the reordered engine.
        """
        if not self.reorder:
            raise ValueError("sweep parents require a reordered engine")
        sw = self.sweep
        n = sw.n
        dist = self._dist
        space = upward_search(self.ch, source)
        pos = sw.pos_of[space.vertices]
        order = np.argsort(pos)
        marked_pos = pos[order]
        marked_val = space.dists[order]
        marked_parent = space.parents[order]
        self.last_stats["ch_search_size"] = space.size

        parent_pos = np.full(n, -1, dtype=np.int64)  # by sweep position
        from_search = np.zeros(n, dtype=bool)
        mk = 0
        for i in range(sw.num_levels):
            lo, hi, alo, ahi, starts, nonempty = self._level_plans[i]
            cand = dist[self._tails[alo:ahi]] + sw.arc_len[alo:ahi]
            values = np.full(hi - lo, INF, dtype=np.int64)
            if starts.size:
                seg = np.minimum.reduceat(cand, starts)
                np.minimum(seg, INF, out=seg)
                values[nonempty] = seg
                # Arc responsible: first hit of the segment minimum.
                owner = np.repeat(
                    np.arange(hi - lo, dtype=np.int64),
                    np.diff(sw.arc_first[lo : hi + 1]),
                )
                hits = np.flatnonzero(cand == values[owner])
                if hits.size:
                    heads, first_hit = np.unique(
                        owner[hits], return_index=True
                    )
                    arc_idx = alo + hits[first_hit]
                    parent_pos[lo + heads] = self._tails[arc_idx]
            # CH search space entries of this block.
            mk_hi = mk
            while mk_hi < marked_pos.size and marked_pos[mk_hi] < hi:
                mk_hi += 1
            for j in range(mk, mk_hi):
                p = int(marked_pos[j])
                v = int(marked_val[j])
                if v < values[p - lo]:
                    values[p - lo] = v
                    from_search[p] = True
                    parent_pos[p] = marked_parent[j]  # original-ID parent!
            mk = mk_hi
            dist[lo:hi] = values

        # Translate: sweep positions -> original IDs.  Entries set from
        # the CH search already hold original IDs (flagged).
        out = np.empty(n, dtype=np.int64)
        out[sw.vertex_at] = dist
        parent = np.full(n, -1, dtype=np.int64)
        swept = (parent_pos >= 0) & ~from_search
        parent[sw.vertex_at[swept]] = sw.vertex_at[parent_pos[swept]]
        searched = (parent_pos >= 0) & from_search
        parent[sw.vertex_at[searched]] = parent_pos[searched]
        parent[source] = -1
        return ShortestPathTree(
            source=source, dist=out, parent=parent, scanned=n
        )

    def _scalar_prefix_sweep(
        self, dist: np.ndarray, marked_pos: np.ndarray, marked_val: np.ndarray
    ) -> int:
        """Sweep the leading small levels with plain Python loops.

        Returns the advanced pointer into the marked (CH search)
        entries.  Writes the computed prefix into ``dist`` in one shot.
        """
        P = self._prefix_positions
        first = self._prefix_first
        tails = self._prefix_tails
        lens = self._prefix_lens
        inf = int(INF)
        mpos = marked_pos
        mval = marked_val
        mk = 0
        out = [0] * P
        for pos in range(P):
            best = inf
            for i in range(first[pos], first[pos + 1]):
                c = out[tails[i]] + lens[i]
                if c < best:
                    best = c
            while mk < mpos.size and mpos[mk] == pos:
                v = int(mval[mk])
                if v < best:
                    best = v
                mk += 1
            out[pos] = best if best < inf else inf
        dist[:P] = out
        return mk

    # -- multiple trees -------------------------------------------------------

    def trees(
        self, sources: np.ndarray | list[int], out: np.ndarray | None = None
    ) -> np.ndarray:
        """Compute ``k`` trees in one sweep (Section IV-B).

        The ``k`` labels of one vertex are adjacent in memory (a
        ``(n, k)`` row-major array), so each arc relaxation updates a
        contiguous lane vector — NumPy's analogue of the paper's SSE
        lanes.

        Returns an ``(k, n)`` array of distances indexed by original
        vertex ID; ``out`` of that shape receives the result in place
        (pool workers pass slices of a shared output matrix).
        """
        sources = np.asarray(sources, dtype=np.int64)
        k = sources.size
        sw = self.sweep
        if self._dist_multi is None or self._dist_multi.shape[1] != k:
            self._dist_multi = np.empty((sw.n, k), dtype=np.int64)
        dist = self._dist_multi
        spaces = [self._search_by_position(int(s)) for s in sources]
        # Merge the k upward search spaces into one position-sorted
        # (pos, lane, value) stream so each level applies its marked
        # entries with a single fancy-indexed minimum — the per-lane
        # Python loop this replaces was a measurable slice of wide
        # sweeps.
        mpos = np.concatenate([sp[0] for sp in spaces])
        mlane = np.concatenate(
            [np.full(sp[0].size, j, dtype=np.int64) for j, sp in enumerate(spaces)]
        )
        mval = np.concatenate([sp[1] for sp in spaces])
        order = np.argsort(mpos, kind="stable")
        mpos, mlane, mval = mpos[order], mlane[order], mval[order]
        mk = 0
        for i in range(sw.num_levels):
            lo, hi, alo, ahi, starts, nonempty = self._level_plans[i]
            cand = dist[self._tails[alo:ahi], :] + sw.arc_len[alo:ahi, None]
            values = np.full((hi - lo, k), INF, dtype=np.int64)
            if starts.size:
                seg = np.minimum.reduceat(cand, starts, axis=0)
                np.minimum(seg, INF, out=seg)
                values[nonempty] = seg
            mk_hi = int(np.searchsorted(mpos, hi, side="left"))
            if mk_hi > mk:
                np.minimum.at(
                    values,
                    (mpos[mk:mk_hi] - lo, mlane[mk:mk_hi]),
                    mval[mk:mk_hi],
                )
                mk = mk_hi
            dist[lo:hi, :] = values
        if out is None:
            out = np.empty((k, sw.n), dtype=np.int64)
        elif out.shape != (k, sw.n):
            raise ValueError(f"out must have shape ({k}, {sw.n})")
        out[:, sw.vertex_at] = dist.T
        return out

    # -- parents ---------------------------------------------------------------

    def _parents_gplus(self, source: int, dist_orig: np.ndarray) -> np.ndarray:
        """Parent pointers in ``G+`` (may traverse shortcut arcs).

        For every vertex the arc that realizes its label is recovered
        by re-checking the identity ``d(v) == d(u) + l(u, v)`` over the
        downward arc list; vertices whose label came from the CH search
        get their upward-search parent.
        """
        sw = self.sweep
        n = sw.n
        parent = np.full(n, -1, dtype=np.int64)
        tails_orig = sw.vertex_at[sw.arc_tail_pos]
        heads_orig = sw.vertex_at[
            np.repeat(np.arange(n, dtype=np.int64), np.diff(sw.arc_first))
        ]
        ok = dist_orig[heads_orig] == dist_orig[tails_orig] + sw.arc_len
        ok &= dist_orig[heads_orig] < INF
        # Positive arcs first: the parent's label is strictly smaller,
        # so these chains can never cycle (last write wins; any
        # satisfying arc is a valid parent).  Zero-length arcs connect
        # equal-label vertices and are deferred — picking them blindly
        # can orient a zero-cycle into a parent cycle.
        pos = ok & (sw.arc_len > 0)
        parent[heads_orig[pos]] = tails_orig[pos]
        # Vertices realized by the upward search (no downward arc
        # matches): take CH-search parents.
        space = upward_search(self.ch, source)
        need = parent[space.vertices] == -1
        exact = dist_orig[space.vertices] == space.dists
        use = need & exact
        parent[space.vertices[use]] = space.parents[use]
        parent[source] = -1
        # Zero-length ties: attach still-unresolved vertices only to
        # already-resolved tails, in rounds.  Every assignment points
        # at a vertex whose chain is known to terminate, so the result
        # stays acyclic; every finite label is reachable this way
        # because along its shortest path the first vertex of any
        # zero-length stretch is realized by a positive arc, the
        # upward search, or the source itself.
        zero = ok & (sw.arc_len == 0)
        if np.any(zero):
            zt, zh = tails_orig[zero], heads_orig[zero]
            while True:
                pending = (parent[zh] == -1) & (zh != source)
                pending &= (parent[zt] != -1) | (zt == source)
                if not np.any(pending):
                    break
                parent[zh[pending]] = zt[pending]
        return parent


def phast_scalar(
    ch: ContractionHierarchy, source: int, *, with_parents: bool = False
) -> ShortestPathTree:
    """Reference implementation of basic PHAST (Section III).

    Scans vertices one by one in descending rank order with plain
    Python loops.  Used to validate the vectorized engine; far too slow
    for benchmarks.
    """
    n = ch.n
    dist = np.full(n, INF, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64) if with_parents else None
    space = upward_search(ch, source)
    for v, d, p in zip(space.vertices, space.dists, space.parents):
        if d < dist[v]:
            dist[v] = d
            if parent is not None:
                parent[v] = p
    down = ch.downward_rev
    order = np.argsort(-ch.rank)  # descending rank
    for v in order:
        lo, hi = down.first[v], down.first[v + 1]
        for i in range(lo, hi):
            u = int(down.arc_head[i])
            nd = dist[u] + int(down.arc_len[i])
            if nd < dist[v]:
                dist[v] = nd
                if parent is not None:
                    parent[v] = u
    if parent is not None:
        parent[source] = -1
    return ShortestPathTree(source=source, dist=dist, parent=parent, scanned=n)
