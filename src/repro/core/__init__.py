"""PHAST core: sweep structure, query engines, parallel drivers, trees."""

from .gphast import GphastEngine, GphastResult
from .many_to_many import many_to_many_buckets
from .parallel import (
    block_boundaries,
    resolve_workers,
    tree_level_parallel,
    trees_per_core,
)
from .phast import PhastEngine, phast_scalar
from .pool import (
    PhastPool,
    TaskContext,
    TaskPool,
    TreeReducer,
    WorkerContext,
    install_signal_guard,
)
from .rphast import RPhastEngine, SelectionCache
from .supervisor import (
    ChunkQuarantined,
    FaultPlan,
    PoolBroken,
    WorkerSupervisor,
    parse_fault_plan,
)
from .sweep import SweepStructure
from .trees import (
    parents_in_original_graph,
    subtree_aggregate,
    tree_depths,
    validate_tree,
)

__all__ = [
    "PhastEngine",
    "phast_scalar",
    "RPhastEngine",
    "SelectionCache",
    "many_to_many_buckets",
    "SweepStructure",
    "GphastEngine",
    "GphastResult",
    "PhastPool",
    "TaskPool",
    "TaskContext",
    "TreeReducer",
    "WorkerContext",
    "install_signal_guard",
    "WorkerSupervisor",
    "FaultPlan",
    "parse_fault_plan",
    "ChunkQuarantined",
    "PoolBroken",
    "trees_per_core",
    "tree_level_parallel",
    "block_boundaries",
    "resolve_workers",
    "parents_in_original_graph",
    "validate_tree",
    "subtree_aggregate",
    "tree_depths",
]
