"""Shortest path tree construction and traversal (Section VII-A).

PHAST's sweep produces distance labels; applications usually also need
the tree itself.  Parents *in the original graph* are recovered with a
single vectorized pass over the original arc list, checking the identity
``d(v) == d(u) + l(u, v)`` — valid whenever original arc lengths are
strictly positive (zero-length arcs could build cyclic "trees"; callers
with zero-length arcs should use ``G+`` parents instead).

Bottom-up aggregation over the tree (needed by reach and betweenness) is
done level-synchronously in the same sweep order the labels were
computed in, which the paper notes is the cache-efficient way to
traverse the result.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import INF, StaticGraph

__all__ = [
    "parents_in_original_graph",
    "validate_tree",
    "subtree_aggregate",
    "tree_depths",
]


def parents_in_original_graph(
    graph: StaticGraph, dist: np.ndarray, source: int
) -> np.ndarray:
    """Recover original-graph parent pointers from distance labels.

    One pass over the arc list: for every arc ``(u, v)`` with
    ``d(u) + l(u, v) == d(v)`` make ``u`` the parent of ``v``.  When
    several arcs qualify an arbitrary one wins — all describe shortest
    paths.

    Parameters
    ----------
    graph:
        The *original* graph (not ``G+``).
    dist:
        Correct distance labels from ``source`` (e.g. a PHAST result).
    source:
        The root; its parent is -1.
    """
    if graph.m and int(graph.arc_len.min()) <= 0:
        raise ValueError(
            "original-graph tree recovery requires strictly positive arc "
            "lengths (Section VII-A); use G+ parents otherwise"
        )
    n = graph.n
    parent = np.full(n, -1, dtype=np.int64)
    tails = graph.arc_tails()
    heads = graph.arc_head
    finite = dist[tails] < INF
    ok = finite & (dist[tails] + graph.arc_len == dist[heads])
    parent[heads[ok]] = tails[ok]
    parent[source] = -1
    return parent


def validate_tree(
    graph: StaticGraph, dist: np.ndarray, parent: np.ndarray, source: int
) -> bool:
    """Check that ``parent`` encodes a valid shortest-path tree.

    Verifies that every reachable non-source vertex has a parent, that
    each parent arc exists with the right length, and that labels are
    consistent along tree arcs.
    """
    n = graph.n
    reached = dist < INF
    if not reached[source] or dist[source] != 0:
        return False
    for v in np.flatnonzero(reached):
        v = int(v)
        if v == source:
            continue
        u = int(parent[v])
        if u < 0:
            return False
        try:
            l = graph.arc_length(u, v)
        except KeyError:
            return False
        if dist[u] + l != dist[v]:
            return False
    return True


def tree_depths(parent: np.ndarray, dist: np.ndarray, source: int) -> np.ndarray:
    """Hop depth of every reachable vertex in the tree (root = 0).

    Processes vertices in order of increasing distance, which is a
    valid topological order of any shortest-path tree.
    """
    n = parent.size
    depth = np.full(n, -1, dtype=np.int64)
    depth[source] = 0
    order = np.argsort(dist, kind="stable")
    for v in order:
        v = int(v)
        if dist[v] >= INF or v == source:
            continue
        p = int(parent[v])
        if p >= 0 and depth[p] >= 0:
            depth[v] = depth[p] + 1
    return depth


def subtree_aggregate(
    parent: np.ndarray,
    dist: np.ndarray,
    values: np.ndarray,
    source: int,
) -> np.ndarray:
    """Bottom-up sum over the tree: each vertex's value plus descendants'.

    Used by betweenness (dependency accumulation) and reach (subtree
    depth).  Vertices are visited in decreasing distance order, so every
    child is folded into its parent exactly once.
    """
    out = values.astype(np.float64).copy()
    order = np.argsort(-dist, kind="stable")
    for v in order:
        v = int(v)
        if dist[v] >= INF or v == source:
            continue
        p = int(parent[v])
        if p >= 0:
            out[p] += out[v]
    return out
