"""Command-line interface.

The offline/online split of the PHAST pipeline maps naturally onto
subcommands::

    python -m repro generate --kind europe --scale 64 -o map.npz
    python -m repro preprocess map.npz -o map.ch.npz
    python -m repro tree map.npz map.ch.npz --source 0 -o dists.npz
    python -m repro batch map.npz map.ch.npz --count 256 --workers 4
    python -m repro query map.npz map.ch.npz --source 0 --target 4095
    python -m repro stats map.npz map.ch.npz
    python -m repro convert map.gr -o map.npz        # DIMACS import

Graphs and hierarchies travel as ``.npz`` artifacts
(:mod:`repro.graph.serialize`); DIMACS ``.gr`` files are accepted
wherever a graph is expected.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _load_graph(path: str):
    from .graph import load_graph, read_gr

    if str(path).endswith(".gr"):
        return read_gr(path)
    return load_graph(path)


def _cmd_generate(args: argparse.Namespace) -> int:
    from .graph import dfs_order, europe_like, save_graph, usa_like

    maker = {"europe": europe_like, "usa": usa_like}[args.kind]
    graph = maker(scale=args.scale, metric=args.metric, seed=args.seed)
    if args.layout == "dfs":
        graph = graph.permute(dfs_order(graph))
    save_graph(graph, args.output)
    print(f"{args.output}: {graph.n} vertices, {graph.m} arcs ({args.kind}/{args.metric})")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .graph import save_graph, write_gr

    graph = _load_graph(args.input)
    if str(args.output).endswith(".gr"):
        write_gr(graph, args.output)
    else:
        save_graph(graph, args.output)
    print(f"{args.input} -> {args.output}: {graph.n} vertices, {graph.m} arcs")
    return 0


def _cmd_preprocess(args: argparse.Namespace) -> int:
    from .ch import CHParams, contract_graph
    from .graph import save_hierarchy

    graph = _load_graph(args.graph)
    start = time.perf_counter()
    ch = contract_graph(graph, CHParams(strategy=args.strategy))
    elapsed = time.perf_counter() - start
    save_hierarchy(ch, args.output)
    print(
        f"{args.output}: {ch.num_shortcuts} shortcuts, "
        f"{ch.num_levels} levels, {elapsed:.1f}s ({args.strategy})"
    )
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    from .core import PhastEngine
    from .graph import load_hierarchy
    from .graph.csr import INF

    graph = _load_graph(args.graph)
    ch = load_hierarchy(args.hierarchy)
    engine = PhastEngine(ch)
    engine.tree(args.source)  # warm up
    start = time.perf_counter()
    tree = engine.tree(args.source)
    ms = (time.perf_counter() - start) * 1e3
    reached = tree.dist < INF
    print(
        f"source {args.source}: {int(reached.sum())}/{graph.n} reached, "
        f"max distance {int(tree.dist[reached].max())}, {ms:.2f} ms"
    )
    if args.output:
        np.savez_compressed(args.output, source=args.source, dist=tree.dist)
        print(f"labels written to {args.output}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .core import PhastPool
    from .graph import load_hierarchy
    from .graph.csr import INF

    graph = _load_graph(args.graph)
    ch = load_hierarchy(args.hierarchy)
    if args.sources:
        sources = [int(s) for s in args.sources.split(",")]
    else:
        rng = np.random.default_rng(args.seed)
        sources = rng.choice(graph.n, size=min(args.count, graph.n),
                             replace=False).tolist()
    with PhastPool(
        ch,
        num_workers=args.workers,
        sources_per_sweep=args.sweep_k,
        force_pool=args.force_pool,
    ) as pool:
        pool.trees(sources[:1])  # warm up (fork + engine builds)
        start = time.perf_counter()
        mat = pool.trees(sources)
        elapsed = time.perf_counter() - start
        mode = "serial" if pool.serial else f"{pool.num_workers} workers"
        reached = mat < INF
        print(
            f"{len(sources)} trees in {elapsed * 1e3:.1f} ms "
            f"({len(sources) / elapsed:.1f} trees/s, {mode}, "
            f"k={args.sweep_k}); mean reached "
            f"{reached.sum() / len(sources):.0f}/{graph.n}"
        )
        if args.output:
            np.savez_compressed(
                args.output,
                sources=np.asarray(sources, dtype=np.int64),
                dist=mat,
            )
            print(f"distance matrix written to {args.output}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .ch import ch_query
    from .graph import load_hierarchy
    from .graph.csr import INF

    ch = load_hierarchy(args.hierarchy)
    start = time.perf_counter()
    q = ch_query(
        ch, args.source, args.target, unpack=args.path, stall=args.stall
    )
    ms = (time.perf_counter() - start) * 1e3
    if q.distance >= INF:
        print(f"{args.source} -> {args.target}: unreachable ({ms:.2f} ms)")
        return 1
    print(
        f"{args.source} -> {args.target}: distance {q.distance}, "
        f"settled {q.settled_forward + q.settled_backward}, {ms:.2f} ms"
    )
    if args.path and q.path:
        print(" -> ".join(str(v) for v in q.path))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .graph import load_hierarchy

    graph = _load_graph(args.graph)
    degrees = graph.degrees()
    print(f"graph: n={graph.n} m={graph.m}")
    print(
        f"degrees: min={degrees.min()} mean={degrees.mean():.2f} "
        f"max={degrees.max()}"
    )
    print(f"length range: [{graph.arc_len.min()}, {graph.arc_len.max()}]")
    if args.hierarchy:
        ch = load_hierarchy(args.hierarchy)
        hist = ch.level_histogram()
        print(
            f"hierarchy: {ch.num_shortcuts} shortcuts, {ch.num_levels} "
            f"levels, level 0 holds {hist[0] / ch.n:.0%} of vertices"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PHAST reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic road network")
    g.add_argument("--kind", choices=("europe", "usa"), default="europe")
    g.add_argument("--scale", type=int, default=64)
    g.add_argument("--metric", choices=("time", "distance"), default="time")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--layout", choices=("dfs", "input"), default="dfs")
    g.add_argument("-o", "--output", required=True)
    g.set_defaults(func=_cmd_generate)

    c = sub.add_parser("convert", help="convert between DIMACS .gr and .npz")
    c.add_argument("input")
    c.add_argument("-o", "--output", required=True)
    c.set_defaults(func=_cmd_convert)

    p = sub.add_parser("preprocess", help="build the contraction hierarchy")
    p.add_argument("graph")
    p.add_argument("-o", "--output", required=True)
    p.add_argument(
        "--strategy",
        choices=("lazy", "batched"),
        default="batched",
        help="contraction engine: vectorized independent-set rounds "
        "(batched, default) or the one-vertex-at-a-time reference (lazy)",
    )
    p.set_defaults(func=_cmd_preprocess)

    t = sub.add_parser("tree", help="one PHAST shortest path tree")
    t.add_argument("graph")
    t.add_argument("hierarchy")
    t.add_argument("--source", type=int, required=True)
    t.add_argument("-o", "--output")
    t.set_defaults(func=_cmd_tree)

    b = sub.add_parser(
        "batch", help="many trees on a persistent shared-memory pool"
    )
    b.add_argument("graph")
    b.add_argument("hierarchy")
    b.add_argument(
        "--sources", help="comma-separated roots (default: random sample)"
    )
    b.add_argument("--count", type=int, default=64,
                   help="random roots when --sources is absent")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: CPU count, capped)")
    b.add_argument("--sweep-k", type=int, default=4,
                   help="sources per sweep pass (Section IV-B lanes)")
    b.add_argument("--force-pool", action="store_true",
                   help="spawn workers even on a single-CPU host")
    b.add_argument("-o", "--output", help="write sources + distance matrix")
    b.set_defaults(func=_cmd_batch)

    q = sub.add_parser("query", help="point-to-point CH query")
    q.add_argument("hierarchy")
    q.add_argument("--source", type=int, required=True)
    q.add_argument("--target", type=int, required=True)
    q.add_argument("--path", action="store_true", help="print the route")
    q.add_argument("--stall", action="store_true", help="stall-on-demand")
    q.set_defaults(func=_cmd_query)

    s = sub.add_parser("stats", help="summarize a graph (and hierarchy)")
    s.add_argument("graph")
    s.add_argument("hierarchy", nargs="?")
    s.set_defaults(func=_cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (``python -m repro`` / the ``repro`` script)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
