"""Command-line interface.

The offline/online split of the PHAST pipeline maps naturally onto
subcommands::

    python -m repro generate --kind europe --scale 64 -o map.npz
    python -m repro preprocess map.npz -o map.ch.npz
    python -m repro tree map.npz map.ch.npz --source 0 -o dists.npz
    python -m repro batch map.npz map.ch.npz --count 256 --workers 4
    python -m repro query map.npz map.ch.npz --source 0 --target 4095
    python -m repro stats map.npz map.ch.npz
    python -m repro convert map.gr -o map.npz        # DIMACS import
    python -m repro customize map.npz --topology-out map.topo.npz \
        --metric-out map.metric.npz                  # topology/metric split
    python -m repro serve map.npz map.ch.npz --port 7171
    python -m repro serve --topology map.topo.npz --metric map.metric.npz
    python -m repro swap --port 7171 --weights new-weights.npz  # hot swap
    python -m repro route map.npz map.ch.npz --replicas 2 --port 7170
    python -m repro client --port 7171 --op query --source 0 --target 4095
    python -m repro doctor --unlink                  # reap orphaned shm

Graphs and hierarchies travel as ``.npz`` artifacts
(:mod:`repro.graph.serialize`); DIMACS ``.gr`` files are accepted
wherever a graph is expected.

Operational errors (missing files, stale artifacts, out-of-range
vertex ids, unreachable servers) exit with status 2 and one ``error:``
line on stderr instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _load_graph(path: str):
    from .graph import load_graph, read_gr

    if str(path).endswith(".gr"):
        return read_gr(path)
    return load_graph(path)


def _check_vertex(value: int, n: int, what: str) -> int:
    if not 0 <= value < n:
        raise ValueError(f"{what} {value} out of range [0, {n})")
    return int(value)


def _cmd_generate(args: argparse.Namespace) -> int:
    from .graph import dfs_order, europe_like, save_graph, usa_like

    maker = {"europe": europe_like, "usa": usa_like}[args.kind]
    graph = maker(scale=args.scale, metric=args.metric, seed=args.seed)
    if args.layout == "dfs":
        graph = graph.permute(dfs_order(graph))
    save_graph(graph, args.output)
    print(f"{args.output}: {graph.n} vertices, {graph.m} arcs ({args.kind}/{args.metric})")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .graph import save_graph, write_gr

    graph = _load_graph(args.input)
    if str(args.output).endswith(".gr"):
        write_gr(graph, args.output)
    else:
        save_graph(graph, args.output)
    print(f"{args.input} -> {args.output}: {graph.n} vertices, {graph.m} arcs")
    return 0


def _cmd_preprocess(args: argparse.Namespace) -> int:
    from .ch import CHParams, contract_graph
    from .graph import save_hierarchy

    workers = args.preprocess_workers
    force_pool = getattr(args, "force_pool", False)
    if args.strategy != "batched" and (workers is not None or force_pool):
        print("--preprocess-workers/--force-pool require --strategy batched")
        return 2
    graph = _load_graph(args.graph)
    start = time.perf_counter()
    if args.strategy == "batched" and (workers is not None or force_pool):
        from .ch import contract_graph_batched

        ch = contract_graph_batched(
            graph,
            CHParams(strategy="batched"),
            num_workers=workers,
            force_pool=force_pool,
        )
    else:
        ch = contract_graph(graph, CHParams(strategy=args.strategy))
    elapsed = time.perf_counter() - start
    save_hierarchy(ch, args.output)
    stats = ch.preprocessing_stats
    detail = args.strategy
    if stats.get("parallel"):
        detail += f", {stats['workers']} workers"
    elif stats.get("fell_back"):
        detail += ", fell back to serial (1 CPU)"
    print(
        f"{args.output}: {ch.num_shortcuts} shortcuts, "
        f"{ch.num_levels} levels, {elapsed:.1f}s ({detail})"
    )
    return 0


def _load_weights(spec: str, graph=None) -> np.ndarray:
    """Per-base-arc weights from ``spec``.

    Accepts a ``.npz`` with a ``weights`` array, a graph artifact
    (its ``arc_len`` is the weight vector), or a text file of one
    integer per line / whitespace-separated.
    """
    path = Path(spec)
    if path.suffix == ".npz":
        with np.load(path) as data:
            if "weights" in data:
                return np.asarray(data["weights"], dtype=np.int64)
            if "arc_len" in data:
                return np.asarray(data["arc_len"], dtype=np.int64)
        raise ValueError(
            f"{spec}: no 'weights' (or graph 'arc_len') array in archive"
        )
    if path.suffix == ".gr":
        return np.asarray(_load_graph(spec).arc_len, dtype=np.int64)
    return np.loadtxt(path, dtype=np.int64).reshape(-1)


def _cmd_customize(args: argparse.Namespace) -> int:
    """Topology/metric split: the offline half of hot weight swaps.

    Builds (or loads) the metric-independent topology artifact, then
    runs the customization pass for one weight vector and writes the
    metric artifact.  At serve time ``--topology``/``--metric`` load
    these, and ``repro swap`` pushes fresh metrics into the running
    server without re-contraction.
    """
    from .ch import build_topology, customize
    from .graph import load_topology, save_metric, save_topology

    graph = _load_graph(args.graph)
    if args.topology:
        topology = load_topology(args.topology)
        if topology.n != graph.n:
            raise ValueError(
                f"graph has {graph.n} vertices but topology has "
                f"{topology.n}; the artifacts do not belong together"
            )
        print(f"loaded topology {args.topology} "
              f"(closure {topology.num_arcs} arcs)")
    else:
        start = time.perf_counter()
        topology = build_topology(graph)
        elapsed = time.perf_counter() - start
        print(
            f"topology: {topology.num_arcs} closure arcs, "
            f"{topology.num_triangles} triangles, "
            f"{topology.stats['levels']} levels, {elapsed:.1f}s"
        )
    if args.topology_out:
        save_topology(topology, args.topology_out)
        print(f"topology written to {args.topology_out}")
    weights = (_load_weights(args.weights) if args.weights
               else np.asarray(graph.arc_len, dtype=np.int64))
    if weights.size != topology.num_base_arcs:
        raise ValueError(
            f"weight vector has {weights.size} entries but the topology "
            f"covers {topology.num_base_arcs} base arcs"
        )
    start = time.perf_counter()
    metric = customize(topology, weights)
    elapsed = time.perf_counter() - start
    print(f"customize: {elapsed * 1e3:.1f} ms "
          f"({topology.num_arcs / max(elapsed, 1e-9):.0f} arcs/s)")
    if args.metric_out:
        save_metric(metric, args.metric_out)
        print(f"metric written to {args.metric_out}")
    if not args.topology_out and not args.metric_out:
        print("note: no --topology-out/--metric-out; nothing was saved")
    return 0


def _cmd_swap(args: argparse.Namespace) -> int:
    """Hot-swap the metric of a running server (or every replica
    behind a router) from the command line."""
    from .server import ServerClient

    if bool(args.weights) == bool(args.metric_path):
        raise ValueError(
            "exactly one of --weights and --metric-path is required"
        )
    weights = _load_weights(args.weights) if args.weights else None
    with ServerClient(
        args.host, args.port, connect_retry_s=args.wait_ready
    ) as client:
        start = time.perf_counter()
        report = client.swap_metric(
            weights=weights, path=args.metric_path,
            timeout=args.swap_timeout,
        )
        elapsed = time.perf_counter() - start
    if "replicas" in report:  # router: one payload per replica
        for name, payload in sorted(report["replicas"].items()):
            print(f"{name}: generation {payload['metric_generation']} "
                  f"(swap {payload['swap_seconds'] * 1e3:.1f} ms)")
        print(f"rolled {len(report['replicas'])} replica(s) "
              f"in {elapsed:.2f}s")
    else:
        print(
            f"metric generation {report['metric_generation']} live "
            f"(customize {report.get('customize_seconds', 0) * 1e3:.1f} ms, "
            f"swap {report['swap_seconds'] * 1e3:.1f} ms)"
        )
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    from .core import PhastEngine
    from .graph import load_hierarchy
    from .graph.csr import INF

    graph = _load_graph(args.graph)
    ch = load_hierarchy(args.hierarchy)
    _check_vertex(args.source, ch.n, "--source")
    engine = PhastEngine(ch)
    engine.tree(args.source)  # warm up
    start = time.perf_counter()
    tree = engine.tree(args.source)
    ms = (time.perf_counter() - start) * 1e3
    reached = tree.dist < INF
    print(
        f"source {args.source}: {int(reached.sum())}/{graph.n} reached, "
        f"max distance {int(tree.dist[reached].max())}, {ms:.2f} ms"
    )
    if args.output:
        np.savez_compressed(args.output, source=args.source, dist=tree.dist)
        print(f"labels written to {args.output}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .core import PhastPool
    from .graph import load_hierarchy
    from .graph.csr import INF

    graph = _load_graph(args.graph)
    ch = load_hierarchy(args.hierarchy)
    if args.sources:
        try:
            sources = [int(s) for s in args.sources.split(",")]
        except ValueError:
            raise ValueError(
                f"--sources must be comma-separated integers "
                f"(got {args.sources!r})"
            ) from None
        for s in sources:
            _check_vertex(s, ch.n, "source")
    else:
        rng = np.random.default_rng(args.seed)
        sources = rng.choice(graph.n, size=min(args.count, graph.n),
                             replace=False).tolist()
    with PhastPool(
        ch,
        num_workers=args.workers,
        sources_per_sweep=args.sweep_k,
        force_pool=args.force_pool,
    ) as pool:
        pool.trees(sources[:1])  # warm up (fork + engine builds)
        start = time.perf_counter()
        mat = pool.trees(sources)
        elapsed = time.perf_counter() - start
        mode = "serial" if pool.serial else f"{pool.num_workers} workers"
        reached = mat < INF
        print(
            f"{len(sources)} trees in {elapsed * 1e3:.1f} ms "
            f"({len(sources) / elapsed:.1f} trees/s, {mode}, "
            f"k={args.sweep_k}); mean reached "
            f"{reached.sum() / len(sources):.0f}/{graph.n}"
        )
        if args.output:
            np.savez_compressed(
                args.output,
                sources=np.asarray(sources, dtype=np.int64),
                dist=mat,
            )
            print(f"distance matrix written to {args.output}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .ch import ch_query
    from .graph import load_hierarchy
    from .graph.csr import INF

    ch = load_hierarchy(args.hierarchy)
    _check_vertex(args.source, ch.n, "--source")
    _check_vertex(args.target, ch.n, "--target")
    start = time.perf_counter()
    q = ch_query(
        ch, args.source, args.target, unpack=args.path, stall=args.stall
    )
    ms = (time.perf_counter() - start) * 1e3
    if q.distance >= INF:
        print(f"{args.source} -> {args.target}: unreachable ({ms:.2f} ms)")
        return 1
    print(
        f"{args.source} -> {args.target}: distance {q.distance}, "
        f"settled {q.settled_forward + q.settled_backward}, {ms:.2f} ms"
    )
    if args.path and q.path:
        print(" -> ".join(str(v) for v in q.path))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .graph import load_hierarchy

    graph = _load_graph(args.graph)
    degrees = graph.degrees()
    print(f"graph: n={graph.n} m={graph.m}")
    print(
        f"degrees: min={degrees.min()} mean={degrees.mean():.2f} "
        f"max={degrees.max()}"
    )
    print(f"length range: [{graph.arc_len.min()}, {graph.arc_len.max()}]")
    if args.hierarchy:
        ch = load_hierarchy(args.hierarchy)
        hist = ch.level_histogram()
        print(
            f"hierarchy: {ch.num_shortcuts} shortcuts, {ch.num_levels} "
            f"levels, level 0 holds {hist[0] / ch.n:.0%} of vertices"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .core.pool import install_signal_guard
    from .graph import load_hierarchy, load_metric, load_topology
    from .server import PhastService, ServerConfig

    topo_mode = bool(args.topology or args.metric)
    if topo_mode:
        if not (args.topology and args.metric):
            raise ValueError("--topology and --metric go together")
        if args.hierarchy is not None:
            raise ValueError(
                "give either graph+hierarchy artifacts or "
                "--topology/--metric, not both"
            )
        topology = load_topology(args.topology)
        metric = load_metric(args.metric, topology=topology)
        graph = _load_graph(args.graph) if args.graph else None
        if graph is not None and graph.n != topology.n:
            raise ValueError(
                f"graph has {graph.n} vertices but topology has "
                f"{topology.n}; the artifacts do not belong together"
            )
    else:
        if args.graph is None or args.hierarchy is None:
            raise ValueError(
                "serve needs graph and hierarchy artifacts "
                "(or --topology with --metric)"
            )
        graph = _load_graph(args.graph)
        ch = load_hierarchy(args.hierarchy)
        if ch.n != graph.n:
            raise ValueError(
                f"graph has {graph.n} vertices but hierarchy has {ch.n}; "
                "the artifacts do not belong together"
            )
    if args.sweep_k < 0:
        raise ValueError(f"--sweep-k must be >= 0 (got {args.sweep_k})")
    config = ServerConfig(
        host=args.host,
        port=args.port,
        batch_max=args.batch_max,
        max_wait_ms=args.max_wait_ms,
        batching=not args.no_batching,
        max_pending=args.max_pending,
        default_timeout_ms=args.timeout_ms if args.timeout_ms > 0 else None,
        num_workers=args.workers,
        sources_per_sweep=args.sweep_k,
        force_pool=args.force_pool,
        chunk_timeout_ms=(
            args.chunk_timeout_ms if args.chunk_timeout_ms > 0 else None
        ),
        selection_cache=args.selection_cache,
    )
    if topo_mode:
        service = PhastService(topology=topology, metric=metric,
                               graph=graph, config=config)
        served = f"{args.topology} + {args.metric}"
        n, m = topology.n, topology.num_base_arcs
    else:
        service = PhastService(ch, graph=graph, config=config)
        served = str(args.graph)
        n, m = graph.n, graph.m
    # Belt and braces: the drain path unlinks the pool's shared memory,
    # but a signal that lands before/outside the loop must not leak it.
    install_signal_guard()

    async def _serve() -> None:
        await service.start()
        mode = "micro-batching" if config.batching else "batching off"
        print(
            f"serving {served} (n={n}, m={m}) on "
            f"{service.host}:{service.port} — {mode}, "
            f"batch_max={config.batch_max}, wait={config.max_wait_ms}ms, "
            f"{service.pool.num_workers} worker(s)"
            f"{' [serial pool]' if service.pool.serial else ''}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(service.drain())
                )
            except (NotImplementedError, RuntimeError):
                pass
        await service.wait_drained()
        snap = service.admission.snapshot()
        print(
            f"drained: {snap['admitted_total']} requests served, "
            f"rejected {snap['rejected']}",
            flush=True,
        )

    asyncio.run(_serve())
    return 0


def _client_ids(args: argparse.Namespace, plural: str,
                singular: str) -> list[int] | None:
    """Vertex ids from the unified ``--sources``/``--targets`` flags.

    The plural flag is canonical (comma-separated, any op); the old
    singular spelling still works for the single-vertex ops.  Giving
    both is an error.
    """
    plural_val = getattr(args, plural, None)
    singular_val = getattr(args, singular, None)
    if plural_val is not None and singular_val is not None:
        raise ValueError(f"give --{plural} or --{singular}, not both")
    if singular_val is not None:
        return [int(singular_val)]
    if plural_val is None:
        return None
    try:
        return [int(v) for v in str(plural_val).split(",")]
    except ValueError:
        raise ValueError(
            f"--{plural} must be comma-separated integers "
            f"(got {plural_val!r})"
        ) from None


def _client_one(args: argparse.Namespace, plural: str, singular: str) -> int:
    ids = _client_ids(args, plural, singular)
    if ids is None:
        raise ValueError(
            f"--{plural} is required for --op {args.op}"
        )
    if len(ids) != 1:
        raise ValueError(
            f"--op {args.op} takes exactly one of --{plural} "
            f"(got {len(ids)})"
        )
    return ids[0]


def _cmd_client(args: argparse.Namespace) -> int:
    from .server import ServerClient

    if args.burst:
        return _client_burst(args)
    with ServerClient(
        args.host, args.port, connect_retry_s=args.wait_ready
    ) as client:
        op = args.op.replace("-", "_")
        if op == "ping":
            print("pong" if client.ping() else "no pong")
        elif op == "info":
            print(json.dumps(client.info(), indent=2))
        elif op == "metrics":
            print(json.dumps(client.metrics(), indent=2))
        elif op == "health":
            health = client.health()
            print(json.dumps(health, indent=2))
            if not health.get("ready"):
                return 1
        elif op == "query":
            source = _client_one(args, "sources", "source")
            target = _client_one(args, "targets", "target")
            resp = client.query(sources=source, targets=target,
                                stall=args.stall)
            if not resp["reachable"]:
                print(f"{source} -> {target}: unreachable")
                return 1
            print(
                f"{source} -> {target}: distance "
                f"{resp['distance']} (settled {resp['settled']})"
            )
        elif op == "tree":
            source = _client_one(args, "sources", "source")
            dist = client.tree(source)
            from .graph.csr import INF

            reached = dist < INF
            print(
                f"source {source}: {int(reached.sum())}/{dist.size} "
                f"reached, max distance {int(dist[reached].max())}"
            )
            if args.output:
                np.savez_compressed(args.output, source=source, dist=dist)
                print(f"labels written to {args.output}")
        elif op == "one_to_many":
            source = _client_one(args, "sources", "source")
            targets = _client_ids(args, "targets", "target")
            if targets is None:
                raise ValueError("--targets is required for --op one-to-many")
            dist = client.one_to_many(source, targets)
            for t, d in zip(targets, dist):
                print(f"{source} -> {t}: {int(d)}")
        elif op == "matrix":
            sources = _client_ids(args, "sources", "source")
            targets = _client_ids(args, "targets", "target")
            if sources is None or targets is None:
                raise ValueError(
                    "--sources and --targets are required for --op matrix"
                )
            mat = client.matrix(sources, targets, backend=args.backend)
            print("        " + " ".join(f"{t:>8}" for t in targets))
            for s, row in zip(sources, mat):
                print(f"{s:>8}" + " ".join(f"{int(d):>8}" for d in row))
        elif op == "isochrone":
            source = _client_one(args, "sources", "source")
            _require_args(args, "budget")
            vertices = client.isochrone(source, args.budget)
            print(
                f"{vertices.size} vertices within {args.budget} of "
                f"{source}"
            )
        else:  # pragma: no cover - argparse restricts choices
            raise ValueError(f"unknown op {args.op!r}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    """Front-door router over N serve replicas (spawned and/or adopted).

    SIGINT/SIGTERM drain the router, then stop spawned replicas
    gracefully.  SIGHUP triggers a rolling drain/restart of every
    spawned replica — a zero-downtime redeploy — while the router
    keeps serving from the others.
    """
    import asyncio
    import signal
    import threading

    from .router import PhastRouter, ReplicaManager, RouterConfig

    attach = [s.strip() for s in (args.attach or "").split(",") if s.strip()]
    if args.replicas < 1 and not attach:
        raise ValueError("need --replicas >= 1 (with graph + hierarchy) "
                         "or --attach host:port[,host:port...]")
    if args.replicas >= 1 and (args.graph is None or args.hierarchy is None):
        raise ValueError("spawning replicas requires graph and hierarchy "
                         "artifact paths")
    manager = ReplicaManager()
    try:
        for i in range(args.replicas):
            port = 0 if args.replica_port == 0 else args.replica_port + i
            name = manager.spawn(
                args.graph, args.hierarchy, host="127.0.0.1", port=port,
                workers=args.workers, force_pool=args.force_pool,
                extra_args=tuple(args.serve_arg or ()),
            )
            print(f"replica {name} ready", flush=True)
        for spec in attach:
            host, _, port_s = spec.rpartition(":")
            if not host or not port_s.isdigit():
                raise ValueError(f"--attach entry {spec!r} is not host:port")
            manager.adopt(host, int(port_s))
            print(f"replica {spec} adopted", flush=True)

        config = RouterConfig(
            host=args.host, port=args.port,
            probe_interval_ms=args.probe_interval_ms,
            warmup_ms=args.warmup_ms,
        )
        router = PhastRouter(config)
        for managed in manager.replicas.values():
            router.add_replica(managed.host, managed.port)

        async def _route() -> None:
            await router.start()
            print(
                f"routing on {router.host}:{router.port} -> "
                f"{len(router.replicas)} replica(s): "
                f"{', '.join(router.replicas)}",
                flush=True,
            )
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(router.drain())
                    )
                except (NotImplementedError, RuntimeError):
                    pass

            class _Ctl:
                """Blocking rotation control from the restart thread."""

                @staticmethod
                def hold_out(name: str) -> None:
                    asyncio.run_coroutine_threadsafe(
                        router.hold_out(name), loop
                    ).result(300)

                @staticmethod
                def readmit(name: str) -> None:
                    asyncio.run_coroutine_threadsafe(
                        router.readmit(name), loop
                    ).result(300)

            restart_gate = threading.Lock()

            def _rolling() -> None:
                if not restart_gate.acquire(blocking=False):
                    return  # one rolling restart at a time
                try:
                    restarted = manager.rolling_restart(_Ctl())
                    print(f"rolling restart done: {', '.join(restarted)}",
                          flush=True)
                except Exception as exc:
                    print(f"rolling restart failed: {exc}", flush=True)
                finally:
                    restart_gate.release()

            try:
                loop.add_signal_handler(
                    signal.SIGHUP,
                    lambda: threading.Thread(target=_rolling,
                                             daemon=True).start(),
                )
            except (NotImplementedError, RuntimeError, AttributeError):
                pass
            await router.wait_drained()
            snap = router.metrics.snapshot()
            total = sum(snap["requests_total"].values())
            affinity = snap["affinity"]
            print(
                f"drained: {total} requests routed, "
                f"affinity hit rate {affinity['hit_rate']}, "
                f"{affinity['failovers']} failover(s)",
                flush=True,
            )

        asyncio.run(_route())
    finally:
        manager.stop_all()
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Inspect (and optionally reap) pool shared-memory segments.

    A pool that dies without cleanup — SIGKILL, OOM, a pulled plug —
    leaves its ``repro-<pid>-<hex>`` segments in ``/dev/shm``.  The
    embedded pid makes them attributable: a segment whose creator is
    verifiably dead is an orphan and safe to unlink; segments of live
    processes (or with unparseable names) are never touched.

    Exit status: 0 when nothing is orphaned (or ``--unlink`` removed
    everything), 1 when orphans remain — so CI can use it as a leak
    check.
    """
    from .core.supervisor import scan_segments, unlink_orphans

    infos = scan_segments()
    removed = unlink_orphans(infos) if args.unlink else []
    removed_names = {info.name for info in removed}
    remaining = [
        info for info in infos
        if info.orphaned and info.name not in removed_names
    ]
    if args.json:
        print(json.dumps({
            "segments": [
                {"name": i.name, "size_bytes": i.size_bytes, "pid": i.pid,
                 "owner_alive": i.owner_alive, "orphaned": i.orphaned,
                 "kind": i.kind, "generation": i.generation,
                 "age_seconds": i.age_seconds}
                for i in infos
            ],
            "orphans": len([i for i in infos if i.orphaned]),
            "removed": sorted(removed_names),
        }, indent=2))
        return 1 if remaining else 0
    if not infos:
        print("no pool segments in /dev/shm")
        return 0
    for info in infos:
        owner = (f"pid {info.pid} "
                 f"{'alive' if info.owner_alive else 'dead'}"
                 if info.pid is not None else "owner unknown")
        state = ("removed" if info.name in removed_names
                 else "ORPHANED" if info.orphaned else "in use")
        kind = info.kind
        if kind == "metric" and info.generation is not None:
            kind = f"metric g{info.generation}"
        age = (f", age {info.age_seconds:.0f}s"
               if info.age_seconds is not None else "")
        print(f"{info.name}: {kind}, {info.size_bytes} bytes, "
              f"{owner}{age} — {state}")
    if remaining:
        print(f"{len(remaining)} orphaned segment(s); "
              "run `repro doctor --unlink` to remove them")
        return 1
    return 0


def _require_args(args: argparse.Namespace, *names: str) -> None:
    for name in names:
        if getattr(args, name) is None:
            raise ValueError(f"--{name.replace('_', '-')} is required for "
                             f"--op {args.op}")


def _client_burst(args: argparse.Namespace) -> int:
    """Closed-loop mixed-workload burst (the CI smoke driver)."""
    import threading

    from .server import ServerClient, ServerError
    from .utils.timing import LatencyHistogram

    ops = [op.strip().replace("-", "_") for op in args.mix.split(",") if op.strip()]
    known = {"query", "tree", "one_to_many", "isochrone", "matrix"}
    unknown = set(ops) - known
    if not ops or unknown:
        raise ValueError(f"--mix must name ops from {sorted(known)}")
    with ServerClient(args.host, args.port,
                      connect_retry_s=args.wait_ready) as probe:
        n = probe.info()["n"]
    per_thread = -(-args.burst // args.threads)
    # Per-thread, per-op histograms: against a router, aggregate
    # latency hides which op pays the forwarding hop — the breakdown
    # makes router-vs-direct overhead attributable per op.
    hists: list[dict[str, LatencyHistogram]] = [
        {op: LatencyHistogram() for op in ops} for _ in range(args.threads)
    ]
    failures: list[str] = []

    def worker(tid: int) -> None:
        rng = np.random.default_rng(args.seed + tid)
        # A fixed per-thread "depot set" for matrix requests: repeated
        # target sets are the workload the selection cache exists for.
        depots = sorted(int(v) for v in rng.choice(n, size=min(8, n),
                                                   replace=False))
        try:
            with ServerClient(args.host, args.port) as client:
                for i in range(per_thread):
                    op = ops[i % len(ops)]
                    s = int(rng.integers(n))
                    t0 = time.perf_counter()
                    if op == "query":
                        client.query(s, int(rng.integers(n)))
                    elif op == "tree":
                        client.tree(s)
                    elif op == "one_to_many":
                        k = min(8, n)
                        client.one_to_many(
                            s, rng.choice(n, size=k, replace=False)
                        )
                    elif op == "matrix":
                        k = min(4, n)
                        client.matrix(
                            rng.choice(n, size=k, replace=False), depots
                        )
                    else:
                        client.isochrone(s, int(rng.integers(1, 10_000)))
                    hists[tid][op].observe(time.perf_counter() - t0)
        except (ServerError, ConnectionError, OSError) as exc:
            failures.append(f"thread {tid}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(tid,), daemon=True)
        for tid in range(args.threads)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    total = LatencyHistogram()
    per_op = {op: LatencyHistogram() for op in ops}
    for per_thread_hists in hists:
        for op, h in per_thread_hists.items():
            total.merge(h)
            per_op[op].merge(h)
    summary = total.summary()
    print(
        f"{total.count} requests ({args.threads} threads, mix {','.join(ops)}) "
        f"in {elapsed:.2f}s: {total.count / elapsed:.1f} req/s, "
        f"p50 {summary.get('p50_ms', 0)} ms, p99 {summary.get('p99_ms', 0)} ms"
    )
    for op in ops:
        s = per_op[op].summary()
        if per_op[op].count:
            print(
                f"  {op}: {per_op[op].count} reqs, "
                f"p50 {s.get('p50_ms', 0)} ms, p99 {s.get('p99_ms', 0)} ms, "
                f"mean {s.get('mean_ms', 0)} ms"
            )
    if failures:
        for line in failures:
            print(f"error: {line}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PHAST reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic road network")
    g.add_argument("--kind", choices=("europe", "usa"), default="europe")
    g.add_argument("--scale", type=int, default=64)
    g.add_argument("--metric", choices=("time", "distance"), default="time")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--layout", choices=("dfs", "input"), default="dfs")
    g.add_argument("-o", "--output", required=True)
    g.set_defaults(func=_cmd_generate)

    c = sub.add_parser("convert", help="convert between DIMACS .gr and .npz")
    c.add_argument("input")
    c.add_argument("-o", "--output", required=True)
    c.set_defaults(func=_cmd_convert)

    p = sub.add_parser("preprocess", help="build the contraction hierarchy")
    p.add_argument("graph")
    p.add_argument("-o", "--output", required=True)
    p.add_argument(
        "--strategy",
        choices=("lazy", "batched"),
        default="batched",
        help="contraction engine: vectorized independent-set rounds "
        "(batched, default) or the one-vertex-at-a-time reference (lazy)",
    )
    p.add_argument(
        "--preprocess-workers",
        type=int,
        default=None,
        metavar="N",
        help="parallelize the batched strategy's witness phases over N "
        "worker processes (default: single-process; capped by "
        "REPRO_MAX_WORKERS when omitted — see resolve_workers)",
    )
    p.add_argument(
        "--force-pool",
        action="store_true",
        help="spin up preprocessing worker processes even on a "
        "single-CPU host (testing the multiprocessing path)",
    )
    p.set_defaults(func=_cmd_preprocess)

    cz = sub.add_parser(
        "customize",
        help="split preprocessing: build topology + customize a metric",
    )
    cz.add_argument("graph")
    cz.add_argument("--topology",
                    help="reuse an existing topology artifact instead of "
                    "building one from the graph")
    cz.add_argument("--topology-out", metavar="PATH",
                    help="write the metric-independent topology artifact")
    cz.add_argument("--metric-out", metavar="PATH",
                    help="write the customized metric artifact")
    cz.add_argument("--weights", metavar="FILE",
                    help="weight vector (.npz with 'weights', a graph "
                    "artifact, or a text file); default: the graph's "
                    "own arc lengths")
    cz.set_defaults(func=_cmd_customize)

    sw = sub.add_parser(
        "swap",
        help="hot-swap the metric of a running server (or every "
        "replica behind a router)",
    )
    sw.add_argument("--host", default="127.0.0.1")
    sw.add_argument("--port", type=int, default=7171)
    sw.add_argument("--wait-ready", type=float, default=0.0,
                    help="retry the first connection for this many seconds")
    sw.add_argument("--weights", metavar="FILE",
                    help="weight vector to ship inline (.npz/graph/text)")
    sw.add_argument("--metric-path", metavar="PATH",
                    help="metric artifact path on the server's filesystem")
    sw.add_argument("--swap-timeout", type=float, default=300.0,
                    help="client-side wait for the swap to complete")
    sw.set_defaults(func=_cmd_swap)

    t = sub.add_parser("tree", help="one PHAST shortest path tree")
    t.add_argument("graph")
    t.add_argument("hierarchy")
    t.add_argument("--source", type=int, required=True)
    t.add_argument("-o", "--output")
    t.set_defaults(func=_cmd_tree)

    b = sub.add_parser(
        "batch", help="many trees on a persistent shared-memory pool"
    )
    b.add_argument("graph")
    b.add_argument("hierarchy")
    b.add_argument(
        "--sources", help="comma-separated roots (default: random sample)"
    )
    b.add_argument("--count", type=int, default=64,
                   help="random roots when --sources is absent")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: CPU count, capped)")
    b.add_argument("--sweep-k", type=int, default=4,
                   help="sources per sweep pass (Section IV-B lanes)")
    b.add_argument("--force-pool", action="store_true",
                   help="spawn workers even on a single-CPU host")
    b.add_argument("-o", "--output", help="write sources + distance matrix")
    b.set_defaults(func=_cmd_batch)

    q = sub.add_parser("query", help="point-to-point CH query")
    q.add_argument("hierarchy")
    q.add_argument("--source", type=int, required=True)
    q.add_argument("--target", type=int, required=True)
    q.add_argument("--path", action="store_true", help="print the route")
    q.add_argument("--stall", action="store_true", help="stall-on-demand")
    q.set_defaults(func=_cmd_query)

    s = sub.add_parser("stats", help="summarize a graph (and hierarchy)")
    s.add_argument("graph")
    s.add_argument("hierarchy", nargs="?")
    s.set_defaults(func=_cmd_stats)

    sv = sub.add_parser(
        "serve", help="long-lived query service with dynamic micro-batching"
    )
    sv.add_argument("graph", nargs="?",
                    help="graph artifact (omit when serving --topology)")
    sv.add_argument("hierarchy", nargs="?",
                    help="hierarchy artifact (omit when serving --topology)")
    sv.add_argument("--topology",
                    help="serve a topology artifact (repro customize) "
                    "instead of a hierarchy; enables hot metric swaps")
    sv.add_argument("--metric",
                    help="initial metric artifact for --topology")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=7171,
                    help="TCP port (0 = ephemeral)")
    sv.add_argument("--batch-max", type=int, default=16,
                    help="max sources coalesced into one sweep")
    sv.add_argument("--max-wait-ms", type=float, default=2.0,
                    help="micro-batch window in milliseconds")
    sv.add_argument("--no-batching", action="store_true",
                    help="dispatch one request per sweep (ablation)")
    sv.add_argument("--max-pending", type=int, default=256,
                    help="admission bound on in-flight work requests")
    sv.add_argument("--timeout-ms", type=float, default=30_000.0,
                    help="default per-request deadline (<= 0 disables)")
    sv.add_argument("--workers", type=int, default=1,
                    help="pool worker processes (1 = in-process)")
    sv.add_argument("--sweep-k", type=int, default=0,
                    help="pool lanes per sweep pass (default: batch-max)")
    sv.add_argument("--force-pool", action="store_true",
                    help="spawn workers even on a single-CPU host")
    sv.add_argument("--chunk-timeout-ms", type=float, default=0.0,
                    help="kill + respawn a worker whose chunk exceeds "
                    "this (<= 0 disables the per-chunk deadline)")
    sv.add_argument("--selection-cache", type=int, default=32,
                    help="LRU capacity for RPHAST matrix selections")
    sv.set_defaults(func=_cmd_serve)

    rt = sub.add_parser(
        "route",
        help="front-door router: one public port over N serve replicas",
    )
    rt.add_argument("graph", nargs="?",
                    help="graph artifact for spawned replicas")
    rt.add_argument("hierarchy", nargs="?",
                    help="hierarchy artifact for spawned replicas")
    rt.add_argument("--host", default="127.0.0.1")
    rt.add_argument("--port", type=int, default=7170,
                    help="router TCP port (0 = ephemeral)")
    rt.add_argument("--replicas", type=int, default=0,
                    help="spawn this many repro serve replicas over the "
                    "artifacts")
    rt.add_argument("--replica-port", type=int, default=0,
                    help="base port for spawned replicas, +1 per replica "
                    "(0 = ephemeral ports)")
    rt.add_argument("--attach",
                    help="comma-separated host:port replicas to adopt "
                    "instead of (or besides) spawning")
    rt.add_argument("--workers", type=int, default=1,
                    help="pool workers per spawned replica")
    rt.add_argument("--force-pool", action="store_true",
                    help="replica pools spawn workers even on 1 CPU")
    rt.add_argument("--serve-arg", action="append", metavar="ARG",
                    help="extra argument passed through to each spawned "
                    "replica's serve command (repeatable)")
    rt.add_argument("--probe-interval-ms", type=float, default=200.0,
                    help="replica health-probe period")
    rt.add_argument("--warmup-ms", type=float, default=2000.0,
                    help="traffic ramp for a replica re-entering rotation")
    rt.set_defaults(func=_cmd_route)

    cl = sub.add_parser("client", help="query a running repro server")
    cl.add_argument("--host", default="127.0.0.1")
    cl.add_argument("--port", type=int, default=7171)
    cl.add_argument("--wait-ready", type=float, default=0.0,
                    help="retry the first connection for this many seconds")
    cl.add_argument(
        "--op",
        choices=("ping", "info", "metrics", "health", "query", "tree",
                 "one-to-many", "isochrone", "matrix"),
        default="ping",
    )
    cl.add_argument("--sources",
                    help="comma-separated vertex ids; the unified spelling "
                    "for every op (single-vertex ops take one id)")
    cl.add_argument("--targets",
                    help="comma-separated vertex ids (query, one-to-many, "
                    "matrix)")
    cl.add_argument("--source", type=int,
                    help="single-vertex alias for --sources")
    cl.add_argument("--target", type=int,
                    help="single-vertex alias for --targets")
    cl.add_argument("--backend", choices=("rphast", "buckets"),
                    help="matrix algorithm (default: server-side rphast)")
    cl.add_argument("--budget", type=int, help="isochrone time budget")
    cl.add_argument("--stall", action="store_true", help="stall-on-demand")
    cl.add_argument("-o", "--output", help="write tree labels (.npz)")
    cl.add_argument("--burst", type=int, default=0,
                    help="closed-loop burst: total request count")
    cl.add_argument("--threads", type=int, default=4,
                    help="burst client threads")
    cl.add_argument("--mix", default="query,tree,one_to_many,isochrone",
                    help="burst op mix (comma-separated)")
    cl.add_argument("--seed", type=int, default=0)
    cl.set_defaults(func=_cmd_client)

    d = sub.add_parser(
        "doctor", help="list / reap orphaned pool shared-memory segments"
    )
    d.add_argument("--unlink", action="store_true",
                   help="remove segments whose creating process is dead")
    d.add_argument("--json", action="store_true",
                   help="machine-readable report")
    d.set_defaults(func=_cmd_doctor)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (``python -m repro`` / the ``repro`` script).

    Operational failures (bad paths, stale artifacts, out-of-range
    ids, refused connections) are reported as one ``error:`` line and
    exit status 2 — a traceback from the CLI is always a bug.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130
    except (FileNotFoundError, IsADirectoryError, PermissionError) as exc:
        filename = getattr(exc, "filename", None)
        print(f"error: {filename or exc}: {exc.strerror or 'cannot open'}",
              file=sys.stderr)
        return 2
    except (ConnectionError, TimeoutError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        from .server import ProtocolError, ServerError

        if isinstance(exc, (ServerError, ProtocolError)):
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":
    sys.exit(main())
