"""Batched independent-set CH preprocessing.

The lazy sequential contractor (:mod:`repro.ch.contraction`) pops one
vertex at a time off a heap and runs scalar witness Dijkstras — fine at
n ≈ 4·10³, hopeless at the 10⁵–10⁶ the PHAST sweep itself handles.
This module contracts the graph in **rounds**, following the parallel
CH preprocessing literature (Luxen & Schieferdecker's cache-aware
variant; Wan et al.'s independent-set batches):

1. recompute the paper's priority for every *dirty* vertex (its
   neighbourhood changed) with one batched witness sweep;
2. select the vertices that are **local priority minima** among their
   uncontracted neighbours — an independent set, so no two neighbours
   contract in the same round and the result is a valid hierarchy;
3. decide all of the round's shortcuts with a second batched witness
   sweep whose searches avoid the *entire* round set (a witness through
   a vertex removed this same round would be unsound — ties between
   two same-round candidates could otherwise cancel each other);
4. apply the surgery in bulk: append shortcut arcs, retire the round's
   vertices, bump neighbour levels / contracted-neighbour counts, and
   let :class:`~repro.graph.dynamic.DynamicAdjacency` recompact itself
   for locality every few rounds.

Rank order inside a round is by vertex ID; since round members are
pairwise non-adjacent no arc connects them, so any order yields the
same upward/downward split.

**Parallel mode** (``num_workers > 1`` or
``CHParams.preprocess_workers``) fans the two witness phases of each
round out over a :class:`~repro.core.pool.TaskPool`: the coordinator
publishes the evolving adjacency as shared-memory snapshots (the base
CSR once per :attr:`~repro.graph.dynamic.DynamicAdjacency.epoch`, the
overlay + retired mask once per round) and workers rebuild a read-only
replica to run their shard of priority evaluations or witness
instances.  Everything order-sensitive — independent-set selection,
shortcut dedup, graph surgery — stays in the coordinator, and witness
instances are mutually independent, so the parallel hierarchy is
**bit-identical** to the serial one for any worker count (and across
worker crashes: a re-dispatched shard recomputes the same arrays).
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.csr import StaticGraph
from ..graph.dynamic import DynamicAdjacency
from ..utils.hotloop import bulk_compute
from ..utils.workers import resolve_workers
from .hierarchy import ContractionHierarchy, assemble_hierarchy
from .witness_batch import batched_witness_search, witness_shard

__all__ = ["contract_graph_batched"]

#: Pack the (v, u, w) candidate-pair identity into one int64 key.  Needs
#: n**3 < 2**63; callers gate the fresh-pair cache on that.
_FRESH_CACHE_MAX_N = 2_000_000


def _hop_limit(params, avg_degree: float) -> int | None:
    for bound, limit in params.hop_schedule:
        if bound is None or avg_degree <= bound:
            return limit
    return None


def _pair_key(n: int, v, u, w) -> np.ndarray:
    return (v * n + u) * n + w


def _cross_pairs(
    in_owner: np.ndarray, out_owner: np.ndarray, num_owners: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index pairs of every (in-arc, out-arc) combination per owner.

    Returns ``(pair_owner, in_idx, out_idx)`` where the index arrays
    point into the gathered in-/out-arc arrays.
    """
    in_counts = np.bincount(in_owner, minlength=num_owners)
    out_counts = np.bincount(out_owner, minlength=num_owners)
    in_first = np.concatenate(([0], np.cumsum(in_counts)[:-1]))
    out_first = np.concatenate(([0], np.cumsum(out_counts)[:-1]))
    pair_counts = in_counts * out_counts
    total = int(pair_counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    pair_owner = np.repeat(
        np.arange(num_owners, dtype=np.int64), pair_counts
    )
    pair_first = np.concatenate(([0], np.cumsum(pair_counts)[:-1]))
    offset = np.arange(total, dtype=np.int64) - np.repeat(
        pair_first, pair_counts
    )
    do_rep = np.repeat(out_counts, pair_counts)
    in_idx = np.repeat(in_first, pair_counts) + offset // do_rep
    out_idx = np.repeat(out_first, pair_counts) + offset % do_rep
    return pair_owner, in_idx, out_idx


def _gather_pairs(dyn: DynamicAdjacency, verts: np.ndarray):
    """In×out candidate pairs for ``verts`` (dedup'd neighbours).

    Returns the gathered in-/out-arc arrays plus the cross-product
    index triple; pairs with ``u == w`` are already dropped.  A pure
    per-vertex function of the adjacency, so computing it for a slice
    of ``verts`` (on a snapshot replica) yields exactly the slice of
    the full gather — the property the parallel shards rely on.
    """
    own_i, u, lu, hu = dyn.in_arcs_of(verts)
    own_o, w, lw, hw = dyn.out_arcs_of(verts)
    pair_owner, in_idx, out_idx = _cross_pairs(own_i, own_o, verts.size)
    if pair_owner.size:
        keep = u[in_idx] != w[out_idx]
        pair_owner, in_idx, out_idx = (
            pair_owner[keep], in_idx[keep], out_idx[keep]
        )
    return (own_i, u, lu, hu), (own_o, w, lw, hw), (
        pair_owner, in_idx, out_idx
    )


def _shard_priorities(
    dyn: DynamicAdjacency,
    verts: np.ndarray,
    hop_limit,
    *,
    h_arc_cap: int,
    witness_max_settled,
    cache_pairs: bool,
) -> dict:
    """Phase-1 priority components for ``verts`` (one witness sweep).

    Pure function of the adjacency and ``verts``: the serial engine
    calls it once with every dirty vertex, the parallel coordinator
    ships contiguous slices to workers and concatenates the component
    arrays.  All outputs are indexed like ``verts`` (or sorted by the
    packed pair key for the fresh-pair cache, which is monotone in the
    owner vertex — so per-slice sorted caches concatenate sorted).
    """
    n = dyn.n
    (own_i, u, lu, hu), (own_o, w, lw, hw), (
        pair_owner, in_idx, out_idx
    ) = _gather_pairs(dyn, verts)
    cand = lu[in_idx] + lw[out_idx]
    # One witness instance per (vertex, in-neighbour): the gathered
    # in-arc rows are exactly those pairs, so the in-arc index IS
    # the instance id.  Instances with no surviving pair are
    # dropped and the rest renumbered densely.
    used = np.zeros(u.size, dtype=bool)
    used[in_idx] = True
    inst_of_arc = np.cumsum(used) - 1
    budgets = np.zeros(int(used.sum()), dtype=np.int64)
    np.maximum.at(budgets, inst_of_arc[in_idx], cand)
    result = batched_witness_search(
        dyn,
        u[used],
        budgets,
        excluded_vertex=verts[own_i[used]],
        hop_limit=hop_limit,
        label_cap=witness_max_settled,
    )
    wd = result.lookup(inst_of_arc[in_idx], w[out_idx])
    needed = (wd < 0) | (wd > cand)

    if cache_pairs:
        keys = _pair_key(n, verts[pair_owner], u[in_idx], w[out_idx])
        korder = np.argsort(keys)
        fresh_keys, fresh_wd = keys[korder], wd[korder]
    else:
        fresh_keys = np.zeros(0, dtype=np.int64)
        fresh_wd = np.zeros(0, dtype=np.int64)

    sc_count = np.bincount(pair_owner[needed], minlength=verts.size)
    h_term = np.zeros(verts.size, dtype=np.int64)
    h_contrib = np.minimum(hu[in_idx], h_arc_cap) + np.minimum(
        hw[out_idx], h_arc_cap
    )
    np.add.at(h_term, pair_owner[needed], h_contrib[needed])
    removed = (
        np.bincount(own_i, minlength=verts.size)
        + np.bincount(own_o, minlength=verts.size)
    )
    return {
        "sc_count": sc_count,
        "h_term": h_term,
        "removed": removed,
        "fresh_keys": fresh_keys,
        "fresh_wd": fresh_wd,
        "instances": int(used.sum()),
        "labels": result.labels_settled,
        "pairs": int(pair_owner.size),
    }


def _shard_bounds(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ≤ ``parts`` contiguous nonempty slices."""
    parts = max(1, min(parts, total))
    cuts = np.linspace(0, total, parts + 1).astype(np.int64)
    return [(int(a), int(b)) for a, b in zip(cuts[:-1], cuts[1:]) if b > a]


# ---------------------------------------------------------------------------
# Worker-side task handler (module-level: travels by name through pickle)


def _attach_replica(ctx, common) -> DynamicAdjacency:
    """The round's snapshot replica, rebuilt only when a segment changes.

    Cached in the worker's persistent ``ctx.state`` keyed by the
    (epoch segment, round segment) names; a new round republishes the
    overlay segment, a rebuild additionally republishes the base, and
    either changes the key.  Old views (including the cached replica
    built over them) are dropped *before* the superseded segments are
    closed, so the retired mappings actually unmap.
    """
    key = (common["epoch_seg"][0], common["round_seg"][0])
    cached = ctx.state.get("replica")
    if cached is not None and cached[0] == key:
        return cached[1]
    ctx.state.pop("replica", None)
    ctx.release(keep=key)
    base = ctx.attach(*common["epoch_seg"])
    over = ctx.attach(*common["round_seg"])
    overlay = {
        k: over[k] for k in ("ov:tails", "ov:heads", "ov:lens", "ov:hops")
    }
    dyn = DynamicAdjacency.from_snapshot(
        common["n"], base, overlay, over["retired"]
    )
    ctx.state["replica"] = (key, dyn)
    return dyn


def _preprocessing_task(ctx, common, item) -> dict:
    """One shard of a round's phase-1 or phase-3 witness work."""
    dyn = _attach_replica(ctx, common)
    if item["kind"] == "priorities":
        return _shard_priorities(
            dyn,
            item["verts"],
            common["hop_limit"],
            h_arc_cap=common["h_arc_cap"],
            witness_max_settled=common["witness_max_settled"],
            cache_pairs=common["cache_pairs"],
        )
    in_batch = np.zeros(dyn.n, dtype=bool)
    in_batch[common["batch"]] = True
    wd, labels = witness_shard(
        dyn,
        item["srcs"],
        item["budgets"],
        item["q_inst"],
        item["q_vert"],
        excluded_mask=in_batch,
        hop_limit=common["hop_limit"],
        label_cap=common["witness_max_settled"],
    )
    return {"wd": wd, "labels": labels}


# ---------------------------------------------------------------------------
# Coordinator


class _BatchContractor:
    """Mutable state of one batched preprocessing run."""

    def __init__(self, graph: StaticGraph, params) -> None:
        self.params = params
        self.n = graph.n
        self.dyn = DynamicAdjacency(
            graph, rebuild_every=params.rebuild_every
        )
        self.prio = np.zeros(self.n, dtype=np.int64)
        self.level = np.zeros(self.n, dtype=np.int64)
        self.cn = np.zeros(self.n, dtype=np.int64)
        self.rank = np.full(self.n, -1, dtype=np.int64)
        self.dirty = np.ones(self.n, dtype=bool)
        self.sc_tails: list[np.ndarray] = []
        self.sc_heads: list[np.ndarray] = []
        self.sc_lens: list[np.ndarray] = []
        self.sc_vias: list[np.ndarray] = []
        self.num_shortcuts = 0
        self.position = 0
        self.witness_searches = 0
        self.priority_evaluations = 0
        self.round_log: list[dict] = []
        self.workers = 1
        self.publish_seconds = 0.0
        # Per-round cache of the priority pass's witness distances
        # (avoiding only the simulated vertex), keyed (v, u, w).  Valid
        # for the round they were computed in: same graph state.
        self._fresh_keys = np.zeros(0, dtype=np.int64)
        self._fresh_wd = np.zeros(0, dtype=np.int64)
        self._fresh_mask = np.zeros(self.n, dtype=bool)

    def _pair_key(self, v, u, w) -> np.ndarray:
        return _pair_key(self.n, v, u, w)

    @property
    def _cache_pairs(self) -> bool:
        return self.n < _FRESH_CACHE_MAX_N

    # -- round hooks (parallel coordinator overrides) -----------------------

    def begin_round(self) -> None:
        """Publish round state to workers (no-op for the serial engine)."""

    def end_round_cleanup(self) -> None:
        """Retire per-round publications (no-op for the serial engine)."""

    def close(self) -> None:
        """Release pooled resources (no-op for the serial engine)."""

    def pool_health(self) -> dict | None:
        return None

    # -- phase 1: priorities ------------------------------------------------

    def _gather_pairs(self, verts: np.ndarray):
        return _gather_pairs(self.dyn, verts)

    def refresh_priorities(self, verts: np.ndarray, hop_limit) -> dict:
        """Recompute the paper's priority for ``verts`` in one sweep."""
        p = self.params
        comps = _shard_priorities(
            self.dyn,
            verts,
            hop_limit,
            h_arc_cap=p.h_arc_cap,
            witness_max_settled=p.witness_max_settled,
            cache_pairs=self._cache_pairs,
        )
        return self._apply_priorities(verts, [comps])

    def _apply_priorities(self, verts: np.ndarray, shards: list[dict]) -> dict:
        """Fold per-shard phase-1 components into priorities + caches.

        ``shards`` hold the components of consecutive slices of
        ``verts`` in order, so plain concatenation realigns every
        per-vertex array with ``verts`` — and the fresh-pair caches,
        each sorted by a key monotone in the owner vertex, concatenate
        into one globally sorted cache.
        """
        p = self.params
        sc_count = np.concatenate([s["sc_count"] for s in shards])
        h_term = np.concatenate([s["h_term"] for s in shards])
        removed = np.concatenate([s["removed"] for s in shards])
        self.prio[verts] = (
            p.ed_weight * (sc_count - removed)
            + p.cn_weight * self.cn[verts]
            + p.h_weight * h_term
            + p.level_weight * self.level[verts]
        )
        if self._cache_pairs:
            self._fresh_keys = np.concatenate(
                [s["fresh_keys"] for s in shards]
            )
            self._fresh_wd = np.concatenate([s["fresh_wd"] for s in shards])
            self._fresh_mask[:] = False
            self._fresh_mask[verts] = True
        instances = sum(s["instances"] for s in shards)
        self.witness_searches += instances
        self.priority_evaluations += int(verts.size)
        self.dirty[verts] = False
        return {
            "instances": instances,
            "labels": sum(s["labels"] for s in shards),
            "pairs": sum(s["pairs"] for s in shards),
        }

    # -- phase 2: independent-set selection ---------------------------------

    def select_batch(self) -> np.ndarray:
        """Vertices that are (prio, id)-minimal among live neighbours."""
        dyn = self.dyn
        is_min = ~dyn.retired
        tails, heads = dyn.live_arc_pairs()
        if tails.size:
            prio = self.prio
            tail_worse = (prio[tails] > prio[heads]) | (
                (prio[tails] == prio[heads]) & (tails > heads)
            )
            is_min[tails[tail_worse]] = False
            is_min[heads[~tail_worse]] = False
        return np.flatnonzero(is_min)

    # -- phase 3 + 4: witness + surgery -------------------------------------

    def _phase3_witness(
        self,
        srcs: np.ndarray,
        budgets: np.ndarray,
        inst: np.ndarray,
        targets: np.ndarray,
        batch: np.ndarray,
        in_batch: np.ndarray,
        hop_limit,
    ) -> np.ndarray:
        """Witness distance per (instance, target) query for phase 3."""
        result = batched_witness_search(
            self.dyn,
            srcs,
            budgets,
            excluded_mask=in_batch,
            hop_limit=hop_limit,
            label_cap=self.params.witness_max_settled,
        )
        return result.lookup(inst, targets)

    def contract_batch(self, batch: np.ndarray, hop_limit) -> dict:
        """Decide shortcuts for ``batch`` and apply the bulk surgery."""
        dyn = self.dyn
        (own_i, u, lu, hu), (own_o, w, lw, hw), (
            pair_owner, in_idx, out_idx
        ) = self._gather_pairs(batch)
        in_batch = np.zeros(self.n, dtype=bool)
        in_batch[batch] = True

        shortcuts = 0
        if pair_owner.size:
            cand = lu[in_idx] + lw[out_idx]
            # Searches from the same source share one instance: the
            # exclusion set (the whole batch) is common to all of them.
            srcs, src_of_arc = np.unique(u, return_inverse=True)
            budgets = np.zeros(srcs.size, dtype=np.int64)
            inst = src_of_arc[in_idx]
            np.maximum.at(budgets, inst, cand)
            wd = self._phase3_witness(
                srcs, budgets, inst, w[out_idx], batch, in_batch, hop_limit
            )
            self.witness_searches += int(srcs.size)
            needed = (wd < 0) | (wd > cand)
            # A witness avoiding the whole batch is sound but overly
            # conservative: it misses witnesses through *other* round
            # members, which is where the batched/sequential shortcut
            # gap comes from.  A second sound rule recovers most of
            # them: a **strictly** shorter witness avoiding only the
            # owner also kills the pair — substituting it strictly
            # shortens any walk, so mutual cancellation between round
            # members cannot cycle.  Phase 1 computed exactly those
            # distances, on this same round-start graph, for every
            # member refreshed this round.
            if needed.any() and self._fresh_keys.size:
                fresh = self._fresh_mask[batch[pair_owner]] & needed
                if fresh.any():
                    keys = self._pair_key(
                        batch[pair_owner[fresh]],
                        u[in_idx[fresh]],
                        w[out_idx[fresh]],
                    )
                    pos = np.searchsorted(self._fresh_keys, keys)
                    pos = np.minimum(pos, self._fresh_keys.size - 1)
                    hit = self._fresh_keys[pos] == keys
                    wd_v = np.where(hit, self._fresh_wd[pos], -1)
                    strict = (wd_v >= 0) & (wd_v < cand[fresh])
                    drop = np.zeros(needed.size, dtype=bool)
                    drop[np.flatnonzero(fresh)[strict]] = True
                    needed &= ~drop
            if needed.any():
                sc_t = u[in_idx[needed]]
                sc_h = w[out_idx[needed]]
                sc_l = cand[needed]
                sc_v = batch[pair_owner[needed]]
                sc_hops = hu[in_idx[needed]] + hw[out_idx[needed]]
                # Two batch members sharing neighbours u, w can demand
                # the same shortcut; keep the shortest (the sequential
                # contractor's witness pass would kill the later one).
                order = np.lexsort((sc_l, sc_h, sc_t))
                sc_t, sc_h, sc_l, sc_v, sc_hops = (
                    sc_t[order], sc_h[order], sc_l[order],
                    sc_v[order], sc_hops[order],
                )
                keep = np.empty(sc_t.size, dtype=bool)
                keep[0] = True
                keep[1:] = (sc_t[1:] != sc_t[:-1]) | (sc_h[1:] != sc_h[:-1])
                sc_t, sc_h, sc_l, sc_v, sc_hops = (
                    sc_t[keep], sc_h[keep], sc_l[keep],
                    sc_v[keep], sc_hops[keep],
                )
                shortcuts = int(sc_t.size)
                self.sc_tails.append(sc_t)
                self.sc_heads.append(sc_h)
                self.sc_lens.append(sc_l)
                self.sc_vias.append(sc_v)
                self.num_shortcuts += shortcuts
                dyn.add_arcs(sc_t, sc_h, sc_l, sc_hops)

        # Neighbour bookkeeping: one update per distinct (member,
        # neighbour) pair, exactly like the sequential contractor's
        # ``set(fwd) | set(bwd)``.
        nbr_owner = np.concatenate([own_i, own_o])
        nbr = np.concatenate([u, w])
        if nbr.size:
            order = np.lexsort((nbr, nbr_owner))
            nbr_owner, nbr = nbr_owner[order], nbr[order]
            keep = np.empty(nbr.size, dtype=bool)
            keep[0] = True
            keep[1:] = (nbr_owner[1:] != nbr_owner[:-1]) | (nbr[1:] != nbr[:-1])
            nbr_owner, nbr = nbr_owner[keep], nbr[keep]
            np.add.at(self.cn, nbr, 1)
            np.maximum.at(self.level, nbr, self.level[batch[nbr_owner]] + 1)
            self.dirty[nbr] = True

        self.rank[batch] = self.position + np.arange(
            batch.size, dtype=np.int64
        )
        self.position += int(batch.size)
        dyn.retire(batch, removed_arcs=int(u.size + w.size))
        dyn.end_round()
        return {"shortcuts": shortcuts, "neighbours": int(nbr.size)}


class _PoolContractor(_BatchContractor):
    """Coordinator that fans each round's witness phases over a TaskPool.

    Only the two embarrassingly parallel phases leave the coordinator:
    priority refresh shards (contiguous slices of the dirty-vertex
    list) and phase-3 witness shards (contiguous instance ranges).
    Selection, shortcut dedup and surgery run here, on the same arrays
    and in the same order as the serial engine — which is what makes
    the output hierarchy bit-identical for any worker count.

    Publication protocol: the base CSR is (re)published only when
    :attr:`DynamicAdjacency.epoch` changes (a rebuild), the overlay +
    retired mask every round.  Round segments are retired as soon as
    the round's submits complete; the epoch segment outlives its
    rounds so a crashed worker's re-dispatched shard (or a respawned
    worker) can always re-attach mid-round.
    """

    def __init__(
        self, graph: StaticGraph, params, *, num_workers: int,
        force_pool: bool = False,
    ) -> None:
        super().__init__(graph, params)
        from ..core.pool import TaskPool

        self.pool = TaskPool(
            num_workers=num_workers, force_pool=force_pool
        )
        self.workers = self.pool.num_workers
        self._epoch_seg: tuple | None = None
        self._epoch_num = -1
        self._round_seg: tuple | None = None

    def close(self) -> None:
        self.pool.close()

    def pool_health(self) -> dict | None:
        return self.pool.health()

    # -- publication --------------------------------------------------------

    def begin_round(self) -> None:
        t0 = time.perf_counter()
        dyn = self.dyn
        if dyn.epoch != self._epoch_num:
            if self._epoch_seg is not None:
                self.pool.retire_publication(self._epoch_seg[0])
            self._epoch_seg = self.pool.publish_arrays(dyn.base_arrays())
            self._epoch_num = dyn.epoch
        self._round_seg = self.pool.publish_arrays(
            {**dyn.overlay_arrays(), "retired": dyn.retired}
        )
        self.publish_seconds += time.perf_counter() - t0

    def end_round_cleanup(self) -> None:
        if self._round_seg is not None:
            self.pool.retire_publication(self._round_seg[0])
            self._round_seg = None

    def _common(self, hop_limit, **extra) -> dict:
        common = {
            "n": self.n,
            "epoch_seg": self._epoch_seg,
            "round_seg": self._round_seg,
            "hop_limit": hop_limit,
            "witness_max_settled": self.params.witness_max_settled,
        }
        common.update(extra)
        return common

    # -- parallel phases ----------------------------------------------------

    def refresh_priorities(self, verts: np.ndarray, hop_limit) -> dict:
        p = self.params
        # ~2 shards per worker: enough slack for the supervisor to
        # rebalance around a slow or dying worker without making the
        # per-shard gather overhead dominate.
        bounds = _shard_bounds(int(verts.size), self.workers * 2)
        items = [
            {"kind": "priorities", "verts": verts[lo:hi]} for lo, hi in bounds
        ]
        common = self._common(
            hop_limit,
            h_arc_cap=p.h_arc_cap,
            cache_pairs=self._cache_pairs,
        )
        shards = self.pool.submit(_preprocessing_task, items, common)
        return self._apply_priorities(verts, shards)

    def _phase3_witness(
        self, srcs, budgets, inst, targets, batch, in_batch, hop_limit
    ) -> np.ndarray:
        bounds = _shard_bounds(int(srcs.size), self.workers * 2)
        items, sels = [], []
        for lo, hi in bounds:
            sel = np.flatnonzero((inst >= lo) & (inst < hi))
            sels.append(sel)
            items.append({
                "kind": "phase3",
                "srcs": srcs[lo:hi],
                "budgets": budgets[lo:hi],
                "q_inst": inst[sel] - lo,
                "q_vert": targets[sel],
            })
        common = self._common(hop_limit, batch=batch)
        results = self.pool.submit(_preprocessing_task, items, common)
        wd = np.empty(inst.size, dtype=np.int64)
        for sel, res in zip(sels, results):
            wd[sel] = res["wd"]
        return wd


def _run_rounds(state: _BatchContractor, params) -> None:
    """The round loop, shared by the serial and parallel coordinators."""
    dyn = state.dyn
    # The round loop is pure acyclic NumPy churn: pause the cyclic GC
    # and keep malloc's big-block pages hot (multi-second stalls on
    # virtualized hosts otherwise).
    with bulk_compute():
        while dyn.live_vertices:
            round_start = time.perf_counter()
            hop_limit = _hop_limit(params, dyn.avg_degree)
            state.begin_round()
            dirty_verts = np.flatnonzero(state.dirty & ~dyn.retired)
            if dirty_verts.size:
                prio_info = state.refresh_priorities(dirty_verts, hop_limit)
            else:
                # The cached per-pair witness distances are from an
                # older graph — not valid for this round's phase 3.
                state._fresh_keys = np.zeros(0, dtype=np.int64)
                state._fresh_mask[:] = False
                prio_info = {"instances": 0, "labels": 0, "pairs": 0}
            batch = state.select_batch()
            contract_info = state.contract_batch(batch, hop_limit)
            state.end_round_cleanup()
            state.round_log.append({
                "round": len(state.round_log),
                "batch": int(batch.size),
                "dirty": int(dirty_verts.size),
                "hop_limit": hop_limit,
                "witness_instances": prio_info["instances"],
                "witness_labels": prio_info["labels"],
                "shortcuts": contract_info["shortcuts"],
                "seconds": time.perf_counter() - round_start,
            })


def contract_graph_batched(
    graph: StaticGraph,
    params,
    *,
    num_workers: int | None = None,
    force_pool: bool = False,
) -> ContractionHierarchy:
    """Run batched independent-set CH preprocessing on ``graph``.

    Produces the same kind of hierarchy as the lazy sequential
    contractor — identical query/tree distances, shortcut count within
    a few percent — at a fraction of the wall-clock, because each
    round's witness searches and graph surgery are single NumPy bulk
    operations.

    Parameters
    ----------
    num_workers:
        Worker processes for the per-round witness phases (default:
        ``params.preprocess_workers``; ``None`` keeps everything in
        one process).  Resolution goes through
        :func:`~repro.utils.workers.resolve_workers`, so the shared
        ``REPRO_MAX_WORKERS`` cap applies and single-CPU hosts fall
        back to the serial engine.  The hierarchy is bit-identical
        for every worker count.
    force_pool:
        Spin up worker processes even on a single-CPU host (the
        multiprocessing path stays testable everywhere).
    """
    start = time.perf_counter()
    requested = num_workers
    if requested is None:
        requested = getattr(params, "preprocess_workers", None)
    if requested is None and not force_pool:
        workers, fell_back = 1, False
    elif force_pool:
        # Mirror the pool's own force semantics: the requested count is
        # honoured as-is even on a single-CPU host.
        if requested is None:
            requested, _ = resolve_workers(None)
        workers, fell_back = max(1, int(requested)), False
    else:
        workers, fell_back = resolve_workers(requested)
    use_pool = force_pool or workers > 1

    if use_pool:
        state: _BatchContractor = _PoolContractor(
            graph, params, num_workers=workers, force_pool=force_pool
        )
    else:
        state = _BatchContractor(graph, params)
    dyn = state.dyn
    try:
        _run_rounds(state, params)
        health = state.pool_health()
    finally:
        state.close()

    empty = np.zeros(0, dtype=np.int64)
    sc_tails = np.concatenate(state.sc_tails) if state.sc_tails else empty
    sc_heads = np.concatenate(state.sc_heads) if state.sc_heads else empty
    sc_lens = np.concatenate(state.sc_lens) if state.sc_lens else empty
    sc_vias = np.concatenate(state.sc_vias) if state.sc_vias else empty
    seconds = time.perf_counter() - start
    batches = [r["batch"] for r in state.round_log]
    stats = {
        "strategy": "batched",
        "witness_searches": state.witness_searches,
        "shortcuts_added": state.num_shortcuts,
        "priority_evaluations": state.priority_evaluations,
        "seconds": seconds,
        "rounds": len(state.round_log),
        "peak_batch": max(batches, default=0),
        "mean_batch": float(np.mean(batches)) if batches else 0.0,
        "rebuilds": dyn.rebuilds,
        "rebuild_seconds": dyn.rebuild_seconds,
        "workers": state.workers,
        "parallel": use_pool,
        "fell_back": fell_back,
        "publish_seconds": state.publish_seconds,
        "round_log": state.round_log,
    }
    if health is not None:
        stats["pool_health"] = health
    return assemble_hierarchy(
        graph,
        state.rank,
        state.level,
        sc_tails,
        sc_heads,
        sc_lens,
        sc_vias,
        num_shortcuts=state.num_shortcuts,
        stats=stats,
    )
