"""Batched independent-set CH preprocessing.

The lazy sequential contractor (:mod:`repro.ch.contraction`) pops one
vertex at a time off a heap and runs scalar witness Dijkstras — fine at
n ≈ 4·10³, hopeless at the 10⁵–10⁶ the PHAST sweep itself handles.
This module contracts the graph in **rounds**, following the parallel
CH preprocessing literature (Luxen & Schieferdecker's cache-aware
variant; Wan et al.'s independent-set batches):

1. recompute the paper's priority for every *dirty* vertex (its
   neighbourhood changed) with one batched witness sweep;
2. select the vertices that are **local priority minima** among their
   uncontracted neighbours — an independent set, so no two neighbours
   contract in the same round and the result is a valid hierarchy;
3. decide all of the round's shortcuts with a second batched witness
   sweep whose searches avoid the *entire* round set (a witness through
   a vertex removed this same round would be unsound — ties between
   two same-round candidates could otherwise cancel each other);
4. apply the surgery in bulk: append shortcut arcs, retire the round's
   vertices, bump neighbour levels / contracted-neighbour counts, and
   let :class:`~repro.graph.dynamic.DynamicAdjacency` recompact itself
   for locality every few rounds.

Rank order inside a round is by vertex ID; since round members are
pairwise non-adjacent no arc connects them, so any order yields the
same upward/downward split.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.csr import StaticGraph
from ..graph.dynamic import DynamicAdjacency
from ..utils.hotloop import bulk_compute
from .hierarchy import ContractionHierarchy, assemble_hierarchy
from .witness_batch import batched_witness_search

__all__ = ["contract_graph_batched"]


def _hop_limit(params, avg_degree: float) -> int | None:
    for bound, limit in params.hop_schedule:
        if bound is None or avg_degree <= bound:
            return limit
    return None


def _cross_pairs(
    in_owner: np.ndarray, out_owner: np.ndarray, num_owners: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index pairs of every (in-arc, out-arc) combination per owner.

    Returns ``(pair_owner, in_idx, out_idx)`` where the index arrays
    point into the gathered in-/out-arc arrays.
    """
    in_counts = np.bincount(in_owner, minlength=num_owners)
    out_counts = np.bincount(out_owner, minlength=num_owners)
    in_first = np.concatenate(([0], np.cumsum(in_counts)[:-1]))
    out_first = np.concatenate(([0], np.cumsum(out_counts)[:-1]))
    pair_counts = in_counts * out_counts
    total = int(pair_counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    pair_owner = np.repeat(
        np.arange(num_owners, dtype=np.int64), pair_counts
    )
    pair_first = np.concatenate(([0], np.cumsum(pair_counts)[:-1]))
    offset = np.arange(total, dtype=np.int64) - np.repeat(
        pair_first, pair_counts
    )
    do_rep = np.repeat(out_counts, pair_counts)
    in_idx = np.repeat(in_first, pair_counts) + offset // do_rep
    out_idx = np.repeat(out_first, pair_counts) + offset % do_rep
    return pair_owner, in_idx, out_idx


class _BatchContractor:
    """Mutable state of one batched preprocessing run."""

    def __init__(self, graph: StaticGraph, params) -> None:
        self.params = params
        self.n = graph.n
        self.dyn = DynamicAdjacency(
            graph, rebuild_every=params.rebuild_every
        )
        self.prio = np.zeros(self.n, dtype=np.int64)
        self.level = np.zeros(self.n, dtype=np.int64)
        self.cn = np.zeros(self.n, dtype=np.int64)
        self.rank = np.full(self.n, -1, dtype=np.int64)
        self.dirty = np.ones(self.n, dtype=bool)
        self.sc_tails: list[np.ndarray] = []
        self.sc_heads: list[np.ndarray] = []
        self.sc_lens: list[np.ndarray] = []
        self.sc_vias: list[np.ndarray] = []
        self.num_shortcuts = 0
        self.position = 0
        self.witness_searches = 0
        self.priority_evaluations = 0
        self.round_log: list[dict] = []
        # Per-round cache of the priority pass's witness distances
        # (avoiding only the simulated vertex), keyed (v, u, w).  Valid
        # for the round they were computed in: same graph state.
        self._fresh_keys = np.zeros(0, dtype=np.int64)
        self._fresh_wd = np.zeros(0, dtype=np.int64)
        self._fresh_mask = np.zeros(self.n, dtype=bool)

    def _pair_key(self, v, u, w) -> np.ndarray:
        return (v * self.n + u) * self.n + w

    # -- phase 1: priorities ------------------------------------------------

    def _gather_pairs(self, verts: np.ndarray):
        """In×out candidate pairs for ``verts`` (dedup'd neighbours).

        Returns the gathered in-/out-arc arrays plus the cross-product
        index triple; pairs with ``u == w`` are already dropped.
        """
        dyn = self.dyn
        own_i, u, lu, hu = dyn.in_arcs_of(verts)
        own_o, w, lw, hw = dyn.out_arcs_of(verts)
        pair_owner, in_idx, out_idx = _cross_pairs(
            own_i, own_o, verts.size
        )
        if pair_owner.size:
            keep = u[in_idx] != w[out_idx]
            pair_owner, in_idx, out_idx = (
                pair_owner[keep], in_idx[keep], out_idx[keep]
            )
        return (own_i, u, lu, hu), (own_o, w, lw, hw), (
            pair_owner, in_idx, out_idx
        )

    def refresh_priorities(self, verts: np.ndarray, hop_limit) -> dict:
        """Recompute the paper's priority for ``verts`` in one sweep."""
        p = self.params
        (own_i, u, lu, hu), (own_o, w, lw, hw), (
            pair_owner, in_idx, out_idx
        ) = self._gather_pairs(verts)
        cand = lu[in_idx] + lw[out_idx]
        # One witness instance per (vertex, in-neighbour): the gathered
        # in-arc rows are exactly those pairs, so the in-arc index IS
        # the instance id.  Instances with no surviving pair are
        # dropped and the rest renumbered densely.
        used = np.zeros(u.size, dtype=bool)
        used[in_idx] = True
        inst_of_arc = np.cumsum(used) - 1
        budgets = np.zeros(int(used.sum()), dtype=np.int64)
        np.maximum.at(budgets, inst_of_arc[in_idx], cand)
        result = batched_witness_search(
            self.dyn,
            u[used],
            budgets,
            excluded_vertex=verts[own_i[used]],
            hop_limit=hop_limit,
            label_cap=p.witness_max_settled,
        )
        wd = result.lookup(inst_of_arc[in_idx], w[out_idx])
        needed = (wd < 0) | (wd > cand)
        self.witness_searches += int(used.sum())
        self.priority_evaluations += int(verts.size)

        # Cache the per-pair distances for this round's phase 3.  The
        # packed (v, u, w) key needs n**3 < 2**63; beyond that the
        # cache is skipped (phase 3 just gets a little conservative).
        if self.n < 2_000_000:
            keys = self._pair_key(verts[pair_owner], u[in_idx], w[out_idx])
            korder = np.argsort(keys)
            self._fresh_keys = keys[korder]
            self._fresh_wd = wd[korder]
            self._fresh_mask[:] = False
            self._fresh_mask[verts] = True

        sc_count = np.bincount(pair_owner[needed], minlength=verts.size)
        h_term = np.zeros(verts.size, dtype=np.int64)
        cap = p.h_arc_cap
        h_contrib = np.minimum(hu[in_idx], cap) + np.minimum(hw[out_idx], cap)
        np.add.at(h_term, pair_owner[needed], h_contrib[needed])
        removed = (
            np.bincount(own_i, minlength=verts.size)
            + np.bincount(own_o, minlength=verts.size)
        )
        self.prio[verts] = (
            p.ed_weight * (sc_count - removed)
            + p.cn_weight * self.cn[verts]
            + p.h_weight * h_term
            + p.level_weight * self.level[verts]
        )
        self.dirty[verts] = False
        return {
            "instances": int(used.sum()),
            "labels": result.labels_settled,
            "pairs": int(pair_owner.size),
        }

    # -- phase 2: independent-set selection ---------------------------------

    def select_batch(self) -> np.ndarray:
        """Vertices that are (prio, id)-minimal among live neighbours."""
        dyn = self.dyn
        is_min = ~dyn.retired
        tails, heads = dyn.live_arc_pairs()
        if tails.size:
            prio = self.prio
            tail_worse = (prio[tails] > prio[heads]) | (
                (prio[tails] == prio[heads]) & (tails > heads)
            )
            is_min[tails[tail_worse]] = False
            is_min[heads[~tail_worse]] = False
        return np.flatnonzero(is_min)

    # -- phase 3 + 4: witness + surgery -------------------------------------

    def contract_batch(self, batch: np.ndarray, hop_limit) -> dict:
        """Decide shortcuts for ``batch`` and apply the bulk surgery."""
        dyn = self.dyn
        (own_i, u, lu, hu), (own_o, w, lw, hw), (
            pair_owner, in_idx, out_idx
        ) = self._gather_pairs(batch)
        in_batch = np.zeros(self.n, dtype=bool)
        in_batch[batch] = True

        shortcuts = 0
        if pair_owner.size:
            cand = lu[in_idx] + lw[out_idx]
            # Searches from the same source share one instance: the
            # exclusion set (the whole batch) is common to all of them.
            srcs, src_of_arc = np.unique(u, return_inverse=True)
            budgets = np.zeros(srcs.size, dtype=np.int64)
            inst = src_of_arc[in_idx]
            np.maximum.at(budgets, inst, cand)
            result = batched_witness_search(
                dyn,
                srcs,
                budgets,
                excluded_mask=in_batch,
                hop_limit=hop_limit,
                label_cap=self.params.witness_max_settled,
            )
            self.witness_searches += int(srcs.size)
            wd = result.lookup(inst, w[out_idx])
            needed = (wd < 0) | (wd > cand)
            # A witness avoiding the whole batch is sound but overly
            # conservative: it misses witnesses through *other* round
            # members, which is where the batched/sequential shortcut
            # gap comes from.  A second sound rule recovers most of
            # them: a **strictly** shorter witness avoiding only the
            # owner also kills the pair — substituting it strictly
            # shortens any walk, so mutual cancellation between round
            # members cannot cycle.  Phase 1 computed exactly those
            # distances, on this same round-start graph, for every
            # member refreshed this round.
            if needed.any() and self._fresh_keys.size:
                fresh = self._fresh_mask[batch[pair_owner]] & needed
                if fresh.any():
                    keys = self._pair_key(
                        batch[pair_owner[fresh]],
                        u[in_idx[fresh]],
                        w[out_idx[fresh]],
                    )
                    pos = np.searchsorted(self._fresh_keys, keys)
                    pos = np.minimum(pos, self._fresh_keys.size - 1)
                    hit = self._fresh_keys[pos] == keys
                    wd_v = np.where(hit, self._fresh_wd[pos], -1)
                    strict = (wd_v >= 0) & (wd_v < cand[fresh])
                    drop = np.zeros(needed.size, dtype=bool)
                    drop[np.flatnonzero(fresh)[strict]] = True
                    needed &= ~drop
            if needed.any():
                sc_t = u[in_idx[needed]]
                sc_h = w[out_idx[needed]]
                sc_l = cand[needed]
                sc_v = batch[pair_owner[needed]]
                sc_hops = hu[in_idx[needed]] + hw[out_idx[needed]]
                # Two batch members sharing neighbours u, w can demand
                # the same shortcut; keep the shortest (the sequential
                # contractor's witness pass would kill the later one).
                order = np.lexsort((sc_l, sc_h, sc_t))
                sc_t, sc_h, sc_l, sc_v, sc_hops = (
                    sc_t[order], sc_h[order], sc_l[order],
                    sc_v[order], sc_hops[order],
                )
                keep = np.empty(sc_t.size, dtype=bool)
                keep[0] = True
                keep[1:] = (sc_t[1:] != sc_t[:-1]) | (sc_h[1:] != sc_h[:-1])
                sc_t, sc_h, sc_l, sc_v, sc_hops = (
                    sc_t[keep], sc_h[keep], sc_l[keep],
                    sc_v[keep], sc_hops[keep],
                )
                shortcuts = int(sc_t.size)
                self.sc_tails.append(sc_t)
                self.sc_heads.append(sc_h)
                self.sc_lens.append(sc_l)
                self.sc_vias.append(sc_v)
                self.num_shortcuts += shortcuts
                dyn.add_arcs(sc_t, sc_h, sc_l, sc_hops)

        # Neighbour bookkeeping: one update per distinct (member,
        # neighbour) pair, exactly like the sequential contractor's
        # ``set(fwd) | set(bwd)``.
        nbr_owner = np.concatenate([own_i, own_o])
        nbr = np.concatenate([u, w])
        if nbr.size:
            order = np.lexsort((nbr, nbr_owner))
            nbr_owner, nbr = nbr_owner[order], nbr[order]
            keep = np.empty(nbr.size, dtype=bool)
            keep[0] = True
            keep[1:] = (nbr_owner[1:] != nbr_owner[:-1]) | (nbr[1:] != nbr[:-1])
            nbr_owner, nbr = nbr_owner[keep], nbr[keep]
            np.add.at(self.cn, nbr, 1)
            np.maximum.at(self.level, nbr, self.level[batch[nbr_owner]] + 1)
            self.dirty[nbr] = True

        self.rank[batch] = self.position + np.arange(
            batch.size, dtype=np.int64
        )
        self.position += int(batch.size)
        dyn.retire(batch, removed_arcs=int(u.size + w.size))
        dyn.end_round()
        return {"shortcuts": shortcuts, "neighbours": int(nbr.size)}


def contract_graph_batched(
    graph: StaticGraph, params
) -> ContractionHierarchy:
    """Run batched independent-set CH preprocessing on ``graph``.

    Produces the same kind of hierarchy as the lazy sequential
    contractor — identical query/tree distances, shortcut count within
    a few percent — at a fraction of the wall-clock, because each
    round's witness searches and graph surgery are single NumPy bulk
    operations.
    """
    start = time.perf_counter()
    state = _BatchContractor(graph, params)
    dyn = state.dyn

    # The round loop is pure acyclic NumPy churn: pause the cyclic GC
    # and keep malloc's big-block pages hot (multi-second stalls on
    # virtualized hosts otherwise).
    with bulk_compute():
        while dyn.live_vertices:
            round_start = time.perf_counter()
            hop_limit = _hop_limit(params, dyn.avg_degree)
            dirty_verts = np.flatnonzero(state.dirty & ~dyn.retired)
            if dirty_verts.size:
                prio_info = state.refresh_priorities(dirty_verts, hop_limit)
            else:
                # The cached per-pair witness distances are from an
                # older graph — not valid for this round's phase 3.
                state._fresh_keys = np.zeros(0, dtype=np.int64)
                state._fresh_mask[:] = False
                prio_info = {"instances": 0, "labels": 0, "pairs": 0}
            batch = state.select_batch()
            contract_info = state.contract_batch(batch, hop_limit)
            state.round_log.append({
                "round": len(state.round_log),
                "batch": int(batch.size),
                "dirty": int(dirty_verts.size),
                "hop_limit": hop_limit,
                "witness_instances": prio_info["instances"],
                "witness_labels": prio_info["labels"],
                "shortcuts": contract_info["shortcuts"],
                "seconds": time.perf_counter() - round_start,
            })

    empty = np.zeros(0, dtype=np.int64)
    sc_tails = np.concatenate(state.sc_tails) if state.sc_tails else empty
    sc_heads = np.concatenate(state.sc_heads) if state.sc_heads else empty
    sc_lens = np.concatenate(state.sc_lens) if state.sc_lens else empty
    sc_vias = np.concatenate(state.sc_vias) if state.sc_vias else empty
    seconds = time.perf_counter() - start
    batches = [r["batch"] for r in state.round_log]
    stats = {
        "strategy": "batched",
        "witness_searches": state.witness_searches,
        "shortcuts_added": state.num_shortcuts,
        "priority_evaluations": state.priority_evaluations,
        "seconds": seconds,
        "rounds": len(state.round_log),
        "peak_batch": max(batches, default=0),
        "mean_batch": float(np.mean(batches)) if batches else 0.0,
        "rebuilds": dyn.rebuilds,
        "rebuild_seconds": dyn.rebuild_seconds,
        "round_log": state.round_log,
    }
    return assemble_hierarchy(
        graph,
        state.rank,
        state.level,
        sc_tails,
        sc_heads,
        sc_lens,
        sc_vias,
        num_shortcuts=state.num_shortcuts,
        stats=stats,
    )
