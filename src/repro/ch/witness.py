"""Hop-limited witness search.

When contraction considers removing vertex ``v``, a shortcut
``(u, w)`` with length ``l(u, v) + l(v, w)`` is needed only if no other
path from ``u`` to ``w`` in the current graph (avoiding ``v``) is at
most that long.  The *witness search* is a local Dijkstra from ``u``
that tries to find such paths.  Limiting it to a few hops (the paper:
5 hops while the average degree is below 5, then 10 up to degree 10,
then unlimited) keeps preprocessing fast at the cost of a few
unnecessary — but never incorrect — shortcuts.
"""

from __future__ import annotations

import heapq
from typing import Mapping

__all__ = ["witness_search"]


def witness_search(
    fwd: list[dict[int, tuple[int, int, int]]],
    source: int,
    excluded: int,
    targets: Mapping[int, int],
    hop_limit: int | None,
    max_settled: int | None = None,
) -> dict[int, int]:
    """Bounded Dijkstra over the current (partially contracted) graph.

    Parameters
    ----------
    fwd:
        Dynamic out-adjacency: ``fwd[x]`` maps neighbour ``y`` to
        ``(length, via, hops)``.
    source:
        Start vertex ``u``.
    excluded:
        The vertex being contracted; never traversed.
    targets:
        Maps each target ``w`` to the candidate shortcut length; the
        search may stop once every target's final distance is known or
        provably above its candidate length.
    hop_limit:
        Maximum number of arcs on a witness path (``None`` = unlimited).
    max_settled:
        Optional safety valve on search size.

    Returns
    -------
    Mapping from target to the best distance found (missing = no path
    within the bounds; callers treat that as "no witness").

    Notes
    -----
    Hop-limited Dijkstra is not label-setting in the hop dimension — a
    longer-but-fewer-hops path may reach further.  We therefore allow
    re-expansion when a strictly shorter distance is found (standard
    practice; with a small hop limit the cost is negligible) and accept
    that some within-limit witnesses may be missed.  Missing a witness
    only adds a redundant shortcut, never breaks correctness.
    """
    limit = max(targets.values(), default=0)
    dist: dict[int, int] = {source: 0}
    hops: dict[int, int] = {source: 0}
    heap: list[tuple[int, int]] = [(0, source)]
    remaining = len(targets) - (1 if source in targets else 0)
    settled = 0
    # Local bindings keep the hot loop free of attribute lookups.
    pop, push = heapq.heappop, heapq.heappush
    dist_get = dist.get
    is_target = targets.__contains__
    seen_targets: set[int] = set()
    while heap:
        d, x = pop(heap)
        if d > dist_get(x, -1):
            continue  # stale entry
        if d > limit or remaining <= 0:
            break
        settled += 1
        if max_settled is not None and settled > max_settled:
            break
        if is_target(x) and x not in seen_targets and x != source:
            seen_targets.add(x)
            remaining -= 1
        h = hops[x]
        if hop_limit is not None and h >= hop_limit:
            continue
        h1 = h + 1
        for y, data in fwd[x].items():
            if y == excluded:
                continue
            nd = d + data[0]
            old = dist_get(y)
            if nd <= limit and (old is None or nd < old):
                dist[y] = nd
                hops[y] = h1
                push(heap, (nd, y))
    return {w: dist[w] for w in targets if w in dist}
