"""CH point-to-point queries and the target-independent upward search.

The bidirectional query (Section II-B) runs Dijkstra from ``s``
restricted to upward arcs and from ``t`` restricted to (reversed)
downward arcs; the meeting vertex ``u`` minimizing ``d_s(u) + d_t(u)``
is the maximum-rank vertex of the shortest path.  The *forward-only*
variant — run until the queue empties — is PHAST's first phase.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..graph.csr import INF, StaticGraph
from ..pq.binary_heap import BinaryHeap
from .hierarchy import ContractionHierarchy

__all__ = ["UpwardSearchSpace", "CHQueryResult", "upward_search", "ch_query"]


@dataclass
class UpwardSearchSpace:
    """Settled portion of a forward CH search from one source.

    Attributes
    ----------
    source:
        The search root.
    vertices:
        Settled vertex IDs, in settling order.
    dists:
        Matching labels; ``dists[i]`` is an *upper bound* on the true
        distance from ``source`` to ``vertices[i]`` (exact for the
        maximum-rank vertex of each shortest path, which is all PHAST
        needs).
    parents:
        Matching predecessor vertex in ``G↑`` (-1 for the source).
    """

    source: int
    vertices: np.ndarray
    dists: np.ndarray
    parents: np.ndarray

    @property
    def size(self) -> int:
        return int(self.vertices.size)

    def nbytes(self) -> int:
        """Bytes needed to ship this search space (GPHAST copies it)."""
        return self.vertices.nbytes + self.dists.nbytes


def _relax_from(
    graph: StaticGraph, source: int
) -> tuple[list[int], dict[int, int], dict[int, int]]:
    """Dijkstra over ``graph`` until the queue empties (dict-based).

    The upward search space is tiny (hundreds of vertices out of
    millions), so sparse dictionaries plus a lazy-deletion ``heapq``
    beat anything with per-query O(n) state — this runs thousands of
    times per second inside PHAST engines (the paper measures the
    forward search below 0.05 ms).
    """
    dist: dict[int, int] = {source: 0}
    parent: dict[int, int] = {source: -1}
    settled: list[int] = []
    heap: list[tuple[int, int]] = [(0, source)]
    first, arc_head, arc_len = graph.first, graph.arc_head, graph.arc_len
    done: set[int] = set()
    while heap:
        dv, v = heapq.heappop(heap)
        if v in done:
            continue  # stale lazy-deletion copy
        done.add(v)
        settled.append(v)
        for i in range(first[v], first[v + 1]):
            w = int(arc_head[i])
            if w in done:
                continue
            nd = dv + int(arc_len[i])
            if nd < dist.get(w, INF):
                dist[w] = nd
                parent[w] = v
                heapq.heappush(heap, (nd, w))
    return settled, dist, parent


def upward_search(ch: ContractionHierarchy, source: int) -> UpwardSearchSpace:
    """PHAST phase one: forward CH search with the loose stop criterion.

    Runs Dijkstra from ``source`` in ``G↑`` until the priority queue is
    empty and returns every settled vertex with its label.
    """
    if not 0 <= source < ch.n:
        raise ValueError("source out of range")
    settled, dist, parent = _relax_from(ch.upward, source)
    vertices = np.array(settled, dtype=np.int64)
    dists = np.array([dist[v] for v in settled], dtype=np.int64)
    parents = np.array([parent[v] for v in settled], dtype=np.int64)
    return UpwardSearchSpace(source, vertices, dists, parents)


@dataclass
class CHQueryResult:
    """Outcome of a bidirectional CH query.

    ``distance`` is :data:`~repro.graph.INF` when no path exists;
    ``meeting`` is the maximum-rank vertex of the shortest path.
    ``settled_forward``/``settled_backward`` count scanned vertices (the
    paper reports < 400 on Europe).
    """

    source: int
    target: int
    distance: int
    meeting: int
    settled_forward: int
    settled_backward: int
    path_gplus: list[int] | None = None
    path: list[int] | None = None


def _bidirectional(
    ch: ContractionHierarchy, s: int, t: int, *, stall: bool = False
) -> tuple[int, int, dict, dict, dict, dict, int, int]:
    up, down = ch.upward, ch.downward_rev
    dist_f: dict[int, int] = {s: 0}
    dist_b: dict[int, int] = {t: 0}
    par_f: dict[int, int] = {s: -1}
    par_b: dict[int, int] = {t: -1}
    heap_f = BinaryHeap(ch.n)
    heap_b = BinaryHeap(ch.n)
    heap_f.insert(s, 0)
    heap_b.insert(t, 0)
    done_f: set[int] = set()
    done_b: set[int] = set()
    mu = INF
    meeting = -1
    scans_f = scans_b = 0

    def scan(
        heap: BinaryHeap,
        graph: StaticGraph,
        stall_graph: StaticGraph,
        dist: dict[int, int],
        par: dict[int, int],
        done: set[int],
        other_dist: dict[int, int],
    ) -> int:
        nonlocal mu, meeting
        v, dv = heap.pop_min()
        done.add(v)
        if v in other_dist:
            total = dv + other_dist[v]
            if total < mu:
                mu, meeting = total, v
        if stall:
            # Stall-on-demand (Geisberger et al.): if some arc from the
            # *opposite* direction's graph proves v's label suboptimal
            # (a shorter path through a higher-ranked vertex exists),
            # v cannot lie on a shortest path — skip its relaxations.
            sf, sh, sl = (
                stall_graph.first,
                stall_graph.arc_head,
                stall_graph.arc_len,
            )
            for i in range(sf[v], sf[v + 1]):
                w = int(sh[i])
                dw = dist.get(w)
                if dw is not None and dw + int(sl[i]) < dv:
                    return 1
        first, arc_head, arc_len = graph.first, graph.arc_head, graph.arc_len
        for i in range(first[v], first[v + 1]):
            w = int(arc_head[i])
            if w in done:
                continue
            nd = dv + int(arc_len[i])
            if nd < dist.get(w, INF):
                if heap.contains(w):
                    heap.decrease_key(w, nd)
                else:
                    heap.insert(w, nd)
                dist[w] = nd
                par[w] = v
        return 1

    # Alternate directions; each stops once its minimum key reaches mu.
    while heap_f or heap_b:
        if heap_f:
            _, key = heap_f.peek_min()
            if key >= mu:
                heap_f.clear()
            else:
                scans_f += scan(heap_f, up, down, dist_f, par_f, done_f, dist_b)
        if heap_b:
            _, key = heap_b.peek_min()
            if key >= mu:
                heap_b.clear()
            else:
                scans_b += scan(heap_b, down, up, dist_b, par_b, done_b, dist_f)
    return int(mu), meeting, dist_f, dist_b, par_f, par_b, scans_f, scans_b


def _arc_info_up(ch: ContractionHierarchy, a: int, b: int) -> tuple[int, int]:
    """(length, via) of the upward arc ``a -> b``."""
    lo, hi = ch.upward.first[a], ch.upward.first[a + 1]
    heads = ch.upward.arc_head[lo:hi]
    idx = np.flatnonzero(heads == b)
    if idx.size == 0:
        raise KeyError(f"no upward arc {a} -> {b}")
    i = int(lo + idx[0])
    return int(ch.upward.arc_len[i]), int(ch.upward_via[i])


def _arc_info_down(ch: ContractionHierarchy, a: int, b: int) -> tuple[int, int]:
    """(length, via) of the downward arc ``a -> b`` (stored reversed)."""
    lo, hi = ch.downward_rev.first[b], ch.downward_rev.first[b + 1]
    tails = ch.downward_rev.arc_head[lo:hi]
    idx = np.flatnonzero(tails == a)
    if idx.size == 0:
        raise KeyError(f"no downward arc {a} -> {b}")
    i = int(lo + idx[0])
    return int(ch.downward_rev.arc_len[i]), int(ch.downward_via[i])


def unpack_arc(ch: ContractionHierarchy, a: int, b: int) -> list[int]:
    """Expand the ``G+`` arc ``a -> b`` into original-graph vertices.

    Returns the vertex sequence from ``a`` to ``b`` inclusive.  Runs in
    time proportional to the number of original arcs on the path
    (Section VII-A).
    """
    out = [a]
    # Work stack of (x, y) arcs still to expand, in path order.
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if ch.rank[x] < ch.rank[y]:
            _, via = _arc_info_up(ch, x, y)
        else:
            _, via = _arc_info_down(ch, x, y)
        if via < 0:
            out.append(y)
        else:
            # Expand (x, via) first: push (via, y) below it.
            stack.append((via, y))
            stack.append((x, via))
    return out


def ch_query(
    ch: ContractionHierarchy,
    s: int,
    t: int,
    *,
    with_path: bool = False,
    unpack: bool = False,
    stall: bool = False,
) -> CHQueryResult:
    """Bidirectional point-to-point CH query.

    Parameters
    ----------
    with_path:
        Reconstruct the ``G+`` path through the meeting vertex.
    unpack:
        Additionally expand shortcuts to the original-graph path
        (implies ``with_path``).
    stall:
        Enable stall-on-demand pruning: scanned vertices whose label is
        provably suboptimal (witnessed by an arc from the opposite
        search graph) do not relax their arcs.  Same distances, fewer
        scans on strongly hierarchical graphs.
    """
    if not (0 <= s < ch.n and 0 <= t < ch.n):
        raise ValueError("endpoint out of range")
    mu, meeting, dist_f, dist_b, par_f, par_b, scans_f, scans_b = _bidirectional(
        ch, s, t, stall=stall
    )
    result = CHQueryResult(
        source=s,
        target=t,
        distance=mu if mu < INF else INF,
        meeting=meeting,
        settled_forward=scans_f,
        settled_backward=scans_b,
    )
    if (with_path or unpack) and meeting >= 0:
        fwd = [meeting]
        while par_f[fwd[-1]] != -1:
            fwd.append(par_f[fwd[-1]])
        fwd.reverse()  # s .. meeting (upward arcs)
        bwd = [meeting]
        while par_b[bwd[-1]] != -1:
            bwd.append(par_b[bwd[-1]])
        # meeting .. t (downward arcs)
        result.path_gplus = fwd + bwd[1:]
        if unpack:
            path = [s]
            for a, b in zip(result.path_gplus, result.path_gplus[1:]):
                path.extend(unpack_arc(ch, a, b)[1:])
            result.path = path
    return result
