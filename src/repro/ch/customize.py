"""Metric-independent CH topology + fast weight customization.

``contract_graph_batched`` pays its cost per *metric*: the witness
searches that prune shortcuts depend on arc weights, so a new traffic
snapshot means a full re-contraction.  This module splits the output
into the two halves the customizable-CH literature (Dibbelt et al.'s
CCH; Delling et al.'s CRP) keeps separate:

* a **topology artifact** (:class:`CHTopology`) — a contraction
  order, the *triangle closure* of the graph along that order, the
  lower-triangle enumeration needed to recompute shortcut weights, and
  the CSR instantiation plans for the upward/downward graphs.  A pure
  function of the graph *structure*; built once, reused for every
  metric.
* a **metric artifact** (:class:`CHMetric`) — one weight + unpack-via
  value per closure arc, produced by :func:`customize` in a single
  bottom-up vectorized pass.

The closure is witness-free on purpose.  A witness-pruned shortcut set
is only valid for the weights it was pruned against; the closure —
every ``(u, w)`` pair that shares a lower-ranked neighbour somewhere
along the order, exactly the fill-in of the elimination game — is
valid for *any* weight assignment: repeatedly replacing the highest
interior vertex of a shortest path by the corresponding triangle turns
it into an up-down path of equal length.  The price is a larger arc
set (and correspondingly slower queries — the usual CCH trade); the
payoff is that :func:`customize` is a handful of vectorized
scatter-min sweeps instead of minutes of witness Dijkstras.

Ordering.  Without witness pruning the contraction order *is* the
preprocessing intelligence: fill-in explodes under a bad order.  The
witness CH's priority order turns out to be terrible for elimination
(its dense top core is near-complete), so by default the topology is
built with a batched **minimum-degree** order — independent sets of
degree-local minima retire per round, the textbook fill-reducing
heuristic, which lands within a small constant of the sparse-
elimination lower bound on grid-like road networks.  An explicit
``rank`` is still accepted.

Correctness of the level-ordered sweep: every closure arc joins two
different levels (contracting the lower-ranked endpoint bumps the
other's level above it, and levels only grow), a triangle with middle
``v`` *reads* the two arcs whose lower-ranked endpoint is ``v`` and
*writes* an arc whose endpoints both sit above ``v``'s level — so
processing triangles grouped by middle-vertex level, ascending, sees
every read arc final before any triangle reads it.  Closure arcs are
numbered by ``(level of lower endpoint, tail, head)``, which makes the
two weight gathers of a level's triangle slice land in one contiguous
block of the weight array — the sweep is memory-bound, and that
locality is most of its speed.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import INF, StaticGraph
from ..utils import native
from .batched import _cross_pairs
from .hierarchy import ContractionHierarchy

__all__ = [
    "CHTopology",
    "CHMetric",
    "build_topology",
    "customize",
    "customize_many",
]


def _as_int64(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def _as_int32(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int32)


@dataclass
class CHMetric:
    """One metric over a fixed :class:`CHTopology`.

    ``weights[i]`` / ``via[i]`` describe closure arc ``i``; ``via`` is
    the middle vertex of the best triangle (-1 where the base arc
    itself is shortest, or where vias were skipped).  ``topology_key``
    pins the topology these arrays were customized against —
    :meth:`CHTopology.instantiate` refuses a mismatch.
    """

    topology_key: str
    weights: np.ndarray
    via: np.ndarray
    stats: dict = field(default_factory=dict)


@dataclass
class CHTopology:
    """The metric-independent half of a contraction hierarchy.

    Closure arcs are numbered by ``(level of lower-ranked endpoint,
    tail, head)`` — the order :func:`customize` sweeps them in.  The
    triangle arrays are pre-resolved (each triangle knows its two read
    arcs and its write arc by closure id) and pre-grouped by middle
    level, so customization does no index lookups at all.
    """

    n: int
    num_base_arcs: int
    rank: np.ndarray          # (n,) contraction order
    level: np.ndarray         # (n,) sweep levels of the closure
    arc_tail: np.ndarray      # (M,) closure arc tails
    arc_head: np.ndarray      # (M,) closure arc heads
    base_map: np.ndarray      # (graph.m,) original arc -> closure arc (-1 self-loop)
    tri_in: np.ndarray        # (T,) int32: read arc (u, v), head = middle
    tri_out: np.ndarray       # (T,) int32: read arc (v, w)
    tri_target: np.ndarray    # (T,) int32: written arc (u, w)
    tri_level_first: np.ndarray   # (L + 1,) triangle slice per mid level
    up_sel: np.ndarray        # closure arcs of G-up, CSR order by tail
    up_first: np.ndarray      # (n + 1,)
    down_sel: np.ndarray      # closure arcs of G-down, reversed CSR order
    down_first: np.ndarray    # (n + 1,) indexed by the lower-ranked head
    key: str = ""
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.key:
            self.key = topology_key(self.rank, self.arc_tail, self.arc_head)

    @property
    def num_arcs(self) -> int:
        return int(self.arc_tail.size)

    @property
    def num_shortcuts(self) -> int:
        return self.num_arcs - self.num_base_arcs

    @property
    def num_triangles(self) -> int:
        return int(self.tri_target.size)

    # -- (de)materialization (shared by serialization and TaskPool) -------

    _ARRAY_KEYS = (
        "rank", "level", "arc_tail", "arc_head", "base_map",
        "tri_in", "tri_out", "tri_target", "tri_level_first",
        "up_sel", "up_first", "down_sel", "down_first",
    )

    def arrays(self) -> dict:
        """The topology as a flat ``{key: array}`` dict."""
        return {k: getattr(self, k) for k in self._ARRAY_KEYS}

    @classmethod
    def from_arrays(cls, arrays: dict, *, num_base_arcs: int,
                    stats: dict | None = None) -> "CHTopology":
        """Rebuild (zero-copy) from :meth:`arrays` output."""
        fields = {k: arrays[k] for k in cls._ARRAY_KEYS}
        return cls(
            n=int(arrays["rank"].size),
            num_base_arcs=int(num_base_arcs),
            stats=dict(stats or {}),
            **fields,
        )

    # -- instantiation ----------------------------------------------------

    def instantiate(self, metric: CHMetric) -> ContractionHierarchy:
        """Materialize a :class:`ContractionHierarchy` for ``metric``.

        Pure gathers through the precomputed CSR plans — no sorting,
        no dedup — so a hot swap can rebuild the serving hierarchy in
        milliseconds.  Every metric over one topology yields the same
        CSR *structure* (identical ``first`` / head arrays, only
        weights differ), which is what lets a serving pool swap
        weights in place.
        """
        if metric.topology_key != self.key:
            raise ValueError(
                f"metric was customized for topology {metric.topology_key!r}, "
                f"not {self.key!r}"
            )
        if metric.weights.size and int(metric.weights.max()) >= INF:
            # The sweep engines add labels and arc lengths in plain
            # int64 (and may narrow sweep arcs), so an INF arc weight
            # would overflow mid-sweep.  Closures must be expressed as
            # a large *finite* penalty instead.
            raise ValueError(
                "metric contains INF arc weights; model closures as a "
                "large finite penalty before instantiating"
            )
        upward = StaticGraph.from_csr(
            self.up_first, np.ascontiguousarray(self.arc_head[self.up_sel]),
            metric.weights[self.up_sel],
        )
        downward_rev = StaticGraph.from_csr(
            self.down_first, np.ascontiguousarray(self.arc_tail[self.down_sel]),
            metric.weights[self.down_sel],
        )
        stats = {
            "strategy": "customized",
            "topology_key": self.key,
            "upward_arcs": upward.m,
            "downward_arcs": downward_rev.m,
            **metric.stats,
        }
        return ContractionHierarchy(
            n=self.n,
            rank=self.rank,
            level=self.level,
            upward=upward,
            upward_via=np.ascontiguousarray(metric.via[self.up_sel]),
            downward_rev=downward_rev,
            downward_via=np.ascontiguousarray(metric.via[self.down_sel]),
            num_shortcuts=self.num_shortcuts,
            preprocessing_stats=stats,
        )


def topology_key(rank: np.ndarray, arc_tail: np.ndarray,
                 arc_head: np.ndarray) -> str:
    """Content hash pinning a topology (rank order + closure arc set)."""
    h = hashlib.blake2b(digest_size=16)
    for a in (rank, arc_tail, arc_head):
        h.update(np.ascontiguousarray(a, dtype=np.int64).tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Topology construction


def _undirected_keys(tail: np.ndarray, head: np.ndarray, n: int) -> np.ndarray:
    """Distinct undirected endpoint keys of an arc set."""
    lo = np.minimum(tail, head)
    hi = np.maximum(tail, head)
    return np.unique(lo * n + hi)


def build_topology(graph: StaticGraph, rank: np.ndarray | None = None) -> CHTopology:
    """Build the triangle closure of ``graph`` along an elimination order.

    Runs the contraction as a pure *elimination game* — vertices
    retire in order, every (in-neighbour, out-neighbour) pair of the
    retiring vertex becomes a closure arc, no witness searches —
    batched over independent sets of order-local minima exactly like
    :func:`~repro.ch.batched.contract_graph_batched` (fill-in is
    schedule-independent, so the batched closure equals the sequential
    one).

    With ``rank=None`` (the default) the order is chosen greedily by
    **minimum degree**: each round retires the vertices whose
    ``(live-neighbour count, id)`` key is a local minimum among their
    live neighbours.  This is the fill-reducing choice — reusing a
    witness CH's priority order instead typically inflates the closure
    by an order of magnitude, because without witness pruning its
    dense top core fills in almost completely.
    """
    t_start = time.perf_counter()
    n = graph.n
    if n and n >= np.iinfo(np.int64).max // max(n, 1):
        raise ValueError("graph too large for packed pair keys")
    dynamic = rank is None
    if dynamic:
        rank = np.full(n, -1, dtype=np.int64)
    else:
        rank = _as_int64(rank)
        if rank.shape != (n,):
            raise ValueError("rank has wrong size")
        if not np.array_equal(np.sort(rank), np.arange(n)):
            raise ValueError("rank is not a permutation")

    # Base closure arcs: the original arcs minus self-loops, deduped by
    # (tail, head) — arc weights play no role here, customization folds
    # parallels back in via base_map.
    tails0 = graph.arc_tails()
    heads0 = graph.arc_head
    proper = tails0 != heads0
    base_keys = tails0[proper] * n + heads0[proper]
    ukeys, inv = np.unique(base_keys, return_inverse=True)
    base_map = np.full(graph.m, -1, dtype=np.int64)
    base_map[np.flatnonzero(proper)] = inv
    num_base = int(ukeys.size)

    closure_tail = [ukeys // n]
    closure_head = [ukeys % n]
    num_arcs = num_base

    # Live working set: arcs between not-yet-retired vertices, kept
    # sorted by packed (tail, head) key so the new-vs-known lookup is
    # a plain searchsorted and fresh arcs merge in without re-sorting.
    cur_key = ukeys
    cur_tail = ukeys // n
    cur_head = ukeys % n
    cur_id = np.arange(num_base, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    level = np.zeros(n, dtype=np.int64)
    vidx = np.full(n, -1, dtype=np.int64)
    next_rank = 0

    # Undirected neighbour relation, also kept key-sorted, with live
    # degrees maintained incrementally — recomputing them with a sort
    # per round would dominate the build.
    und_key = _undirected_keys(cur_tail, cur_head, n)
    und_a = und_key // n
    und_b = und_key % n
    deg = np.zeros(n, dtype=np.int64)
    if und_a.size:
        deg += np.bincount(und_a, minlength=n)
        deg += np.bincount(und_b, minlength=n)

    # Triangles accumulate as contiguous per-(level, round) slice views
    # so the final level-grouped arrays come out of one concatenation —
    # a stable sort of hundreds of millions of rows would dominate the
    # build.  Within a round the pair enumeration is grouped by middle
    # vertex, so grouping a round by level is a permutation of whole
    # owner segments: a tiny per-owner sort plus vectorized arithmetic.
    tri_parts_in: list[list[np.ndarray]] = []
    tri_parts_out: list[list[np.ndarray]] = []
    tri_parts_tgt: list[list[np.ndarray]] = []
    rounds = 0
    key_max = np.iinfo(np.int64).max

    ids = np.arange(n, dtype=np.int64)
    while alive.any():
        rounds += 1
        if dynamic:
            # Greedy minimum degree: key = (live degree, id), packed.
            prio = deg * n + ids
        else:
            prio = rank
        # Order-local minima among live neighbours: an independent set
        # (neighbours cannot both be minimal), and no neighbour of a
        # batch member is itself in the batch — so retiring the whole
        # batch at once equals retiring its members one by one.
        min_nbr = np.full(n, key_max, dtype=np.int64)
        if und_a.size:
            np.minimum.at(min_nbr, und_a, prio[und_b])
            np.minimum.at(min_nbr, und_b, prio[und_a])
        in_batch = alive & (prio < min_nbr)
        batch = np.flatnonzero(in_batch)
        if dynamic:
            rank[batch] = next_rank + np.arange(batch.size, dtype=np.int64)
            next_rank += int(batch.size)

        head_in = in_batch[cur_head]
        tail_in = in_batch[cur_tail]
        in_sel = np.flatnonzero(head_in)
        out_sel = np.flatnonzero(tail_in)
        vidx[batch] = np.arange(batch.size, dtype=np.int64)

        in_owner = vidx[cur_head[in_sel]]
        order_i = np.argsort(in_owner, kind="stable")
        in_owner = in_owner[order_i]
        in_src = cur_tail[in_sel][order_i]
        in_id = cur_id[in_sel][order_i]

        out_owner = vidx[cur_tail[out_sel]]
        order_o = np.argsort(out_owner, kind="stable")
        out_owner = out_owner[order_o]
        out_dst = cur_head[out_sel][order_o]
        out_id = cur_id[out_sel][order_o]

        pair_owner, in_idx, out_idx = _cross_pairs(
            in_owner, out_owner, batch.size
        )
        if pair_owner.size:
            keep = in_src[in_idx] != out_dst[out_idx]
            pair_owner, in_idx, out_idx = (
                pair_owner[keep], in_idx[keep], out_idx[keep]
            )
        if pair_owner.size:
            u = in_src[in_idx]
            w = out_dst[out_idx]
            pkey = u * n + w
            # Existing (u, w) arcs: any closure arc between two live
            # vertices is still in the working set, so a sorted lookup
            # over the live arcs decides new-vs-known exactly.
            pos = np.searchsorted(cur_key, pkey)
            pos_c = np.minimum(pos, max(cur_key.size - 1, 0))
            hit = (
                (cur_key[pos_c] == pkey)
                if cur_key.size else np.zeros(pkey.size, dtype=bool)
            )
            target = np.empty(pkey.size, dtype=np.int64)
            target[hit] = cur_id[pos_c[hit]]
            fresh = ~hit
            if fresh.any():
                new_keys, new_inv = np.unique(pkey[fresh], return_inverse=True)
                target[fresh] = num_arcs + new_inv
                closure_tail.append(new_keys // n)
                closure_head.append(new_keys % n)
                new_ids = num_arcs + np.arange(new_keys.size, dtype=np.int64)
                at = np.searchsorted(cur_key, new_keys)
                cur_key = np.insert(cur_key, at, new_keys)
                cur_tail = np.insert(cur_tail, at, new_keys // n)
                cur_head = np.insert(cur_head, at, new_keys % n)
                cur_id = np.insert(cur_id, at, new_ids)
                # The inserted arcs also carry head_in/tail_in = False
                # for the retirement filter below.
                head_in = np.insert(
                    head_in, at, np.zeros(new_keys.size, dtype=bool)
                )
                tail_in = np.insert(
                    tail_in, at, np.zeros(new_keys.size, dtype=bool)
                )
                num_arcs += int(new_keys.size)
                # New undirected neighbour pairs (a fresh (u, w) whose
                # reverse already lives adds none).
                cand = _undirected_keys(new_keys // n, new_keys % n, n)
                upos = np.searchsorted(und_key, cand)
                upos_c = np.minimum(upos, max(und_key.size - 1, 0))
                new_und = (
                    cand[und_key[upos_c] != cand]
                    if und_key.size else cand
                )
                if new_und.size:
                    uat = np.searchsorted(und_key, new_und)
                    und_key = np.insert(und_key, uat, new_und)
                    und_a = np.insert(und_a, uat, new_und // n)
                    und_b = np.insert(und_b, uat, new_und % n)
                    deg += np.bincount(new_und // n, minlength=n)
                    deg += np.bincount(new_und % n, minlength=n)
            # Record the round's triangles grouped by mid level.  The
            # pairs arrive grouped by owner (one level per owner), so
            # per-level grouping permutes whole owner segments: sort
            # the owners by (level, position) — a tiny array — then
            # move segments with vectorized offset arithmetic.
            own_lvl = level[batch]
            sizes = np.bincount(pair_owner, minlength=batch.size)
            seg_start = np.concatenate([[0], np.cumsum(sizes)])
            o_order = np.argsort(own_lvl, kind="stable")
            starts = seg_start[o_order]
            lens = sizes[o_order]
            out_off = np.concatenate([[0], np.cumsum(lens)])
            perm = (
                np.arange(pair_owner.size, dtype=np.int64)
                - np.repeat(out_off[:-1], lens)
                + np.repeat(starts, lens)
            )
            r_in = in_id[in_idx][perm]
            r_out = out_id[out_idx][perm]
            r_tgt = target[perm]
            lvl_sorted = np.repeat(own_lvl[o_order], lens)
            run_end = np.concatenate([
                np.flatnonzero(np.diff(lvl_sorted)) + 1, [lvl_sorted.size]
            ])
            run_start = 0
            for e in run_end:
                lvl = int(lvl_sorted[run_start])
                while len(tri_parts_in) <= lvl:
                    tri_parts_in.append([])
                    tri_parts_out.append([])
                    tri_parts_tgt.append([])
                tri_parts_in[lvl].append(r_in[run_start:e])
                tri_parts_out[lvl].append(r_out[run_start:e])
                tri_parts_tgt[lvl].append(r_tgt[run_start:e])
                run_start = int(e)

        # Neighbour levels rise above the retiring vertex; the batch
        # members' own levels are final (no neighbour of a member is in
        # the batch).
        if in_src.size:
            np.maximum.at(level, in_src, level[batch[in_owner]] + 1)
        if out_dst.size:
            np.maximum.at(level, out_dst, level[batch[out_owner]] + 1)

        alive[batch] = False
        vidx[batch] = -1
        arc_keep = ~(head_in | tail_in)
        cur_key = cur_key[arc_keep]
        cur_tail = cur_tail[arc_keep]
        cur_head = cur_head[arc_keep]
        cur_id = cur_id[arc_keep]
        und_gone = in_batch[und_a] | in_batch[und_b]
        if und_gone.any():
            gone = np.flatnonzero(und_gone)
            deg -= np.bincount(und_a[gone], minlength=n)
            deg -= np.bincount(und_b[gone], minlength=n)
            und_keep = ~und_gone
            und_key = und_key[und_keep]
            und_a = und_a[und_keep]
            und_b = und_b[und_keep]

    arc_tail = np.concatenate(closure_tail) if closure_tail else _as_int64([])
    arc_head = np.concatenate(closure_head) if closure_head else _as_int64([])

    # Renumber closure arcs by (level of lower-ranked endpoint, tail,
    # head): the two read-gathers of a level's triangle slice then hit
    # one contiguous block of the weight array.
    low = np.where(rank[arc_tail] < rank[arc_head], arc_tail, arc_head)
    order = np.lexsort((arc_head, arc_tail, level[low]))
    arc_tail = np.ascontiguousarray(arc_tail[order])
    arc_head = np.ascontiguousarray(arc_head[order])
    remap = np.empty(order.size, dtype=np.int64)
    remap[order] = np.arange(order.size, dtype=np.int64)
    valid = base_map >= 0
    base_map[valid] = remap[base_map[valid]]

    num_levels = int(level.max()) + 1 if n else 0
    tri_level_first = np.zeros(num_levels + 1, dtype=np.int64)
    flat_in: list[np.ndarray] = []
    flat_out: list[np.ndarray] = []
    flat_tgt: list[np.ndarray] = []
    total = 0
    for lvl in range(num_levels):
        if lvl < len(tri_parts_in):
            for part in tri_parts_in[lvl]:  # creation order kept
                total += part.size
            flat_in.extend(tri_parts_in[lvl])
            flat_out.extend(tri_parts_out[lvl])
            flat_tgt.extend(tri_parts_tgt[lvl])
        tri_level_first[lvl + 1] = total
    if num_arcs > np.iinfo(np.int32).max or total > np.iinfo(np.int32).max:
        raise ValueError("closure exceeds int32 triangle indexing")
    remap32 = remap.astype(np.int32)
    if flat_in:
        tri_in = remap32[np.concatenate(flat_in)]
        tri_out = remap32[np.concatenate(flat_out)]
        tri_target = remap32[np.concatenate(flat_tgt)]
    else:
        tri_in = np.zeros(0, dtype=np.int32)
        tri_out = np.zeros(0, dtype=np.int32)
        tri_target = np.zeros(0, dtype=np.int32)

    # Instantiation plans: G-up CSR by tail, reversed G-down CSR by head.
    up_mask = rank[arc_tail] < rank[arc_head]
    up_arcs = np.flatnonzero(up_mask)
    up_sel = up_arcs[np.lexsort((arc_head[up_arcs], arc_tail[up_arcs]))]
    up_first = np.zeros(n + 1, dtype=np.int64)
    np.add.at(up_first, arc_tail[up_sel] + 1, 1)
    np.cumsum(up_first, out=up_first)
    down_arcs = np.flatnonzero(~up_mask)
    down_sel = down_arcs[np.lexsort((arc_tail[down_arcs], arc_head[down_arcs]))]
    down_first = np.zeros(n + 1, dtype=np.int64)
    np.add.at(down_first, arc_head[down_sel] + 1, 1)
    np.cumsum(down_first, out=down_first)

    stats = {
        "strategy": "topology",
        "order": "min-degree" if dynamic else "given",
        "seconds": time.perf_counter() - t_start,
        "rounds": rounds,
        "base_arcs": num_base,
        "closure_arcs": int(arc_tail.size),
        "fill_arcs": int(arc_tail.size) - num_base,
        "triangles": int(tri_target.size),
        "levels": num_levels,
    }
    return CHTopology(
        n=n,
        num_base_arcs=num_base,
        rank=rank,
        level=level,
        arc_tail=arc_tail,
        arc_head=arc_head,
        base_map=base_map,
        tri_in=tri_in,
        tri_out=tri_out,
        tri_target=tri_target,
        tri_level_first=tri_level_first,
        up_sel=up_sel,
        up_first=up_first,
        down_sel=down_sel,
        down_first=down_first,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# Customization


def customize(topology: CHTopology, weights, *,
              with_vias: bool = True) -> CHMetric:
    """Recompute every closure-arc weight for ``weights``.

    ``weights`` is aligned with the arc order of the graph the
    topology was built from (one entry per original arc; ``INF``
    allowed — that is how closures are expressed).  One bottom-up pass
    over the triangle levels: per level, two block-local gathers, one
    add, one ``np.minimum.at`` scatter.  Deterministic: the base arc
    wins ties (``via = -1``), and among equal triangles the lowest
    enumeration index — (mid level, creation order) — wins.

    ``with_vias=False`` skips the second sweep that recovers unpack
    middles; distances are unaffected (a serving stack that never
    unpacks paths can halve its customization time).
    """
    t0 = time.perf_counter()
    weights = _as_int64(weights)
    if weights.shape != topology.base_map.shape:
        raise ValueError(
            f"expected {topology.base_map.size} arc weights, "
            f"got {weights.size}"
        )
    if weights.size and weights.min() < 0:
        raise ValueError("arc weights must be non-negative")
    weights = np.minimum(weights, INF)

    m = topology.num_arcs
    w = np.full(m, INF, dtype=np.int64)
    valid = topology.base_map >= 0
    np.minimum.at(w, topology.base_map[valid], weights[valid])
    w_base = w.copy() if with_vias else None

    tri_in = topology.tri_in
    tri_out = topology.tri_out
    tri_target = topology.tri_target
    lvl_first = topology.tri_level_first

    # The fused C kernel and the per-level NumPy loop are bit-identical:
    # a level's read arcs live in its own arc block while its written
    # arcs lie strictly higher, so per-triangle processing in stored
    # order cannot observe a same-level write.
    used_native = native.customize_pass(
        w, tri_in, tri_out, tri_target, int(INF)
    )
    if not used_native:
        for lo, hi in zip(lvl_first[:-1], lvl_first[1:]):
            if hi == lo:
                continue
            # Weights are clipped to INF, so a sum involving INF lands
            # in [INF, 2^63 - 2] — no overflow — and clamps back to
            # INF; no separate unreachable mask is needed.
            cand = w[tri_in[lo:hi]]
            cand += w[tri_out[lo:hi]]
            np.minimum(cand, INF, out=cand)
            np.minimum.at(w, tri_target[lo:hi], cand)

    via = np.full(m, -1, dtype=np.int64)
    if with_vias:
        # Second sweep: every read arc is final when its level is
        # processed (same invariant as the first sweep), so the winning
        # triangle's candidate reproduces exactly and the lowest
        # matching enumeration index is the canonical via.  Only arcs a
        # triangle strictly improved over the base metric get one.
        no_win = np.iinfo(np.int32).max
        win = np.full(m, no_win, dtype=np.int32)
        if not native.via_pass(w, tri_in, tri_out, tri_target, win,
                               int(INF)):
            for lo, hi in zip(lvl_first[:-1], lvl_first[1:]):
                if hi == lo:
                    continue
                cand = w[tri_in[lo:hi]]
                cand += w[tri_out[lo:hi]]
                np.minimum(cand, INF, out=cand)
                tgt = tri_target[lo:hi]
                eq = np.flatnonzero(cand == w[tgt])
                np.minimum.at(
                    win, tgt[eq], _as_int32(lo + eq)
                )
        improved = np.flatnonzero((w < w_base) & (win != no_win))
        via[improved] = topology.arc_head[tri_in[win[improved]]]

    stats = {
        "customize_seconds": time.perf_counter() - t0,
        "native": bool(used_native),
        "triangles_relaxed": int(tri_target.size),
        "levels": int(lvl_first.size - 1),
        "with_vias": bool(with_vias),
    }
    return CHMetric(
        topology_key=topology.key, weights=w, via=via, stats=stats
    )


# ---------------------------------------------------------------------------
# Optional fan-out: many metrics over one topology


def _customize_task(ctx, common, item) -> CHMetric:
    """TaskPool worker body: customize one weight vector.

    The topology travels once as a shared-memory publication; each
    worker attaches it and caches the rebuilt :class:`CHTopology` in
    its persistent state, so a scenario family of k metrics costs one
    topology transfer + k cheap weight pickles.
    """
    seg_name, specs = common["topology_seg"]
    cached = ctx.state.get("customize:topology")
    if cached is not None and cached[0] == seg_name:
        topo = cached[1]
    else:
        ctx.state.pop("customize:topology", None)
        ctx.release(keep=(seg_name,))
        views = ctx.attach(seg_name, specs)
        topo = CHTopology.from_arrays(
            views, num_base_arcs=common["num_base_arcs"]
        )
        ctx.state["customize:topology"] = (seg_name, topo)
    return customize(topo, item["weights"], with_vias=common["with_vias"])


def customize_many(
    topology: CHTopology,
    weight_sets,
    *,
    with_vias: bool = True,
    num_workers: int | None = None,
    force_pool: bool = False,
) -> list[CHMetric]:
    """Customize several weight vectors over one topology.

    Scenario families — time-of-day metrics, incident closures,
    per-vehicle profiles — are embarrassingly parallel in the metric
    dimension; this fans whole :func:`customize` calls over a
    :class:`~repro.core.pool.TaskPool`.  Falls back to a serial loop
    when no pool is warranted.
    """
    weight_sets = list(weight_sets)
    if not weight_sets:
        return []
    from ..core.pool import TaskPool
    from ..utils.workers import resolve_workers

    workers, _ = resolve_workers(num_workers)
    if len(weight_sets) == 1 or (workers <= 1 and not force_pool):
        return [customize(topology, ws, with_vias=with_vias)
                for ws in weight_sets]
    pool = TaskPool(num_workers=workers, force_pool=force_pool)
    try:
        seg = pool.publish_arrays(topology.arrays())
        common = {
            "topology_seg": seg,
            "num_base_arcs": topology.num_base_arcs,
            "with_vias": with_vias,
        }
        items = [{"weights": _as_int64(ws)} for ws in weight_sets]
        return pool.submit(_customize_task, items, common)
    finally:
        pool.close()
