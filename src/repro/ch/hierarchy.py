"""The output of CH preprocessing.

A :class:`ContractionHierarchy` holds, for the input graph ``G``:

* ``rank`` — the contraction order (``rank[v] = i`` means ``v`` was the
  ``i``-th vertex shortcut; higher rank = more important),
* ``level`` — the PHAST level ``L(v)`` (Section IV-A),
* the augmented arc set ``A ∪ A+`` split into the *upward* graph
  ``G↑`` (out-adjacency, tail rank < head rank) and the *downward*
  graph ``G↓`` stored reversed (in-adjacency: for each vertex, the
  incoming arcs from higher-ranked tails — exactly what PHAST's sweep
  scans),
* per-arc ``via`` vertices for shortcut unpacking (-1 = original arc).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import StaticGraph

__all__ = [
    "ContractionHierarchy",
    "assemble_hierarchy",
    "build_csr_with_payload",
]


def build_csr_with_payload(
    n: int,
    tails: np.ndarray,
    heads: np.ndarray,
    lens: np.ndarray,
    payload: np.ndarray,
) -> tuple[StaticGraph, np.ndarray]:
    """CSR-build arcs with one extra per-arc attribute, deduping parallels.

    Parallel arcs are collapsed to the shortest (ties: lowest payload
    wins, deterministically); the payload array is carried through the
    same reordering so element ``i`` still describes arc ``i`` of the
    returned graph.
    """
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    lens = np.asarray(lens, dtype=np.int64)
    payload = np.asarray(payload, dtype=np.int64)
    if tails.size:
        order = np.lexsort((payload, lens, heads, tails))
        tails, heads, lens, payload = (
            tails[order],
            heads[order],
            lens[order],
            payload[order],
        )
        keep = np.empty(tails.size, dtype=bool)
        keep[0] = True
        keep[1:] = (tails[1:] != tails[:-1]) | (heads[1:] != heads[:-1])
        tails, heads, lens, payload = (
            tails[keep],
            heads[keep],
            lens[keep],
            payload[keep],
        )
    # Arcs are now sorted by (tail, head); a stable tail sort preserves
    # that, so payload order matches the graph's arc order.
    graph = StaticGraph(n, tails, heads, lens)
    return graph, payload


def assemble_hierarchy(
    graph: StaticGraph,
    rank: np.ndarray,
    level: np.ndarray,
    sc_tails: np.ndarray,
    sc_heads: np.ndarray,
    sc_lens: np.ndarray,
    sc_vias: np.ndarray,
    *,
    num_shortcuts: int,
    stats: dict,
) -> "ContractionHierarchy":
    """Split original arcs + shortcuts into the upward/downward graphs.

    Shared by every contraction strategy: given the contraction order
    (``rank``), the PHAST levels and the shortcut arc arrays, build
    ``G↑`` and the reversed ``G↓`` with their ``via`` payloads and wrap
    everything into a :class:`ContractionHierarchy`.  ``stats`` is
    augmented with the final arc counts.
    """
    n = graph.n
    orig_tails = graph.arc_tails()
    tails = np.concatenate([orig_tails, sc_tails]) if sc_tails.size else orig_tails
    heads = (
        np.concatenate([graph.arc_head, sc_heads]) if sc_heads.size else graph.arc_head
    )
    lens = np.concatenate([graph.arc_len, sc_lens]) if sc_lens.size else graph.arc_len
    vias = np.concatenate(
        [np.full(graph.m, -1, dtype=np.int64), sc_vias]
    ) if sc_vias.size else np.full(graph.m, -1, dtype=np.int64)

    # Self loops can never be upward or downward; drop them.
    proper = tails != heads
    tails, heads, lens, vias = tails[proper], heads[proper], lens[proper], vias[proper]

    up_mask = rank[tails] < rank[heads]
    upward, upward_via = build_csr_with_payload(
        n, tails[up_mask], heads[up_mask], lens[up_mask], vias[up_mask]
    )
    down_mask = ~up_mask
    # Store the downward graph reversed: adjacency by head (the
    # lower-ranked endpoint), listing tails.
    downward_rev, downward_via = build_csr_with_payload(
        n,
        heads[down_mask],
        tails[down_mask],
        lens[down_mask],
        vias[down_mask],
    )
    stats = dict(stats)
    stats["upward_arcs"] = upward.m
    stats["downward_arcs"] = downward_rev.m
    return ContractionHierarchy(
        n=n,
        rank=rank,
        level=level,
        upward=upward,
        upward_via=upward_via,
        downward_rev=downward_rev,
        downward_via=downward_via,
        num_shortcuts=num_shortcuts,
        preprocessing_stats=stats,
    )


@dataclass
class ContractionHierarchy:
    """Preprocessed hierarchy over a graph with ``n`` vertices.

    Attributes
    ----------
    n:
        Vertex count (IDs shared with the input graph).
    rank:
        Contraction order position per vertex (0 = first contracted).
    level:
        PHAST level per vertex (0 = leaves of the hierarchy).
    upward:
        ``G↑`` as out-adjacency: arcs ``(v, w)`` of ``A ∪ A+`` with
        ``rank[v] < rank[w]``.
    upward_via:
        Per-arc shortcut middle vertex aligned with ``upward``'s arc
        arrays (-1 for original arcs).
    downward_rev:
        ``G↓`` stored *reversed*: ``downward_rev.neighbors(v)`` lists
        the tails ``u`` of downward arcs ``(u, v)`` (``rank[u] >
        rank[v]``), with matching lengths — the representation PHAST's
        linear sweep scans.
    downward_via:
        Shortcut middle vertices aligned with ``downward_rev``.
    num_shortcuts:
        How many shortcut arcs preprocessing added (before upward /
        downward dedup).
    preprocessing_stats:
        Free-form counters (witness searches run, time, etc.).
    """

    n: int
    rank: np.ndarray
    level: np.ndarray
    upward: StaticGraph
    upward_via: np.ndarray
    downward_rev: StaticGraph
    downward_via: np.ndarray
    num_shortcuts: int
    preprocessing_stats: dict

    @property
    def num_levels(self) -> int:
        """Number of distinct levels (max level + 1)."""
        return int(self.level.max()) + 1 if self.n else 0

    def level_histogram(self) -> np.ndarray:
        """Vertices per level — the data behind the paper's Figure 1."""
        return np.bincount(self.level, minlength=self.num_levels)

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError``.

        * ``rank`` is a permutation;
        * every upward arc goes rank-increasing, every (reversed)
          downward arc rank-decreasing;
        * levels strictly decrease along downward arcs (Lemma 4.1).
        """
        assert np.array_equal(np.sort(self.rank), np.arange(self.n))
        up_tails = self.upward.arc_tails()
        assert bool(
            np.all(self.rank[up_tails] < self.rank[self.upward.arc_head])
        ), "upward arc with non-increasing rank"
        down_heads = self.downward_rev.arc_tails()  # reversed storage
        down_tails = self.downward_rev.arc_head
        assert bool(
            np.all(self.rank[down_tails] > self.rank[down_heads])
        ), "downward arc with non-decreasing rank"
        assert bool(
            np.all(self.level[down_tails] > self.level[down_heads])
        ), "downward arc not strictly level-decreasing"
