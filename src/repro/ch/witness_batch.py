"""Batched, vectorized witness search.

The sequential contractor runs one hop-limited Dijkstra per
``(in-neighbour, vertex)`` pair — hundreds of thousands of tiny
heapq/dict searches.  The batched contractor replaces each round's
searches with **one hop-synchronous multi-source relaxation** over the
flat arrays of :class:`~repro.graph.dynamic.DynamicAdjacency`:

* every search is an *instance* ``i`` with a source vertex, a distance
  budget (the largest candidate-shortcut length it must disprove) and
  an optional per-instance excluded vertex;
* labels live in a single sorted map keyed ``instance * n + vertex``;
* each hop gathers the out-arcs of every frontier entry at once,
  prunes (over budget, excluded, retired), reduces duplicate keys to
  their minimum, and merges improvements back into the label map.

Hop-limited relaxation is not label-setting in the hop dimension (a
longer-but-fewer-hops path may reach further); like the scalar search
we accept that some within-limit witnesses are missed — that only adds
redundant shortcuts, never breaks correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchWitnessResult", "batched_witness_search", "witness_shard"]

#: Hard ceiling on relaxation hops when the schedule says "unlimited".
#: Budget pruning makes deep searches rare; the cap only guards against
#: pathological zero-length-cycle instances.
MAX_HOPS_UNLIMITED = 64


@dataclass
class BatchWitnessResult:
    """Sorted label map of one batched search.

    ``keys`` holds ``instance * n + vertex`` sorted ascending; ``dists``
    the matching best distances.  ``lookup`` resolves target queries.
    """

    n: int
    keys: np.ndarray
    dists: np.ndarray
    hops_run: int
    labels_settled: int

    def lookup(self, instances: np.ndarray, vertices: np.ndarray) -> np.ndarray:
        """Best distance per ``(instance, vertex)`` query (-1 = unreached)."""
        q = instances.astype(np.int64) * self.n + vertices
        idx = np.searchsorted(self.keys, q)
        idx_c = np.minimum(idx, max(self.keys.size - 1, 0))
        out = np.full(q.size, -1, dtype=np.int64)
        if self.keys.size:
            hit = self.keys[idx_c] == q
            out[hit] = self.dists[idx_c[hit]]
        return out


def _dedup_min_keys(
    keys: np.ndarray, dists: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Keep the minimum distance per key; result sorted by key."""
    order = np.lexsort((dists, keys))
    keys, dists = keys[order], dists[order]
    keep = np.empty(keys.size, dtype=bool)
    keep[0] = True
    keep[1:] = keys[1:] != keys[:-1]
    return keys[keep], dists[keep]


def batched_witness_search(
    adjacency,
    sources: np.ndarray,
    budgets: np.ndarray,
    *,
    excluded_vertex: np.ndarray | None = None,
    excluded_mask: np.ndarray | None = None,
    hop_limit: int | None,
    label_cap: int | None = None,
) -> BatchWitnessResult:
    """Run all witness searches of one round as one vectorized sweep.

    Parameters
    ----------
    adjacency:
        A :class:`~repro.graph.dynamic.DynamicAdjacency` (anything with
        ``n`` and ``raw_out_arcs_of``).
    sources:
        Source vertex per instance.
    budgets:
        Per-instance distance budget; labels above it are pruned (the
        search only needs to disprove candidates up to this length).
    excluded_vertex:
        Optional per-instance vertex never traversed (the vertex whose
        contraction instance ``i`` simulates).
    excluded_mask:
        Optional boolean mask of vertices no instance may traverse
        (the whole independent set during the contraction pass).
    hop_limit:
        Maximum arcs per witness path; ``None`` relaxes until no label
        improves (bounded by budget pruning and a safety cap).
    label_cap:
        Optional per-instance cap on settled labels: instances holding
        more stop expanding (the ``witness_max_settled`` safety valve).

    Returns
    -------
    :class:`BatchWitnessResult` with distances from each instance's
    source, within budget, avoiding the excluded vertices.
    """
    n = adjacency.n
    num = int(sources.size)
    if num == 0:
        empty = np.zeros(0, dtype=np.int64)
        return BatchWitnessResult(n, empty, empty, 0, 0)
    sources = sources.astype(np.int64)
    budgets = budgets.astype(np.int64)

    best_keys = np.sort(np.arange(num, dtype=np.int64) * n + sources)
    best_dists = np.zeros(num, dtype=np.int64)
    # Source labels are distance 0 and keys are unique per instance, so
    # the initial frontier is the initial map itself.
    f_inst = np.arange(num, dtype=np.int64)
    f_vert = sources.copy()
    f_dist = np.zeros(num, dtype=np.int64)
    if label_cap is not None:
        label_count = np.ones(num, dtype=np.int64)

    max_hops = hop_limit if hop_limit is not None else MAX_HOPS_UNLIMITED
    hops_run = 0
    while f_inst.size and hops_run < max_hops:
        hops_run += 1
        owner, head, length, _hops = adjacency.raw_out_arcs_of(f_vert)
        if not owner.size:
            break
        c_inst = f_inst[owner]
        c_dist = f_dist[owner] + length
        keep = c_dist <= budgets[c_inst]
        if excluded_vertex is not None:
            keep &= head != excluded_vertex[c_inst]
        if excluded_mask is not None:
            keep &= ~excluded_mask[head]
        if not keep.any():
            break
        c_inst, c_dist, head = c_inst[keep], c_dist[keep], head[keep]
        c_keys, c_dists = _dedup_min_keys(c_inst * n + head, c_dist)

        # Merge into the sorted label map: in-place improvements plus an
        # ordered insert of brand-new keys.
        pos = np.searchsorted(best_keys, c_keys)
        pos_c = np.minimum(pos, best_keys.size - 1)
        match = best_keys[pos_c] == c_keys
        improved = match & (c_dists < best_dists[pos_c])
        fresh = ~match
        best_dists[pos_c[improved]] = c_dists[improved]
        if label_cap is not None and fresh.any():
            # Instances at their label budget stop acquiring vertices.
            fi = c_keys[fresh] // n
            allowed = label_count[fi] < label_cap
            sel = np.flatnonzero(fresh)[allowed]
            fresh = np.zeros_like(fresh)
            fresh[sel] = True
            np.add.at(label_count, fi[allowed], 1)
        if fresh.any():
            best_keys = np.insert(best_keys, pos[fresh], c_keys[fresh])
            best_dists = np.insert(best_dists, pos[fresh], c_dists[fresh])
        # Next frontier: every label that changed this hop.
        nf_keys = np.concatenate([c_keys[improved], c_keys[fresh]])
        nf_dists = np.concatenate([c_dists[improved], c_dists[fresh]])
        f_inst = nf_keys // n
        f_vert = nf_keys - f_inst * n
        f_dist = nf_dists
    return BatchWitnessResult(
        n, best_keys, best_dists, hops_run, int(best_keys.size)
    )


def witness_shard(
    adjacency,
    sources: np.ndarray,
    budgets: np.ndarray,
    query_instances: np.ndarray,
    query_vertices: np.ndarray,
    *,
    excluded_vertex: np.ndarray | None = None,
    excluded_mask: np.ndarray | None = None,
    hop_limit: int | None,
    label_cap: int | None = None,
) -> tuple[np.ndarray, int]:
    """One shard of a partitioned witness sweep: run + resolve queries.

    Instances never interact — each key space ``instance * n + vertex``
    is private to its instance — so splitting a round's instances into
    shards and running each with its own label map yields exactly the
    distances the single full-size sweep would, for any partition.
    This is the unit the parallel preprocessing coordinator ships to
    :class:`~repro.core.pool.TaskPool` workers: a contiguous instance
    range (``sources``/``budgets`` pre-sliced, queries renumbered to
    the shard-local instance ids) against a shared-memory snapshot of
    the round's graph.

    Returns ``(distances, labels_settled)`` where ``distances[i]`` is
    the witness distance of ``(query_instances[i],
    query_vertices[i])`` (-1 = unreached).
    """
    result = batched_witness_search(
        adjacency,
        sources,
        budgets,
        excluded_vertex=excluded_vertex,
        excluded_mask=excluded_mask,
        hop_limit=hop_limit,
        label_cap=label_cap,
    )
    return result.lookup(query_instances, query_vertices), result.labels_settled
