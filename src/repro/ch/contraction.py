"""Contraction hierarchies preprocessing.

Implements Geisberger et al.'s CH preprocessing with the paper's tuned
priority function (Section VIII-A):

    priority(u) = 2·ED(u) + CN(u) + H(u) + 5·L(u)

where ``ED`` is the edge difference (shortcuts added minus arcs
removed), ``CN`` the number of already-contracted neighbours, ``H`` the
number of original arcs represented by the added shortcuts (each
incident arc contributing at most 3), and ``L`` the level the vertex
would receive.  Vertex selection uses lazy updates: the minimum is
re-evaluated on pop and re-queued if it is no longer minimal, and
neighbour priorities are refreshed after every contraction.

Witness searches are hop-limited on a schedule keyed to the average
degree of the *uncontracted* part of the graph: 5 hops below degree 5,
10 hops below degree 10, unlimited beyond (Section VIII-A).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import StaticGraph
from .hierarchy import ContractionHierarchy, assemble_hierarchy
from .witness import witness_search

__all__ = ["CHParams", "contract_graph"]


@dataclass(frozen=True)
class CHParams:
    """Preprocessing knobs; defaults follow the paper.

    Attributes
    ----------
    ed_weight, cn_weight, h_weight, level_weight:
        Coefficients of the priority terms.
    h_arc_cap:
        Cap on one incident arc's contribution to ``H`` (paper: 3).
    hop_schedule:
        Sequence of ``(avg_degree_bound, hop_limit)`` pairs; the first
        entry whose bound is at least the current average degree gives
        the hop limit.  ``None`` bound = always; ``None`` limit =
        unlimited search.
    witness_max_settled:
        Safety valve on witness-search size (``None`` = faithful,
        unbounded).
    neighbor_updates:
        Refresh neighbour priorities after every contraction (the
        paper's scheme, default).  ``False`` relies purely on the
        on-pop lazy re-check: ~3x fewer priority evaluations at the
        cost of ~10% more shortcuts — a good trade for big instances.
    strategy:
        ``"lazy"`` (default) pops one vertex at a time off a heap — the
        reference ablation.  ``"batched"`` contracts whole independent
        sets per round with vectorized witness searches
        (:mod:`repro.ch.batched`) — the scalable path.
    rebuild_every:
        Batched strategy only: recompact the dynamic adjacency for
        locality every this many rounds.
    preprocess_workers:
        Batched strategy only: fan each round's witness phases over
        this many :class:`~repro.core.pool.TaskPool` worker processes
        (``None`` = single-process, the default).  The hierarchy is
        bit-identical for every worker count; see
        :func:`~repro.ch.batched.contract_graph_batched`.
    """

    ed_weight: int = 2
    cn_weight: int = 1
    h_weight: int = 1
    level_weight: int = 5
    h_arc_cap: int = 3
    hop_schedule: tuple[tuple[float | None, int | None], ...] = (
        (5.0, 5),
        (10.0, 10),
        (None, None),
    )
    witness_max_settled: int | None = None
    neighbor_updates: bool = True
    strategy: str = "lazy"
    rebuild_every: int = 4
    preprocess_workers: int | None = None


@dataclass
class _Shortcut:
    tail: int
    head: int
    length: int
    via: int
    # hop counts of the two component arcs, for the H term
    hops_in: int = 1
    hops_out: int = 1


@dataclass
class _Stats:
    witness_searches: int = 0
    shortcuts_added: int = 0
    priority_evaluations: int = 0
    lazy_requeues: int = 0
    seconds: float = 0.0
    extra: dict = field(default_factory=dict)


class _Contractor:
    """Mutable state of one preprocessing run."""

    def __init__(self, graph: StaticGraph, params: CHParams) -> None:
        self.params = params
        self.n = graph.n
        # Dynamic adjacency: maps neighbour -> (length, via, hops).
        # Parallel arcs are collapsed to the shortest immediately; that
        # is safe because only shortest paths matter from here on.
        self.fwd: list[dict[int, tuple[int, int, int]]] = [
            {} for _ in range(self.n)
        ]
        self.bwd: list[dict[int, tuple[int, int, int]]] = [
            {} for _ in range(self.n)
        ]
        tails = graph.arc_tails()
        for t, h, l in zip(tails, graph.arc_head, graph.arc_len):
            t, h, l = int(t), int(h), int(l)
            if t == h:
                continue  # self loops never matter for shortest paths
            if h not in self.fwd[t] or l < self.fwd[t][h][0]:
                self.fwd[t][h] = (l, -1, 1)
                self.bwd[h][t] = (l, -1, 1)
        self.live_arcs = sum(len(d) for d in self.fwd)
        self.remaining = self.n
        self.contracted = np.zeros(self.n, dtype=bool)
        self.level = np.zeros(self.n, dtype=np.int64)
        self.cn = np.zeros(self.n, dtype=np.int64)  # contracted neighbours
        self.rank = np.full(self.n, -1, dtype=np.int64)
        self.shortcuts: list[_Shortcut] = []
        self.stats = _Stats()
        # priority() caches its simulation so contract() can reuse it;
        # entries are invalidated whenever a neighbour is contracted.
        self._sc_cache: dict[int, list[_Shortcut]] = {}

    # -- hop-limit schedule ----------------------------------------------

    def _hop_limit(self) -> int | None:
        if self.remaining == 0:
            return None
        avg_degree = self.live_arcs / self.remaining
        for bound, limit in self.params.hop_schedule:
            if bound is None or avg_degree <= bound:
                return limit
        return None

    # -- simulation ---------------------------------------------------------

    def _needed_shortcuts(self, v: int) -> list[_Shortcut]:
        """Shortcuts required if ``v`` were contracted now."""
        hop_limit = self._hop_limit()
        out = []
        ins = [(u, data) for u, data in self.bwd[v].items()]
        outs = [(w, data) for w, data in self.fwd[v].items()]
        for u, (lu, _, hu) in ins:
            targets = {
                w: lu + lw for w, (lw, _, _) in outs if w != u
            }
            if not targets:
                continue
            self.stats.witness_searches += 1
            witness = witness_search(
                self.fwd,
                u,
                v,
                targets,
                hop_limit,
                self.params.witness_max_settled,
            )
            for w, (lw, _, hw) in outs:
                if w == u:
                    continue
                cand = lu + lw
                if witness.get(w, cand + 1) <= cand:
                    continue  # a witness path makes the shortcut redundant
                out.append(
                    _Shortcut(u, w, cand, v, hops_in=hu, hops_out=hw)
                )
        return out

    def priority(self, v: int) -> int:
        """The paper's priority term for ``v`` (lower = contract sooner)."""
        self.stats.priority_evaluations += 1
        shortcuts = self._needed_shortcuts(v)
        self._sc_cache[v] = shortcuts
        removed = len(self.fwd[v]) + len(self.bwd[v])
        ed = len(shortcuts) - removed
        cap = self.params.h_arc_cap
        h = sum(min(s.hops_in, cap) + min(s.hops_out, cap) for s in shortcuts)
        p = self.params
        return (
            p.ed_weight * ed
            + p.cn_weight * int(self.cn[v])
            + p.h_weight * h
            + p.level_weight * int(self.level[v])
        )

    # -- contraction ---------------------------------------------------------

    def contract(self, v: int, position: int) -> list[int]:
        """Remove ``v``, add its shortcuts; returns affected neighbours."""
        shortcuts = self._sc_cache.pop(v, None)
        if shortcuts is None:
            shortcuts = self._needed_shortcuts(v)
        neighbours = set(self.fwd[v]) | set(self.bwd[v])
        self._insert_shortcuts(shortcuts)
        # Detach v.
        for u in self.bwd[v]:
            del self.fwd[u][v]
        for w in self.fwd[v]:
            del self.bwd[w][v]
        self.live_arcs -= len(self.fwd[v]) + len(self.bwd[v])
        self.fwd[v].clear()
        self.bwd[v].clear()
        self.contracted[v] = True
        self.rank[v] = position
        self.remaining -= 1
        for x in neighbours:
            self.cn[x] += 1
            if self.level[x] < self.level[v] + 1:
                self.level[x] = self.level[v] + 1
            self._sc_cache.pop(x, None)  # topology around x changed
        return [x for x in neighbours if not self.contracted[x]]

    def _insert_shortcuts(self, shortcuts: list[_Shortcut]) -> None:
        """Add shortcuts to both the dynamic graph and the output list."""
        for s in shortcuts:
            existing = self.fwd[s.tail].get(s.head)
            total_hops = s.hops_in + s.hops_out
            if existing is None or s.length < existing[0]:
                if existing is None:
                    self.live_arcs += 1
                self.fwd[s.tail][s.head] = (s.length, s.via, total_hops)
                self.bwd[s.head][s.tail] = (s.length, s.via, total_hops)
            self.shortcuts.append(s)
            self.stats.shortcuts_added += 1


def contract_graph(
    graph: StaticGraph, params: CHParams | None = None
) -> ContractionHierarchy:
    """Run CH preprocessing on ``graph``.

    Returns a :class:`~repro.ch.hierarchy.ContractionHierarchy` whose
    upward and downward graphs cover all original arcs plus shortcuts.
    Every vertex is contracted, so the hierarchy is total.

    ``params.strategy`` selects the engine: ``"lazy"`` is the scalar
    one-vertex-at-a-time reference, ``"batched"`` the vectorized
    independent-set pipeline of :mod:`repro.ch.batched`.
    """
    params = params or CHParams()
    if params.strategy == "batched":
        from .batched import contract_graph_batched

        return contract_graph_batched(graph, params)
    if params.strategy != "lazy":
        raise ValueError(f"unknown contraction strategy {params.strategy!r}")
    start = time.perf_counter()
    state = _Contractor(graph, params)
    n = graph.n

    heap: list[tuple[int, int]] = [(state.priority(v), v) for v in range(n)]
    heapq.heapify(heap)

    position = 0
    while heap:
        prio, v = heapq.heappop(heap)
        if state.contracted[v]:
            continue
        current = state.priority(v)
        if heap and current > heap[0][0]:
            # No longer minimal — lazy requeue with the fresh key.
            state.stats.lazy_requeues += 1
            heapq.heappush(heap, (current, v))
            continue
        neighbours = state.contract(v, position)
        position += 1
        # The paper recomputes neighbour priorities right after each
        # contraction (in parallel there; sequentially here).  Without
        # it, stale keys are caught by the on-pop re-check above.
        if params.neighbor_updates:
            for x in neighbours:
                heapq.heappush(heap, (state.priority(x), x))

    state.stats.seconds = time.perf_counter() - start
    return _assemble(graph, state)


def _assemble(graph: StaticGraph, state: _Contractor) -> ContractionHierarchy:
    """Hand the run's outputs to the shared hierarchy assembly."""
    stats = {
        "strategy": "lazy",
        "witness_searches": state.stats.witness_searches,
        "shortcuts_added": state.stats.shortcuts_added,
        "priority_evaluations": state.stats.priority_evaluations,
        "lazy_requeues": state.stats.lazy_requeues,
        "seconds": state.stats.seconds,
    }
    return assemble_hierarchy(
        graph,
        state.rank,
        state.level,
        np.array([s.tail for s in state.shortcuts], dtype=np.int64),
        np.array([s.head for s in state.shortcuts], dtype=np.int64),
        np.array([s.length for s in state.shortcuts], dtype=np.int64),
        np.array([s.via for s in state.shortcuts], dtype=np.int64),
        num_shortcuts=len(state.shortcuts),
        stats=stats,
    )
