"""Contraction hierarchies: preprocessing, queries, unpacking."""

from .batched import contract_graph_batched
from .contraction import CHParams, contract_graph
from .customize import (
    CHMetric,
    CHTopology,
    build_topology,
    customize,
    customize_many,
)
from .hierarchy import (
    ContractionHierarchy,
    assemble_hierarchy,
    build_csr_with_payload,
)
from .query import (
    CHQueryResult,
    UpwardSearchSpace,
    ch_query,
    unpack_arc,
    upward_search,
)

__all__ = [
    "CHParams",
    "contract_graph",
    "contract_graph_batched",
    "CHMetric",
    "CHTopology",
    "build_topology",
    "customize",
    "customize_many",
    "ContractionHierarchy",
    "assemble_hierarchy",
    "build_csr_with_payload",
    "CHQueryResult",
    "UpwardSearchSpace",
    "ch_query",
    "unpack_arc",
    "upward_search",
]
