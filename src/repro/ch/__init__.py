"""Contraction hierarchies: preprocessing, queries, unpacking."""

from .contraction import CHParams, contract_graph
from .hierarchy import ContractionHierarchy, build_csr_with_payload
from .query import (
    CHQueryResult,
    UpwardSearchSpace,
    ch_query,
    unpack_arc,
    upward_search,
)

__all__ = [
    "CHParams",
    "contract_graph",
    "ContractionHierarchy",
    "build_csr_with_payload",
    "CHQueryResult",
    "UpwardSearchSpace",
    "ch_query",
    "unpack_arc",
    "upward_search",
]
