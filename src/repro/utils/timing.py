"""Small timing helpers used by the benchmark harness."""

from __future__ import annotations

import statistics
import time
from typing import Callable

__all__ = ["Timer", "median_of_repeats"]


class Timer:
    """Context manager measuring wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start

    @property
    def millis(self) -> float:
        """Elapsed milliseconds."""
        return self.seconds * 1e3


def median_of_repeats(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``repeats`` calls to ``fn``."""
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)
