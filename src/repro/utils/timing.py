"""Small timing helpers used by the benchmark harness and the server."""

from __future__ import annotations

import math
import statistics
import time
from bisect import bisect_left
from typing import Callable

__all__ = ["Timer", "median_of_repeats", "LatencyHistogram"]


class Timer:
    """Context manager measuring wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start

    @property
    def millis(self) -> float:
        """Elapsed milliseconds."""
        return self.seconds * 1e3


def median_of_repeats(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``repeats`` calls to ``fn``."""
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


class LatencyHistogram:
    """Fixed log-spaced bucket histogram for latency samples (seconds).

    Serving and benchmarking both need percentiles over many thousands
    of observations without keeping every sample: buckets whose bounds
    grow geometrically give a bounded relative error (one bucket width,
    ~21% at the default 12 buckets/decade) at O(1) memory and O(log B)
    per observation — the classic shape used by Prometheus/HdrHistogram
    style latency tracking.

    Observations outside ``[min_value, max_value]`` are clamped into the
    first/last bucket; exact ``min``/``max``/``sum`` are tracked on the
    side so ``summary()`` never hides outliers.

    Examples
    --------
    >>> h = LatencyHistogram()
    >>> for ms in (1, 2, 3, 4, 100):
    ...     h.observe(ms / 1e3)
    >>> h.count
    5
    >>> 0.002 <= h.percentile(50) <= 0.0035
    True
    """

    def __init__(
        self,
        *,
        min_value: float = 1e-6,
        max_value: float = 120.0,
        buckets_per_decade: int = 12,
    ) -> None:
        if not (0 < min_value < max_value):
            raise ValueError("need 0 < min_value < max_value")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        decades = math.log10(max_value / min_value)
        num = max(1, math.ceil(decades * buckets_per_decade))
        ratio = (max_value / min_value) ** (1.0 / num)
        # bounds[i] is the *upper* edge of bucket i; one overflow bucket.
        self._bounds = [min_value * ratio ** (i + 1) for i in range(num)]
        self._bounds[-1] = max_value
        self._counts = [0] * (num + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one sample (non-negative seconds)."""
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError("latency samples must be non-negative")
        self._counts[bisect_left(self._bounds, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` (same bucket layout) into this histogram."""
        if other._bounds != self._bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        """Mean of all samples in seconds (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile in seconds (0.0 when empty).

        Linear interpolation inside the owning bucket, clamped to the
        exact observed ``min``/``max``.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.count:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for i, c in enumerate(self._counts):
            if not c:
                continue
            if seen + c >= rank:
                lo = self._bounds[i - 1] if i > 0 else 0.0
                hi = self._bounds[i] if i < len(self._bounds) else self.max
                frac = (rank - seen) / c
                value = lo + frac * (hi - lo)
                return min(max(value, self.min), self.max)
            seen += c
        return self.max

    def summary(self) -> dict:
        """JSON-able summary in milliseconds (the serving unit)."""
        if not self.count:
            return {"count": 0}
        ms = 1e3
        return {
            "count": self.count,
            "mean_ms": round(self.mean * ms, 3),
            "p50_ms": round(self.percentile(50) * ms, 3),
            "p90_ms": round(self.percentile(90) * ms, 3),
            "p99_ms": round(self.percentile(99) * ms, 3),
            "min_ms": round(self.min * ms, 3),
            "max_ms": round(self.max * ms, 3),
        }
