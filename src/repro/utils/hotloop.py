"""Process tuning for long vectorized loops.

The batched contraction engine and the preprocessing benchmarks spend
their time in NumPy bulk operations over multi-megabyte temporaries.
Two CPython/glibc defaults hurt badly in that regime:

* The cyclic garbage collector triggers on allocation counts.  Bulk
  array code allocates wrappers at a high rate but creates no
  reference cycles, so collections are pure overhead — and on
  virtualized hosts a generation-2 pass in the middle of a round shows
  up as a multi-second stall.  (Measured here: the same 640k-vertex
  adjacency gather takes 0.08 s steady-state and 3.8 s when it absorbs
  a collection.)
* glibc serves every allocation above ``M_MMAP_THRESHOLD`` (128 KiB)
  with a private ``mmap`` and returns it on ``free``.  Every big NumPy
  temporary then pays for fresh page faults on each use instead of
  recycling hot heap pages.

:func:`bulk_compute` pauses the garbage collector for the duration of
the loop (reference counting still reclaims everything acyclic, which
is all the engine allocates) and, once per process, raises the malloc
thresholds so the heap holds on to its pages.  The malloc tuning is a
no-op off glibc.
"""

from __future__ import annotations

import ctypes
import gc
from contextlib import contextmanager

__all__ = ["bulk_compute", "keep_malloc_arenas"]

_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

_malloc_tuned = False


def keep_malloc_arenas() -> bool:
    """Tell glibc to recycle large blocks instead of unmapping them.

    Raises ``M_MMAP_THRESHOLD`` and ``M_TRIM_THRESHOLD`` to 1 GiB so
    repeated large NumPy temporaries reuse already-faulted heap pages.
    Process-wide and sticky (footprint stays at its high-water mark);
    applied once, subsequent calls are no-ops.  Returns ``True`` if the
    tuning is in effect, ``False`` where there is no ``mallopt``.
    """
    global _malloc_tuned
    if _malloc_tuned:
        return True
    try:
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        libc.mallopt(_M_MMAP_THRESHOLD, 1 << 30)
        libc.mallopt(_M_TRIM_THRESHOLD, 1 << 30)
    except OSError:
        return False
    _malloc_tuned = True
    return True


@contextmanager
def bulk_compute():
    """Context for allocation-heavy, cycle-free NumPy loops.

    Pauses the cyclic garbage collector (restored on exit, with one
    catch-up collection if it was enabled) and applies
    :func:`keep_malloc_arenas`.  Reentrant: nested uses leave the
    collector paused until the outermost exit.
    """
    keep_malloc_arenas()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()
