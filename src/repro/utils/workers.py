"""Worker-count resolution shared by every parallel driver.

All process-pool entry points — the batch pool
(:class:`~repro.core.pool.PhastPool`), the preprocessing task pool
(:class:`~repro.core.pool.TaskPool` via
:func:`~repro.ch.batched.contract_graph_batched`) and the one-shot
``trees_per_core`` driver — resolve their worker count through
:func:`resolve_workers`, so one ``REPRO_MAX_WORKERS`` setting caps the
whole process tree.

Precedence (highest wins):

1. an explicit ``num_workers`` argument (``--workers`` /
   ``--preprocess-workers`` on the CLI) is honoured as-is;
2. the ``REPRO_MAX_WORKERS`` environment variable caps the implied
   default;
3. otherwise the default is ``min(DEFAULT_WORKER_CAP, cpu_count)``.

A multi-worker request on a single-CPU host falls back to the serial
engine (``fell_back=True``) — forking would only add IPC overhead on
top of zero parallel speedup.
"""

from __future__ import annotations

import os

__all__ = ["DEFAULT_WORKER_CAP", "resolve_workers"]

#: Default ceiling on implied worker counts; override per call with
#: ``max_workers`` or globally with the ``REPRO_MAX_WORKERS`` env var.
DEFAULT_WORKER_CAP = 8


def resolve_workers(
    num_workers: int | None = None, *, max_workers: int | None = None
) -> tuple[int, bool]:
    """Effective worker count for the parallel drivers.

    Returns ``(workers, fell_back)``.  ``fell_back`` is ``True`` when
    more than one worker was requested (or implied by the default) but
    the machine has a single CPU, so forking a process pool would only
    add IPC overhead on top of zero parallel speedup — the driver runs
    the serial engine instead.  Benchmarks surface the flag so a
    single-core run is never mistaken for a parallel measurement.

    An explicit ``num_workers`` is honoured as-is (arg > env > cpu
    count).  The *default* count is ``min(cap, cpu_count)`` where the
    cap is ``max_workers`` if given, else the ``REPRO_MAX_WORKERS``
    environment variable, else :data:`DEFAULT_WORKER_CAP` — so
    many-core hosts are never silently throttled to 8 once either
    override is set.
    """
    cpus = os.cpu_count() or 1
    if num_workers is None:
        cap = max_workers
        if cap is None:
            env = os.environ.get("REPRO_MAX_WORKERS", "").strip()
            cap = int(env) if env else DEFAULT_WORKER_CAP
        num_workers = min(max(1, cap), cpus)
    if num_workers > 1 and cpus <= 1:
        return 1, True
    return max(1, num_workers), False
