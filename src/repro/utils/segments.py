"""Vectorized helpers for segmented (CSR-style) arrays.

Several algorithms need "for each vertex in this set, visit all its
arcs" without a Python-level loop.  :func:`gather_ranges` materializes
the concatenated arc-index vector for a set of vertices;
:func:`segment_minimum` reduces per-segment minima, the core of the
vectorized PHAST sweep.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gather_ranges", "segment_minimum", "repeat_per_segment"]


def gather_ranges(
    first: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR ranges of ``vertices``.

    Parameters
    ----------
    first:
        CSR offset array of length ``n + 1``.
    vertices:
        Vertex IDs whose ranges to gather (need not be sorted or
        unique).

    Returns
    -------
    ``(indices, owner)`` where ``indices`` lists the positions
    ``first[v] .. first[v+1]-1`` for each ``v`` in order, and
    ``owner[i]`` is the position *within* ``vertices`` that produced
    ``indices[i]``.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = first[vertices]
    counts = first[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    group_out_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(group_out_start, counts)
    indices = np.repeat(starts, counts) + within
    owner = np.repeat(np.arange(vertices.size, dtype=np.int64), counts)
    return indices, owner


def repeat_per_segment(values: np.ndarray, first: np.ndarray) -> np.ndarray:
    """Expand one value per segment into one value per element.

    ``first`` is a CSR offset array; segment ``i`` covers positions
    ``first[i] .. first[i+1]-1``.
    """
    return np.repeat(values, np.diff(first))


def segment_minimum(
    values: np.ndarray, boundaries: np.ndarray, initial: np.ndarray | None = None
) -> np.ndarray:
    """Per-segment minimum of ``values``.

    Parameters
    ----------
    values:
        1-D (or 2-D, reduced along axis 0) array of candidates.
    boundaries:
        CSR-style offsets of length ``k + 1`` delimiting ``k`` segments
        over ``values``; empty segments are allowed.
    initial:
        Optional per-segment floor; the result is the elementwise
        minimum with it (used to fold existing distance labels in).

    Returns
    -------
    Array of ``k`` per-segment minima (rows for 2-D input).  Empty
    segments yield ``initial`` (or the dtype maximum when no initial is
    given).
    """
    boundaries = np.asarray(boundaries, dtype=np.int64)
    k = boundaries.size - 1
    out_shape = (k,) + values.shape[1:]
    if values.size == 0 or boundaries[-1] == 0:
        out = np.full(out_shape, np.iinfo(values.dtype).max, dtype=values.dtype)
    else:
        nonempty = boundaries[:-1] < boundaries[1:]
        # reduceat misbehaves on empty segments (repeats the next
        # element), so reduce only non-empty ones and fill the rest.
        out = np.full(out_shape, np.iinfo(values.dtype).max, dtype=values.dtype)
        if nonempty.any():
            starts = boundaries[:-1][nonempty]
            out[nonempty] = np.minimum.reduceat(values, starts, axis=0)
    if initial is not None:
        out = np.minimum(out, initial)
    return out
