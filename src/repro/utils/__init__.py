"""Shared utilities: segmented-array helpers, timing, worker resolution."""

from .hotloop import bulk_compute, keep_malloc_arenas
from .segments import gather_ranges, repeat_per_segment, segment_minimum
from .timing import LatencyHistogram, Timer, median_of_repeats
from .workers import DEFAULT_WORKER_CAP, resolve_workers

__all__ = [
    "bulk_compute",
    "keep_malloc_arenas",
    "gather_ranges",
    "repeat_per_segment",
    "segment_minimum",
    "LatencyHistogram",
    "Timer",
    "median_of_repeats",
    "DEFAULT_WORKER_CAP",
    "resolve_workers",
]
