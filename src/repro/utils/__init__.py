"""Shared utilities: segmented-array helpers, timing, statistics."""

from .hotloop import bulk_compute, keep_malloc_arenas
from .segments import gather_ranges, repeat_per_segment, segment_minimum
from .timing import LatencyHistogram, Timer, median_of_repeats

__all__ = [
    "bulk_compute",
    "keep_malloc_arenas",
    "gather_ranges",
    "repeat_per_segment",
    "segment_minimum",
    "LatencyHistogram",
    "Timer",
    "median_of_repeats",
]
