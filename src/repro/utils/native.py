"""Optional compiled kernel for the customization sweep.

The bottom-up customization pass is a min-plus relaxation over
hundreds of millions of precomputed triangles.  In NumPy it costs one
large int64 temporary per level (gather + add + clip + ``minimum.at``)
and is memory-bandwidth-bound on that temporary; a fused C loop does
the same work with no intermediate at all, typically 3-5x faster.

The kernel is built on demand with the system C compiler and loaded
through :mod:`ctypes` — no third-party build machinery, nothing to
install.  Everything is gated: if there is no compiler, the compile
fails, or ``REPRO_NO_NATIVE`` is set, callers fall back to the NumPy
path and get bit-identical results (both paths relax triangles in the
same stored order; within one level reads and writes never alias, so
the fused per-triangle loop equals the level-batched semantics).
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
import threading

import numpy as np

__all__ = ["customize_pass", "via_pass", "native_available"]

_SOURCE = r"""
#include <stdint.h>

/* Min-plus relaxation over the triangle list, in stored order.
   Triangles are grouped by mid level; a triangle's two read arcs
   belong to its own level's arc block while its written arc lies in a
   strictly higher block, so processing triangles one by one observes
   exactly the per-level batch semantics of the NumPy path. */
void repro_customize_pass(int64_t *w,
                          const int32_t *tri_in,
                          const int32_t *tri_out,
                          const int32_t *tri_target,
                          int64_t num_triangles,
                          int64_t inf)
{
    for (int64_t t = 0; t < num_triangles; t++) {
        int64_t c = w[tri_in[t]] + w[tri_out[t]];
        if (c > inf) c = inf;
        int64_t *p = &w[tri_target[t]];
        if (c < *p) *p = c;
    }
}

/* Second sweep: lowest triangle index reproducing the final weight.
   Runs after the weights are final, so a single pass suffices. */
void repro_via_pass(const int64_t *w,
                    const int32_t *tri_in,
                    const int32_t *tri_out,
                    const int32_t *tri_target,
                    int32_t *win,
                    int64_t num_triangles,
                    int64_t inf)
{
    for (int64_t t = 0; t < num_triangles; t++) {
        int64_t c = w[tri_in[t]] + w[tri_out[t]];
        if (c > inf) c = inf;
        int32_t tgt = tri_target[t];
        if (c == w[tgt] && (int32_t)t < win[tgt]) win[tgt] = (int32_t)t;
    }
}
"""

_lock = threading.Lock()
_lib: ctypes.CDLL | bool | None = None  # None: untried, False: unavailable

_I64 = ctypes.POINTER(ctypes.c_int64)
_I32 = ctypes.POINTER(ctypes.c_int32)


def _compile() -> ctypes.CDLL | bool:
    if os.environ.get("REPRO_NO_NATIVE"):
        return False
    cc = os.environ.get("CC", "cc")
    try:
        workdir = tempfile.mkdtemp(prefix="repro-native-")
        c_path = os.path.join(workdir, "customize.c")
        so_path = os.path.join(workdir, "customize.so")
        with open(c_path, "w") as fh:
            fh.write(_SOURCE)
        subprocess.run(
            [cc, "-O3", "-march=native", "-shared", "-fPIC",
             "-o", so_path, c_path],
            check=True, capture_output=True, timeout=120,
        )
        lib = ctypes.CDLL(so_path)
    except Exception:
        return False
    lib.repro_customize_pass.argtypes = [
        _I64, _I32, _I32, _I32, ctypes.c_int64, ctypes.c_int64]
    lib.repro_customize_pass.restype = None
    lib.repro_via_pass.argtypes = [
        _I64, _I32, _I32, _I32, _I32, ctypes.c_int64, ctypes.c_int64]
    lib.repro_via_pass.restype = None
    return lib


def _load() -> ctypes.CDLL | bool:
    global _lib
    if _lib is None:
        with _lock:
            if _lib is None:
                _lib = _compile()
    return _lib


def native_available() -> bool:
    """Whether the compiled kernel is (or can be made) loadable."""
    return bool(_load())


def _ptr(arr: np.ndarray, ctype):
    return arr.ctypes.data_as(ctype)


def customize_pass(w: np.ndarray, tri_in: np.ndarray, tri_out: np.ndarray,
                   tri_target: np.ndarray, inf: int) -> bool:
    """Fused min-plus sweep over all triangles, in place on ``w``.

    Returns ``False`` (without touching ``w``) when the compiled
    kernel is unavailable — the caller runs its NumPy fallback.
    """
    lib = _load()
    if not lib:
        return False
    assert w.dtype == np.int64 and w.flags.c_contiguous
    assert tri_in.dtype == np.int32 and tri_in.flags.c_contiguous
    lib.repro_customize_pass(
        _ptr(w, _I64), _ptr(tri_in, _I32), _ptr(tri_out, _I32),
        _ptr(tri_target, _I32), tri_target.size, inf,
    )
    return True


def via_pass(w: np.ndarray, tri_in: np.ndarray, tri_out: np.ndarray,
             tri_target: np.ndarray, win: np.ndarray, inf: int) -> bool:
    """Winning-triangle sweep into ``win``; ``False`` = no kernel."""
    lib = _load()
    if not lib:
        return False
    assert win.dtype == np.int32 and win.flags.c_contiguous
    lib.repro_via_pass(
        _ptr(w, _I64), _ptr(tri_in, _I32), _ptr(tri_out, _I32),
        _ptr(tri_target, _I32), _ptr(win, _I32), tri_target.size, inf,
    )
    return True
