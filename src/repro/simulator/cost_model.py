"""CPU cost model: operation counts × machine specs → modeled time.

Pure-Python timings cannot reproduce the paper's absolute landscape
(C++/SSE on five machines), so the architecture experiments (Tables V
and VI) are driven by this model instead.  It decomposes each algorithm
into a *bandwidth* term (sequential bytes moved over the core's
effective share of its memory bank) and a *processing* term (operation
counts at calibrated cycles-per-operation), and adds a latency term for
cache-missing random reads.

Calibration: the per-operation constants are fit once against the
paper's measured M1-4 numbers for the 18M-vertex Europe graph
(Dijkstra 2.8 s, PHAST 172 ms, lower bound 65.6 ms — Sections II-A,
IV-A, VIII-B) and then *held fixed* across machines and inputs, so
Table V's cross-architecture landscape and Table VI's totals are
genuine predictions of the model, not per-cell fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sweep import SweepStructure
from ..graph.csr import StaticGraph
from .machine import MachineSpec

__all__ = [
    "Calibration",
    "WorkloadCounts",
    "phast_counts",
    "dijkstra_counts",
    "CostModel",
]

LABEL_BYTES = 4
ARC_BYTES = 8
FIRST_BYTES = 4
CACHE_LINE = 64


@dataclass(frozen=True)
class Calibration:
    """Model constants (fit to M1-4, then held fixed).

    Attributes
    ----------
    single_core_bw_fraction:
        Share of a memory bank's theoretical bandwidth one core's
        streaming access achieves (the paper's single-core lower-bound
        test: 65.6 ms for ~414 MB on the 25.6 GB/s M1-4 ⇒ 0.25).
    aggregate_bw_fraction:
        Share of a bank's theoretical bandwidth *all* its cores achieve
        together (from the paper's 4-core lower-bound and k=1/4-core
        PHAST figures ⇒ ≈ 0.345).
    phast_cycles_arc_overhead:
        Per-arc loop work independent of the number of trees (branchy
        inner loop; Section VIII-B discusses why this dominates the
        lower bound).
    phast_cycles_per_lane:
        Per-arc work for each of the k trees of a sweep.
    phast_sse_speedup:
        Factor SSE takes off the per-lane processing term (paper: 2.6
        overall at k = 16).
    gather_miss_per_k, gather_miss_cap:
        Cache-miss fraction of the tail-label gather grows with k (the
        label block per vertex is k words, evicting more); misses move
        whole cache lines.
    dijkstra_cycles_per_arc, dijkstra_cycles_per_scan:
        Queue + relaxation work of Dijkstra's algorithm.
    dijkstra_miss_fraction:
        Fraction of label accesses missing cache under a DFS layout.
    dram_latency_ns:
        Cost of one cache-missing access.
    remote_penalty:
        Latency/bandwidth multiplier for unpinned threads on machines
        with several NUMA nodes (Section VIII-E).
    """

    single_core_bw_fraction: float = 0.25
    aggregate_bw_fraction: float = 0.345
    phast_cycles_arc_overhead: float = 3.0
    phast_cycles_per_lane: float = 4.0
    phast_cycles_per_vertex: float = 3.0
    phast_sse_speedup: float = 2.6
    gather_miss_per_k: float = 0.05
    gather_miss_cap: float = 0.35
    dijkstra_cycles_per_arc: float = 85.0
    dijkstra_cycles_per_scan: float = 55.0
    dijkstra_miss_fraction: float = 0.4
    dram_latency_ns: float = 60.0
    remote_penalty: float = 2.2


DEFAULT_CALIBRATION = Calibration()


@dataclass(frozen=True)
class WorkloadCounts:
    """Algorithm-independent size figures of one tree computation."""

    n: int
    arcs: int
    levels: int = 1

    @property
    def sweep_bytes(self) -> int:
        """Sequential bytes of one PHAST sweep (arcs, first, writes)."""
        return (
            self.arcs * ARC_BYTES
            + self.n * FIRST_BYTES
            + self.n * LABEL_BYTES
        )


def phast_counts(sweep: SweepStructure) -> WorkloadCounts:
    """Counts of one PHAST sweep over ``sweep``'s downward graph."""
    return WorkloadCounts(n=sweep.n, arcs=sweep.num_arcs, levels=sweep.num_levels)


def dijkstra_counts(graph: StaticGraph) -> WorkloadCounts:
    """Counts of one full Dijkstra run over ``graph``."""
    return WorkloadCounts(n=graph.n, arcs=graph.m)


class CostModel:
    """Predicts per-tree milliseconds for one machine.

    Parameters
    ----------
    spec:
        Machine to model.
    calibration:
        Model constants; defaults are the M1-4 fit.
    """

    def __init__(
        self, spec: MachineSpec, calibration: Calibration = DEFAULT_CALIBRATION
    ) -> None:
        self.spec = spec
        self.cal = calibration
        # Random-access cost tracks the memory generation: older DRAM
        # is worse in both bandwidth and latency, and the paper's
        # "PHAST beats Dijkstra by a constant ~19x on every machine"
        # observation only holds if the two degrade together.  The
        # calibration latency is anchored at M1-4's 25.6 GB/s.
        self._latency_ns = calibration.dram_latency_ns * (
            25.6 / spec.bandwidth_gbs
        )

    # -- building blocks ---------------------------------------------------

    def _stream_ms(self, bytes_: float) -> float:
        """Time for one core to stream ``bytes_`` from its local bank."""
        per_core = (
            self.spec.bandwidth_gbs * 1e9 * self.cal.single_core_bw_fraction
        )
        return bytes_ / per_core * 1e3

    def _cpu_ms(self, cycles: float) -> float:
        return cycles / (self.spec.clock_ghz * 1e9) * 1e3

    # -- per-tree building blocks ------------------------------------------

    def _phast_bytes_per_tree(self, counts: WorkloadCounts, k: int) -> float:
        """DRAM bytes one tree costs inside a k-tree sweep.

        Graph arrays amortize over the k trees; each tree writes its
        own labels; the tail-label gather moves whole cache lines at a
        miss rate that grows with k (the per-vertex label block is k
        words, so less of the working set stays cached).
        """
        cal = self.cal
        shared = counts.arcs * ARC_BYTES + counts.n * FIRST_BYTES
        labels = counts.n * LABEL_BYTES
        miss = min(cal.gather_miss_cap, cal.gather_miss_per_k * k)
        gather = counts.arcs * min(k * LABEL_BYTES, CACHE_LINE) * miss / k
        return shared / k + labels + gather

    def _phast_cycles_per_tree(
        self, counts: WorkloadCounts, k: int, *, sse: bool
    ) -> float:
        """Scan-loop cycles one tree costs inside a k-tree sweep."""
        cal = self.cal
        lane = cal.phast_cycles_per_lane
        vert = cal.phast_cycles_per_vertex
        if sse:
            lane /= cal.phast_sse_speedup
            vert /= cal.phast_sse_speedup
        return counts.arcs * (cal.phast_cycles_arc_overhead / k + lane) + (
            counts.n * vert
        )

    # -- sequential algorithms ------------------------------------------------

    def phast_single(
        self, counts: WorkloadCounts, *, sse: bool = False
    ) -> float:
        """Sequential reordered PHAST, one tree per sweep."""
        return self.phast_per_tree_parallel(counts, 1, sse=sse)

    def phast_lower_bound(
        self, counts: WorkloadCounts, threads: int = 1, trees_per_sweep: int = 1
    ) -> float:
        """The Section VIII-B bandwidth floor, per tree.

        Stream the graph arrays once per sweep (amortized over
        ``trees_per_sweep`` trees) plus each tree's label array; no
        scattered gathers, no scan-loop work.
        """
        k = max(1, trees_per_sweep)
        shared = counts.arcs * ARC_BYTES + counts.n * FIRST_BYTES
        bytes_tree = shared / k + counts.n * LABEL_BYTES
        if threads <= 1:
            return self._stream_ms(bytes_tree)
        agg = (
            self.spec.bandwidth_gbs
            * 1e9
            * self.cal.aggregate_bw_fraction
            * max(1, min(self.spec.numa_nodes, threads))
        )
        return bytes_tree / agg * 1e3

    def dijkstra_single(self, counts: WorkloadCounts) -> float:
        """Sequential Dijkstra (smart queue, DFS layout)."""
        cal = self.cal
        cycles = (
            counts.arcs * cal.dijkstra_cycles_per_arc
            + counts.n * cal.dijkstra_cycles_per_scan
        )
        miss_ns = counts.arcs * cal.dijkstra_miss_fraction * self._latency_ns
        return self._cpu_ms(cycles) + miss_ns / 1e6

    # -- parallel execution -----------------------------------------------------

    def _aggregate_bw(self, threads: int, *, pinned: bool) -> float:
        """System bandwidth (bytes/s) available to ``threads`` workers.

        Pinned: data is replicated per bank, every bank contributes.
        Unpinned: data lives in one bank, and remote accesses pay the
        ``remote_penalty`` on top (Section VIII-E).
        """
        banks = max(1, self.spec.numa_nodes)
        bank_bw = self.spec.bandwidth_gbs * 1e9 * self.cal.aggregate_bw_fraction
        if pinned or banks == 1:
            used_banks = min(banks, threads)
            return bank_bw * used_banks
        return bank_bw / self.cal.remote_penalty

    def phast_per_tree_parallel(
        self,
        counts: WorkloadCounts,
        threads: int,
        *,
        pinned: bool = True,
        trees_per_sweep: int = 1,
        sse: bool = False,
    ) -> float:
        """System-wide per-tree ms with one k-tree sweep per core.

        The per-tree time is the larger of the compute-side throughput
        (each worker's cycles plus its unconstrained memory time,
        divided across workers) and the bandwidth floor (per-tree bytes
        over the aggregate achievable bandwidth) — the same two regimes
        Section VIII-C identifies, with the bandwidth wall binding at
        high core counts and high k.
        """
        cal = self.cal
        threads = max(1, min(threads, self.spec.cores))
        k = max(1, trees_per_sweep)
        bytes_tree = self._phast_bytes_per_tree(counts, k)
        cpu_ms = self._cpu_ms(self._phast_cycles_per_tree(counts, k, sse=sse))
        single_bw = (
            self.spec.bandwidth_gbs * 1e9 * cal.single_core_bw_fraction
        )
        if not pinned and self.spec.numa_nodes > 1:
            # Unpinned threads lose their local bank with probability
            # (B-1)/B; remote streams are slower by the penalty.
            b = self.spec.numa_nodes
            single_bw /= (1 + (b - 1) * cal.remote_penalty) / b
        worker_ms = cpu_ms + bytes_tree / single_bw * 1e3
        floor_ms = (
            bytes_tree / self._aggregate_bw(threads, pinned=pinned) * 1e3
        )
        return max(worker_ms / threads, floor_ms)

    def dijkstra_per_tree_parallel(
        self, counts: WorkloadCounts, threads: int, *, pinned: bool = True
    ) -> float:
        """System-wide per-tree ms for Dijkstra with one tree per core.

        Dijkstra is latency-bound, so it parallelizes almost linearly
        when pinned (the paper sees ~19–21x of PHAST's advantage hold
        across core counts); unpinned on a multi-socket box the random
        accesses pay the remote latency with probability (B-1)/B.
        """
        cal = self.cal
        threads = max(1, min(threads, self.spec.cores))
        base = self.dijkstra_single(counts)
        if not pinned and self.spec.numa_nodes > 1:
            b = self.spec.numa_nodes
            remote_fraction = (b - 1) / b
            miss_ms = (
                counts.arcs * cal.dijkstra_miss_fraction * self._latency_ns / 1e6
            )
            base += miss_ms * remote_fraction * (cal.remote_penalty - 1.0)
        # Memory-controller queueing among the cores of one bank.
        banks = max(1, self.spec.numa_nodes) if pinned else 1
        per_bank = -(-threads // banks)
        contention = 1.0 + 0.06 * max(0, per_bank - 1)
        return base * contention / threads

    def phast_single_tree_level_parallel(
        self, counts: WorkloadCounts, threads: int
    ) -> float:
        """One tree, levels processed by ``threads`` cores (Section V).

        Small top levels serialize; the model charges a per-level
        synchronization cost on top of divided work.
        """
        threads = min(threads, self.spec.cores)
        single = self.phast_per_tree_parallel(counts, 1)
        if threads <= 1:
            return single
        sync_ms = counts.levels * 2e-3  # barrier per level
        parallel = self.phast_per_tree_parallel(counts, threads)
        return parallel + sync_ms
