"""Functional SIMT simulation of GPHAST kernels (Section VI).

The closed-form :class:`~repro.simulator.gpu.GpuCostModel` charges
average-case traffic.  This module instead *executes* the kernel
schedule the paper describes — one thread per (vertex, tree) pair, 32
threads to a warp, one kernel per level — against the actual sweep
structure, deriving:

* **memory transactions** by coalescing each warp's lane addresses into
  aligned segments, exactly like Fermi's load/store units: the tail
  label gathers of 32 lanes may touch anywhere from 1 segment (all
  lanes in one aligned window) to 32 (fully scattered);
* **divergence** from the per-lane trip counts of the arc loop: a warp
  executes ``max`` over its lanes' degrees iterations, lanes with fewer
  arcs idle (predicated off);
* **occupancy** from the number of resident warps a level can fill.

The result is a per-level instruction/transaction census that the cost
model converts to time with the same device constants, and that the
ablation benches use to compare vertex orderings (level vs degree) on
*measured* coalescing rather than an assumed factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.sweep import SweepStructure
from .gpu import GpuSpec, GTX_580

__all__ = ["WarpStats", "KernelStats", "GpuFunctionalSim", "SimReport"]

LABEL_BYTES = 4
ARC_BYTES = 8
SEGMENT_BYTES = 32  # Fermi memory segment for coalescing


@dataclass
class WarpStats:
    """Census of one warp's execution."""

    threads: int
    iterations: int  # max lane degree (divergent loop trips)
    useful_lane_iterations: int  # sum of lane degrees
    gather_transactions: int
    write_transactions: int
    arc_transactions: int

    @property
    def divergence_waste(self) -> float:
        """Fraction of issued lane-iterations that were predicated off."""
        issued = self.threads * self.iterations
        if issued == 0:
            return 0.0
        return 1.0 - self.useful_lane_iterations / issued


@dataclass
class KernelStats:
    """Aggregated census of one level's kernel."""

    level: int
    vertices: int
    warps: int = 0
    iterations: int = 0
    useful_lane_iterations: int = 0
    issued_lane_iterations: int = 0
    gather_transactions: int = 0
    write_transactions: int = 0
    arc_transactions: int = 0

    @property
    def divergence_waste(self) -> float:
        if self.issued_lane_iterations == 0:
            return 0.0
        return 1.0 - self.useful_lane_iterations / self.issued_lane_iterations

    @property
    def memory_bytes(self) -> int:
        return SEGMENT_BYTES * (
            self.gather_transactions
            + self.write_transactions
            + self.arc_transactions
        )


@dataclass
class SimReport:
    """Whole-sweep census plus derived time on a device."""

    kernels: list[KernelStats]
    k: int
    total_ms: float
    memory_ms: float
    compute_ms: float
    launch_ms: float

    @property
    def total_transactions(self) -> int:
        return sum(
            ks.gather_transactions + ks.write_transactions + ks.arc_transactions
            for ks in self.kernels
        )

    @property
    def mean_divergence_waste(self) -> float:
        issued = sum(ks.issued_lane_iterations for ks in self.kernels)
        useful = sum(ks.useful_lane_iterations for ks in self.kernels)
        return 1.0 - useful / issued if issued else 0.0


def _segments(addresses: np.ndarray) -> int:
    """Number of aligned 32-byte segments covering the addresses."""
    if addresses.size == 0:
        return 0
    return int(np.unique(addresses // SEGMENT_BYTES).size)


class GpuFunctionalSim:
    """Execute the GPHAST kernel schedule at warp granularity.

    Parameters
    ----------
    sweep:
        The (level-reordered) sweep structure; its positions define the
        memory layout on the device, as in Section VI.
    spec:
        Device constants for the time conversion.
    """

    def __init__(self, sweep: SweepStructure, spec: GpuSpec = GTX_580) -> None:
        self.sweep = sweep
        self.spec = spec

    def _warp_stats(
        self, lane_vertex: np.ndarray, lane_tree: np.ndarray, k: int
    ) -> WarpStats:
        """Census one warp.

        ``lane_vertex[i]`` is the sweep position lane ``i`` works on and
        ``lane_tree[i]`` its tree index; with ``k >= warp_size`` all
        lanes share a vertex, with ``k == 1`` each lane has its own
        (the paper's assignment keeps a warp's vertices consecutive
        either way).
        """
        sw = self.sweep
        degrees = sw.arc_first[lane_vertex + 1] - sw.arc_first[lane_vertex]
        iterations = int(degrees.max()) if degrees.size else 0
        useful = int(degrees.sum())

        gather_tx = 0
        arc_tx = 0
        # Iterate the divergent arc loop: per trip, active lanes fetch
        # one arc record and gather the tail's per-tree label.
        for trip in range(iterations):
            active = degrees > trip
            if not active.any():
                break
            arc_idx = sw.arc_first[lane_vertex[active]] + trip
            arc_tx += _segments(arc_idx * ARC_BYTES)
            tails = sw.arc_tail_pos[arc_idx]
            # Labels are laid out k-wide per vertex: lane (v, j) reads
            # dist[v * k + j], so one vertex's k lanes sit adjacent.
            gather_addr = (tails * k + lane_tree[active]) * LABEL_BYTES
            gather_tx += _segments(gather_addr)
        # One label write per lane.
        write_addr = (lane_vertex * k + lane_tree) * LABEL_BYTES
        write_tx = _segments(write_addr)
        return WarpStats(
            threads=int(lane_vertex.size),
            iterations=iterations,
            useful_lane_iterations=useful,
            gather_transactions=gather_tx,
            write_transactions=write_tx,
            arc_transactions=arc_tx,
        )

    def run(self, k: int = 1, *, vertex_order: str = "level") -> SimReport:
        """Simulate one sweep computing ``k`` trees.

        Parameters
        ----------
        k:
            Trees per sweep; threads are assigned so that the k lanes
            of one vertex sit in the same warp (Section VI: "threads
            within a warp work on the same vertices").
        vertex_order:
            ``"level"`` (the paper's choice) or ``"degree"`` (the
            rejected alternative: within each level, vertices sorted by
            degree so warps are uniform — at the cost of scattering the
            label gathers).
        """
        if vertex_order not in ("level", "degree"):
            raise ValueError("vertex_order must be 'level' or 'degree'")
        sw = self.sweep
        warp = self.spec.warp_size
        lanes_per_vertex = max(1, min(k, warp))
        vertices_per_warp = max(1, warp // lanes_per_vertex)

        kernels: list[KernelStats] = []
        for i in range(sw.num_levels):
            lo, hi = sw.level_slice(i)
            verts = np.arange(lo, hi, dtype=np.int64)
            if vertex_order == "degree":
                degs = sw.arc_first[verts + 1] - sw.arc_first[verts]
                verts = verts[np.argsort(degs, kind="stable")]
            ks = KernelStats(level=i, vertices=int(verts.size))
            for w0 in range(0, verts.size, vertices_per_warp):
                vblock = verts[w0 : w0 + vertices_per_warp]
                lane_vertex = np.repeat(vblock, lanes_per_vertex)
                lane_tree = np.tile(
                    np.arange(lanes_per_vertex, dtype=np.int64), vblock.size
                )
                stats = self._warp_stats(lane_vertex, lane_tree, k)
                ks.warps += 1
                ks.iterations += stats.iterations
                ks.useful_lane_iterations += stats.useful_lane_iterations
                ks.issued_lane_iterations += stats.threads * stats.iterations
                ks.gather_transactions += stats.gather_transactions
                ks.write_transactions += stats.write_transactions
                ks.arc_transactions += stats.arc_transactions
            kernels.append(ks)
        return self._to_report(kernels, k)

    def _to_report(self, kernels: list[KernelStats], k: int) -> SimReport:
        s = self.spec
        launch = len(kernels) * s.kernel_launch_us / 1e3
        mem_bytes = sum(ks.memory_bytes for ks in kernels)
        memory = mem_bytes / (s.mem_bandwidth_gbs * 1e9) * 1e3
        # Issued lane-iterations are the instruction budget (divergent
        # lanes still occupy issue slots).
        issued = sum(ks.issued_lane_iterations for ks in kernels)
        writes = sum(ks.vertices for ks in kernels) * min(k, s.warp_size)
        instructions = issued * s.instr_per_relaxation + writes * (
            s.instr_per_label_write
        )
        throughput = s.sms * s.cores_per_sm * s.core_clock_mhz * 1e6
        compute = instructions / throughput * 1e3
        total = launch + max(memory, compute)
        return SimReport(
            kernels=kernels,
            k=k,
            total_ms=total,
            memory_ms=memory,
            compute_ms=compute,
            launch_ms=launch,
        )
