"""Explicit NUMA topology and bandwidth-allocation model.

The closed-form :class:`~repro.simulator.cost_model.CostModel` folds
NUMA effects into two scalars.  This module models the machine
structurally — banks, cores, placements — and allocates bandwidth by
waterfilling, so Table V's pinned/unpinned landscape can be *derived*
from topology rather than assumed:

* every core has a home bank (``cores_per_bank`` each);
* a thread streams from the bank its *data* lives on; remote streams
  (data bank ≠ home bank) cross the interconnect and are slowed by
  ``remote_penalty`` (Section VIII-E's observation);
* each bank's achievable bandwidth is shared by the threads streaming
  from it: everyone gets an equal share, capped by the single-core
  ceiling, with leftovers redistributed (max-min fairness).

Pinning in the paper's sense does two things this model makes explicit:
it replicates the graph into every bank (each thread's data is local)
and it stops threads from migrating off their data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import MachineSpec

__all__ = ["NumaTopology", "ThreadStream", "waterfill"]


@dataclass(frozen=True)
class ThreadStream:
    """One thread's streaming demand.

    Attributes
    ----------
    home_bank:
        Bank of the core the thread runs on.
    data_bank:
        Bank holding the data it streams.
    """

    home_bank: int
    data_bank: int

    @property
    def remote(self) -> bool:
        return self.home_bank != self.data_bank


def waterfill(capacity: float, ceilings: list[float]) -> list[float]:
    """Max-min fair allocation of ``capacity`` under per-user ceilings.

    Classic waterfilling: repeatedly grant every unsatisfied user an
    equal share of what remains; users whose ceiling is below the share
    are capped and their surplus is redistributed.
    """
    n = len(ceilings)
    if n == 0:
        return []
    alloc = [0.0] * n
    remaining = capacity
    open_users = list(range(n))
    while open_users and remaining > 1e-12:
        share = remaining / len(open_users)
        capped = [i for i in open_users if ceilings[i] - alloc[i] <= share]
        if not capped:
            for i in open_users:
                alloc[i] += share
            remaining = 0.0
            break
        for i in capped:
            remaining -= ceilings[i] - alloc[i]
            alloc[i] = ceilings[i]
        open_users = [i for i in open_users if i not in capped]
    return alloc


class NumaTopology:
    """Banks, cores and achievable bandwidths of one machine.

    Parameters
    ----------
    num_banks:
        Local memory banks (Table IV column ``B``).
    cores_per_bank:
        Physical cores attached to each bank.
    bank_bandwidth:
        Achievable (not theoretical) bytes/s per bank.
    single_core_bandwidth:
        One core's streaming ceiling, bytes/s.
    remote_penalty:
        Slowdown of a stream that crosses the interconnect.
    """

    def __init__(
        self,
        num_banks: int,
        cores_per_bank: int,
        bank_bandwidth: float,
        single_core_bandwidth: float,
        remote_penalty: float = 2.2,
    ) -> None:
        if num_banks < 1 or cores_per_bank < 1:
            raise ValueError("topology must have at least one bank and core")
        self.num_banks = int(num_banks)
        self.cores_per_bank = int(cores_per_bank)
        self.bank_bandwidth = float(bank_bandwidth)
        self.single_core_bandwidth = float(single_core_bandwidth)
        self.remote_penalty = float(remote_penalty)

    @classmethod
    def from_machine(
        cls,
        spec: MachineSpec,
        *,
        aggregate_fraction: float = 0.345,
        single_core_fraction: float = 0.25,
        remote_penalty: float = 2.2,
    ) -> "NumaTopology":
        """Build from a Table IV row using the cost-model calibration."""
        return cls(
            num_banks=spec.numa_nodes,
            cores_per_bank=max(1, spec.cores // spec.numa_nodes),
            bank_bandwidth=spec.bandwidth_gbs * 1e9 * aggregate_fraction,
            single_core_bandwidth=spec.bandwidth_gbs
            * 1e9
            * single_core_fraction,
            remote_penalty=remote_penalty,
        )

    @property
    def total_cores(self) -> int:
        return self.num_banks * self.cores_per_bank

    # -- placements --------------------------------------------------------

    def placement(self, threads: int, *, pinned: bool, seed: int = 0) -> list[ThreadStream]:
        """Thread streams for the paper's two execution modes.

        Pinned: threads fill banks round-robin and their data is
        replicated locally.  Unpinned: the OS scatters threads while
        all data sits in bank 0 (first-touch allocation by the main
        thread), so most streams are remote.
        """
        threads = min(threads, self.total_cores)
        if pinned:
            return [
                ThreadStream(home_bank=i % self.num_banks, data_bank=i % self.num_banks)
                for i in range(threads)
            ]
        rng = np.random.default_rng(seed)
        homes = rng.integers(0, self.num_banks, size=threads)
        return [ThreadStream(home_bank=int(h), data_bank=0) for h in homes]

    # -- allocation ----------------------------------------------------------

    def allocate(self, streams: list[ThreadStream]) -> list[float]:
        """Achieved bytes/s per stream (max-min fair within each bank).

        Streams draw from their *data* bank.  A remote stream occupies
        the bank (and interconnect) for ``remote_penalty`` units per
        delivered byte — protocol overhead that both slows the remote
        reader and shrinks what is left for everyone else.
        """
        out = [0.0] * len(streams)
        for bank in range(self.num_banks):
            users = [i for i, s in enumerate(streams) if s.data_bank == bank]
            if not users:
                continue
            # Waterfill in *consumption* units; remote users deliver
            # only 1/penalty of what they consume.
            ceilings = [self.single_core_bandwidth for _ in users]
            shares = waterfill(self.bank_bandwidth, ceilings)
            for i, consumed in zip(users, shares):
                penalty = self.remote_penalty if streams[i].remote else 1.0
                out[i] = consumed / penalty
        return out

    def per_tree_ms(
        self,
        bytes_per_tree: float,
        cpu_ms_per_tree: float,
        threads: int,
        *,
        pinned: bool,
    ) -> float:
        """System-wide per-tree time for independent sweeping workers.

        Each worker overlaps its scan loop with its stream (hardware
        prefetch makes the sweep's sequential traffic asynchronous), so
        a worker's period is the larger of the two; the system produces
        one tree per ``1 / Σ 1/worker_period``.
        """
        streams = self.placement(threads, pinned=pinned)
        if not streams:
            return float("inf")
        rates = self.allocate(streams)
        worker_times = [
            max(cpu_ms_per_tree, bytes_per_tree / rate * 1e3)
            if rate > 0
            else float("inf")
            for rate in rates
        ]
        throughput = sum(1.0 / t for t in worker_times if t < float("inf"))
        return 1.0 / throughput if throughput else float("inf")
