"""Address-trace generators for the cache simulator.

Each generator lays the algorithm's data structures out in a flat byte
address space exactly as Section IV-A describes — ``first`` array,
packed ``arclist`` of (head ID, length) 8-byte records, and a distance
array — then emits the sequence of byte addresses one tree computation
touches.  Feeding the trace through
:class:`~repro.simulator.cache.CacheHierarchy` yields the layout-
dependent miss counts behind Table I.

Labels are 4 bytes (the paper uses 32-bit distances), arc records
8 bytes, ``first`` entries 4 bytes.
"""

from __future__ import annotations

import numpy as np

from ..core.sweep import SweepStructure
from ..graph.csr import StaticGraph

__all__ = [
    "LABEL_BYTES",
    "ARC_BYTES",
    "phast_sweep_trace",
    "dijkstra_trace",
    "sequential_lower_bound_trace",
]

LABEL_BYTES = 4
ARC_BYTES = 8
FIRST_BYTES = 4


def _layout(n: int, m: int) -> tuple[int, int, int]:
    """Base addresses of (first, arclist, dist), contiguous regions."""
    first_base = 0
    arc_base = first_base + (n + 1) * FIRST_BYTES
    dist_base = arc_base + m * ARC_BYTES
    return first_base, arc_base, dist_base


def phast_sweep_trace(
    sweep: SweepStructure, *, reorder: bool = True
) -> np.ndarray:
    """Addresses touched by one PHAST linear sweep.

    Per vertex in scan order: its ``first`` entry, each incoming arc
    record, the tail's distance label (the only potentially random
    access), then the vertex's own label write.

    With ``reorder=False`` the distance array is indexed by original
    vertex ID (the "original ordering" row of Table I): arc records are
    still scanned sequentially but label reads and writes scatter.
    """
    n, m = sweep.n, sweep.num_arcs
    first_base, arc_base, dist_base = _layout(n, m)
    counts = np.diff(sweep.arc_first)

    if reorder:
        # Arrays are physically laid out in sweep order: everything but
        # the tail-label gathers is sequential.
        tail_idx = sweep.arc_tail_pos
        head_idx = np.arange(n, dtype=np.int64)
        arc_pos = np.arange(m, dtype=np.int64)
    else:
        # "Original ordering": the scan still walks levels, but arrays
        # are laid out by original vertex ID, so arc and label accesses
        # jump around.
        tail_idx = sweep.vertex_at[sweep.arc_tail_pos]
        head_idx = sweep.vertex_at
        head_orig = np.repeat(head_idx, counts)
        orig_layout = np.argsort(head_orig, kind="stable")
        arc_pos = np.empty(m, dtype=np.int64)
        arc_pos[orig_layout] = np.arange(m, dtype=np.int64)

    # Interleave per-vertex accesses: first[v], (arc, dist[tail])*, dist[v].
    arc_addr = arc_base + arc_pos * ARC_BYTES
    tail_addr = dist_base + tail_idx * LABEL_BYTES
    arc_pair = np.empty(2 * m, dtype=np.int64)
    arc_pair[0::2] = arc_addr
    arc_pair[1::2] = tail_addr

    first_addr = first_base + head_idx * FIRST_BYTES
    write_addr = dist_base + head_idx * LABEL_BYTES

    # Build the interleaved trace with one pass of index arithmetic:
    # each vertex contributes 1 (first) + 2*deg (arc+label) + 1 (write).
    per_vertex = 2 + 2 * counts
    total = int(per_vertex.sum())
    trace = np.empty(total, dtype=np.int64)
    v_start = np.concatenate(([0], np.cumsum(per_vertex)[:-1]))
    trace[v_start] = first_addr
    trace[v_start + per_vertex - 1] = write_addr
    # Scatter the arc/label pairs into the middles.
    arc_out_start = v_start + 1
    arc_slots = (
        np.repeat(arc_out_start, 2 * counts)
        + _within_group(2 * counts)
    )
    trace[arc_slots] = arc_pair
    return trace


def _within_group(counts: np.ndarray) -> np.ndarray:
    """0,1,..,c0-1,0,1,..,c1-1,... for segment sizes ``counts``."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def dijkstra_trace(graph: StaticGraph, scan_order: np.ndarray) -> np.ndarray:
    """Addresses touched by one Dijkstra run over ``graph``.

    ``scan_order`` is the settling order of an actual run (see
    ``dijkstra(..., record_order=True)``).  Per scanned vertex: its
    ``first`` entry, each outgoing arc record, and the head's label
    (read-modify-write).  Priority-queue traffic is omitted — the
    paper's bucket queues touch a few hot cache lines that never miss,
    and modeling them would only add noise.
    """
    n, m = graph.n, graph.m
    first_base, arc_base, dist_base = _layout(n, m)
    scan_order = np.asarray(scan_order, dtype=np.int64)

    starts = graph.first[scan_order]
    counts = graph.first[scan_order + 1] - starts
    total = int(counts.sum())
    arc_idx = np.repeat(starts, counts) + _within_group(counts)
    arc_addr = arc_base + arc_idx * ARC_BYTES
    head_addr = dist_base + graph.arc_head[arc_idx] * LABEL_BYTES
    arc_pair = np.empty(2 * total, dtype=np.int64)
    arc_pair[0::2] = arc_addr
    arc_pair[1::2] = head_addr

    first_addr = first_base + scan_order * FIRST_BYTES
    per_vertex = 1 + 2 * counts
    out = np.empty(int(per_vertex.sum()), dtype=np.int64)
    v_start = np.concatenate(([0], np.cumsum(per_vertex)[:-1]))
    out[v_start] = first_addr
    arc_slots = np.repeat(v_start + 1, 2 * counts) + _within_group(2 * counts)
    out[arc_slots] = arc_pair
    return out


def sequential_lower_bound_trace(n: int, m: int) -> np.ndarray:
    """The Section VIII-B lower-bound pass.

    Sequentially read ``first``, the arc list and the distance array,
    then write every distance entry — the bandwidth-bound floor any
    sweep-based algorithm sits on.
    """
    first_base, arc_base, dist_base = _layout(n, m)
    return np.concatenate(
        [
            first_base + np.arange(n + 1, dtype=np.int64) * FIRST_BYTES,
            arc_base + np.arange(m, dtype=np.int64) * ARC_BYTES,
            dist_base + np.arange(n, dtype=np.int64) * LABEL_BYTES,
            dist_base + np.arange(n, dtype=np.int64) * LABEL_BYTES,
        ]
    )
