"""Hardware models: caches, machines, GPUs, cost and energy models."""

from .cache import CacheHierarchy, CacheLevel, CacheStats, nehalem_hierarchy
from .cost_model import (
    Calibration,
    CostModel,
    WorkloadCounts,
    dijkstra_counts,
    phast_counts,
)
from .energy import EnergyReport, apsp_report, energy_per_tree
from .gpu import GTX_480, GTX_580, GpuCostModel, GpuSpec, GpuSweepReport
from .gpu_functional import GpuFunctionalSim, KernelStats, SimReport, WarpStats
from .machine import MACHINES, MachineSpec, machine
from .numa import NumaTopology, ThreadStream, waterfill
from .trace import (
    dijkstra_trace,
    phast_sweep_trace,
    sequential_lower_bound_trace,
)

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CacheStats",
    "nehalem_hierarchy",
    "Calibration",
    "CostModel",
    "WorkloadCounts",
    "dijkstra_counts",
    "phast_counts",
    "EnergyReport",
    "apsp_report",
    "energy_per_tree",
    "GpuSpec",
    "GpuCostModel",
    "GpuSweepReport",
    "GTX_580",
    "GTX_480",
    "GpuFunctionalSim",
    "KernelStats",
    "SimReport",
    "WarpStats",
    "MachineSpec",
    "MACHINES",
    "machine",
    "NumaTopology",
    "ThreadStream",
    "waterfill",
    "dijkstra_trace",
    "phast_sweep_trace",
    "sequential_lower_bound_trace",
]
