"""Energy accounting (Table VI, Section VIII-F).

The paper measures wall power of each system under full load and
reports joules per tree and megajoules for all-pairs shortest paths.
Energy here is simply ``watts × modeled time``, using the paper's
published wattages (stored on the machine / GPU specs).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyReport", "energy_per_tree", "apsp_report"]


@dataclass(frozen=True)
class EnergyReport:
    """Per-tree and n-tree cost of one (algorithm, device) pairing."""

    device: str
    per_tree_ms: float
    per_tree_joules: float
    n_trees: int
    total_seconds: float
    total_megajoules: float

    @property
    def total_dhm(self) -> str:
        """Total time formatted as the paper's ``d:hh:mm``."""
        minutes = int(round(self.total_seconds / 60))
        days, rem = divmod(minutes, 24 * 60)
        hours, mins = divmod(rem, 60)
        return f"{days}:{hours:02d}:{mins:02d}"


def energy_per_tree(per_tree_ms: float, watts: float) -> float:
    """Joules consumed by one tree computation."""
    return per_tree_ms / 1e3 * watts


def apsp_report(
    device: str, per_tree_ms: float, watts: float | None, n: int
) -> EnergyReport:
    """All-pairs (n-tree) time and energy for one configuration."""
    total_seconds = per_tree_ms / 1e3 * n
    joules = energy_per_tree(per_tree_ms, watts) if watts else float("nan")
    total_mj = (
        joules * n / 1e6 if watts else float("nan")
    )
    return EnergyReport(
        device=device,
        per_tree_ms=per_tree_ms,
        per_tree_joules=joules,
        n_trees=n,
        total_seconds=total_seconds,
        total_megajoules=total_mj,
    )
