"""Machine catalog (the paper's Table IV).

The evaluation spans five CPU machines plus a GPU-equipped workstation.
Since this reproduction cannot run on that hardware, the specs are data:
the cost model (:mod:`repro.simulator.cost_model`) combines them with
algorithm operation counts to predict per-tree running times, and the
energy model multiplies by the paper's measured full-load wattages
(Section VIII-F).

Naming convention (from the paper): ``M<sockets>-<cores per socket>``.
Where the extracted paper text lost exact cell values, specs follow the
named parts' published data sheets; the load-bearing figures for the
model — per-core clock, core counts, NUMA node counts, and per-node
memory bandwidth — are the ones the paper's analysis itself quotes
(e.g. 32 GB/s for the Xeon, 8 NUMA nodes for M4-12).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "MACHINES", "machine"]


@dataclass(frozen=True)
class MachineSpec:
    """One row of Table IV plus the wattage of Section VIII-F.

    Attributes
    ----------
    name:
        Paper's machine ID (e.g. ``"M1-4"``).
    brand, cpu:
        Vendor and CPU model.
    clock_ghz:
        Per-core clock.
    sockets:
        Column ``P`` — CPU packages.
    cores:
        Column ``c`` — total physical cores.
    mem_type:
        DRAM generation.
    mem_gb:
        Installed memory.
    mem_clock_mhz:
        DRAM clock.
    bandwidth_gbs:
        Theoretical bandwidth from one core's local memory bank.
    numa_nodes:
        Column ``B`` — local memory banks.
    watts_full_load:
        Wall power under full load (None where the paper gives none).
    """

    name: str
    brand: str
    cpu: str
    clock_ghz: float
    sockets: int
    cores: int
    mem_type: str
    mem_gb: int
    mem_clock_mhz: int
    bandwidth_gbs: float
    numa_nodes: int
    watts_full_load: float | None = None


MACHINES: dict[str, MachineSpec] = {
    m.name: m
    for m in [
        # ~5-year-old 2-socket single-core Opteron server.
        MachineSpec(
            name="M2-1",
            brand="AMD",
            cpu="Opteron 250",
            clock_ghz=2.4,
            sockets=2,
            cores=2,
            mem_type="DDR",
            mem_gb=8,
            mem_clock_mhz=333,
            bandwidth_gbs=5.3,
            numa_nodes=2,
        ),
        # ~3-year-old 2-socket quad-core Opteron server.
        MachineSpec(
            name="M2-4",
            brand="AMD",
            cpu="Opteron 2350",
            clock_ghz=2.0,
            sockets=2,
            cores=8,
            mem_type="DDR2",
            mem_gb=16,
            mem_clock_mhz=667,
            bandwidth_gbs=10.7,
            numa_nodes=2,
        ),
        # 4-socket 12-core Magny-Cours: 48 cores, 8 NUMA nodes.
        MachineSpec(
            name="M4-12",
            brand="AMD",
            cpu="Opteron 6168",
            clock_ghz=1.9,
            sockets=4,
            cores=48,
            mem_type="DDR3",
            mem_gb=128,
            mem_clock_mhz=1333,
            bandwidth_gbs=21.3,
            numa_nodes=8,
            watts_full_load=747.0,
        ),
        # The default benchmark workstation (Section VIII-A).
        MachineSpec(
            name="M1-4",
            brand="Intel",
            cpu="Core-i7 920",
            clock_ghz=2.67,
            sockets=1,
            cores=4,
            mem_type="DDR3",
            mem_gb=12,
            mem_clock_mhz=1066,
            bandwidth_gbs=25.6,
            numa_nodes=1,
            watts_full_load=163.0,
        ),
        # Modern 2-socket Westmere server; the paper quotes 32 GB/s.
        MachineSpec(
            name="M2-6",
            brand="Intel",
            cpu="Xeon X5680",
            clock_ghz=3.33,
            sockets=2,
            cores=12,
            mem_type="DDR3",
            mem_gb=96,
            mem_clock_mhz=1333,
            bandwidth_gbs=32.0,
            numa_nodes=2,
            watts_full_load=332.0,
        ),
    ]
}


def machine(name: str) -> MachineSpec:
    """Look up a machine by its paper ID (e.g. ``"M1-4"``)."""
    try:
        return MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None
