"""Trace-driven set-associative cache simulator.

The paper's Table I hinges on locality: the same algorithm is up to 7.5x
faster when vertex IDs follow a cache-friendly layout.  Pure-Python
timings cannot exhibit hardware cache behaviour faithfully, so layout
experiments additionally run the algorithms' *address traces* through
this simulator and report hit/miss counts per level, which the cost
model converts to time.

The model is a standard inclusive hierarchy of set-associative LRU
caches in front of DRAM.  Addresses are byte addresses; each access
touches one cache line (accesses never straddle lines in our traces
because all words are 4 or 8 bytes and aligned).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CacheLevel", "CacheHierarchy", "CacheStats", "nehalem_hierarchy"]


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheLevel:
    """One set-associative LRU cache.

    Parameters
    ----------
    size_bytes, line_bytes, associativity:
        Geometry; ``size_bytes`` must be divisible by
        ``line_bytes * associativity``.
    name:
        Label used in reports ("L1", "L2", ...).
    latency_cycles:
        Hit latency, consumed by the cost model.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int,
        associativity: int,
        latency_cycles: int,
    ) -> None:
        if size_bytes % (line_bytes * associativity):
            raise ValueError("cache size not divisible by way size")
        self.name = name
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.latency_cycles = latency_cycles
        self.num_sets = size_bytes // (line_bytes * associativity)
        # Each set is an ordered list of tags, most recent last.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Touch the line containing ``addr``; returns True on hit."""
        line = addr // self.line_bytes
        s = self._sets[line % self.num_sets]
        tag = line // self.num_sets
        try:
            s.remove(tag)
            s.append(tag)
            self.stats.hits += 1
            return True
        except ValueError:
            self.stats.misses += 1
            s.append(tag)
            if len(s) > self.associativity:
                s.pop(0)
            return False

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()


@dataclass
class CacheHierarchy:
    """A stack of cache levels in front of DRAM.

    ``access`` walks levels until a hit; a miss at the last level is a
    DRAM access.  ``dram_accesses`` counts lines fetched from memory —
    multiply by the line size for DRAM traffic.
    """

    levels: list[CacheLevel]
    dram_accesses: int = 0
    total_accesses: int = 0
    extra: dict = field(default_factory=dict)

    def access(self, addr: int) -> str:
        """Touch ``addr``; returns the name of the level that hit
        (``"DRAM"`` if none)."""
        self.total_accesses += 1
        hit_at = "DRAM"
        for level in self.levels:
            if level.access(addr):
                hit_at = level.name
                break
        else:
            self.dram_accesses += 1
        return hit_at

    def access_array(self, addrs: np.ndarray) -> None:
        """Feed a whole address trace through the hierarchy."""
        for a in addrs:
            self.access(int(a))

    def reset(self) -> None:
        for level in self.levels:
            level.reset()
        self.dram_accesses = 0
        self.total_accesses = 0

    def report(self) -> dict[str, float]:
        """Per-level miss rates plus DRAM line count."""
        out: dict[str, float] = {}
        for level in self.levels:
            out[f"{level.name}_miss_rate"] = level.stats.miss_rate
            out[f"{level.name}_misses"] = float(level.stats.misses)
        out["dram_accesses"] = float(self.dram_accesses)
        out["total_accesses"] = float(self.total_accesses)
        return out


def nehalem_hierarchy(scale: float = 1.0) -> CacheHierarchy:
    """Cache hierarchy of the benchmark machine M1-4 (Core i7-920).

    32 KB L1D / 256 KB L2 per core, 8 MB shared L3, 64-byte lines.
    ``scale`` shrinks capacities proportionally — traces in this
    reproduction come from graphs scaled down from the paper's 18M
    vertices, and shrinking the caches by the same factor preserves the
    capacity-miss behaviour the experiment is about.
    """

    def sz(bytes_: int, assoc: int) -> int:
        way = 64 * assoc
        scaled = int(bytes_ * scale)
        # Round to a whole number of sets, keeping at least 4.
        return max(scaled // way, 4) * way

    return CacheHierarchy(
        levels=[
            CacheLevel("L1", sz(32 * 1024, 8), 64, 8, latency_cycles=4),
            CacheLevel("L2", sz(256 * 1024, 8), 64, 8, latency_cycles=10),
            CacheLevel("L3", sz(8 * 1024 * 1024, 16), 64, 16, latency_cycles=40),
        ]
    )
