"""GPU execution model (Section VI).

No CUDA device exists in this environment, so GPHAST runs its numeric
sweep on the CPU while this model charges what the same schedule would
cost on the paper's cards: one kernel launch per CH level, one thread
per (vertex, tree) pair, DRAM traffic accounted at transaction
granularity with the coalescing rules of Section VI (label vectors of
``k`` 32-bit entries per vertex are contiguous, so larger ``k`` wastes
less of each transaction; arc records are fetched once per vertex and
shared by the ``k`` lanes of a warp).

Per level the model takes ``launch + max(memory, compute)``: memory is
bytes over bandwidth, compute is instruction count over aggregate core
throughput.  The two dominate at opposite ends of the ``k`` sweep,
reproducing Table III's shape: per-tree time falls steeply from
``k = 1`` and flattens past ``k = 8``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GpuSpec", "GTX_580", "GTX_480", "GpuCostModel", "GpuSweepReport"]


@dataclass(frozen=True)
class GpuSpec:
    """Data-sheet numbers for one CUDA device (paper's cards).

    ``transaction_bytes`` is the effective DRAM transaction granularity
    for scattered reads — 16 bytes calibrates Fermi's 32-byte L2
    sectors with the modest hit rate the on-chip cache achieves on this
    access pattern (the paper: data reuse is too low for shared memory
    to help, but the cache is not useless either).
    """

    name: str
    sms: int
    cores_per_sm: int
    warp_size: int
    core_clock_mhz: float
    mem_clock_mhz: float
    mem_bandwidth_gbs: float
    mem_gb: float
    kernel_launch_us: float = 4.0
    transaction_bytes: int = 16
    instr_per_relaxation: float = 20.0
    instr_per_label_write: float = 8.0
    watts_full_system: float | None = None


#: The paper's primary card (Section VI / Table III).
GTX_580 = GpuSpec(
    name="GTX 580",
    sms=16,
    cores_per_sm=32,
    warp_size=32,
    core_clock_mhz=772.0,
    mem_clock_mhz=2004.0,
    mem_bandwidth_gbs=192.4,
    mem_gb=1.5,
    watts_full_system=375.0,
)

#: Its predecessor, evaluated in Table VI.
GTX_480 = GpuSpec(
    name="GTX 480",
    sms=15,
    cores_per_sm=32,
    warp_size=32,
    core_clock_mhz=701.0,
    mem_clock_mhz=1848.0,
    mem_bandwidth_gbs=177.4,
    mem_gb=1.5,
    watts_full_system=390.0,
)

LABEL_BYTES = 4
ARC_BYTES = 8
FIRST_BYTES = 4


@dataclass
class GpuSweepReport:
    """Modeled cost of one GPHAST sweep computing ``k`` trees.

    Attributes
    ----------
    total_ms:
        Modeled wall time of the sweep (CH searches excluded — the
    paper measures them at < 0.05 ms each on the CPU).
    per_tree_ms:
        ``total_ms / k``.
    memory_mb:
        Device memory held: graph + k distance-label arrays.
    launch_ms, memory_ms, compute_ms:
        Breakdown across all levels.
    kernels:
        Number of kernel launches (= number of levels).
    fits_in_memory:
        Whether ``memory_mb`` fits the card.
    """

    gpu: str
    k: int
    total_ms: float
    per_tree_ms: float
    memory_mb: float
    launch_ms: float
    memory_ms: float
    compute_ms: float
    kernels: int
    fits_in_memory: bool


class GpuCostModel:
    """Charges a level-synchronous sweep schedule to a :class:`GpuSpec`."""

    def __init__(self, spec: GpuSpec) -> None:
        self.spec = spec

    def device_memory_mb(self, n: int, m: int, k: int) -> float:
        """Graph arrays plus ``k`` label arrays, in MiB (binary MB, as
        graphics-card capacities are quoted)."""
        graph_bytes = (n + 1) * FIRST_BYTES + m * ARC_BYTES + n * FIRST_BYTES
        label_bytes = k * n * LABEL_BYTES
        return (graph_bytes + label_bytes) / 2**20

    def _level_cost_ms(
        self, verts: int, arcs: int, k: int
    ) -> tuple[float, float, float]:
        """(launch, memory, compute) ms for one level's kernel."""
        s = self.spec
        launch = s.kernel_launch_us / 1e3
        # Coalesced traffic: arc records once per vertex-neighbourhood,
        # label writes k-wide and contiguous.  The tail-label gather
        # moves whole transactions; k lanes of 4 bytes use
        # min(k*4, transaction) ... rounded up to transaction multiples.
        gather_bytes = max(s.transaction_bytes, k * LABEL_BYTES)
        bytes_total = (
            arcs * (ARC_BYTES + gather_bytes)
            + verts * (FIRST_BYTES + k * LABEL_BYTES)
        )
        memory = bytes_total / (s.mem_bandwidth_gbs * 1e9) * 1e3
        instructions = (
            arcs * k * s.instr_per_relaxation
            + verts * k * s.instr_per_label_write
        )
        throughput = s.sms * s.cores_per_sm * s.core_clock_mhz * 1e6
        compute = instructions / throughput * 1e3
        return launch, memory, compute

    def sweep_cost(
        self,
        level_vertex_counts: np.ndarray,
        level_arc_counts: np.ndarray,
        k: int = 1,
        *,
        n: int | None = None,
        m: int | None = None,
    ) -> GpuSweepReport:
        """Model one sweep over the given per-level sizes.

        Parameters
        ----------
        level_vertex_counts, level_arc_counts:
            Vertices and incoming arcs per scanned level (any order).
        k:
            Trees per sweep.
        n, m:
            Totals for the memory report (default: sums of the counts).
        """
        level_vertex_counts = np.asarray(level_vertex_counts)
        level_arc_counts = np.asarray(level_arc_counts)
        if level_vertex_counts.shape != level_arc_counts.shape:
            raise ValueError("per-level count arrays must align")
        launch = memory = compute = total = 0.0
        for verts, arcs in zip(level_vertex_counts, level_arc_counts):
            l, mem, comp = self._level_cost_ms(int(verts), int(arcs), k)
            launch += l
            memory += mem
            compute += comp
            total += l + max(mem, comp)
        n = int(level_vertex_counts.sum()) if n is None else n
        m = int(level_arc_counts.sum()) if m is None else m
        mem_mb = self.device_memory_mb(n, m, k)
        return GpuSweepReport(
            gpu=self.spec.name,
            k=k,
            total_ms=total,
            per_tree_ms=total / max(1, k),
            memory_mb=mem_mb,
            launch_ms=launch,
            memory_ms=memory,
            compute_ms=compute,
            kernels=int(level_vertex_counts.size),
            fits_in_memory=mem_mb <= self.spec.mem_gb * 1024,
        )
