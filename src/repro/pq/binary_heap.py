"""Addressable binary heap.

The paper's CH queries use a binary heap because the queue stays tiny
(hundreds of entries); Table I also evaluates Dijkstra with one.  This
is the textbook array heap with a position index enabling true
decrease-key (sift-up from the item's slot).
"""

from __future__ import annotations

import numpy as np

from .base import PriorityQueue

__all__ = ["BinaryHeap"]


class BinaryHeap(PriorityQueue):
    """Binary min-heap addressable by item ID.

    Parameters
    ----------
    n:
        Item IDs range over ``0 .. n - 1``.
    """

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self._items: list[int] = []
        self._key = np.zeros(n, dtype=np.int64)
        self._pos = np.full(n, -1, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._items)

    def contains(self, item: int) -> bool:
        return self._pos[item] >= 0

    def key_of(self, item: int) -> int:
        """Current key of a queued item."""
        if self._pos[item] < 0:
            raise KeyError(f"item {item} not in heap")
        return int(self._key[item])

    def clear(self) -> None:
        """Empty the heap in O(size) without reallocating."""
        for v in self._items:
            self._pos[v] = -1
        self._items.clear()

    # -- internals ------------------------------------------------------

    def _swap(self, i: int, j: int) -> None:
        items = self._items
        items[i], items[j] = items[j], items[i]
        self._pos[items[i]] = i
        self._pos[items[j]] = j

    def _sift_up(self, i: int) -> None:
        items, key = self._items, self._key
        while i > 0:
            parent = (i - 1) >> 1
            if key[items[i]] < key[items[parent]]:
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        items, key = self._items, self._key
        size = len(items)
        while True:
            left = 2 * i + 1
            if left >= size:
                return
            smallest = left
            right = left + 1
            if right < size and key[items[right]] < key[items[left]]:
                smallest = right
            if key[items[smallest]] < key[items[i]]:
                self._swap(i, smallest)
                i = smallest
            else:
                return

    # -- queue operations -------------------------------------------------

    def insert(self, item: int, key: int) -> None:
        if self._pos[item] >= 0:
            raise ValueError(f"item {item} already in heap")
        self._key[item] = key
        self._pos[item] = len(self._items)
        self._items.append(int(item))
        self._sift_up(len(self._items) - 1)

    def decrease_key(self, item: int, key: int) -> None:
        pos = int(self._pos[item])
        if pos < 0:
            raise KeyError(f"item {item} not in heap")
        if key > self._key[item]:
            raise ValueError("decrease_key would increase the key")
        self._key[item] = key
        self._sift_up(pos)

    def peek_min(self) -> tuple[int, int]:
        """Return ``(item, key)`` with the smallest key without removal."""
        if not self._items:
            raise IndexError("peek at empty heap")
        top = self._items[0]
        return int(top), int(self._key[top])

    def pop_min(self) -> tuple[int, int]:
        if not self._items:
            raise IndexError("pop from empty heap")
        top = self._items[0]
        key = int(self._key[top])
        last = self._items.pop()
        self._pos[top] = -1
        if self._items:
            self._items[0] = last
            self._pos[last] = 0
            self._sift_down(0)
        return int(top), key
