"""Multi-level bucket queue (the "smart queue" family).

Multi-level buckets [21] generalize Dial's structure: keys are viewed as
``L``-digit numbers in base ``b`` (a power of two), and an item whose
key first differs from the current minimum ``mu`` at digit position
``i`` lives in bucket ``(i, digit_i(key))``.  Extract-min takes items
directly from level 0; when the lowest non-empty level is ``i > 0``,
the minimum bucket at that level is *expanded*: ``mu`` becomes the
bucket's minimum key and its contents are redistributed into levels
``< i``.  Each item can only move downward, so the total redistribution
work is O(n·L), giving the O(m + n·log C) bound the paper quotes for
smart queues.  (The caliber heuristic of [3], which lets some vertices
bypass the queue entirely, is orthogonal and omitted; it does not change
the worst-case bound.)

Decrease-key is lazy: the item is re-filed under its new key and stale
copies are discarded when encountered.
"""

from __future__ import annotations

import numpy as np

from .base import PriorityQueue

__all__ = ["MultiLevelBucketQueue"]


class MultiLevelBucketQueue(PriorityQueue):
    """Multi-level bucket min-queue for monotone integer keys.

    Parameters
    ----------
    n:
        Item IDs range over ``0 .. n - 1``.
    max_key:
        Upper bound on any key ever inserted (for Dijkstra: an upper
        bound on the largest finite distance, e.g. ``n * C``).
    base:
        Bucket fan-out per level; must be a power of two.  The paper's
        smart queue uses a small number of wide levels; 64 is a good
        default.
    """

    def __init__(self, n: int, max_key: int, base: int = 64) -> None:
        if max_key < 0:
            raise ValueError("max_key must be non-negative")
        if base < 2 or base & (base - 1):
            raise ValueError("base must be a power of two >= 2")
        self.n = int(n)
        self.base = int(base)
        self._shift = base.bit_length() - 1
        self._mask = base - 1
        bits = max(1, int(max_key).bit_length())
        self.levels = -(-bits // self._shift)  # ceil division
        self.max_key = int(max_key)
        self._buckets: list[list[list[int]]] = [
            [[] for _ in range(base)] for _ in range(self.levels)
        ]
        self._level_count = [0] * self.levels  # entries incl. stale copies
        self._key = np.zeros(n, dtype=np.int64)
        self._in = np.zeros(n, dtype=bool)
        self._mu = 0  # last extracted minimum
        self._size = 0  # live items

    def __len__(self) -> int:
        return self._size

    def contains(self, item: int) -> bool:
        return bool(self._in[item])

    def key_of(self, item: int) -> int:
        """Current key of a queued item."""
        if not self._in[item]:
            raise KeyError(f"item {item} not in queue")
        return int(self._key[item])

    def _digit(self, key: int, level: int) -> int:
        return (key >> (level * self._shift)) & self._mask

    def _position(self, key: int) -> tuple[int, int]:
        """Bucket coordinates of ``key`` relative to the current ``mu``."""
        diff = key ^ self._mu
        if diff == 0:
            return 0, self._digit(key, 0)
        level = (diff.bit_length() - 1) // self._shift
        return level, self._digit(key, level)

    def _file(self, item: int, key: int) -> None:
        level, digit = self._position(key)
        self._buckets[level][digit].append(item)
        self._level_count[level] += 1

    def insert(self, item: int, key: int) -> None:
        if self._in[item]:
            raise ValueError(f"item {item} already in queue")
        if key < self._mu:
            raise ValueError(
                f"key {key} below current minimum {self._mu}; "
                "multi-level buckets require monotone keys"
            )
        if key > self.max_key:
            raise ValueError(f"key {key} exceeds max_key {self.max_key}")
        self._key[item] = key
        self._in[item] = True
        self._file(int(item), key)
        self._size += 1

    def decrease_key(self, item: int, key: int) -> None:
        if not self._in[item]:
            raise KeyError(f"item {item} not in queue")
        if key > self._key[item]:
            raise ValueError("decrease_key would increase the key")
        if key < self._mu:
            raise ValueError(f"key {key} below current minimum {self._mu}")
        # Lazy: the old copy is discarded when encountered.
        self._key[item] = key
        self._file(int(item), key)

    def _is_live(self, item: int, level: int, digit: int) -> bool:
        """True if this bucket copy is the item's current filing."""
        if not self._in[item]:
            return False
        lvl, dig = self._position(int(self._key[item]))
        return lvl == level and dig == digit

    def pop_min(self) -> tuple[int, int]:
        if self._size == 0:
            raise IndexError("pop from empty queue")
        while True:
            # Lowest level holding any entry (possibly stale).
            level = next(
                (i for i in range(self.levels) if self._level_count[i] > 0), None
            )
            if level is None:  # only stale bookkeeping left; cannot happen
                raise IndexError("queue invariant violated")  # pragma: no cover
            row = self._buckets[level]
            start = self._digit(self._mu, level) if level == 0 else 0
            popped_something = False
            for digit in range(start, self.base):
                bucket = row[digit]
                if not bucket:
                    continue
                if level == 0:
                    # Level-0 buckets hold a single exact key; pop live.
                    while bucket:
                        item = bucket.pop()
                        self._level_count[0] -= 1
                        if self._is_live(item, 0, digit):
                            self._in[item] = False
                            self._size -= 1
                            self._mu = int(self._key[item])
                            return item, self._mu
                    continue  # bucket was all stale; next digit
                # Expand: find the live minimum of this bucket, advance
                # mu to it, and refile the bucket's live contents into
                # strictly lower levels.
                live = []
                while bucket:
                    item = bucket.pop()
                    self._level_count[level] -= 1
                    if self._is_live(item, level, digit):
                        live.append(item)
                if not live:
                    continue
                self._mu = int(min(self._key[i] for i in live))
                for item in live:
                    self._file(item, int(self._key[item]))
                popped_something = True
                break
            if popped_something:
                continue
            if level == 0 and start > 0:
                # All level-0 entries at digits < start are stale relics
                # from before mu advanced past them; purge and retry.
                for digit in range(0, start):
                    bucket = row[digit]
                    while bucket:
                        item = bucket.pop()
                        self._level_count[0] -= 1
                        if self._is_live(item, 0, digit):
                            # Live item filed below mu's digit can only
                            # happen if keys were non-monotone.
                            raise AssertionError(
                                "live item below current minimum"
                            )  # pragma: no cover
            # Otherwise the scanned level contained only stale copies,
            # all of which were just discarded; re-scan from the top.
