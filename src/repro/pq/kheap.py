"""Addressable d-ary heap.

k-heaps [18] trade deeper sift-ups for shallower trees; with ``arity=4``
the heap height halves relative to a binary heap while extract-min
compares at most four children per hop — a good fit for the
cache-line-sized node groups the paper's discussion of locality cares
about.
"""

from __future__ import annotations

import numpy as np

from .base import PriorityQueue

__all__ = ["KHeap"]


class KHeap(PriorityQueue):
    """d-ary min-heap addressable by item ID.

    Parameters
    ----------
    n:
        Item IDs range over ``0 .. n - 1``.
    arity:
        Number of children per node (>= 2); default 4.
    """

    def __init__(self, n: int, arity: int = 4) -> None:
        if arity < 2:
            raise ValueError("arity must be at least 2")
        self.n = int(n)
        self.arity = int(arity)
        self._items: list[int] = []
        self._key = np.zeros(n, dtype=np.int64)
        self._pos = np.full(n, -1, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._items)

    def contains(self, item: int) -> bool:
        return self._pos[item] >= 0

    def key_of(self, item: int) -> int:
        """Current key of a queued item."""
        if self._pos[item] < 0:
            raise KeyError(f"item {item} not in heap")
        return int(self._key[item])

    def clear(self) -> None:
        """Empty the heap in O(size) without reallocating."""
        for v in self._items:
            self._pos[v] = -1
        self._items.clear()

    def _swap(self, i: int, j: int) -> None:
        items = self._items
        items[i], items[j] = items[j], items[i]
        self._pos[items[i]] = i
        self._pos[items[j]] = j

    def _sift_up(self, i: int) -> None:
        items, key, d = self._items, self._key, self.arity
        while i > 0:
            parent = (i - 1) // d
            if key[items[i]] < key[items[parent]]:
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        items, key, d = self._items, self._key, self.arity
        size = len(items)
        while True:
            first_child = d * i + 1
            if first_child >= size:
                return
            last_child = min(first_child + d, size)
            smallest = first_child
            for c in range(first_child + 1, last_child):
                if key[items[c]] < key[items[smallest]]:
                    smallest = c
            if key[items[smallest]] < key[items[i]]:
                self._swap(i, smallest)
                i = smallest
            else:
                return

    def insert(self, item: int, key: int) -> None:
        if self._pos[item] >= 0:
            raise ValueError(f"item {item} already in heap")
        self._key[item] = key
        self._pos[item] = len(self._items)
        self._items.append(int(item))
        self._sift_up(len(self._items) - 1)

    def decrease_key(self, item: int, key: int) -> None:
        pos = int(self._pos[item])
        if pos < 0:
            raise KeyError(f"item {item} not in heap")
        if key > self._key[item]:
            raise ValueError("decrease_key would increase the key")
        self._key[item] = key
        self._sift_up(pos)

    def peek_min(self) -> tuple[int, int]:
        """Return ``(item, key)`` with the smallest key without removal."""
        if not self._items:
            raise IndexError("peek at empty heap")
        top = self._items[0]
        return int(top), int(self._key[top])

    def pop_min(self) -> tuple[int, int]:
        if not self._items:
            raise IndexError("pop from empty heap")
        top = self._items[0]
        key = int(self._key[top])
        last = self._items.pop()
        self._pos[top] = -1
        if self._items:
            self._items[0] = last
            self._pos[last] = 0
            self._sift_down(0)
        return int(top), key
