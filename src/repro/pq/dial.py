"""Dial's bucket queue.

Dial's implementation [20] of Dijkstra's algorithm keeps one bucket per
distance value in a circular array of ``C + 1`` buckets, where ``C`` is
the maximum arc length: under Dijkstra's monotone key sequence, all live
keys lie in ``[min, min + C]``, so the bucket index ``key mod (C + 1)``
is unambiguous.  Extract-min advances a cursor around the circle.

Decrease-key uses lazy deletion — the item is appended to its new
bucket, and stale copies are skipped at pop time by comparing against
the authoritative key array.  This keeps every operation O(1) amortized
plus the cursor's total O(nC) walk.
"""

from __future__ import annotations

import numpy as np

from .base import PriorityQueue

__all__ = ["DialQueue"]


class DialQueue(PriorityQueue):
    """Single-level bucket queue for monotone integer keys.

    Parameters
    ----------
    n:
        Item IDs range over ``0 .. n - 1``.
    max_arc_len:
        Upper bound ``C`` on the difference between any inserted key and
        the current minimum (for Dijkstra: the maximum arc length).
    """

    def __init__(self, n: int, max_arc_len: int) -> None:
        if max_arc_len < 0:
            raise ValueError("max_arc_len must be non-negative")
        self.n = int(n)
        self.span = int(max_arc_len) + 1
        self._buckets: list[list[int]] = [[] for _ in range(self.span)]
        self._key = np.zeros(n, dtype=np.int64)
        self._in = np.zeros(n, dtype=bool)
        self._cursor_key = 0  # all live keys are >= this
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def contains(self, item: int) -> bool:
        return bool(self._in[item])

    def key_of(self, item: int) -> int:
        """Current key of a queued item."""
        if not self._in[item]:
            raise KeyError(f"item {item} not in queue")
        return int(self._key[item])

    def _check_key(self, key: int) -> None:
        if key < self._cursor_key:
            raise ValueError(
                f"key {key} below current minimum {self._cursor_key}; "
                "DialQueue requires monotone keys"
            )
        if key - self._cursor_key >= self.span:
            raise ValueError(
                f"key {key} exceeds current minimum + C "
                f"({self._cursor_key} + {self.span - 1})"
            )

    def insert(self, item: int, key: int) -> None:
        if self._in[item]:
            raise ValueError(f"item {item} already in queue")
        self._check_key(key)
        self._key[item] = key
        self._in[item] = True
        self._buckets[key % self.span].append(int(item))
        self._size += 1

    def decrease_key(self, item: int, key: int) -> None:
        if not self._in[item]:
            raise KeyError(f"item {item} not in queue")
        if key > self._key[item]:
            raise ValueError("decrease_key would increase the key")
        self._check_key(key)
        # Lazy: old copy stays in its bucket and is skipped at pop time.
        self._key[item] = key
        self._buckets[key % self.span].append(int(item))

    def pop_min(self) -> tuple[int, int]:
        if self._size == 0:
            raise IndexError("pop from empty queue")
        while True:
            bucket = self._buckets[self._cursor_key % self.span]
            while bucket:
                item = bucket.pop()
                if self._in[item] and self._key[item] == self._cursor_key:
                    self._in[item] = False
                    self._size -= 1
                    return item, self._cursor_key
                # stale copy (decreased away or already popped) — skip
            self._cursor_key += 1
