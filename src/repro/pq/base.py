"""Common interface for the addressable priority queues used by Dijkstra.

All queues store integer items (vertex IDs in ``0 .. n - 1``) with
integer keys (tentative distances).  Dijkstra's algorithm needs three
operations — insert, decrease-key and extract-min — plus emptiness.  The
monotone variants (:class:`~repro.pq.dial.DialQueue`,
:class:`~repro.pq.multilevel_bucket.MultiLevelBucketQueue`) additionally
require that keys passed to ``insert``/``decrease_key`` never fall below
the last extracted minimum, which Dijkstra guarantees for non-negative
lengths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["PriorityQueue"]


class PriorityQueue(ABC):
    """Abstract addressable min-queue over items ``0 .. n - 1``."""

    @abstractmethod
    def insert(self, item: int, key: int) -> None:
        """Add ``item`` with priority ``key``; item must not be present."""

    @abstractmethod
    def decrease_key(self, item: int, key: int) -> None:
        """Lower the priority of a present ``item`` to ``key``."""

    @abstractmethod
    def pop_min(self) -> tuple[int, int]:
        """Remove and return ``(item, key)`` with the smallest key."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of items currently queued."""

    def __bool__(self) -> bool:
        return len(self) > 0

    def push_or_decrease(self, item: int, key: int) -> None:
        """Insert ``item`` or decrease its key, whichever applies.

        Convenience used by Dijkstra implementations; subclasses may
        override with a faster combined path.
        """
        if self.contains(item):
            self.decrease_key(item, key)
        else:
            self.insert(item, key)

    @abstractmethod
    def contains(self, item: int) -> bool:
        """True if ``item`` is currently queued."""
