"""Addressable Fibonacci heap.

Fibonacci heaps [19] give Dijkstra its best asymptotic bound,
O(m + n log n): insert and decrease-key are O(1) amortized, extract-min
O(log n) amortized.  In practice their pointer structure loses to
arrays and buckets — which is exactly why the paper's implementations
use binary heaps and bucket queues — but the baseline belongs in the
queue family for completeness, and Table I's bench can quantify the
practical gap.

This is the textbook structure: a circular doubly-linked root list,
lazy consolidation on extract-min, cascading cuts on decrease-key.
"""

from __future__ import annotations

from .base import PriorityQueue

__all__ = ["FibonacciHeap"]


class _Node:
    __slots__ = (
        "item", "key", "parent", "child", "left", "right", "degree", "mark"
    )

    def __init__(self, item: int, key: int) -> None:
        self.item = item
        self.key = key
        self.parent: _Node | None = None
        self.child: _Node | None = None
        self.left = self
        self.right = self
        self.degree = 0
        self.mark = False


class FibonacciHeap(PriorityQueue):
    """Fibonacci min-heap addressable by item ID.

    Parameters
    ----------
    n:
        Item IDs range over ``0 .. n - 1``.
    """

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self._min: _Node | None = None
        self._nodes: dict[int, _Node] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def contains(self, item: int) -> bool:
        return item in self._nodes

    def key_of(self, item: int) -> int:
        """Current key of a queued item."""
        try:
            return int(self._nodes[item].key)
        except KeyError:
            raise KeyError(f"item {item} not in heap") from None

    # -- root-list plumbing ----------------------------------------------

    @staticmethod
    def _splice(a: _Node, b: _Node) -> None:
        """Insert node ``b`` to the right of ``a`` in a circular list."""
        b.right = a.right
        b.left = a
        a.right.left = b
        a.right = b

    @staticmethod
    def _unlink(x: _Node) -> None:
        x.left.right = x.right
        x.right.left = x.left
        x.left = x.right = x

    def _add_root(self, x: _Node) -> None:
        x.parent = None
        if self._min is None:
            x.left = x.right = x
            self._min = x
        else:
            self._splice(self._min, x)
            if x.key < self._min.key:
                self._min = x

    # -- queue operations -------------------------------------------------

    def insert(self, item: int, key: int) -> None:
        if item in self._nodes:
            raise ValueError(f"item {item} already in heap")
        node = _Node(int(item), int(key))
        self._nodes[item] = node
        self._add_root(node)

    def peek_min(self) -> tuple[int, int]:
        """Return ``(item, key)`` with the smallest key without removal."""
        if self._min is None:
            raise IndexError("peek at empty heap")
        return self._min.item, int(self._min.key)

    def pop_min(self) -> tuple[int, int]:
        z = self._min
        if z is None:
            raise IndexError("pop from empty heap")
        # Promote children to roots.
        if z.child is not None:
            children = []
            c = z.child
            while True:
                children.append(c)
                c = c.right
                if c is z.child:
                    break
            for c in children:
                self._unlink(c)
                self._add_root(c)
                c.mark = False
            z.child = None
        # Remove z from the root list.
        if z.right is z:
            self._min = None
        else:
            self._min = z.right
            self._unlink(z)
            self._consolidate()
        del self._nodes[z.item]
        return z.item, int(z.key)

    def _consolidate(self) -> None:
        # Collect current roots.
        roots = []
        start = self._min
        c = start
        while True:
            roots.append(c)
            c = c.right
            if c is start:
                break
        by_degree: dict[int, _Node] = {}
        for x in roots:
            d = x.degree
            while d in by_degree:
                y = by_degree.pop(d)
                if y.key < x.key:
                    x, y = y, x
                # Link y under x.
                self._unlink(y)
                y.parent = x
                y.mark = False
                if x.child is None:
                    x.child = y
                    y.left = y.right = y
                else:
                    self._splice(x.child, y)
                x.degree += 1
                d = x.degree
            by_degree[d] = x
        # Rebuild the root list and find the minimum.
        self._min = None
        for x in by_degree.values():
            x.left = x.right = x
            self._add_root(x)

    def decrease_key(self, item: int, key: int) -> None:
        node = self._nodes.get(item)
        if node is None:
            raise KeyError(f"item {item} not in heap")
        if key > node.key:
            raise ValueError("decrease_key would increase the key")
        node.key = int(key)
        parent = node.parent
        if parent is not None and node.key < parent.key:
            self._cut(node, parent)
            self._cascading_cut(parent)
        if node.key < self._min.key:  # type: ignore[union-attr]
            self._min = node

    def _cut(self, x: _Node, parent: _Node) -> None:
        if parent.child is x:
            parent.child = x.right if x.right is not x else None
        self._unlink(x)
        parent.degree -= 1
        self._add_root(x)
        x.mark = False

    def _cascading_cut(self, x: _Node) -> None:
        while True:
            parent = x.parent
            if parent is None:
                return
            if not x.mark:
                x.mark = True
                return
            self._cut(x, parent)
            x = parent
