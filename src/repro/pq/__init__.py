"""Addressable priority queues for label-setting shortest-path search."""

from .base import PriorityQueue
from .binary_heap import BinaryHeap
from .dial import DialQueue
from .fibonacci import FibonacciHeap
from .kheap import KHeap
from .multilevel_bucket import MultiLevelBucketQueue

__all__ = [
    "PriorityQueue",
    "BinaryHeap",
    "KHeap",
    "DialQueue",
    "FibonacciHeap",
    "MultiLevelBucketQueue",
]
