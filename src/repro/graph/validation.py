"""Structural checks on graphs.

Algorithms in this package assume non-negative integral lengths and, for
road networks, strong connectivity.  These helpers verify such
assumptions up front so failures surface at load time rather than as
wrong distances deep inside a sweep.
"""

from __future__ import annotations

import numpy as np

from .csr import StaticGraph

__all__ = [
    "check_graph",
    "is_strongly_connected",
    "connected_components",
    "largest_strongly_connected_component",
]


def check_graph(graph: StaticGraph) -> None:
    """Validate CSR invariants; raises ``ValueError`` on violation."""
    if graph.first.size != graph.n + 1:
        raise ValueError("first array has wrong size")
    if graph.first[0] != 0 or graph.first[-1] != graph.m:
        raise ValueError("first array endpoints are wrong")
    if np.any(np.diff(graph.first) < 0):
        raise ValueError("first array is not monotone")
    if graph.arc_head.size != graph.m or graph.arc_len.size != graph.m:
        raise ValueError("arc arrays have wrong size")
    if graph.m:
        if graph.arc_head.min() < 0 or graph.arc_head.max() >= graph.n:
            raise ValueError("arc endpoint out of range")
        if graph.arc_len.min() < 0:
            raise ValueError("negative arc length")


def _reachable(graph: StaticGraph, start: int) -> np.ndarray:
    """Boolean reachability vector from ``start`` (iterative DFS)."""
    seen = np.zeros(graph.n, dtype=bool)
    if graph.n == 0:
        return seen
    stack = [start]
    seen[start] = True
    while stack:
        v = stack.pop()
        for w in graph.neighbors(v):
            if not seen[w]:
                seen[w] = True
                stack.append(int(w))
    return seen


def is_strongly_connected(graph: StaticGraph) -> bool:
    """True if every vertex can reach every other vertex."""
    if graph.n <= 1:
        return True
    return bool(_reachable(graph, 0).all() and _reachable(graph.reverse(), 0).all())


def connected_components(graph: StaticGraph) -> np.ndarray:
    """Weakly connected component label per vertex (labels are 0-based)."""
    n = graph.n
    rev = graph.reverse()
    label = np.full(n, -1, dtype=np.int64)
    current = 0
    for root in range(n):
        if label[root] >= 0:
            continue
        stack = [root]
        label[root] = current
        while stack:
            v = stack.pop()
            for w in np.concatenate([graph.neighbors(v), rev.neighbors(v)]):
                if label[w] < 0:
                    label[w] = current
                    stack.append(int(w))
        current += 1
    return label


def largest_strongly_connected_component(
    graph: StaticGraph,
) -> tuple[StaticGraph, np.ndarray]:
    """Restrict to the largest SCC (Tarjan, iterative).

    Returns the induced subgraph and the array of original vertex IDs it
    keeps (index in the subgraph -> original ID).  Road-network inputs
    occasionally include unreachable fragments; PHAST and CH assume they
    have been stripped.
    """
    n = graph.n
    if n == 0:
        return graph, np.zeros(0, dtype=np.int64)

    index = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, -1, dtype=np.int64)
    stack: list[int] = []
    counter = 0
    n_comps = 0

    for root in range(n):
        if index[root] >= 0:
            continue
        # Explicit DFS state machine: (vertex, next-arc-offset).
        work = [(root, 0)]
        while work:
            v, ai = work[-1]
            if ai == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            nbrs = graph.neighbors(v)
            advanced = False
            while ai < nbrs.size:
                w = int(nbrs[ai])
                ai += 1
                if index[w] < 0:
                    work[-1] = (v, ai)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = n_comps
                    if w == v:
                        break
                n_comps += 1
            if work:
                u, _ = work[-1]
                low[u] = min(low[u], low[v])

    sizes = np.bincount(comp, minlength=n_comps)
    big = int(sizes.argmax())
    keep_ids = np.flatnonzero(comp == big).astype(np.int64)
    new_of_old = np.full(n, -1, dtype=np.int64)
    new_of_old[keep_ids] = np.arange(keep_ids.size, dtype=np.int64)

    tails = graph.arc_tails()
    mask = (comp[tails] == big) & (comp[graph.arc_head] == big)
    sub = StaticGraph(
        keep_ids.size,
        new_of_old[tails[mask]],
        new_of_old[graph.arc_head[mask]],
        graph.arc_len[mask],
    )
    return sub, keep_ids
