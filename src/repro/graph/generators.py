"""Synthetic network generators.

The paper's benchmark inputs (DIMACS Europe and USA road networks) are
not redistributable here, so the experiments run on synthetic road
networks engineered to have the property PHAST exploits: low highway
dimension, i.e. a sparse tier of fast roads that carries all long
shortest paths.  The generator builds a jittered grid of local streets
overlaid with arterial and highway tiers at increasing spacing and
speed, yielding contraction hierarchies with the paper's shape (shallow,
with roughly half the vertices at level 0 — see Figure 1).

Two metrics are offered per network, mirroring Section VIII-G:

* ``"time"`` — arc length is travel time (distance / speed); the
  hierarchy is pronounced and CH stays shallow.
* ``"distance"`` — arc length is geometric distance; the hierarchy is
  weaker and CH grows deeper, exactly as the paper reports (140 levels
  for time vs 410 for distance on Europe).

Plain random multigraphs and small fixtures used by the test-suite are
also provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .builder import GraphBuilder
from .csr import StaticGraph

__all__ = [
    "RoadNetworkParams",
    "road_network",
    "road_network_coordinates",
    "europe_like",
    "usa_like",
    "grid_graph",
    "random_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
]


@dataclass(frozen=True)
class RoadNetworkParams:
    """Tuning knobs of the synthetic road-network generator.

    Attributes
    ----------
    rows, cols:
        Grid dimensions; the network has ``rows * cols`` vertices.
    arterial_every, highway_every:
        Spacing (in grid cells) of the arterial and highway tiers.
    local_speed, arterial_speed, highway_speed:
        Tier speeds used by the travel-time metric (km/h-like units).
    cell_meters:
        Nominal grid spacing; per-edge distance is jittered around it.
    removal_prob:
        Probability of deleting a local street segment (deletions that
        would disconnect the network are re-added).
    metric:
        ``"time"`` or ``"distance"``.
    seed:
        RNG seed; the generator is fully deterministic given the seed.
    """

    rows: int = 64
    cols: int = 64
    arterial_every: int = 8
    highway_every: int = 32
    local_speed: float = 30.0
    arterial_speed: float = 70.0
    highway_speed: float = 120.0
    cell_meters: float = 100.0
    removal_prob: float = 0.08
    metric: str = "time"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ValueError("grid must be at least 2x2")
        if self.metric not in ("time", "distance"):
            raise ValueError("metric must be 'time' or 'distance'")
        if not 0.0 <= self.removal_prob < 1.0:
            raise ValueError("removal_prob must be in [0, 1)")


class _UnionFind:
    """Array-based union-find used to keep deletions connectivity-safe."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self.parent
        root = x
        while p[root] != root:
            root = p[root]
        while p[x] != root:  # path compression
            p[x], x = root, p[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


def _edge_speed(params: RoadNetworkParams, fixed: int) -> float:
    """Speed tier of a grid line with index ``fixed`` (row or column)."""
    if fixed % params.highway_every == 0:
        return params.highway_speed
    if fixed % params.arterial_every == 0:
        return params.arterial_speed
    return params.local_speed


def road_network(params: RoadNetworkParams | None = None) -> StaticGraph:
    """Generate a synthetic road network.

    Returns a strongly connected :class:`StaticGraph` whose arcs come in
    symmetric pairs (roads are two-way).  Arc lengths are positive
    integers: deciseconds of travel time for the ``"time"`` metric,
    meters for ``"distance"``.
    """
    p = params or RoadNetworkParams()
    rng = np.random.default_rng(p.seed)
    n = p.rows * p.cols

    def vid(r: int, c: int) -> int:
        return r * p.cols + c

    # Enumerate undirected grid edges with their tier speed.
    us: list[int] = []
    vs: list[int] = []
    speeds: list[float] = []
    local_flags: list[bool] = []
    for r in range(p.rows):
        row_speed = _edge_speed(p, r)
        for c in range(p.cols - 1):
            us.append(vid(r, c))
            vs.append(vid(r, c + 1))
            speeds.append(row_speed)
            local_flags.append(row_speed == p.local_speed)
    for c in range(p.cols):
        col_speed = _edge_speed(p, c)
        for r in range(p.rows - 1):
            us.append(vid(r, c))
            vs.append(vid(r + 1, c))
            speeds.append(col_speed)
            local_flags.append(col_speed == p.local_speed)

    us_a = np.asarray(us, dtype=np.int64)
    vs_a = np.asarray(vs, dtype=np.int64)
    speeds_a = np.asarray(speeds)
    local_a = np.asarray(local_flags)
    n_edges = us_a.size

    # Geometric length: jittered grid spacing.  Jitter breaks the exact
    # ties a perfect lattice produces, which would make shortest paths
    # degenerate and CH orders unstable.
    dist_m = p.cell_meters * rng.uniform(0.7, 1.3, size=n_edges)

    # Mark local edges for deletion, then undo any deletion that would
    # disconnect the network (union-find over the kept skeleton).
    delete = local_a & (rng.random(n_edges) < p.removal_prob)
    uf = _UnionFind(n)
    for i in np.flatnonzero(~delete):
        uf.union(int(us_a[i]), int(vs_a[i]))
    for i in np.flatnonzero(delete):
        a, b = int(us_a[i]), int(vs_a[i])
        if uf.find(a) != uf.find(b):
            delete[i] = False
            uf.union(a, b)
    keep = ~delete
    us_a, vs_a, speeds_a, dist_m = us_a[keep], vs_a[keep], speeds_a[keep], dist_m[keep]

    if p.metric == "time":
        # deciseconds; minimum 1 to keep lengths strictly positive.
        lengths = np.maximum(1, np.rint(dist_m / (speeds_a / 3.6) * 10)).astype(
            np.int64
        )
    else:
        lengths = np.maximum(1, np.rint(dist_m)).astype(np.int64)

    tails = np.concatenate([us_a, vs_a])
    heads = np.concatenate([vs_a, us_a])
    lens = np.concatenate([lengths, lengths])
    return StaticGraph(n, tails, heads, lens)


def road_network_coordinates(params: RoadNetworkParams | None = None) -> np.ndarray:
    """Planar coordinates (meters) for :func:`road_network`'s vertices.

    Vertex ``r * cols + c`` sits near ``(c, r) * cell_meters`` with a
    deterministic jitter.  Useful for DIMACS ``.co`` export and
    geometry-aware partition seeds.  If the graph is later permuted,
    apply the same permutation: ``coords[invert_permutation(new_id)]``
    reorders rows to the new IDs.
    """
    p = params or RoadNetworkParams()
    rng = np.random.default_rng(p.seed + 0x5EED)
    r, c = np.divmod(np.arange(p.rows * p.cols), p.cols)
    coords = np.stack([c, r], axis=1) * p.cell_meters
    jitter = rng.uniform(-0.25, 0.25, size=coords.shape) * p.cell_meters
    return np.rint(coords + jitter).astype(np.int64)


def europe_like(scale: int = 64, metric: str = "time", seed: int = 0) -> StaticGraph:
    """A Europe-like instance: dense local grid, strong highway tier.

    ``scale`` is the grid side; the DIMACS Europe graph corresponds to
    scale ≈ 4200 (18M vertices), far beyond pure Python — benchmarks use
    64–512.
    """
    return road_network(
        RoadNetworkParams(
            rows=scale,
            cols=scale,
            arterial_every=8,
            highway_every=32,
            metric=metric,
            seed=seed,
        )
    )


def usa_like(scale: int = 64, metric: str = "time", seed: int = 1) -> StaticGraph:
    """A USA-like instance: wider aspect ratio, sparser arterials.

    Mirrors the paper's observation that USA (TIGER) is ~1.33x larger
    than Europe with a slightly different hierarchy.
    """
    rows = scale
    cols = int(scale * 1.33) + 1
    return road_network(
        RoadNetworkParams(
            rows=rows,
            cols=cols,
            arterial_every=10,
            highway_every=40,
            metric=metric,
            seed=seed,
        )
    )


def grid_graph(rows: int, cols: int, length: int = 1) -> StaticGraph:
    """Plain bidirected grid with uniform arc length (test fixture)."""
    b = GraphBuilder(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                b.add_edge(v, v + 1, length)
            if r + 1 < rows:
                b.add_edge(v, v + cols, length)
    return b.build()


def random_graph(
    n: int,
    m: int,
    max_len: int = 100,
    seed: int | None = None,
    *,
    connected: bool = False,
) -> StaticGraph:
    """Uniform random directed multigraph with ``m`` arcs.

    With ``connected=True`` a random spanning structure (a cycle through
    a random vertex order, bidirected) is added first so every vertex is
    reachable from every other; ``m`` then counts only the extra random
    arcs.
    """
    rng = np.random.default_rng(seed)
    tails_parts = []
    heads_parts = []
    lens_parts = []
    if connected and n > 1:
        order = rng.permutation(n)
        nxt = np.roll(order, -1)
        tails_parts += [order, nxt]
        heads_parts += [nxt, order]
        ring_lens = rng.integers(1, max_len + 1, size=n)
        lens_parts += [ring_lens, ring_lens]
    if m > 0:
        tails_parts.append(rng.integers(0, n, size=m))
        heads_parts.append(rng.integers(0, n, size=m))
        lens_parts.append(rng.integers(0, max_len + 1, size=m))
    if not tails_parts:
        return StaticGraph(n, [], [], [])
    return StaticGraph(
        n,
        np.concatenate(tails_parts),
        np.concatenate(heads_parts),
        np.concatenate(lens_parts),
    )


def path_graph(n: int, length: int = 1) -> StaticGraph:
    """Bidirected path 0 - 1 - ... - (n-1)."""
    b = GraphBuilder(n)
    for v in range(n - 1):
        b.add_edge(v, v + 1, length)
    return b.build()


def cycle_graph(n: int, length: int = 1) -> StaticGraph:
    """Bidirected cycle on ``n`` vertices."""
    b = GraphBuilder(n)
    for v in range(n):
        b.add_edge(v, (v + 1) % n, length)
    return b.build()


def star_graph(n: int, length: int = 1) -> StaticGraph:
    """Vertex 0 connected to all others by bidirected edges."""
    b = GraphBuilder(n)
    for v in range(1, n):
        b.add_edge(0, v, length)
    return b.build()


def complete_graph(n: int, length: int = 1) -> StaticGraph:
    """All ordered pairs as arcs with uniform length."""
    b = GraphBuilder(n)
    for u in range(n):
        for v in range(n):
            if u != v:
                b.add_arc(u, v, length)
    return b.build()
