"""Graph substrate: CSR storage, builders, layouts, generators, I/O."""

from .analysis import (
    hitting_set_profile,
    long_path_hitting_set,
    sample_shortest_paths,
)
from .builder import GraphBuilder
from .csr import INF, StaticGraph
from .dynamic import DynamicAdjacency
from .dimacs import read_co, read_gr, write_co, write_gr
from .generators import (
    RoadNetworkParams,
    complete_graph,
    cycle_graph,
    europe_like,
    grid_graph,
    path_graph,
    random_graph,
    road_network,
    road_network_coordinates,
    star_graph,
    usa_like,
)
from .serialize import (
    ArtifactFormatError,
    load_graph,
    load_hierarchy,
    load_metric,
    load_topology,
    save_graph,
    save_hierarchy,
    save_metric,
    save_topology,
)
from .reorder import (
    compose_permutations,
    dfs_order,
    identity_order,
    invert_permutation,
    level_order,
    random_order,
)
from .validation import (
    check_graph,
    connected_components,
    is_strongly_connected,
    largest_strongly_connected_component,
)

__all__ = [
    "INF",
    "StaticGraph",
    "DynamicAdjacency",
    "GraphBuilder",
    "read_gr",
    "write_gr",
    "read_co",
    "write_co",
    "RoadNetworkParams",
    "road_network",
    "road_network_coordinates",
    "europe_like",
    "usa_like",
    "grid_graph",
    "random_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "identity_order",
    "random_order",
    "dfs_order",
    "level_order",
    "invert_permutation",
    "compose_permutations",
    "check_graph",
    "is_strongly_connected",
    "connected_components",
    "largest_strongly_connected_component",
    "hitting_set_profile",
    "long_path_hitting_set",
    "sample_shortest_paths",
    "save_graph",
    "ArtifactFormatError",
    "load_graph",
    "save_hierarchy",
    "save_topology",
    "load_topology",
    "save_metric",
    "load_metric",
    "load_hierarchy",
]
