"""Cache-efficient static graph representation.

This module implements the array-pair representation described in
Section IV-A of the PHAST paper: a directed graph is stored as

* ``first`` — an array of length ``n + 1`` indexed by vertex ID;
  ``first[v]`` is the position in ``arc_head``/``arc_len`` of the first
  arc incident to ``v`` (outgoing for a forward graph, incoming for a
  reverse graph).  ``first[n]`` is a sentinel equal to ``m`` so that the
  arcs of ``v`` always occupy ``arc_head[first[v]:first[v + 1]]``.
* ``arc_head`` — for each arc, the ID of its *other* endpoint (the head
  for a forward graph, the tail for a reverse graph).
* ``arc_len`` — the (non-negative, integral) length of each arc.

All three arrays are contiguous NumPy arrays, which makes a sweep over
the full arc list a purely sequential memory access pattern — the
property PHAST's linear sweep exploits.

Lengths are 64-bit integers; the paper uses 32-bit labels but Python has
no advantage in narrower types and 64 bits removes any overflow concern
when summing path lengths.  Infinite distances are represented by
:data:`INF`, chosen so that ``INF + max_len`` cannot overflow.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["INF", "StaticGraph", "arcs_sorted_by_tail"]

#: Sentinel distance for "unreached".  Large enough to dominate any real
#: path length, small enough that ``INF + arc length`` never overflows
#: a signed 64-bit integer.
INF: int = np.int64(2**62)


def arcs_sorted_by_tail(
    n: int,
    tails: np.ndarray,
    heads: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(first, arc_head, arc_len)`` CSR arrays for the given arcs.

    Arcs are grouped by tail; the relative order of arcs sharing a tail
    is preserved (stable sort), matching the "sorted by tail ID" layout
    of the paper's ``arclist``.
    """
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if not (tails.shape == heads.shape == lengths.shape):
        raise ValueError("tails, heads and lengths must have equal shapes")
    order = np.argsort(tails, kind="stable")
    first = np.zeros(n + 1, dtype=np.int64)
    np.add.at(first, tails + 1, 1)
    np.cumsum(first, out=first)
    return first, heads[order], lengths[order]


class StaticGraph:
    """An immutable directed graph in CSR (``first``/``arclist``) form.

    Parameters
    ----------
    n:
        Number of vertices; vertices are the integers ``0 .. n - 1``.
    tails, heads, lengths:
        Parallel arrays describing the arcs.  Arc lengths must be
        non-negative integers.

    Notes
    -----
    The class stores *outgoing* adjacency.  Use :meth:`reverse` to build
    the graph with incoming adjacency (``arc_head`` then holds tail
    IDs), which is what PHAST's downward sweep scans.
    """

    __slots__ = ("n", "m", "first", "arc_head", "arc_len", "_arc_tails")

    def __init__(
        self,
        n: int,
        tails: Sequence[int] | np.ndarray,
        heads: Sequence[int] | np.ndarray,
        lengths: Sequence[int] | np.ndarray,
    ) -> None:
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        if tails.size:
            if tails.min() < 0 or tails.max() >= n:
                raise ValueError("arc tail out of range")
            if heads.min() < 0 or heads.max() >= n:
                raise ValueError("arc head out of range")
            if lengths.min() < 0:
                raise ValueError("arc lengths must be non-negative")
        self.n: int = int(n)
        self.m: int = int(tails.size)
        self.first, self.arc_head, self.arc_len = arcs_sorted_by_tail(
            n, tails, heads, lengths
        )

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_csr(
        cls, first: np.ndarray, arc_head: np.ndarray, arc_len: np.ndarray
    ) -> "StaticGraph":
        """Wrap already-built CSR arrays without copying or validation."""
        g = cls.__new__(cls)
        g.n = int(first.size - 1)
        g.m = int(arc_head.size)
        g.first = np.ascontiguousarray(first, dtype=np.int64)
        g.arc_head = np.ascontiguousarray(arc_head, dtype=np.int64)
        g.arc_len = np.ascontiguousarray(arc_len, dtype=np.int64)
        return g

    @classmethod
    def from_arcs(
        cls, n: int, arcs: Iterable[tuple[int, int, int]]
    ) -> "StaticGraph":
        """Build from an iterable of ``(tail, head, length)`` triples."""
        arcs = list(arcs)
        if not arcs:
            return cls(n, [], [], [])
        t, h, l = zip(*arcs)
        return cls(n, t, h, l)

    # -- queries ----------------------------------------------------------

    def out_degree(self, v: int) -> int:
        """Number of arcs stored at vertex ``v``."""
        return int(self.first[v + 1] - self.first[v])

    def degrees(self) -> np.ndarray:
        """Vector of stored arc counts for every vertex."""
        return np.diff(self.first)

    def neighbors(self, v: int) -> np.ndarray:
        """IDs at the far end of the arcs stored at ``v`` (a view)."""
        return self.arc_head[self.first[v] : self.first[v + 1]]

    def arc_lengths(self, v: int) -> np.ndarray:
        """Lengths of the arcs stored at ``v`` (a view)."""
        return self.arc_len[self.first[v] : self.first[v + 1]]

    def out_arcs(self, v: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(head, length)`` pairs for the arcs stored at ``v``."""
        lo, hi = self.first[v], self.first[v + 1]
        for i in range(lo, hi):
            yield int(self.arc_head[i]), int(self.arc_len[i])

    def arc_tails(self) -> np.ndarray:
        """Expand the CSR structure back into a per-arc tail array.

        Memoized: the O(m) ``np.repeat`` expansion is computed once and
        the (read-only) array reused — tree-per-source workloads call
        this once per tree otherwise.
        """
        try:
            return self._arc_tails
        except AttributeError:
            pass
        tails = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.first))
        tails.setflags(write=False)
        self._arc_tails = tails
        return tails

    def arcs(self) -> Iterator[tuple[int, int, int]]:
        """Iterate all arcs as ``(tail, head, length)`` triples."""
        tails = self.arc_tails()
        for t, h, l in zip(tails, self.arc_head, self.arc_len):
            yield int(t), int(h), int(l)

    def has_arc(self, u: int, v: int) -> bool:
        """True if an arc from ``u``'s adjacency to ``v`` exists."""
        return bool(np.any(self.neighbors(u) == v))

    def arc_length(self, u: int, v: int) -> int:
        """Length of the shortest stored arc ``u -> v``.

        Raises ``KeyError`` if no such arc exists.  Parallel arcs are
        allowed; the minimum length is returned.
        """
        mask = self.neighbors(u) == v
        if not mask.any():
            raise KeyError(f"no arc {u} -> {v}")
        return int(self.arc_lengths(u)[mask].min())

    # -- transforms -------------------------------------------------------

    def reverse(self) -> "StaticGraph":
        """The same arcs with direction flipped (heads become tails)."""
        return StaticGraph(self.n, self.arc_head, self.arc_tails(), self.arc_len)

    def permute(self, new_id: np.ndarray) -> "StaticGraph":
        """Relabel vertices: vertex ``v`` becomes ``new_id[v]``.

        ``new_id`` must be a permutation of ``0 .. n - 1``.  The arc set
        is unchanged up to relabeling; the CSR arrays are rebuilt in the
        new ID order, which is how the paper's reorderings change the
        physical memory layout.
        """
        new_id = np.asarray(new_id, dtype=np.int64)
        if new_id.shape != (self.n,):
            raise ValueError("permutation has wrong size")
        check = np.zeros(self.n, dtype=bool)
        check[new_id] = True
        if not check.all():
            raise ValueError("new_id is not a permutation")
        tails = new_id[self.arc_tails()]
        heads = new_id[self.arc_head]
        return StaticGraph(self.n, tails, heads, self.arc_len)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StaticGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and bool(np.array_equal(self.first, other.first))
            and bool(np.array_equal(self.arc_head, other.arc_head))
            and bool(np.array_equal(self.arc_len, other.arc_len))
        )

    def __hash__(self) -> int:  # graphs are mutable-array holders
        raise TypeError("StaticGraph is not hashable")

    def __repr__(self) -> str:
        return f"StaticGraph(n={self.n}, m={self.m})"

    @property
    def nbytes(self) -> int:
        """Total bytes held by the CSR arrays (used by memory reports)."""
        return self.first.nbytes + self.arc_head.nbytes + self.arc_len.nbytes
