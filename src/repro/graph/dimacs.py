"""DIMACS shortest-path challenge file formats.

The paper's inputs are distributed in the 9th DIMACS Implementation
Challenge format.  The graph file (``.gr``) is a line-oriented text
format::

    c <comment>
    p sp <n> <m>
    a <tail> <head> <length>     (1-based vertex IDs)

Coordinate files (``.co``) carry one ``v <id> <x> <y>`` line per vertex.
This module reads and writes both so the reproduction can run on the
real DIMACS instances when they are available.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from .csr import StaticGraph

__all__ = ["read_gr", "write_gr", "read_co", "write_co"]


def _open(path_or_file, mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_gr(path_or_file: str | Path | TextIO) -> StaticGraph:
    """Parse a DIMACS ``.gr`` file into a :class:`StaticGraph`.

    Vertex IDs are converted from the format's 1-based convention to
    0-based.  Raises ``ValueError`` on malformed input or if the arc
    count disagrees with the ``p`` line.
    """
    f, should_close = _open(path_or_file, "r")
    try:
        n = m = None
        tails: list[int] = []
        heads: list[int] = []
        lens: list[int] = []
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise ValueError(f"line {lineno}: bad problem line {line!r}")
                n, m = int(parts[2]), int(parts[3])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: bad arc line {line!r}")
                if n is None:
                    raise ValueError(f"line {lineno}: arc before problem line")
                tails.append(int(parts[1]) - 1)
                heads.append(int(parts[2]) - 1)
                lens.append(int(parts[3]))
            else:
                raise ValueError(f"line {lineno}: unknown record {parts[0]!r}")
        if n is None:
            raise ValueError("missing problem line")
        if m is not None and m != len(tails):
            raise ValueError(f"problem line declares {m} arcs, found {len(tails)}")
        return StaticGraph(n, tails, heads, lens)
    finally:
        if should_close:
            f.close()


def write_gr(
    graph: StaticGraph,
    path_or_file: str | Path | TextIO,
    comment: str | None = None,
) -> None:
    """Serialize a graph in DIMACS ``.gr`` format (1-based IDs)."""
    f, should_close = _open(path_or_file, "w")
    try:
        if comment:
            for line in comment.splitlines():
                f.write(f"c {line}\n")
        f.write(f"p sp {graph.n} {graph.m}\n")
        tails = graph.arc_tails()
        buf = io.StringIO()
        for t, h, l in zip(tails, graph.arc_head, graph.arc_len):
            buf.write(f"a {t + 1} {h + 1} {l}\n")
        f.write(buf.getvalue())
    finally:
        if should_close:
            f.close()


def read_co(path_or_file: str | Path | TextIO) -> np.ndarray:
    """Parse a DIMACS ``.co`` coordinate file into an ``(n, 2)`` array."""
    f, should_close = _open(path_or_file, "r")
    try:
        n = None
        coords = None
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                # "p aux sp co <n>"
                n = int(parts[-1])
                coords = np.zeros((n, 2), dtype=np.int64)
            elif parts[0] == "v":
                if coords is None:
                    raise ValueError(f"line {lineno}: vertex before problem line")
                vid = int(parts[1]) - 1
                coords[vid, 0] = int(parts[2])
                coords[vid, 1] = int(parts[3])
            else:
                raise ValueError(f"line {lineno}: unknown record {parts[0]!r}")
        if coords is None:
            raise ValueError("missing problem line")
        return coords
    finally:
        if should_close:
            f.close()


def write_co(coords: np.ndarray, path_or_file: str | Path | TextIO) -> None:
    """Serialize vertex coordinates in DIMACS ``.co`` format."""
    coords = np.asarray(coords)
    f, should_close = _open(path_or_file, "w")
    try:
        f.write(f"p aux sp co {coords.shape[0]}\n")
        for i, (x, y) in enumerate(coords, start=1):
            f.write(f"v {i} {int(x)} {int(y)}\n")
    finally:
        if should_close:
            f.close()
