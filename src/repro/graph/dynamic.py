"""Dynamic adjacency for batched graph surgery.

CH preprocessing repeatedly removes vertices and inserts shortcut arcs.
The lazy sequential contractor keeps a dict-of-dicts for this; the
batched contractor (:mod:`repro.ch.batched`) needs the same operations
as *bulk* array transforms, so witness searches can gather thousands of
adjacency rows with NumPy instead of one Python dict lookup at a time.

:class:`DynamicAdjacency` stores the live graph as

* a **base** CSR snapshot (forward and reverse), rebuilt for locality
  every few rounds — the cache-aware compaction of Luxen &
  Schieferdecker's parallel CH preprocessing; and
* a small **overlay** CSR holding the arcs inserted since the last
  rebuild.

Removals are lazy: retired (contracted) vertices are masked out at
gather time, and their arcs are physically dropped at the next rebuild.
Parallel arcs may coexist temporarily (a shortcut may undercut an
existing arc); every gather therefore deduplicates ``(owner,
neighbour)`` pairs keeping the minimum length, and rebuilds dedup the
stored arrays the same way.
"""

from __future__ import annotations

import time

import numpy as np

from ..utils.segments import gather_ranges
from .csr import StaticGraph

__all__ = ["DynamicAdjacency"]


def _build_half(
    n: int, tails: np.ndarray, heads: np.ndarray, lens: np.ndarray, hops: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """CSR arrays ``(first, heads, lens, hops)`` grouped by tail."""
    order = np.argsort(tails, kind="stable")
    first = np.zeros(n + 1, dtype=np.int64)
    np.add.at(first, tails + 1, 1)
    np.cumsum(first, out=first)
    return first, heads[order], lens[order], hops[order]


def _dedup_min(
    tails: np.ndarray, heads: np.ndarray, lens: np.ndarray, hops: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Collapse parallel arcs to the shortest (ties: fewest hops)."""
    if not tails.size:
        return tails, heads, lens, hops
    order = np.lexsort((hops, lens, heads, tails))
    tails, heads, lens, hops = (
        tails[order], heads[order], lens[order], hops[order]
    )
    keep = np.empty(tails.size, dtype=bool)
    keep[0] = True
    keep[1:] = (tails[1:] != tails[:-1]) | (heads[1:] != heads[:-1])
    return tails[keep], heads[keep], lens[keep], hops[keep]


class _Half:
    """One direction of adjacency: base CSR + overlay CSR."""

    __slots__ = ("n", "first", "heads", "lens", "hops",
                 "o_first", "o_heads", "o_lens", "o_hops")

    def __init__(self, n: int, tails, heads, lens, hops) -> None:
        self.n = n
        self.first, self.heads, self.lens, self.hops = _build_half(
            n, tails, heads, lens, hops
        )
        self._clear_overlay()

    @classmethod
    def from_csr(cls, n: int, first, heads, lens, hops) -> "_Half":
        """Wrap already-grouped CSR arrays without copying or sorting."""
        self = cls.__new__(cls)
        self.n = n
        self.first, self.heads, self.lens, self.hops = first, heads, lens, hops
        self._clear_overlay()
        return self

    def _clear_overlay(self) -> None:
        self.o_first = np.zeros(self.n + 1, dtype=np.int64)
        self.o_heads = np.zeros(0, dtype=np.int64)
        self.o_lens = np.zeros(0, dtype=np.int64)
        self.o_hops = np.zeros(0, dtype=np.int64)

    def set_overlay(self, tails, heads, lens, hops) -> None:
        self.o_first, self.o_heads, self.o_lens, self.o_hops = _build_half(
            self.n, tails, heads, lens, hops
        )

    def gather(
        self, verts: np.ndarray, retired: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Arcs of ``verts`` with live far endpoints.

        Returns ``(owner, other, length, hops)`` where ``owner`` indexes
        into ``verts``.  Parallel arcs are *not* deduplicated here.
        """
        idx_b, own_b = gather_ranges(self.first, verts)
        idx_o, own_o = gather_ranges(self.o_first, verts)
        owner = np.concatenate([own_b, own_o])
        other = np.concatenate([self.heads[idx_b], self.o_heads[idx_o]])
        length = np.concatenate([self.lens[idx_b], self.o_lens[idx_o]])
        hops = np.concatenate([self.hops[idx_b], self.o_hops[idx_o]])
        live = ~retired[other]
        return owner[live], other[live], length[live], hops[live]

    def base_arcs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Every base arc as ``(tail, head, length, hops)`` (may
        include retired endpoints and parallels; overlay excluded)."""
        tails = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.first)
        )
        return tails, self.heads, self.lens, self.hops


class DynamicAdjacency:
    """Bulk-editable directed graph for batched contraction.

    Parameters
    ----------
    graph:
        Initial arcs (self loops dropped, parallels collapsed to the
        shortest — only shortest paths matter downstream).
    rebuild_every:
        Compact the base CSR (dropping retired arcs and folding the
        overlay in) every this many :meth:`end_round` calls.  Rebuilds
        also trigger early when the overlay outgrows a quarter of the
        base, keeping gathers cache-friendly.
    """

    def __init__(self, graph: StaticGraph, *, rebuild_every: int = 4) -> None:
        self.n = graph.n
        tails = graph.arc_tails()
        heads = graph.arc_head.astype(np.int64)
        lens = graph.arc_len.astype(np.int64)
        proper = tails != heads
        tails, heads, lens = tails[proper], heads[proper], lens[proper]
        hops = np.ones(tails.size, dtype=np.int64)
        tails, heads, lens, hops = _dedup_min(tails, heads, lens, hops)
        self.fwd = _Half(self.n, tails, heads, lens, hops)
        self.bwd = _Half(self.n, heads, tails, lens, hops)
        self.retired = np.zeros(self.n, dtype=bool)
        self.live_vertices = self.n
        self.live_arcs = int(tails.size)
        self.rebuild_every = max(1, int(rebuild_every))
        self._pending: list[tuple[np.ndarray, ...]] = []
        self._overlay_coo: tuple[np.ndarray, ...] | None = None
        self._rounds_since_rebuild = 0
        self.rebuilds = 0
        self.rebuild_seconds = 0.0
        #: Bumped whenever the base CSR changes (i.e. on every rebuild).
        #: Snapshot consumers republish base arrays only on a new epoch.
        self.epoch = 0

    # -- snapshots ---------------------------------------------------------

    def base_arrays(self) -> dict[str, np.ndarray]:
        """The base CSR of both halves as a flat name → array mapping.

        Valid for the current :attr:`epoch` only: a rebuild replaces
        every array.  Publishing these (e.g. into shared memory) plus
        :meth:`overlay_arrays` and :attr:`retired` fully describes the
        live graph to a read-only replica.
        """
        return {
            "fwd:first": self.fwd.first,
            "fwd:heads": self.fwd.heads,
            "fwd:lens": self.fwd.lens,
            "fwd:hops": self.fwd.hops,
            "bwd:first": self.bwd.first,
            "bwd:heads": self.bwd.heads,
            "bwd:lens": self.bwd.lens,
            "bwd:hops": self.bwd.hops,
        }

    def overlay_arrays(self) -> dict[str, np.ndarray]:
        """Arcs inserted since the last rebuild, as COO arrays."""
        if self._overlay_coo is None:
            empty = np.zeros(0, dtype=np.int64)
            return {
                "ov:tails": empty, "ov:heads": empty,
                "ov:lens": empty, "ov:hops": empty,
            }
        t, h, l, hp = self._overlay_coo
        return {"ov:tails": t, "ov:heads": h, "ov:lens": l, "ov:hops": hp}

    @classmethod
    def from_snapshot(
        cls,
        n: int,
        base: "dict[str, np.ndarray]",
        overlay: "dict[str, np.ndarray]",
        retired: np.ndarray,
    ) -> "DynamicAdjacency":
        """Read-only replica over published snapshot arrays (zero-copy).

        ``base``/``overlay`` use the key naming of :meth:`base_arrays`
        and :meth:`overlay_arrays`.  Gathers on the replica are
        bit-identical to the publisher's: the base arrays are shared
        verbatim and the overlay COO is regrouped with the same stable
        sort :meth:`end_round` uses.  The replica must never be
        mutated (``add_arcs``/``retire``/``end_round`` would diverge
        from the publisher).
        """
        self = cls.__new__(cls)
        self.n = n
        self.fwd = _Half.from_csr(
            n, base["fwd:first"], base["fwd:heads"],
            base["fwd:lens"], base["fwd:hops"],
        )
        self.bwd = _Half.from_csr(
            n, base["bwd:first"], base["bwd:heads"],
            base["bwd:lens"], base["bwd:hops"],
        )
        t, h, l, hp = (
            overlay["ov:tails"], overlay["ov:heads"],
            overlay["ov:lens"], overlay["ov:hops"],
        )
        if t.size:
            self.fwd.set_overlay(t, h, l, hp)
            self.bwd.set_overlay(h, t, l, hp)
        self.retired = retired
        self.live_vertices = int(n - int(retired.sum()))
        self.live_arcs = int(base["fwd:heads"].size + t.size)
        self.rebuild_every = 1
        self._pending = []
        self._overlay_coo = None
        self._rounds_since_rebuild = 0
        self.rebuilds = 0
        self.rebuild_seconds = 0.0
        self.epoch = 0
        return self

    # -- reads -------------------------------------------------------------

    def out_arcs_of(self, verts: np.ndarray):
        """Live out-arcs of ``verts`` as ``(owner, head, len, hops)``,
        parallels collapsed to the shortest per ``(owner, head)``."""
        return self._dedup_gather(*self.fwd.gather(verts, self.retired))

    def in_arcs_of(self, verts: np.ndarray):
        """Live in-arcs of ``verts`` as ``(owner, tail, len, hops)``."""
        return self._dedup_gather(*self.bwd.gather(verts, self.retired))

    def raw_out_arcs_of(self, verts: np.ndarray):
        """Like :meth:`out_arcs_of` but without parallel-arc dedup —
        the relaxation inner loop takes minima anyway."""
        return self.fwd.gather(verts, self.retired)

    @staticmethod
    def _dedup_gather(owner, other, length, hops):
        if not owner.size:
            return owner, other, length, hops
        order = np.lexsort((hops, length, other, owner))
        owner, other, length, hops = (
            owner[order], other[order], length[order], hops[order]
        )
        keep = np.empty(owner.size, dtype=bool)
        keep[0] = True
        keep[1:] = (owner[1:] != owner[:-1]) | (other[1:] != other[:-1])
        return owner[keep], other[keep], length[keep], hops[keep]

    def live_arc_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All arcs between two live vertices as ``(tails, heads)``.

        Used for the independent-set selection; parallels may repeat
        (harmless for a neighbour relation).
        """
        t_b = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.fwd.first)
        )
        h_b = self.fwd.heads
        t_o = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.fwd.o_first)
        )
        h_o = self.fwd.o_heads
        tails = np.concatenate([t_b, t_o])
        heads = np.concatenate([h_b, h_o])
        live = ~self.retired[tails] & ~self.retired[heads]
        return tails[live], heads[live]

    @property
    def avg_degree(self) -> float:
        """Live out-arcs per live vertex (the hop-schedule input)."""
        if self.live_vertices == 0:
            return 0.0
        return self.live_arcs / self.live_vertices

    # -- writes ------------------------------------------------------------

    def add_arcs(self, tails, heads, lens, hops) -> None:
        """Buffer arc insertions; applied by :meth:`end_round`."""
        tails = np.asarray(tails, dtype=np.int64)
        if not tails.size:
            return
        self._pending.append((
            tails,
            np.asarray(heads, dtype=np.int64),
            np.asarray(lens, dtype=np.int64),
            np.asarray(hops, dtype=np.int64),
        ))

    def retire(self, verts: np.ndarray, removed_arcs: int) -> None:
        """Mark ``verts`` contracted (their arcs die lazily).

        ``removed_arcs`` is the number of live arcs incident to
        ``verts`` (the caller has them gathered already); it keeps the
        :attr:`live_arcs` counter — and with it the hop schedule —
        current between rebuilds.
        """
        self.retired[verts] = True
        self.live_vertices -= int(np.size(verts))
        self.live_arcs -= int(removed_arcs)

    def end_round(self) -> None:
        """Fold buffered insertions in; rebuild the base when due."""
        self._rounds_since_rebuild += 1
        if self._pending:
            new = tuple(
                np.concatenate([p[i] for p in self._pending])
                for i in range(4)
            )
            self._pending.clear()
            self.live_arcs += int(new[0].size)
            if self._overlay_coo is None:
                self._overlay_coo = new
            else:
                self._overlay_coo = tuple(
                    np.concatenate([a, b])
                    for a, b in zip(self._overlay_coo, new)
                )
        overlay_size = (
            self._overlay_coo[0].size if self._overlay_coo is not None else 0
        )
        base_size = self.fwd.heads.size
        due = self._rounds_since_rebuild >= self.rebuild_every
        bulky = overlay_size > max(1024, base_size // 4)
        if overlay_size and (due or bulky):
            self._rebuild()
        elif self._overlay_coo is not None:
            t, h, l, hp = self._overlay_coo
            self.fwd.set_overlay(t, h, l, hp)
            self.bwd.set_overlay(h, t, l, hp)
        elif due:
            # No insertions, but retired arcs accumulate: compact if a
            # sizable share of the base is dead.
            dead = self.retired[self.fwd.heads].sum()
            if dead > base_size // 4:
                self._rebuild()

    def _rebuild(self) -> None:
        """Compact base + overlay into a fresh, dedup'd, live-only CSR."""
        start = time.perf_counter()
        tails, heads, lens, hops = self.fwd.base_arcs()
        if self._overlay_coo is not None:
            o_t, o_h, o_l, o_hp = self._overlay_coo
            tails = np.concatenate([tails, o_t])
            heads = np.concatenate([heads, o_h])
            lens = np.concatenate([lens, o_l])
            hops = np.concatenate([hops, o_hp])
        live = ~self.retired[tails] & ~self.retired[heads]
        tails, heads, lens, hops = (
            tails[live], heads[live], lens[live], hops[live]
        )
        tails, heads, lens, hops = _dedup_min(tails, heads, lens, hops)
        self.fwd = _Half(self.n, tails, heads, lens, hops)
        self.bwd = _Half(self.n, heads, tails, lens, hops)
        self._overlay_coo = None
        self._rounds_since_rebuild = 0
        self.live_arcs = int(tails.size)
        self.rebuilds += 1
        self.epoch += 1
        self.rebuild_seconds += time.perf_counter() - start
