"""Structural analysis: why PHAST works on road networks.

The paper's theoretical footing (Section II-B) is *highway dimension*
[9]: road networks admit a very small set of "important" vertices
hitting all long shortest paths, which is what makes CH hierarchies
shallow and PHAST sweeps cheap.  This module measures that property
directly:

* :func:`long_path_hitting_set` greedily covers a sample of long
  shortest paths with few vertices;
* :func:`hitting_set_profile` sweeps the length threshold, tracing how
  the cover shrinks as paths get longer — flat-and-tiny profiles are
  the low-highway-dimension signature, and the generators are tested
  against it (versus random graphs, which need large covers).

The measured covers also validate CH itself: the greedy hitters should
sit near the top of the contraction order.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import INF, StaticGraph

__all__ = ["sample_shortest_paths", "long_path_hitting_set", "hitting_set_profile"]


def sample_shortest_paths(
    graph: StaticGraph,
    *,
    min_length: int,
    num_sources: int = 32,
    seed: int = 0,
) -> list[np.ndarray]:
    """Sample shortest paths of length greater than ``min_length``.

    Grows exact trees from random sources (plain Dijkstra — analysis
    is offline) and extracts, per source, the paths to a spread of
    targets past the length threshold.  Returns vertex arrays, one per
    path, *excluding* the endpoints: highway dimension counts interior
    hitters, and endpoints would trivially hit everything.
    """
    from ..sssp.dijkstra import dijkstra

    rng = np.random.default_rng(seed)
    n = graph.n
    sources = rng.choice(n, size=min(num_sources, n), replace=False)
    paths: list[np.ndarray] = []
    for s in sources:
        tree = dijkstra(graph, int(s))
        eligible = np.flatnonzero((tree.dist > min_length) & (tree.dist < INF))
        if eligible.size == 0:
            continue
        targets = rng.choice(eligible, size=min(8, eligible.size), replace=False)
        for t in targets:
            path = tree.path_to(int(t))
            interior = np.asarray(path[1:-1], dtype=np.int64)
            if interior.size:
                paths.append(interior)
    return paths


def long_path_hitting_set(
    graph: StaticGraph,
    *,
    min_length: int,
    num_sources: int = 32,
    seed: int = 0,
) -> np.ndarray:
    """Greedy hitting set for sampled long shortest paths.

    Returns the chosen vertices in selection order (most-covering
    first).  Greedy gives the usual ``ln(m)`` approximation of the
    optimal cover — ample for profiling the *scale* of the cover.
    """
    paths = sample_shortest_paths(
        graph, min_length=min_length, num_sources=num_sources, seed=seed
    )
    if not paths:
        return np.zeros(0, dtype=np.int64)
    # vertex -> indices of paths it lies on
    containing: dict[int, set[int]] = {}
    for i, path in enumerate(paths):
        for v in path:
            containing.setdefault(int(v), set()).add(i)
    uncovered = set(range(len(paths)))
    chosen: list[int] = []
    while uncovered:
        best_v = max(containing, key=lambda v: len(containing[v] & uncovered))
        hit = containing[best_v] & uncovered
        if not hit:  # paths with no remaining interior candidates
            break
        chosen.append(best_v)
        uncovered -= hit
        del containing[best_v]
    return np.asarray(chosen, dtype=np.int64)


def hitting_set_profile(
    graph: StaticGraph,
    thresholds,
    *,
    num_sources: int = 32,
    seed: int = 0,
) -> list[tuple[int, int, int]]:
    """``(threshold, paths sampled, cover size)`` per length threshold.

    Low-highway-dimension graphs show covers that stay small — and
    shrink — as the threshold grows; expander-like graphs need covers
    comparable to the path count.
    """
    out = []
    for thr in thresholds:
        paths = sample_shortest_paths(
            graph, min_length=int(thr), num_sources=num_sources, seed=seed
        )
        cover = long_path_hitting_set(
            graph, min_length=int(thr), num_sources=num_sources, seed=seed
        )
        out.append((int(thr), len(paths), int(cover.size)))
    return out
