"""Vertex orderings (graph layouts).

The paper evaluates three input layouts — *random*, *input* (as
downloaded) and *DFS* — and one PHAST-specific layout that sorts
vertices by descending CH level (Section IV-A).  A layout is expressed
as a permutation array ``new_id`` with ``new_id[v]`` the new ID of
vertex ``v``; :meth:`repro.graph.csr.StaticGraph.permute` applies it.
"""

from __future__ import annotations

import numpy as np

from .csr import StaticGraph

__all__ = [
    "identity_order",
    "random_order",
    "dfs_order",
    "level_order",
    "invert_permutation",
    "compose_permutations",
]


def identity_order(n: int) -> np.ndarray:
    """The *input* layout: vertices keep their IDs."""
    return np.arange(n, dtype=np.int64)


def random_order(n: int, seed: int | None = None) -> np.ndarray:
    """The *random* layout: IDs assigned uniformly at random."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def dfs_order(
    graph: StaticGraph,
    start: int = 0,
    *,
    undirected: bool = True,
) -> np.ndarray:
    """The *DFS* layout: IDs in depth-first discovery order.

    Vertices are numbered in the order a depth-first search from
    ``start`` discovers them; the search restarts at the smallest
    undiscovered vertex until all vertices are numbered, so the result
    is a full permutation even on disconnected graphs.

    Parameters
    ----------
    undirected:
        Traverse arcs in both directions (default).  Road networks are
        strongly connected in practice, but synthetic instances may not
        be; the undirected traversal keeps neighbourhoods contiguous
        either way, which is all the layout is for.
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if not 0 <= start < n:
        raise ValueError("start vertex out of range")
    if undirected:
        fwd, rev = graph, graph.reverse()
    else:
        fwd, rev = graph, None

    new_id = np.full(n, -1, dtype=np.int64)
    counter = 0
    # Iterative DFS with an explicit stack; recursion would overflow on
    # path-like road networks.
    roots = [start] + [v for v in range(n) if v != start]
    for root in roots:
        if new_id[root] >= 0:
            continue
        stack = [root]
        while stack:
            v = stack.pop()
            if new_id[v] >= 0:
                continue
            new_id[v] = counter
            counter += 1
            nbrs = fwd.neighbors(v)
            if rev is not None:
                nbrs = np.concatenate([nbrs, rev.neighbors(v)])
            # Push in reverse so the lowest-index neighbour is explored
            # first, giving a deterministic layout.
            for w in nbrs[::-1]:
                if new_id[w] < 0:
                    stack.append(int(w))
    return new_id


def level_order(levels: np.ndarray, tie_break: np.ndarray | None = None) -> np.ndarray:
    """The PHAST layout: lower IDs for higher CH levels.

    Within one level the relative order of ``tie_break`` (typically the
    incoming DFS layout IDs) is preserved, mirroring Section IV-A's
    "within each level, we keep the DFS order".

    Parameters
    ----------
    levels:
        ``levels[v]`` is the CH level of vertex ``v``.
    tie_break:
        Secondary key; defaults to current vertex IDs.

    Returns
    -------
    ``new_id`` permutation: ``new_id[v]`` is ``v``'s position in the
    sweep (position 0 is scanned first, i.e. highest level).
    """
    levels = np.asarray(levels, dtype=np.int64)
    n = levels.size
    if tie_break is None:
        tie_break = np.arange(n, dtype=np.int64)
    else:
        tie_break = np.asarray(tie_break, dtype=np.int64)
        if tie_break.shape != levels.shape:
            raise ValueError("tie_break has wrong size")
    # lexsort: last key is primary.  Sort by (-level, tie_break).
    order = np.lexsort((tie_break, -levels))
    new_id = np.empty(n, dtype=np.int64)
    new_id[order] = np.arange(n, dtype=np.int64)
    return new_id


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Return ``inv`` with ``inv[perm[v]] == v``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def compose_permutations(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Composition ``v -> outer[inner[v]]`` as a single permutation."""
    outer = np.asarray(outer, dtype=np.int64)
    inner = np.asarray(inner, dtype=np.int64)
    if outer.size != inner.size:
        raise ValueError("permutations must have equal size")
    return outer[inner]
