"""Binary serialization for graphs and hierarchies.

CH preprocessing is the expensive step of the pipeline (minutes at
scale); production deployments compute it once and ship the artifact.
Graphs and hierarchies round-trip through NumPy ``.npz`` containers —
compact, mmap-friendly, dependency-free.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .csr import StaticGraph

__all__ = ["save_graph", "load_graph", "save_hierarchy", "load_hierarchy"]

_GRAPH_MAGIC = "repro-graph-v1"
_CH_MAGIC = "repro-ch-v1"


def save_graph(graph: StaticGraph, path: str | Path) -> None:
    """Write a :class:`StaticGraph` to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        magic=np.array(_GRAPH_MAGIC),
        first=graph.first,
        arc_head=graph.arc_head,
        arc_len=graph.arc_len,
    )


def load_graph(path: str | Path) -> StaticGraph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as data:
        if str(data.get("magic", "")) != _GRAPH_MAGIC:
            raise ValueError(f"{path}: not a repro graph file")
        return StaticGraph.from_csr(
            data["first"], data["arc_head"], data["arc_len"]
        )


def save_hierarchy(ch, path: str | Path) -> None:
    """Write a :class:`~repro.ch.ContractionHierarchy` to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        magic=np.array(_CH_MAGIC),
        rank=ch.rank,
        level=ch.level,
        up_first=ch.upward.first,
        up_head=ch.upward.arc_head,
        up_len=ch.upward.arc_len,
        up_via=ch.upward_via,
        down_first=ch.downward_rev.first,
        down_head=ch.downward_rev.arc_head,
        down_len=ch.downward_rev.arc_len,
        down_via=ch.downward_via,
        num_shortcuts=np.array(ch.num_shortcuts),
    )


def load_hierarchy(path: str | Path):
    """Read a hierarchy written by :func:`save_hierarchy`."""
    from ..ch.hierarchy import ContractionHierarchy

    with np.load(path, allow_pickle=False) as data:
        if str(data.get("magic", "")) != _CH_MAGIC:
            raise ValueError(f"{path}: not a repro hierarchy file")
        upward = StaticGraph.from_csr(
            data["up_first"], data["up_head"], data["up_len"]
        )
        downward_rev = StaticGraph.from_csr(
            data["down_first"], data["down_head"], data["down_len"]
        )
        return ContractionHierarchy(
            n=upward.n,
            rank=data["rank"],
            level=data["level"],
            upward=upward,
            upward_via=data["up_via"],
            downward_rev=downward_rev,
            downward_via=data["down_via"],
            num_shortcuts=int(data["num_shortcuts"]),
            preprocessing_stats={"loaded_from": str(path)},
        )
