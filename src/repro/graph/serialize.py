"""Binary serialization for graphs and hierarchies.

CH preprocessing is the expensive step of the pipeline (minutes at
scale); production deployments compute it once and ship the artifact.
Graphs and hierarchies round-trip through NumPy ``.npz`` containers —
compact, mmap-friendly, dependency-free.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .csr import StaticGraph

__all__ = [
    "save_graph",
    "load_graph",
    "save_hierarchy",
    "load_hierarchy",
    "save_topology",
    "load_topology",
    "save_metric",
    "load_metric",
    "ArtifactFormatError",
]

_GRAPH_MAGIC_PREFIX = "repro-graph-v"
_CH_MAGIC_PREFIX = "repro-ch-v"
_TOPO_MAGIC_PREFIX = "repro-topo-v"
_METRIC_MAGIC_PREFIX = "repro-metric-v"
_GRAPH_MAGIC = _GRAPH_MAGIC_PREFIX + "1"
_CH_MAGIC = _CH_MAGIC_PREFIX + "1"
_TOPO_MAGIC = _TOPO_MAGIC_PREFIX + "1"
_METRIC_MAGIC = _METRIC_MAGIC_PREFIX + "1"


class ArtifactFormatError(ValueError):
    """A ``.npz`` artifact is not readable by this build.

    Distinguishes *foreign file* (no/unknown magic) from *stale
    artifact* (right family, wrong format version) so long-lived
    consumers — the query server in particular — fail fast with an
    actionable message instead of crashing on a missing array key
    deep inside a query.
    """


def _check_magic(data, path, *, prefix: str, current: str, kind: str) -> None:
    if "magic" not in data:
        raise ArtifactFormatError(
            f"{path}: not a repro {kind} file (missing magic header)"
        )
    magic = str(data["magic"])
    if magic == current:
        return
    if magic.startswith(prefix):
        raise ArtifactFormatError(
            f"{path}: {kind} format version mismatch: file was written as "
            f"{magic!r} but this build reads {current!r}; regenerate the "
            f"artifact (repro {'preprocess' if kind == 'hierarchy' else 'generate/convert'})"
        )
    raise ArtifactFormatError(
        f"{path}: not a repro {kind} file (magic {magic!r})"
    )


def save_graph(graph: StaticGraph, path: str | Path) -> None:
    """Write a :class:`StaticGraph` to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        magic=np.array(_GRAPH_MAGIC),
        first=graph.first,
        arc_head=graph.arc_head,
        arc_len=graph.arc_len,
    )


def load_graph(path: str | Path) -> StaticGraph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as data:
        _check_magic(
            data, path, prefix=_GRAPH_MAGIC_PREFIX, current=_GRAPH_MAGIC,
            kind="graph",
        )
        return StaticGraph.from_csr(
            data["first"], data["arc_head"], data["arc_len"]
        )


def save_hierarchy(ch, path: str | Path) -> None:
    """Write a :class:`~repro.ch.ContractionHierarchy` to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        magic=np.array(_CH_MAGIC),
        rank=ch.rank,
        level=ch.level,
        up_first=ch.upward.first,
        up_head=ch.upward.arc_head,
        up_len=ch.upward.arc_len,
        up_via=ch.upward_via,
        down_first=ch.downward_rev.first,
        down_head=ch.downward_rev.arc_head,
        down_len=ch.downward_rev.arc_len,
        down_via=ch.downward_via,
        num_shortcuts=np.array(ch.num_shortcuts),
    )


def load_hierarchy(path: str | Path):
    """Read a hierarchy written by :func:`save_hierarchy`."""
    from ..ch.hierarchy import ContractionHierarchy

    with np.load(path, allow_pickle=False) as data:
        _check_magic(
            data, path, prefix=_CH_MAGIC_PREFIX, current=_CH_MAGIC,
            kind="hierarchy",
        )
        upward = StaticGraph.from_csr(
            data["up_first"], data["up_head"], data["up_len"]
        )
        downward_rev = StaticGraph.from_csr(
            data["down_first"], data["down_head"], data["down_len"]
        )
        return ContractionHierarchy(
            n=upward.n,
            rank=data["rank"],
            level=data["level"],
            upward=upward,
            upward_via=data["up_via"],
            downward_rev=downward_rev,
            downward_via=data["down_via"],
            num_shortcuts=int(data["num_shortcuts"]),
            preprocessing_stats={"loaded_from": str(path)},
        )


def save_topology(topology, path: str | Path) -> None:
    """Write a :class:`~repro.ch.customize.CHTopology` to ``path`` (.npz).

    Stored uncompressed: the triangle enumeration dominates the file
    and is high-entropy index data, so compression buys little and
    costs minutes at road-network scale.
    """
    np.savez(
        path,
        magic=np.array(_TOPO_MAGIC),
        key=np.array(topology.key),
        num_base_arcs=np.array(topology.num_base_arcs),
        **topology.arrays(),
    )


def load_topology(path: str | Path):
    """Read a topology written by :func:`save_topology`."""
    from ..ch.customize import CHTopology

    with np.load(path, allow_pickle=False) as data:
        _check_magic(
            data, path, prefix=_TOPO_MAGIC_PREFIX, current=_TOPO_MAGIC,
            kind="topology",
        )
        arrays = {k: data[k] for k in CHTopology._ARRAY_KEYS}
        topo = CHTopology.from_arrays(
            arrays,
            num_base_arcs=int(data["num_base_arcs"]),
            stats={"loaded_from": str(path)},
        )
        stored = str(data["key"])
        if topo.key != stored:
            raise ArtifactFormatError(
                f"{path}: topology content hash {topo.key!r} does not match "
                f"stored key {stored!r}; the artifact is corrupt"
            )
        return topo


def save_metric(metric, path: str | Path) -> None:
    """Write a :class:`~repro.ch.customize.CHMetric` to ``path`` (.npz)."""
    np.savez(
        path,
        magic=np.array(_METRIC_MAGIC),
        topology_key=np.array(metric.topology_key),
        weights=metric.weights,
        via=metric.via,
    )


def load_metric(path: str | Path, *, topology=None):
    """Read a metric written by :func:`save_metric`.

    ``topology=`` cross-checks the metric against the topology it will
    instantiate — a weight vector customized for a different closure
    would silently produce wrong distances, so the pairing is verified
    here, at load time, not deep inside a swap.
    """
    from ..ch.customize import CHMetric

    with np.load(path, allow_pickle=False) as data:
        _check_magic(
            data, path, prefix=_METRIC_MAGIC_PREFIX, current=_METRIC_MAGIC,
            kind="metric",
        )
        metric = CHMetric(
            topology_key=str(data["topology_key"]),
            weights=data["weights"],
            via=data["via"],
            stats={"loaded_from": str(path)},
        )
    if topology is not None and metric.topology_key != topology.key:
        raise ArtifactFormatError(
            f"{path}: metric was customized for topology "
            f"{metric.topology_key!r}, not {topology.key!r}"
        )
    return metric
