"""Binary serialization for graphs and hierarchies.

CH preprocessing is the expensive step of the pipeline (minutes at
scale); production deployments compute it once and ship the artifact.
Graphs and hierarchies round-trip through NumPy ``.npz`` containers —
compact, mmap-friendly, dependency-free.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .csr import StaticGraph

__all__ = [
    "save_graph",
    "load_graph",
    "save_hierarchy",
    "load_hierarchy",
    "ArtifactFormatError",
]

_GRAPH_MAGIC_PREFIX = "repro-graph-v"
_CH_MAGIC_PREFIX = "repro-ch-v"
_GRAPH_MAGIC = _GRAPH_MAGIC_PREFIX + "1"
_CH_MAGIC = _CH_MAGIC_PREFIX + "1"


class ArtifactFormatError(ValueError):
    """A ``.npz`` artifact is not readable by this build.

    Distinguishes *foreign file* (no/unknown magic) from *stale
    artifact* (right family, wrong format version) so long-lived
    consumers — the query server in particular — fail fast with an
    actionable message instead of crashing on a missing array key
    deep inside a query.
    """


def _check_magic(data, path, *, prefix: str, current: str, kind: str) -> None:
    if "magic" not in data:
        raise ArtifactFormatError(
            f"{path}: not a repro {kind} file (missing magic header)"
        )
    magic = str(data["magic"])
    if magic == current:
        return
    if magic.startswith(prefix):
        raise ArtifactFormatError(
            f"{path}: {kind} format version mismatch: file was written as "
            f"{magic!r} but this build reads {current!r}; regenerate the "
            f"artifact (repro {'preprocess' if kind == 'hierarchy' else 'generate/convert'})"
        )
    raise ArtifactFormatError(
        f"{path}: not a repro {kind} file (magic {magic!r})"
    )


def save_graph(graph: StaticGraph, path: str | Path) -> None:
    """Write a :class:`StaticGraph` to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        magic=np.array(_GRAPH_MAGIC),
        first=graph.first,
        arc_head=graph.arc_head,
        arc_len=graph.arc_len,
    )


def load_graph(path: str | Path) -> StaticGraph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as data:
        _check_magic(
            data, path, prefix=_GRAPH_MAGIC_PREFIX, current=_GRAPH_MAGIC,
            kind="graph",
        )
        return StaticGraph.from_csr(
            data["first"], data["arc_head"], data["arc_len"]
        )


def save_hierarchy(ch, path: str | Path) -> None:
    """Write a :class:`~repro.ch.ContractionHierarchy` to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        magic=np.array(_CH_MAGIC),
        rank=ch.rank,
        level=ch.level,
        up_first=ch.upward.first,
        up_head=ch.upward.arc_head,
        up_len=ch.upward.arc_len,
        up_via=ch.upward_via,
        down_first=ch.downward_rev.first,
        down_head=ch.downward_rev.arc_head,
        down_len=ch.downward_rev.arc_len,
        down_via=ch.downward_via,
        num_shortcuts=np.array(ch.num_shortcuts),
    )


def load_hierarchy(path: str | Path):
    """Read a hierarchy written by :func:`save_hierarchy`."""
    from ..ch.hierarchy import ContractionHierarchy

    with np.load(path, allow_pickle=False) as data:
        _check_magic(
            data, path, prefix=_CH_MAGIC_PREFIX, current=_CH_MAGIC,
            kind="hierarchy",
        )
        upward = StaticGraph.from_csr(
            data["up_first"], data["up_head"], data["up_len"]
        )
        downward_rev = StaticGraph.from_csr(
            data["down_first"], data["down_head"], data["down_len"]
        )
        return ContractionHierarchy(
            n=upward.n,
            rank=data["rank"],
            level=data["level"],
            upward=upward,
            upward_via=data["up_via"],
            downward_rev=downward_rev,
            downward_via=data["down_via"],
            num_shortcuts=int(data["num_shortcuts"]),
            preprocessing_stats={"loaded_from": str(path)},
        )
