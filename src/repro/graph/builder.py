"""Mutable graph builder used before freezing into :class:`StaticGraph`.

CH preprocessing and the synthetic generators assemble arcs
incrementally; this builder collects them, optionally deduplicates
parallel arcs (keeping the shortest), and emits the immutable CSR
structure.
"""

from __future__ import annotations

import numpy as np

from .csr import StaticGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates arcs for a directed graph under construction.

    Parameters
    ----------
    n:
        Number of vertices, fixed at construction time.

    Examples
    --------
    >>> b = GraphBuilder(3)
    >>> b.add_arc(0, 1, 5)
    >>> b.add_arc(1, 2, 7)
    >>> g = b.build()
    >>> g.m
    2
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self.n = int(n)
        self._tails: list[int] = []
        self._heads: list[int] = []
        self._lens: list[int] = []

    def __len__(self) -> int:
        return len(self._tails)

    def add_arc(self, tail: int, head: int, length: int) -> None:
        """Record a directed arc ``tail -> head``."""
        if not (0 <= tail < self.n and 0 <= head < self.n):
            raise ValueError(f"arc ({tail}, {head}) out of range for n={self.n}")
        if length < 0:
            raise ValueError("arc length must be non-negative")
        self._tails.append(int(tail))
        self._heads.append(int(head))
        self._lens.append(int(length))

    def add_edge(self, u: int, v: int, length: int) -> None:
        """Record an undirected edge as a pair of opposite arcs."""
        self.add_arc(u, v, length)
        self.add_arc(v, u, length)

    def extend(self, arcs) -> None:
        """Record many ``(tail, head, length)`` triples."""
        for t, h, l in arcs:
            self.add_arc(t, h, l)

    def build(
        self,
        *,
        dedupe: bool = False,
        drop_self_loops: bool = False,
    ) -> StaticGraph:
        """Freeze into a :class:`StaticGraph`.

        Parameters
        ----------
        dedupe:
            Collapse parallel arcs, keeping the minimum length.  Road
            network inputs routinely contain parallel arcs; algorithms
            here tolerate them, but deduping keeps CH smaller.
        drop_self_loops:
            Remove arcs ``(v, v)``.  Self loops never lie on shortest
            paths under non-negative lengths and only slow scans down.
        """
        tails = np.asarray(self._tails, dtype=np.int64)
        heads = np.asarray(self._heads, dtype=np.int64)
        lens = np.asarray(self._lens, dtype=np.int64)
        if drop_self_loops and tails.size:
            keep = tails != heads
            tails, heads, lens = tails[keep], heads[keep], lens[keep]
        if dedupe and tails.size:
            # Sort by (tail, head, length); the first entry in each
            # (tail, head) run is then the shortest parallel arc.
            order = np.lexsort((lens, heads, tails))
            tails, heads, lens = tails[order], heads[order], lens[order]
            new_pair = np.empty(tails.size, dtype=bool)
            new_pair[0] = True
            new_pair[1:] = (tails[1:] != tails[:-1]) | (heads[1:] != heads[:-1])
            tails, heads, lens = tails[new_pair], heads[new_pair], lens[new_pair]
        return StaticGraph(self.n, tails, heads, lens)
