"""Applications of PHAST (Section VII): diameter, arc flags, reach,
betweenness."""

from .arcflags import (
    ArcFlags,
    BidirectionalArcFlags,
    arcflag_pool,
    arcflags_query,
    arcflags_query_bidirectional,
    compute_arc_flags,
    compute_bidirectional_arc_flags,
)
from .betweenness import (
    betweenness,
    betweenness_approx,
    betweenness_pool,
    brandes_single_source,
)
from .diameter import DiameterResult, diameter, eccentricities
from .isochrone import NearestPoiIndex, Poi, isochrone
from .partition import (
    Partition,
    boundary_vertices,
    partition_graph,
    partition_quality,
)
from .reach import exact_reaches, reach_from_tree

__all__ = [
    "ArcFlags",
    "compute_arc_flags",
    "arcflag_pool",
    "arcflags_query",
    "BidirectionalArcFlags",
    "arcflags_query_bidirectional",
    "compute_bidirectional_arc_flags",
    "betweenness",
    "betweenness_approx",
    "betweenness_pool",
    "brandes_single_source",
    "DiameterResult",
    "diameter",
    "eccentricities",
    "Partition",
    "partition_graph",
    "boundary_vertices",
    "partition_quality",
    "exact_reaches",
    "reach_from_tree",
    "isochrone",
    "Poi",
    "NearestPoiIndex",
]
