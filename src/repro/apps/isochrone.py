"""Isochrones and nearest-POI queries.

Two everyday consumers of one-to-all / one-to-many distances that the
paper's introduction motivates (web map services):

* an *isochrone* is the set of vertices reachable within a time budget
  — with PHAST it is one sweep plus a vectorized threshold, with
  Dijkstra a bounded search (cheaper for very small budgets, far more
  expensive for large ones: the classic crossover);
* *k-nearest POIs* ask for the closest members of a facility set —
  a one-to-many query answered with RPHAST's restricted sweep over the
  *reverse* graph (distances vehicle → facility need trees toward the
  facilities).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..core.phast import PhastEngine
from ..core.rphast import RPhastEngine
from ..graph.csr import INF, StaticGraph
from ..sssp.dijkstra import dijkstra

__all__ = ["isochrone", "Poi", "NearestPoiIndex"]


def isochrone(
    graph: StaticGraph,
    source: int,
    budget: int,
    *,
    engine: PhastEngine | None = None,
    method: str = "phast",
) -> np.ndarray:
    """Vertices within ``budget`` of ``source``.

    Parameters
    ----------
    engine:
        Reusable PHAST engine (``method="phast"``); built on demand by
        callers that query repeatedly.
    method:
        ``"phast"`` (full sweep + threshold) or ``"dijkstra"``
        (bounded search, no preprocessing needed).

    Returns
    -------
    Sorted vertex IDs with ``dist <= budget``.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if method == "phast":
        if engine is None:
            raise ValueError("method='phast' requires an engine")
        dist = engine.tree(source).dist
        return np.flatnonzero(dist <= budget).astype(np.int64)
    if method == "dijkstra":
        tree = dijkstra(graph, source, with_parents=False, dist_bound=budget)
        return np.flatnonzero(tree.dist <= budget).astype(np.int64)
    raise ValueError(f"unknown method {method!r}")


@dataclass(frozen=True)
class Poi:
    """A point of interest pinned to a graph vertex."""

    vertex: int
    name: str = ""


class NearestPoiIndex:
    """k-nearest-POI queries over a fixed facility set.

    Builds one RPHAST selection restricted to the facilities, so a
    query from ``v`` yields the distances ``v -> poi`` for every
    facility in a single restricted sweep.  (For the opposite
    direction — facility to customer — build the index on the reverse
    graph's hierarchy.)

    Parameters
    ----------
    ch:
        The graph's hierarchy.
    pois:
        The facility set.
    """

    def __init__(self, ch: ContractionHierarchy, pois: list[Poi]) -> None:
        if not pois:
            raise ValueError("POI set must be non-empty")
        self.pois = list(pois)
        vertices = np.array([p.vertex for p in pois], dtype=np.int64)
        self._engine = RPhastEngine(ch, vertices)
        # targets are deduplicated+sorted inside the engine; map back.
        self._poi_column = np.searchsorted(self._engine.targets, vertices)

    def query(self, source: int, k: int = 1) -> list[tuple[Poi, int]]:
        """The ``k`` closest POIs from ``source`` with their distances.

        Unreachable POIs are omitted; fewer than ``k`` results mean the
        rest are unreachable.
        """
        if k < 1:
            raise ValueError("k must be positive")
        dist_to = self._engine.distances(source)[self._poi_column]
        order = np.argsort(dist_to, kind="stable")
        out = []
        for idx in order[:k]:
            d = int(dist_to[idx])
            if d >= INF:
                break
            out.append((self.pois[int(idx)], d))
        return out

    def distances(self, source: int) -> np.ndarray:
        """Distance from ``source`` to every POI (aligned with ``pois``)."""
        return self._engine.distances(source)[self._poi_column]
