"""Graph partitioning into cells for arc flags.

Arc-flag preprocessing needs a partition of the vertices into a few
dozen cells with small boundaries (Section VII-B-b cites PUNCH-style
partitioners).  This implementation grows cells level-synchronously
from farthest-point-sampled seeds — a simple, dependency-free scheme
that yields compact, balanced cells on road-like graphs, which is all
the arc-flag experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import StaticGraph
from ..sssp.bfs import bfs

__all__ = ["Partition", "partition_graph", "boundary_vertices", "partition_quality"]


@dataclass(frozen=True)
class Partition:
    """A vertex partition.

    Attributes
    ----------
    cell:
        ``cell[v]`` is the cell index of vertex ``v``.
    num_cells:
        Number of cells.
    """

    cell: np.ndarray
    num_cells: int

    def sizes(self) -> np.ndarray:
        """Vertices per cell."""
        return np.bincount(self.cell, minlength=self.num_cells)


def _farthest_point_seeds(graph: StaticGraph, k: int, seed: int) -> np.ndarray:
    """k seeds spread out by iterated farthest-point BFS sampling."""
    rng = np.random.default_rng(seed)
    first = int(rng.integers(0, graph.n))
    seeds = [first]
    hop = bfs(graph, first, with_parents=False).dist
    min_hops = hop.copy()
    for _ in range(1, k):
        nxt = int(min_hops.argmax())
        seeds.append(nxt)
        hop = bfs(graph, nxt, with_parents=False).dist
        np.minimum(min_hops, hop, out=min_hops)
    return np.asarray(seeds, dtype=np.int64)


def partition_graph(
    graph: StaticGraph, num_cells: int, seed: int = 0
) -> Partition:
    """Partition ``graph`` into ``num_cells`` contiguous cells.

    Cells grow simultaneously from spread-out seeds, one BFS layer per
    round, claiming unassigned vertices; ties go to the lower cell
    index.  On connected graphs every vertex gets a cell.
    """
    n = graph.n
    if not 1 <= num_cells <= n:
        raise ValueError("num_cells must be in [1, n]")
    seeds = _farthest_point_seeds(graph, num_cells, seed)
    cell = np.full(n, -1, dtype=np.int64)
    frontiers: list[np.ndarray] = []
    for c, s in enumerate(seeds):
        if cell[s] == -1:
            cell[s] = c
            frontiers.append(np.array([s], dtype=np.int64))
        else:  # duplicate seed on tiny graphs
            frontiers.append(np.zeros(0, dtype=np.int64))
    active = True
    while active:
        active = False
        for c in range(num_cells):
            frontier = frontiers[c]
            if frontier.size == 0:
                continue
            nxt: list[int] = []
            for v in frontier:
                for w in graph.neighbors(v):
                    if cell[w] == -1:
                        cell[w] = c
                        nxt.append(int(w))
            frontiers[c] = np.asarray(nxt, dtype=np.int64)
            if nxt:
                active = True
    # Unreached vertices (disconnected inputs): assign to cell 0.
    cell[cell == -1] = 0
    return Partition(cell=cell, num_cells=num_cells)


def partition_quality(graph: StaticGraph, partition: Partition) -> dict[str, float]:
    """Quality metrics of a partition for arc-flag preprocessing.

    * ``cut_arcs`` — arcs crossing cells (each boundary vertex costs a
      reverse tree, so fewer is cheaper preprocessing);
    * ``boundary_vertices`` — tree count of arc-flag preprocessing;
    * ``balance`` — largest cell over ideal size (1.0 = perfect);
    * ``cut_fraction`` — cut arcs over all arcs.
    """
    cell = partition.cell
    tails = graph.arc_tails()
    cut = int((cell[tails] != cell[graph.arc_head]).sum())
    sizes = partition.sizes()
    ideal = graph.n / max(1, partition.num_cells)
    return {
        "cut_arcs": float(cut),
        "cut_fraction": cut / graph.m if graph.m else 0.0,
        "boundary_vertices": float(boundary_vertices(graph, partition).size),
        "balance": float(sizes.max() / ideal) if graph.n else 1.0,
    }


def boundary_vertices(graph: StaticGraph, partition: Partition) -> np.ndarray:
    """Vertices with an incident arc crossing into another cell.

    These are the roots arc-flag preprocessing grows trees from; the
    paper's Europe instance has ~11k of them for a typical partition.
    """
    cell = partition.cell
    tails = graph.arc_tails()
    crossing = cell[tails] != cell[graph.arc_head]
    boundary = np.zeros(graph.n, dtype=bool)
    boundary[tails[crossing]] = True
    boundary[graph.arc_head[crossing]] = True
    return np.flatnonzero(boundary).astype(np.int64)
