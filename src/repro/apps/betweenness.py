"""Exact betweenness centrality (Section VII-B-c).

Betweenness ``c_B(v) = Σ_{s≠v≠t} σ_st(v) / σ_st`` is computed with
Brandes' algorithm [28]: per source, (1) shortest path distances,
(2) path counts ``σ`` over the shortest-path DAG in increasing distance
order, (3) dependency accumulation ``δ`` in decreasing order.  The
distance phase is the bottleneck Dijkstra imposes; PHAST replaces it,
and phases (2)–(3) are vectorized level-synchronously over
equal-distance batches (arcs of positive length always connect strictly
increasing distances, so batches are independent).

Both backends produce exact values; ``method="phast"`` differs only in
how the distances are obtained.
"""

from __future__ import annotations

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..core.pool import PhastPool, TreeReducer
from ..graph.csr import INF, StaticGraph
from ..sssp.dijkstra import dijkstra

__all__ = [
    "betweenness",
    "betweenness_approx",
    "brandes_single_source",
    "BrandesReducer",
    "betweenness_pool",
]


def brandes_single_source(
    graph: StaticGraph,
    reverse: StaticGraph,
    source: int,
    dist: np.ndarray,
) -> np.ndarray:
    """One source's dependency vector ``δ_s`` from its distances.

    Parameters
    ----------
    graph, reverse:
        Forward and reverse CSR of the same graph.
    dist:
        Distances from ``source`` (any backend).

    Returns
    -------
    ``δ_s(v)`` for all ``v`` (the source's own entry is 0).

    Notes
    -----
    The shortest-path DAG is extracted in one vectorized pass (arcs with
    ``d[tail] + len == d[head]``), its arcs sorted by head distance, and
    the two accumulation phases walk runs of equal head-distance — the
    level-synchronous pattern the rest of the library uses.
    """
    n = graph.n
    if graph.m and int(graph.arc_len.min()) <= 0:
        raise ValueError("betweenness accumulation requires positive lengths")
    sigma = np.zeros(n, dtype=np.float64)
    sigma[source] = 1.0

    # Extract the shortest-path DAG once (arcs grouped by head in the
    # reverse CSR), sorted by the head's distance.
    rev_tails = reverse.arc_head
    rev_heads = reverse.arc_tails()
    finite = dist[rev_tails] < INF
    on_dag = finite & (dist[rev_tails] + reverse.arc_len == dist[rev_heads])
    tails = rev_tails[on_dag]
    heads = rev_heads[on_dag]
    order = np.argsort(dist[heads], kind="stable")
    tails, heads = tails[order], heads[order]
    d_heads = dist[heads]
    # Boundaries of equal-head-distance runs; arcs within one run are
    # independent (positive lengths force d[tail] < d[head]).
    cuts = np.concatenate(
        ([0], np.flatnonzero(d_heads[1:] != d_heads[:-1]) + 1, [tails.size])
    )

    # Phase 2: path counts in increasing distance order.
    for lo, hi in zip(cuts[:-1], cuts[1:]):
        np.add.at(sigma, heads[lo:hi], sigma[tails[lo:hi]])

    # Phase 3: dependencies in decreasing distance order.  For each DAG
    # arc (u, v): δ(u) += σ(u)/σ(v) · (1 + δ(v)).
    delta = np.zeros(n, dtype=np.float64)
    for lo, hi in zip(cuts[-2::-1], cuts[:0:-1]):
        t, h = tails[lo:hi], heads[lo:hi]
        np.add.at(delta, t, sigma[t] / sigma[h] * (1.0 + delta[h]))
    delta[source] = 0.0
    return delta


class BrandesReducer(TreeReducer):
    """Sum per-source dependency vectors inside the workers.

    Brandes phases (2)–(3) run next to each tree, so only one float64
    vector per worker crosses the process boundary.  Expects the pool
    to publish the forward and reverse CSR of the input graph as
    ``"graph"`` and ``"reverse"``.
    """

    def make_state(self, ctx):
        return np.zeros(ctx.n, dtype=np.float64)

    def fold(self, ctx, state, index, source, dist):
        state += brandes_single_source(
            ctx.graph("graph"), ctx.graph("reverse"), source, dist
        )
        return state

    def merge(self, states):
        out = states[0]
        for s in states[1:]:
            out += s
        return out


def betweenness_pool(
    ch: ContractionHierarchy, graph: StaticGraph, **pool_kwargs
) -> PhastPool:
    """A pool provisioned for :func:`betweenness` (both CSR directions)."""
    return PhastPool(
        ch,
        graphs={"graph": graph, "reverse": graph.reverse()},
        **pool_kwargs,
    )


def betweenness_approx(
    graph: StaticGraph,
    ch: ContractionHierarchy | None = None,
    *,
    epsilon: float = 0.05,
    delta: float = 0.1,
    method: str = "phast",
    seed: int | None = None,
) -> tuple[np.ndarray, int]:
    """Sampling-based betweenness approximation (refs [28], [29]).

    Samples ``m = ceil(ln(2 n / delta) / (2 epsilon^2))`` pivot sources
    uniformly and scales the accumulated dependencies by ``n / m``.  By
    Hoeffding's inequality each vertex's estimate of the *normalized*
    betweenness (``c_B / (n(n-1))``, each pivot's contribution lying in
    ``[0, 1]``) is within ``epsilon`` with probability ``1 - delta``
    (union bound over vertices).  The paper notes PHAST "could also be
    helpful for accelerating known approximation techniques" — the
    pivot trees are exactly its workload.

    Returns
    -------
    ``(estimate, num_pivots)`` with ``estimate`` on the same raw scale
    as :func:`betweenness` (divide by ``n (n - 1)`` for the normalized
    value the guarantee is stated on).
    """
    n = graph.n
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must lie in (0, 1)")
    m = int(np.ceil(np.log(2 * max(2, n) / delta) / (2 * epsilon**2)))
    m = min(m, n)
    rng = np.random.default_rng(seed)
    pivots = rng.choice(n, size=m, replace=False)
    raw = betweenness(graph, ch, sources=pivots, method=method)
    return raw * (n / m), m


def betweenness(
    graph: StaticGraph,
    ch: ContractionHierarchy | None = None,
    *,
    sources: np.ndarray | None = None,
    method: str = "phast",
    normalized: bool = False,
    num_workers: int = 1,
    pool: PhastPool | None = None,
) -> np.ndarray:
    """(Sampled) exact betweenness of every vertex.

    Parameters
    ----------
    sources:
        Brandes pivots; default all vertices (exact).  Sampling yields
        the standard unbiased approximation [29].
    method:
        ``"phast"`` or ``"dijkstra"`` distance backend.
    normalized:
        Divide by ``(n - 1)(n - 2)`` (directed convention).
    num_workers:
        Worker processes for an ephemeral pool (ignored when ``pool``
        is passed).
    pool:
        A persistent pool from :func:`betweenness_pool`, reused across
        calls (it must publish ``graph`` and ``reverse``).
    """
    n = graph.n
    if sources is None:
        sources = np.arange(n, dtype=np.int64)
    cb = np.zeros(n, dtype=np.float64)
    if method == "phast":
        if pool is None and ch is None:
            raise ValueError("method='phast' requires a hierarchy")
        owned = pool is None
        if owned:
            pool = betweenness_pool(ch, graph, num_workers=num_workers)
        try:
            if len(sources):
                cb += pool.reduce(sources, BrandesReducer())
        finally:
            if owned:
                pool.close()
    elif method == "dijkstra":
        reverse = graph.reverse()
        for s in sources:
            s = int(s)
            dist = dijkstra(graph, s, with_parents=False).dist
            cb += brandes_single_source(graph, reverse, s, dist)
    else:
        raise ValueError(f"unknown method {method!r}")
    if normalized and n > 2:
        cb /= (n - 1) * (n - 2)
    return cb
