"""Arc flags: preprocessing and accelerated point-to-point queries.

An arc ``a`` carries one Boolean per cell ``C``: true iff ``a`` starts
some shortest path into ``C`` (Section VII-B-b).  Queries run Dijkstra
but skip arcs whose flag for the target's cell is off, which prunes the
search to a thin corridor.

Preprocessing is the expensive part — one *reverse* shortest path tree
per boundary vertex — and is exactly the workload PHAST accelerates:
the paper reduces ~10.5 hours (Dijkstra, 4 cores) to under 3 minutes
(GPHAST).  Both backends are provided: ``method="dijkstra"`` grows each
tree with the baseline, ``method="phast"`` uses a PHAST engine built on
the reverse graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ch.contraction import CHParams, contract_graph
from ..core.pool import PhastPool, TreeReducer
from ..graph.csr import INF, StaticGraph
from ..pq.binary_heap import BinaryHeap
from ..sssp.dijkstra import dijkstra
from .partition import Partition, boundary_vertices

__all__ = [
    "ArcFlags",
    "ArcFlagReducer",
    "arcflag_pool",
    "compute_arc_flags",
    "arcflags_query",
    "BidirectionalArcFlags",
    "compute_bidirectional_arc_flags",
    "arcflags_query_bidirectional",
]


@dataclass
class ArcFlags:
    """Arc-flag table over a partitioned graph.

    Attributes
    ----------
    graph:
        The graph the flags refer to (arc indices match its CSR order).
    partition:
        The vertex partition.
    flags:
        Boolean array of shape ``(m, num_cells)``; ``flags[a, C]`` says
        arc ``a`` may start a shortest path into cell ``C``.
    trees_grown:
        Number of reverse trees preprocessing built (= boundary count).
    """

    graph: StaticGraph
    partition: Partition
    flags: np.ndarray
    trees_grown: int

    @property
    def bits_set_fraction(self) -> float:
        """Fraction of true flags (quality indicator; lower = better)."""
        return float(self.flags.mean())


def _flag_from_reverse_tree(
    graph: StaticGraph,
    tails: np.ndarray,
    dist_to_b: np.ndarray,
    flags: np.ndarray,
    cell_idx: int,
) -> None:
    """Set flags for arcs on shortest paths toward one boundary vertex.

    ``dist_to_b[u]`` is the distance from ``u`` to the boundary vertex;
    arc ``(u, v)`` lies on a shortest ``u -> b`` path iff
    ``dist_to_b[u] == l(u, v) + dist_to_b[v]``.
    """
    heads = graph.arc_head
    finite = dist_to_b[tails] < INF
    on_sp = finite & (dist_to_b[tails] == graph.arc_len + dist_to_b[heads])
    flags[on_sp, cell_idx] = True


class ArcFlagReducer(TreeReducer):
    """OR per-boundary-vertex flag contributions inside the workers.

    Each reverse tree rooted at boundary vertex ``b`` marks the arcs on
    shortest paths toward ``b`` in the column of ``b``'s cell.  The
    per-worker state is a full ``(m, num_cells)`` Boolean table — the
    only thing shipped back per worker — and the parent ORs the tables,
    so an all-boundary run never pickles a single distance array.

    Expects the pool to publish the forward graph as ``"graph"`` and
    the partition's cell assignment as ``"cell"``.
    """

    def __init__(self, num_cells: int) -> None:
        self.num_cells = int(num_cells)

    def make_state(self, ctx):
        return np.zeros((ctx.graph("graph").m, self.num_cells), dtype=bool)

    def fold(self, ctx, state, index, source, dist):
        graph = ctx.graph("graph")
        cell = ctx.array("cell")
        _flag_from_reverse_tree(
            graph, graph.arc_tails(), dist, state, int(cell[source])
        )
        return state

    def merge(self, states):
        out = states[0]
        for s in states[1:]:
            out |= s
        return out


def arcflag_pool(
    reverse_ch,
    graph: StaticGraph,
    partition: Partition,
    **pool_kwargs,
) -> PhastPool:
    """A pool over the reverse hierarchy, provisioned for arc flags.

    Publishes the forward graph and the partition's cell array so
    :class:`ArcFlagReducer` can run in the workers; pass the result to
    :func:`compute_arc_flags` via ``pool=`` to reuse it across calls.
    """
    return PhastPool(
        reverse_ch,
        graphs={"graph": graph},
        arrays={"cell": np.asarray(partition.cell, dtype=np.int64)},
        **pool_kwargs,
    )


def compute_arc_flags(
    graph: StaticGraph,
    partition: Partition,
    *,
    method: str = "phast",
    reverse_ch=None,
    ch_params: CHParams | None = None,
    num_workers: int = 1,
    pool: PhastPool | None = None,
) -> ArcFlags:
    """Build the arc-flag table.

    Parameters
    ----------
    graph:
        Input graph.
    partition:
        Vertex partition (see :func:`repro.apps.partition_graph`).
    method:
        ``"phast"`` (reverse trees via a PHAST engine over the reverse
        graph) or ``"dijkstra"`` (baseline).
    reverse_ch:
        Optional pre-built hierarchy of ``graph.reverse()``; built on
        demand otherwise.
    ch_params:
        Passed to CH preprocessing when the hierarchy is built here.
    num_workers:
        Worker processes for an ephemeral pool (ignored when ``pool``
        is passed).
    pool:
        A persistent pool from :func:`arcflag_pool` to reuse across
        calls (it must publish ``graph`` and ``cell``).
    """
    m = graph.m
    cell = partition.cell
    flags = np.zeros((m, partition.num_cells), dtype=bool)
    tails = graph.arc_tails()

    # Intra-cell flags: an arc always carries the flag of its own
    # head's cell (paths that stay inside the cell).
    flags[np.arange(m), cell[graph.arc_head]] = True

    boundary = boundary_vertices(graph, partition)
    if method == "phast":
        if pool is None and reverse_ch is None:
            reverse_ch = contract_graph(graph.reverse(), ch_params)
        owned = pool is None
        if owned:
            pool = arcflag_pool(
                reverse_ch, graph, partition, num_workers=num_workers
            )
        try:
            if boundary.size:
                flags |= pool.reduce(
                    boundary, ArcFlagReducer(partition.num_cells)
                )
        finally:
            if owned:
                pool.close()
    elif method == "dijkstra":
        reverse = graph.reverse()
        for b in boundary:
            b = int(b)
            dist_to_b = dijkstra(reverse, b, with_parents=False).dist
            _flag_from_reverse_tree(
                graph, tails, dist_to_b, flags, int(cell[b])
            )
    else:
        raise ValueError(f"unknown method {method!r}")
    return ArcFlags(
        graph=graph,
        partition=partition,
        flags=flags,
        trees_grown=int(boundary.size),
    )


from dataclasses import dataclass as _dataclass


@_dataclass
class BidirectionalArcFlags:
    """Forward and backward flag tables (Section VII-B-b: "this
    approach can easily be made bidirectional").

    ``forward`` flags prune arcs that cannot start a shortest path
    *into* the target's cell; ``backward`` holds the same table built
    on the reverse graph, pruning (reversed) arcs that cannot start a
    reverse shortest path into the *source's* cell.
    """

    forward: ArcFlags
    backward: ArcFlags  # over graph.reverse(), same partition

    @property
    def partition(self) -> Partition:
        return self.forward.partition


def compute_bidirectional_arc_flags(
    graph: StaticGraph,
    partition: Partition,
    *,
    method: str = "phast",
    forward_ch=None,
    reverse_ch=None,
    ch_params: CHParams | None = None,
) -> BidirectionalArcFlags:
    """Build both flag directions.

    Forward flags need reverse shortest path trees (a hierarchy of the
    reverse graph); backward flags are just forward flags of the
    reverse graph, which need trees in the original direction — so the
    two hierarchies are each used once, crosswise.
    """
    reverse = graph.reverse()
    if method == "phast":
        if reverse_ch is None:
            reverse_ch = contract_graph(reverse, ch_params)
        if forward_ch is None:
            forward_ch = contract_graph(graph, ch_params)
    forward = compute_arc_flags(
        graph, partition, method=method, reverse_ch=reverse_ch
    )
    backward = compute_arc_flags(
        reverse, partition, method=method, reverse_ch=forward_ch
    )
    return BidirectionalArcFlags(forward=forward, backward=backward)


def arcflags_query_bidirectional(
    baf: BidirectionalArcFlags, s: int, t: int
) -> tuple[int, int]:
    """Bidirectional arc-flag Dijkstra.

    Both searches prune by their direction's flags; the usual
    bidirectional stopping criterion applies (stop once the sum of the
    two queue minima reaches the best meeting value).  Returns
    ``(distance, vertices_scanned)``.
    """
    graph = baf.forward.graph
    reverse = baf.backward.graph
    n = graph.n
    allowed_f = baf.forward.flags[:, int(baf.partition.cell[t])]
    allowed_b = baf.backward.flags[:, int(baf.partition.cell[s])]

    dist_f = np.full(n, INF, dtype=np.int64)
    dist_b = np.full(n, INF, dtype=np.int64)
    done_f = np.zeros(n, dtype=bool)
    done_b = np.zeros(n, dtype=bool)
    heap_f = BinaryHeap(n)
    heap_b = BinaryHeap(n)
    dist_f[s] = 0
    dist_b[t] = 0
    heap_f.insert(s, 0)
    heap_b.insert(t, 0)
    mu = INF
    scanned = 0

    def scan_one(heap, graph_, allowed, dist, done, other_dist):
        nonlocal mu, scanned
        v, dv = heap.pop_min()
        done[v] = True
        scanned += 1
        if other_dist[v] < INF and dv + other_dist[v] < mu:
            mu = dv + other_dist[v]
        first, arc_head, arc_len = graph_.first, graph_.arc_head, graph_.arc_len
        for i in range(first[v], first[v + 1]):
            if not allowed[i]:
                continue
            w = int(arc_head[i])
            if done[w]:
                continue
            nd = dv + int(arc_len[i])
            if nd < dist[w]:
                if heap.contains(w):
                    heap.decrease_key(w, nd)
                else:
                    heap.insert(w, nd)
                dist[w] = nd
                if other_dist[w] < INF and nd + other_dist[w] < mu:
                    mu = nd + other_dist[w]

    inf = int(INF)
    while heap_f or heap_b:
        top_f = int(heap_f.peek_min()[1]) if heap_f else inf
        top_b = int(heap_b.peek_min()[1]) if heap_b else inf
        # Stop when no unscanned label can improve the meeting value.
        if min(top_f, top_b) >= mu or top_f + top_b >= mu:
            break
        if top_f <= top_b:
            scan_one(heap_f, graph, allowed_f, dist_f, done_f, dist_b)
        else:
            scan_one(heap_b, reverse, allowed_b, dist_b, done_b, dist_f)
    return (int(mu) if mu < INF else INF), scanned


def arcflags_query(
    af: ArcFlags, s: int, t: int
) -> tuple[int, int]:
    """Point-to-point distance using arc-flag pruning.

    Returns ``(distance, vertices_scanned)``; the scan count is the
    quantity arc flags shrink by orders of magnitude relative to plain
    Dijkstra.
    """
    graph = af.graph
    n = graph.n
    target_cell = int(af.partition.cell[t])
    allowed = af.flags[:, target_cell]

    dist = np.full(n, INF, dtype=np.int64)
    done = np.zeros(n, dtype=bool)
    heap = BinaryHeap(n)
    dist[s] = 0
    heap.insert(s, 0)
    scanned = 0
    first, arc_head, arc_len = graph.first, graph.arc_head, graph.arc_len
    while heap:
        v, dv = heap.pop_min()
        done[v] = True
        scanned += 1
        if v == t:
            break
        for i in range(first[v], first[v + 1]):
            if not allowed[i]:
                continue
            w = int(arc_head[i])
            if done[w]:
                continue
            nd = dv + int(arc_len[i])
            if nd < dist[w]:
                if heap.contains(w):
                    heap.decrease_key(w, nd)
                else:
                    heap.insert(w, nd)
                dist[w] = nd
    return int(dist[t]), scanned
