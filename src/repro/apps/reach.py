"""Exact reach computation (Section VII-B-c).

The reach of ``v`` is the maximum over shortest ``s``–``t`` paths
through ``v`` of ``min(dist(s, v), dist(v, t))`` — a centrality that
point-to-point algorithms (RE, REAL) prune with.  The best exact method
builds all ``n`` shortest path trees: in the tree rooted at ``s``,
``v`` contributes ``min(depth(v), height(v))`` where ``depth`` is
``dist(s, v)`` and ``height`` the deepest descendant's extra distance.
PHAST supplies the trees; the bottom-up height pass runs in
decreasing-distance order (the cache-friendly traversal the paper
mentions).

As is standard for tree-based reach computation, values are exact under
unique shortest paths; with ties the result is a valid lower bound per
tree and the maximum over trees is reported (the synthetic networks
jitter lengths precisely to keep ties negligible).
"""

from __future__ import annotations

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..core.pool import PhastPool, TreeReducer
from ..core.trees import parents_in_original_graph
from ..graph.csr import INF, StaticGraph
from ..sssp.dijkstra import dijkstra

__all__ = ["reach_from_tree", "exact_reaches", "ReachReducer"]


def reach_from_tree(
    dist: np.ndarray, parent: np.ndarray, source: int
) -> np.ndarray:
    """Per-vertex ``min(depth, height)`` within one shortest path tree.

    ``height[v]`` is the distance from ``v`` to its deepest tree
    descendant; computed bottom-up in decreasing label order.
    """
    n = dist.size
    height = np.zeros(n, dtype=np.int64)
    order = np.argsort(-dist, kind="stable")
    for v in order:
        v = int(v)
        if dist[v] >= INF or v == source:
            continue
        p = int(parent[v])
        if p >= 0:
            h = height[v] + (dist[v] - dist[p])
            if h > height[p]:
                height[p] = h
    reach = np.minimum(dist, height)
    reach[dist >= INF] = 0
    return reach


class ReachReducer(TreeReducer):
    """Elementwise-max of per-tree reach vectors, inside the workers.

    Each worker keeps one length-``n`` running maximum; an ``n``-tree
    run ships back one vector per worker instead of ``n`` distance
    arrays.  Expects the pool to publish the original graph as
    ``"graph"`` (parent recovery needs its arcs).
    """

    def make_state(self, ctx):
        return np.zeros(ctx.n, dtype=np.int64)

    def fold(self, ctx, state, index, source, dist):
        graph = ctx.graph("graph")
        # Both backends recover parents with the same one-pass rule so
        # tie-breaking (and hence the per-tree reach) is deterministic.
        parent = parents_in_original_graph(graph, dist, source)
        np.maximum(state, reach_from_tree(dist, parent, source), out=state)
        return state

    def merge(self, states):
        out = states[0]
        for s in states[1:]:
            np.maximum(out, s, out=out)
        return out


def exact_reaches(
    graph: StaticGraph,
    ch: ContractionHierarchy | None = None,
    *,
    sources: np.ndarray | None = None,
    method: str = "phast",
    num_workers: int = 1,
    pool: PhastPool | None = None,
) -> np.ndarray:
    """Reach value of every vertex from ``n`` (or sampled) trees.

    Parameters
    ----------
    sources:
        Tree roots; default all vertices (exact).
    method:
        ``"phast"`` or ``"dijkstra"``.
    num_workers:
        Worker processes for an ephemeral pool (ignored when ``pool``
        is passed).
    pool:
        A persistent :class:`~repro.core.pool.PhastPool` over ``ch``
        publishing ``graphs={"graph": graph}``, reused across calls.
    """
    n = graph.n
    if sources is None:
        sources = np.arange(n, dtype=np.int64)
    reach = np.zeros(n, dtype=np.int64)
    if method == "phast":
        if pool is None and ch is None:
            raise ValueError("method='phast' requires a hierarchy")
        owned = pool is None
        if owned:
            pool = PhastPool(
                ch, num_workers=num_workers, graphs={"graph": graph}
            )
        try:
            if len(sources):
                np.maximum(
                    reach, pool.reduce(sources, ReachReducer()), out=reach
                )
        finally:
            if owned:
                pool.close()
        return reach
    if method != "dijkstra":
        raise ValueError(f"unknown method {method!r}")
    for s in sources:
        s = int(s)
        dist = dijkstra(graph, s, with_parents=False).dist
        # Same one-pass parent rule as the pooled path (see ReachReducer).
        parent = parents_in_original_graph(graph, dist, s)
        np.maximum(reach, reach_from_tree(dist, parent, s), out=reach)
    return reach
