"""Exact graph diameter (Section VII-B-a).

The diameter — the longest shortest path — needs all ``n`` trees.  Each
tree contributes its maximum finite label; PHAST makes the per-tree cost
a linear sweep, and the per-tree reduction (one ``max``) matches the
paper's GPHAST bookkeeping (a running per-vertex maximum, collapsed at
the end).  The trees run on a :class:`~repro.core.pool.PhastPool`: the
reduction happens inside the workers, so an n-tree run ships one
``(value, source, target)`` triple per worker instead of ``n`` distance
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..core.pool import PhastPool, TreeReducer, WorkerContext
from ..graph.csr import INF, StaticGraph
from ..sssp.dijkstra import dijkstra

__all__ = ["DiameterResult", "diameter", "eccentricities"]


@dataclass(frozen=True)
class DiameterResult:
    """Diameter value and one realizing pair."""

    value: int
    source: int
    target: int
    trees_computed: int


def _tree_max(source: int, dist: np.ndarray) -> tuple[int, int, int]:
    """Per-tree reducer: (max finite label, source, argmax)."""
    finite = dist < INF
    if not finite.any():
        return 0, source, source
    masked = np.where(finite, dist, -1)
    t = int(masked.argmax())
    return int(masked[t]), source, t


def _ecc_of_tree(source: int, dist: np.ndarray) -> int:
    """Per-tree map: the eccentricity of ``source``."""
    finite = dist < INF
    return int(dist[finite].max()) if finite.any() else 0


class DiameterReducer(TreeReducer):
    """Keeps the single best ``(value, source, target)`` per worker."""

    def make_state(self, ctx: WorkerContext):
        return (-1, -1, -1)

    def fold(self, ctx, state, index, source, dist):
        cand = _tree_max(source, dist)
        return cand if cand[0] > state[0] else state

    def merge(self, states):
        best = (-1, -1, -1)
        for s in states:
            if s[0] > best[0]:
                best = s
        return best


def diameter(
    graph: StaticGraph,
    ch: ContractionHierarchy | None = None,
    *,
    sources: np.ndarray | None = None,
    method: str = "phast",
    num_workers: int = 1,
    pool: PhastPool | None = None,
) -> DiameterResult:
    """Exact (or, with ``sources``, sampled) diameter.

    Parameters
    ----------
    graph:
        The input graph (used directly by the Dijkstra baseline).
    ch:
        Required for ``method="phast"`` (unless ``pool`` is given).
    sources:
        Roots to grow trees from; default all vertices (exact).
    method:
        ``"phast"`` (default) or ``"dijkstra"`` (the baseline the paper
        replaces).
    num_workers:
        Worker processes for an ephemeral pool (ignored when ``pool``
        is passed).
    pool:
        A persistent :class:`~repro.core.pool.PhastPool` over ``ch`` to
        reuse across calls; no extra graphs/arrays required.
    """
    if sources is None:
        sources = np.arange(graph.n, dtype=np.int64)
    else:
        sources = np.asarray(sources, dtype=np.int64)
    best = (-1, -1, -1)
    if method == "phast":
        if pool is None and ch is None:
            raise ValueError("method='phast' requires a hierarchy")
        owned = pool is None
        if owned:
            pool = PhastPool(ch, num_workers=num_workers)
        try:
            best = pool.reduce(sources, DiameterReducer())
        finally:
            if owned:
                pool.close()
    elif method == "dijkstra":
        for s in sources:
            tree = dijkstra(graph, int(s), with_parents=False)
            value, s_, t = _tree_max(int(s), tree.dist)
            if value > best[0]:
                best = (value, s_, t)
    else:
        raise ValueError(f"unknown method {method!r}")
    return DiameterResult(
        value=best[0], source=best[1], target=best[2], trees_computed=len(sources)
    )


def eccentricities(
    graph: StaticGraph,
    ch: ContractionHierarchy | None = None,
    *,
    method: str = "phast",
    num_workers: int = 1,
    pool: PhastPool | None = None,
) -> np.ndarray:
    """Eccentricity (max finite distance) of every vertex.

    The diameter is the maximum entry; the radius the minimum.
    """
    n = graph.n
    if method == "phast":
        if pool is None and ch is None:
            raise ValueError("method='phast' requires a hierarchy")
        owned = pool is None
        if owned:
            pool = PhastPool(ch, num_workers=num_workers)
        try:
            values = pool.map(range(n), _ecc_of_tree)
        finally:
            if owned:
                pool.close()
        return np.asarray(values, dtype=np.int64)
    if method != "dijkstra":
        raise ValueError(f"unknown method {method!r}")
    ecc = np.zeros(n, dtype=np.int64)
    for s in range(n):
        dist = dijkstra(graph, s, with_parents=False).dist
        ecc[s] = _ecc_of_tree(s, dist)
    return ecc
