"""Exact graph diameter (Section VII-B-a).

The diameter — the longest shortest path — needs all ``n`` trees.  Each
tree contributes its maximum finite label; PHAST makes the per-tree cost
a linear sweep, and the per-tree reduction (one ``max``) matches the
paper's GPHAST bookkeeping (a running per-vertex maximum, collapsed at
the end).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ch.hierarchy import ContractionHierarchy
from ..core.parallel import trees_per_core
from ..core.phast import PhastEngine
from ..graph.csr import INF, StaticGraph
from ..sssp.dijkstra import dijkstra

__all__ = ["DiameterResult", "diameter", "eccentricities"]


@dataclass(frozen=True)
class DiameterResult:
    """Diameter value and one realizing pair."""

    value: int
    source: int
    target: int
    trees_computed: int


def _tree_max(source: int, dist: np.ndarray) -> tuple[int, int, int]:
    """Per-tree reducer: (max finite label, source, argmax)."""
    finite = dist < INF
    if not finite.any():
        return 0, source, source
    masked = np.where(finite, dist, -1)
    t = int(masked.argmax())
    return int(masked[t]), source, t


def diameter(
    graph: StaticGraph,
    ch: ContractionHierarchy | None = None,
    *,
    sources: np.ndarray | None = None,
    method: str = "phast",
    num_workers: int = 1,
) -> DiameterResult:
    """Exact (or, with ``sources``, sampled) diameter.

    Parameters
    ----------
    graph:
        The input graph (used directly by the Dijkstra baseline).
    ch:
        Required for ``method="phast"``.
    sources:
        Roots to grow trees from; default all vertices (exact).
    method:
        ``"phast"`` (default) or ``"dijkstra"`` (the baseline the paper
        replaces).
    num_workers:
        Worker processes for the PHAST method.
    """
    if sources is None:
        sources = np.arange(graph.n, dtype=np.int64)
    else:
        sources = np.asarray(sources, dtype=np.int64)
    best = (-1, -1, -1)
    if method == "phast":
        if ch is None:
            raise ValueError("method='phast' requires a hierarchy")
        results = trees_per_core(
            ch, sources, num_workers=num_workers, reduce=_tree_max
        )
        for value, s, t in results:
            if value > best[0]:
                best = (value, s, t)
    elif method == "dijkstra":
        for s in sources:
            tree = dijkstra(graph, int(s), with_parents=False)
            value, s_, t = _tree_max(int(s), tree.dist)
            if value > best[0]:
                best = (value, s_, t)
    else:
        raise ValueError(f"unknown method {method!r}")
    return DiameterResult(
        value=best[0], source=best[1], target=best[2], trees_computed=len(sources)
    )


def eccentricities(
    graph: StaticGraph,
    ch: ContractionHierarchy | None = None,
    *,
    method: str = "phast",
) -> np.ndarray:
    """Eccentricity (max finite distance) of every vertex.

    The diameter is the maximum entry; the radius the minimum.
    """
    n = graph.n
    ecc = np.zeros(n, dtype=np.int64)
    if method == "phast":
        if ch is None:
            raise ValueError("method='phast' requires a hierarchy")
        engine = PhastEngine(ch)
        for s in range(n):
            dist = engine.tree(s).dist
            finite = dist < INF
            ecc[s] = int(dist[finite].max()) if finite.any() else 0
    elif method == "dijkstra":
        for s in range(n):
            dist = dijkstra(graph, s, with_parents=False).dist
            finite = dist < INF
            ecc[s] = int(dist[finite].max()) if finite.any() else 0
    else:
        raise ValueError(f"unknown method {method!r}")
    return ecc
