"""Dijkstra's algorithm with pluggable priority queues.

This is the paper's baseline (Section II-A).  The queue is selected by
name — ``"binary"``, ``"kheap"``, ``"dial"`` or ``"smart"`` — matching
the variants of Table I.  All variants are label-setting: each vertex is
scanned exactly once, after which its distance label is final.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..graph.csr import INF, StaticGraph
from ..pq import (
    BinaryHeap,
    DialQueue,
    FibonacciHeap,
    KHeap,
    MultiLevelBucketQueue,
    PriorityQueue,
)
from .result import ShortestPathTree

__all__ = ["dijkstra", "make_queue", "QUEUE_NAMES"]

QUEUE_NAMES = ("binary", "kheap", "fibonacci", "dial", "smart")


def make_queue(name: str, graph: StaticGraph) -> PriorityQueue:
    """Instantiate the named queue sized for ``graph``.

    The bucket queues need bounds derived from the arc lengths: Dial's
    needs the maximum arc length ``C``; multi-level buckets need an
    upper bound on any finite distance (``(n - 1) * C``).
    """
    n = graph.n
    if name == "binary":
        return BinaryHeap(n)
    if name == "kheap":
        return KHeap(n, arity=4)
    if name == "fibonacci":
        return FibonacciHeap(n)
    max_len = int(graph.arc_len.max()) if graph.m else 0
    if name == "dial":
        return DialQueue(n, max_len)
    if name == "smart":
        return MultiLevelBucketQueue(n, max(1, (n - 1)) * max(1, max_len))
    raise ValueError(f"unknown queue {name!r}; expected one of {QUEUE_NAMES}")


def dijkstra(
    graph: StaticGraph,
    source: int,
    *,
    queue: str | Callable[[StaticGraph], PriorityQueue] = "smart",
    with_parents: bool = True,
    target: int | None = None,
    dist_bound: int | None = None,
    record_order: bool = False,
) -> ShortestPathTree:
    """Single-source shortest paths by Dijkstra's algorithm.

    Parameters
    ----------
    graph:
        Forward graph (outgoing adjacency).
    source:
        Root vertex.
    queue:
        Queue name (see :data:`QUEUE_NAMES`) or a factory called with
        the graph.
    with_parents:
        Also record predecessor pointers.
    target:
        Stop as soon as ``target`` is scanned (point-to-point mode);
        labels of unscanned vertices are then upper bounds only.
    dist_bound:
        Stop scanning once the minimum queue key exceeds this value;
        used by reach and arc-flag preprocessing for bounded trees.
    record_order:
        Store the vertex settling order in ``result.extra["scan_order"]``
        (the cache simulator replays it as an address trace).

    Returns
    -------
    :class:`~repro.sssp.result.ShortestPathTree`
    """
    n = graph.n
    if not 0 <= source < n:
        raise ValueError("source out of range")
    pq = queue(graph) if callable(queue) else make_queue(queue, graph)

    dist = np.full(n, INF, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64) if with_parents else None
    done = np.zeros(n, dtype=bool)

    dist[source] = 0
    pq.insert(source, 0)
    scanned = 0
    scan_order: list[int] | None = [] if record_order else None

    first, arc_head, arc_len = graph.first, graph.arc_head, graph.arc_len
    while pq:
        v, dv = pq.pop_min()
        if done[v]:  # stale copy from a lazy queue
            continue
        done[v] = True
        scanned += 1
        if scan_order is not None:
            scan_order.append(v)
        if target is not None and v == target:
            break
        if dist_bound is not None and dv > dist_bound:
            break
        for i in range(first[v], first[v + 1]):
            w = int(arc_head[i])
            nd = dv + int(arc_len[i])
            if nd < dist[w]:
                if dist[w] >= INF:
                    pq.insert(w, nd)
                else:
                    pq.decrease_key(w, nd)
                dist[w] = nd
                if parent is not None:
                    parent[w] = v
    result = ShortestPathTree(
        source=source, dist=dist, parent=parent, scanned=scanned
    )
    if scan_order is not None:
        result.extra["scan_order"] = np.array(scan_order, dtype=np.int64)
    return result
