"""Breadth-first search.

BFS is the paper's speed-of-light reference: a linear-time traversal
whose running time any NSSP algorithm can at best approach (Section I
notes smart-queue Dijkstra stays within a factor of three of BFS).  The
implementation is frontier-based and vectorized: each round gathers all
arcs out of the current frontier at once, which is the same
level-synchronous pattern PHAST's sweep uses.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import INF, StaticGraph
from ..utils.segments import gather_ranges
from .result import ShortestPathTree

__all__ = ["bfs", "bfs_tree_python"]


def bfs(graph: StaticGraph, source: int, *, with_parents: bool = True) -> ShortestPathTree:
    """Hop-count distances from ``source`` (arc lengths ignored).

    Vectorized frontier expansion: round ``r`` settles all vertices at
    hop distance ``r``.
    """
    n = graph.n
    if not 0 <= source < n:
        raise ValueError("source out of range")
    dist = np.full(n, INF, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64) if with_parents else None
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    scanned = 0
    first, arc_head = graph.first, graph.arc_head
    hop = 0
    while frontier.size:
        scanned += frontier.size
        hop += 1
        # Gather all arcs out of the frontier in one shot.
        arc_idx, owner = gather_ranges(first, frontier)
        if arc_idx.size == 0:
            break
        heads = arc_head[arc_idx]
        fresh = dist[heads] >= INF
        new_vertices = heads[fresh]
        if parent is not None and new_vertices.size:
            tails = frontier[owner[fresh]]
            # A head may appear multiple times in one round; the last
            # assignment wins, and any of them is a valid BFS parent.
            parent[new_vertices] = tails
        if new_vertices.size:
            dist[new_vertices] = hop
            frontier = np.unique(new_vertices)
        else:
            frontier = new_vertices
    return ShortestPathTree(source=source, dist=dist, parent=parent, scanned=scanned)


def bfs_tree_python(graph: StaticGraph, source: int) -> ShortestPathTree:
    """Reference scalar BFS used to cross-check the vectorized version."""
    from collections import deque

    n = graph.n
    dist = np.full(n, INF, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    q: deque[int] = deque([source])
    scanned = 0
    while q:
        v = q.popleft()
        scanned += 1
        for w in graph.neighbors(v):
            if dist[w] >= INF:
                dist[w] = dist[v] + 1
                parent[w] = v
                q.append(int(w))
    return ShortestPathTree(source=source, dist=dist, parent=parent, scanned=scanned)
