"""Baseline single-source shortest path algorithms."""

from .bfs import bfs, bfs_tree_python
from .dijkstra import QUEUE_NAMES, dijkstra, make_queue
from .result import ShortestPathTree

__all__ = [
    "bfs",
    "bfs_tree_python",
    "dijkstra",
    "make_queue",
    "QUEUE_NAMES",
    "ShortestPathTree",
]
