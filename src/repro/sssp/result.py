"""Result container shared by the shortest-path tree algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import INF

__all__ = ["ShortestPathTree"]


@dataclass
class ShortestPathTree:
    """Distances (and optionally parents) from one source.

    Attributes
    ----------
    source:
        The root vertex.
    dist:
        ``dist[v]`` is the shortest distance from ``source`` to ``v``,
        or :data:`repro.graph.INF` if unreachable.
    parent:
        ``parent[v]`` is ``v``'s predecessor on a shortest path, ``-1``
        for the source and unreachable vertices; ``None`` when parents
        were not requested.
    scanned:
        Number of vertices the search scanned (settled), for work
        accounting.
    """

    source: int
    dist: np.ndarray
    parent: np.ndarray | None = None
    scanned: int = 0
    extra: dict = field(default_factory=dict)

    def reached(self) -> np.ndarray:
        """Boolean mask of vertices with finite distance."""
        return self.dist < INF

    def path_to(self, v: int) -> list[int]:
        """Vertex sequence of the tree path ``source -> v``.

        Requires parents; raises ``ValueError`` if ``v`` is unreachable.
        """
        if self.parent is None:
            raise ValueError("tree was computed without parent pointers")
        if self.dist[v] >= INF:
            raise ValueError(f"vertex {v} is unreachable from {self.source}")
        path = [int(v)]
        while path[-1] != self.source:
            p = int(self.parent[path[-1]])
            if p < 0:
                raise ValueError("broken parent chain")
            path.append(p)
        path.reverse()
        return path
