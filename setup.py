"""Legacy setup shim.

The offline environment ships a setuptools without PEP 660 editable
wheel support; this file lets ``pip install -e .`` fall back to the
classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
