"""Tests for shortest-path-tree construction and traversal."""

import numpy as np
import pytest

from repro.core import (
    parents_in_original_graph,
    subtree_aggregate,
    tree_depths,
    validate_tree,
)
from repro.graph import INF, StaticGraph, path_graph
from repro.sssp import dijkstra


def test_parents_recovered_from_phast(road, road_engine):
    t = road_engine.tree(21)
    parent = parents_in_original_graph(road, t.dist, 21)
    assert validate_tree(road, t.dist, parent, 21)


def test_parents_match_distances(road):
    t = dijkstra(road, 0, with_parents=False)
    parent = parents_in_original_graph(road, t.dist, 0)
    for v in range(road.n):
        if v == 0 or t.dist[v] >= INF:
            continue
        p = int(parent[v])
        assert t.dist[p] + road.arc_length(p, v) == t.dist[v]


def test_parents_reject_zero_lengths():
    g = StaticGraph(2, [0], [1], [0])
    dist = np.array([0, 0], dtype=np.int64)
    with pytest.raises(ValueError):
        parents_in_original_graph(g, dist, 0)


def test_parents_unreachable_stay_minus_one():
    g = StaticGraph(3, [0], [1], [4])
    dist = dijkstra(g, 0, with_parents=False).dist
    parent = parents_in_original_graph(g, dist, 0)
    assert parent[2] == -1


def test_validate_tree_detects_bad_parent(road):
    t = dijkstra(road, 0)
    parent = t.parent.copy()
    # Point some vertex at a wrong parent.
    v = 17
    parent[v] = (int(parent[v]) + 1) % road.n
    assert not validate_tree(road, t.dist, parent, 0)


def test_validate_tree_detects_missing_parent(road):
    t = dijkstra(road, 0)
    parent = t.parent.copy()
    parent[11] = -1
    assert not validate_tree(road, t.dist, parent, 0)


def test_validate_tree_wrong_source_label(road):
    t = dijkstra(road, 0)
    dist = t.dist.copy()
    dist[0] = 5
    assert not validate_tree(road, dist, t.parent, 0)


def test_tree_depths_path():
    g = path_graph(5, length=2)
    t = dijkstra(g, 0)
    depth = tree_depths(t.parent, t.dist, 0)
    assert depth.tolist() == [0, 1, 2, 3, 4]


def test_tree_depths_unreachable():
    g = StaticGraph(3, [0], [1], [1])
    t = dijkstra(g, 0)
    depth = tree_depths(t.parent, t.dist, 0)
    assert depth[2] == -1


def test_subtree_aggregate_path():
    g = path_graph(4, length=1)
    t = dijkstra(g, 0)
    # Sum of ones = subtree sizes.
    sizes = subtree_aggregate(t.parent, t.dist, np.ones(4), 0)
    assert sizes.tolist() == [4, 3, 2, 1]


def test_subtree_aggregate_star():
    from repro.graph import star_graph

    g = star_graph(5)
    t = dijkstra(g, 0)
    sizes = subtree_aggregate(t.parent, t.dist, np.ones(5), 0)
    assert sizes[0] == 5
    assert np.all(sizes[1:] == 1)
