"""Tests for the functional SIMT simulator."""

import numpy as np
import pytest

from repro.ch import contract_graph
from repro.core import SweepStructure
from repro.graph import path_graph, star_graph
from repro.simulator import GTX_480, GTX_580, GpuFunctionalSim
from repro.simulator.gpu_functional import SEGMENT_BYTES, _segments


def test_segments_counting():
    assert _segments(np.array([], dtype=np.int64)) == 0
    assert _segments(np.array([0, 4, 8, 28])) == 1  # one 32B window
    assert _segments(np.array([0, 32])) == 2
    assert _segments(np.array([0, 31, 32, 63])) == 2
    assert _segments(np.arange(0, 32 * 10, 32)) == 10


@pytest.fixture(scope="module")
def sim(road_ch_module):
    return GpuFunctionalSim(SweepStructure(road_ch_module))


@pytest.fixture(scope="module")
def road_ch_module():
    from repro.graph import RoadNetworkParams, road_network

    return contract_graph(road_network(RoadNetworkParams(rows=16, cols=16, seed=1)))


def test_kernel_count_equals_levels(sim):
    report = sim.run(1)
    assert len(report.kernels) == sim.sweep.num_levels


def test_vertex_coverage(sim):
    report = sim.run(1)
    assert sum(ks.vertices for ks in report.kernels) == sim.sweep.n


def test_useful_iterations_equal_arc_count(sim):
    """Every downward arc is processed exactly once per tree."""
    for k in (1, 4, 32):
        report = sim.run(k)
        useful = sum(ks.useful_lane_iterations for ks in report.kernels)
        lanes_per_vertex = max(1, min(k, 32))
        assert useful == sim.sweep.num_arcs * lanes_per_vertex


def test_k32_has_no_divergence(sim):
    """Paper: at k = 32 all lanes of a warp work on one vertex."""
    report = sim.run(32)
    assert report.mean_divergence_waste == pytest.approx(0.0)


def test_divergence_shrinks_with_k(sim):
    w1 = sim.run(1).mean_divergence_waste
    w16 = sim.run(16).mean_divergence_waste
    assert w16 < w1


def test_degree_order_moves_more_data(sim):
    """Section VI: degree-sorted warps scatter the label gathers."""
    level = sim.run(1)
    degree = sim.run(1, vertex_order="degree")
    assert degree.total_transactions > level.total_transactions
    # Same work either way.
    assert sum(k.useful_lane_iterations for k in degree.kernels) == sum(
        k.useful_lane_iterations for k in level.kernels
    )


def test_degree_order_irrelevant_at_k32(sim):
    """One warp = one vertex at k=32: intra-level order cannot matter."""
    a = sim.run(32)
    b = sim.run(32, vertex_order="degree")
    assert a.total_transactions == b.total_transactions


def test_per_tree_time_improves_with_k(sim):
    times = [sim.run(k).total_ms / k for k in (1, 4, 16)]
    assert times[0] > times[1] > times[2]


def test_faster_card_is_faster(sim):
    sw = sim.sweep
    slow = GpuFunctionalSim(sw, GTX_480).run(4)
    fast = GpuFunctionalSim(sw, GTX_580).run(4)
    assert fast.total_ms < slow.total_ms


def test_bad_vertex_order_rejected(sim):
    with pytest.raises(ValueError):
        sim.run(1, vertex_order="random")


def test_star_graph_no_divergence():
    """A star's downward graph has in-degree exactly 1 at every leaf
    (the hub outranks everything): warps never diverge."""
    ch = contract_graph(star_graph(200))
    sim = GpuFunctionalSim(SweepStructure(ch))
    report = sim.run(1)
    assert report.mean_divergence_waste == pytest.approx(0.0)


def test_road_network_diverges_at_k1(sim):
    """Real (road-like) levels mix in-degrees, so k=1 warps diverge —
    the irregularity Section VI calls out for actual road networks."""
    report = sim.run(1)
    assert report.mean_divergence_waste > 0.1


def test_path_graph_uniform():
    """A path has degree <= 2 everywhere: divergence is minimal."""
    ch = contract_graph(path_graph(64))
    sim = GpuFunctionalSim(SweepStructure(ch))
    report = sim.run(1)
    assert report.mean_divergence_waste < 0.5
