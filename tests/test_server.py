"""Tests for the async query service (`repro.server`).

The acceptance bar: distances over the wire are bit-identical to a
direct :class:`~repro.core.phast.PhastEngine`, under concurrency, for
all four request types — plus admission control, deadlines, and the
graceful-drain contract.
"""

from __future__ import annotations

import os
import socket
import struct
import threading

import numpy as np
import pytest

from repro.core import PhastEngine
from repro.server import (
    AdmissionController,
    PhastService,
    ProtocolError,
    ServerClient,
    ServerConfig,
    ServerError,
    serve_in_thread,
)
from repro.server import protocol


# ---------------------------------------------------------------------------
# Fixtures


@pytest.fixture(scope="module")
def reference(road, road_ch):
    """Precomputed serial distances (the bit-exactness oracle)."""
    engine = PhastEngine(road_ch)
    return np.stack([engine.tree(s).dist for s in range(road.n)])


@pytest.fixture(scope="module")
def server(road, road_ch):
    """One warm service shared by the read-only tests."""
    service = PhastService(
        road_ch,
        graph=road,
        config=ServerConfig(batch_max=4, max_wait_ms=25.0, max_pending=64),
    )
    with serve_in_thread(service) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServerClient(server.host, server.port) as c:
        yield c


# ---------------------------------------------------------------------------
# Protocol framing


def test_protocol_roundtrip():
    frame = protocol.encode_message({"id": 1, "op": "ping"})
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    assert protocol.decode_body(frame[4:]) == {"id": 1, "op": "ping"}


def test_protocol_rejects_non_object():
    with pytest.raises(ProtocolError):
        protocol.decode_body(b"[1, 2]")
    with pytest.raises(ProtocolError):
        protocol.decode_body(b"{nope")


def test_protocol_rejects_hostile_length(server):
    with socket.create_connection((server.host, server.port), timeout=10) as s:
        s.sendall(struct.pack(">I", protocol.MAX_MESSAGE_BYTES + 1))
        # Server must drop the connection rather than buffer 64 MiB.
        s.settimeout(10)
        assert s.recv(1) == b""


# ---------------------------------------------------------------------------
# The four request types: bit-identical to the direct engine


def test_ping_info(client, road):
    assert client.ping()
    info = client.info()
    assert info["n"] == road.n
    assert info["m"] == road.m
    assert info["batching"] is True


def test_tree_bit_identical(client, reference):
    for s in (0, 7, 211, 399):
        assert np.array_equal(client.tree(s), reference[s])


def test_one_to_many_bit_identical(client, reference):
    targets = [0, 3, 17, 399, 17]  # duplicates allowed
    got = client.one_to_many(5, targets)
    assert np.array_equal(got, reference[5][targets])


def test_isochrone_bit_identical(client, reference):
    for budget in (0, 1500, 10**9):
        got = client.isochrone(42, budget)
        assert np.array_equal(got, np.flatnonzero(reference[42] <= budget))


def test_query_bit_identical(client, reference):
    rng = np.random.default_rng(11)
    n = reference.shape[0]
    for _ in range(20):
        s, t = int(rng.integers(n)), int(rng.integers(n))
        resp = client.query(s, t)
        assert resp["distance"] == int(reference[s][t])
        assert resp["reachable"] == bool(reference[s][t] < 2**62)


def test_query_stall_matches(client, reference):
    resp = client.query(3, 311, stall=True)
    assert resp["distance"] == int(reference[3][311])


def test_concurrent_mixed_workload_bit_identical(server, reference):
    """All four ops from parallel closed-loop clients, all bit-exact."""
    n = reference.shape[0]
    errors: list[str] = []

    def worker(tid: int) -> None:
        rng = np.random.default_rng(100 + tid)
        try:
            with ServerClient(server.host, server.port) as c:
                for i in range(16):
                    s = int(rng.integers(n))
                    if i % 4 == 0:
                        t = int(rng.integers(n))
                        assert c.query(s, t)["distance"] == int(reference[s][t])
                    elif i % 4 == 1:
                        assert np.array_equal(c.tree(s), reference[s])
                    elif i % 4 == 2:
                        targets = rng.choice(n, size=6, replace=False)
                        assert np.array_equal(
                            c.one_to_many(s, targets), reference[s][targets]
                        )
                    else:
                        budget = int(rng.integers(1, 5000))
                        assert np.array_equal(
                            c.isochrone(s, budget),
                            np.flatnonzero(reference[s] <= budget),
                        )
        except Exception as exc:  # surfaced via the main thread's assert
            errors.append(f"thread {tid}: {exc!r}")

    threads = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert not errors, errors


def test_microbatching_actually_coalesces(server):
    """Concurrent sweep requests must share dispatches (mean size > 1)."""

    def hammer(tid: int) -> None:
        with ServerClient(server.host, server.port) as c:
            for _ in range(10):
                c.one_to_many(tid, [0, 1, 2])

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    with ServerClient(server.host, server.port) as c:
        batches = c.metrics()["batches"]
    assert batches["count"] >= 1
    sizes = {int(k): v for k, v in batches["size_histogram"].items()}
    assert any(size > 1 for size in sizes), sizes
    assert batches["mean_size"] > 1.0


def test_metrics_shape(client):
    client.tree(0)
    m = client.metrics()
    assert m["requests_total"]["tree"] >= 1
    lat = m["latency_ms"]["tree"]
    assert lat["count"] >= 1
    assert lat["p50_ms"] <= lat["p99_ms"] <= lat["max_ms"] + 1e-9
    assert m["admission"]["max_pending"] == 64
    assert m["pool"]["trees_computed"] >= 1
    total_batched = sum(
        int(s) * c for s, c in m["batches"]["size_histogram"].items()
    )
    assert total_batched == m["batches"]["wait_ms"]["count"]


# ---------------------------------------------------------------------------
# Validation, deadlines, admission


def test_bad_requests_rejected_with_400(client, road):
    cases = [
        ("frobnicate", {}),
        ("tree", {}),
        ("tree", {"source": -1}),
        ("tree", {"source": road.n}),
        ("tree", {"source": "zero"}),
        ("tree", {"source": True}),
        ("query", {"source": 0}),
        ("query", {"source": 0, "target": road.n}),
        ("one_to_many", {"source": 0}),
        ("one_to_many", {"source": 0, "targets": []}),
        ("one_to_many", {"source": 0, "targets": [0, road.n]}),
        ("one_to_many", {"source": 0, "targets": "0,1"}),
        ("isochrone", {"source": 0}),
        ("isochrone", {"source": 0, "budget": -1}),
        ("tree", {"source": 0, "timeout_ms": "fast"}),
    ]
    for op, params in cases:
        with pytest.raises(ServerError) as exc_info:
            client.call(op, **params)
        assert exc_info.value.code == 400, (op, params)


def test_expired_deadline_rejected_with_504(client):
    with pytest.raises(ServerError) as exc_info:
        client.tree(0, timeout_ms=-1)
    assert exc_info.value.code == 504
    with pytest.raises(ServerError) as exc_info:
        client.query(0, 1, timeout_ms=-1)
    assert exc_info.value.code == 504


def test_null_timeout_disables_deadline(client, reference):
    assert np.array_equal(client.tree(9, timeout_ms=None), reference[9])


def test_admission_control_sheds_load(road_ch):
    """More concurrent work than max_pending → some 429s, no failures."""
    service = PhastService(
        road_ch,
        config=ServerConfig(batch_max=2, max_wait_ms=50.0, max_pending=2),
    )
    shed = threading.Event()
    served = []

    def worker(tid: int) -> None:
        with ServerClient(handle.host, handle.port) as c:
            for _ in range(6):
                try:
                    c.one_to_many(tid, [0, 1])
                    served.append(tid)
                except ServerError as exc:
                    assert exc.code == 429
                    shed.set()

    with serve_in_thread(service) as handle:
        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        with ServerClient(handle.host, handle.port) as c:
            rejected = c.metrics()["admission"]["rejected"]
    assert shed.is_set(), "expected at least one 429 under overload"
    assert rejected["overloaded"] >= 1
    assert served, "some requests must still be served under overload"


def test_admission_controller_unit():
    ac = AdmissionController(max_pending=2)
    assert ac.try_acquire() is None
    assert ac.try_acquire() is None
    assert ac.try_acquire() == AdmissionController.OVERLOADED
    ac.release()
    assert ac.try_acquire() is None
    ac.start_draining()
    assert ac.try_acquire() == AdmissionController.DRAINING
    snap = ac.snapshot()
    assert snap["pending"] == 2
    assert snap["rejected"] == {"overloaded": 1, "draining": 1, "degraded": 0}
    assert snap["capacity"] == 1.0
    assert snap["effective_max_pending"] == 2
    ac.release()
    ac.release()
    with pytest.raises(RuntimeError):
        ac.release()


def test_admission_saturated_while_degraded_reports_overloaded():
    """A full nominal bound is OVERLOADED even with capacity lost.

    DEGRADED is reserved for rejections that exist only because the
    bound was scaled down; conflating the two would make a saturated
    instance that lost one worker report every rejection as
    "degraded" and skew the counters operators alert on.
    """
    ac = AdmissionController(max_pending=2)
    assert ac.try_acquire() is None
    assert ac.try_acquire() is None           # pending == max_pending
    ac.set_capacity(0.5)                      # effective bound: 1
    assert ac.try_acquire() == AdmissionController.OVERLOADED
    ac.release()                              # pending == effective bound
    assert ac.try_acquire() == AdmissionController.DEGRADED
    snap = ac.snapshot()
    assert snap["rejected"]["overloaded"] == 1
    assert snap["rejected"]["degraded"] == 1


def test_admission_degraded_mode():
    """Capacity loss shrinks the effective bound and renames the reason."""
    ac = AdmissionController(max_pending=4)
    ac.set_capacity(0.5)
    assert ac.try_acquire() is None
    assert ac.try_acquire() is None
    assert ac.try_acquire() == AdmissionController.DEGRADED
    snap = ac.snapshot()
    assert snap["effective_max_pending"] == 2
    assert snap["capacity"] == 0.5
    assert snap["rejected"]["degraded"] == 1
    # Even a dead pool keeps one slot open (work trickles while
    # workers respawn) and recovery restores the full bound.
    ac.set_capacity(0.0)
    assert ac.snapshot()["effective_max_pending"] == 1
    ac.set_capacity(1.0)
    assert ac.try_acquire() is None
    assert ac.try_acquire() is None
    assert ac.try_acquire() == AdmissionController.OVERLOADED
    ac.set_capacity(7.0)  # clamped
    assert ac.capacity == 1.0


# ---------------------------------------------------------------------------
# Graceful drain


def test_graceful_drain_completes_inflight_and_unlinks_shm(road_ch, reference):
    """Drain mid-burst: admitted work finishes bit-exact, new work gets
    503/connection-refused, and the pool's shared memory is unlinked."""
    service = PhastService(
        road_ch,
        config=ServerConfig(
            batch_max=4, max_wait_ms=10.0, num_workers=2, force_pool=True
        ),
    )
    shm_name = service.pool._shm.name
    handle = serve_in_thread(service)
    outcomes: list[str] = []
    lock = threading.Lock()
    first_ok = threading.Event()

    def worker(tid: int) -> None:
        try:
            with ServerClient(handle.host, handle.port) as c:
                for i in range(20):
                    got = c.tree((tid * 31 + i) % reference.shape[0])
                    assert np.array_equal(
                        got, reference[(tid * 31 + i) % reference.shape[0]]
                    )
                    with lock:
                        outcomes.append("ok")
                    first_ok.set()
        except ServerError as exc:
            assert exc.code == 503, exc
            with lock:
                outcomes.append("draining")
        except (ConnectionError, OSError):
            with lock:
                outcomes.append("closed")

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    assert first_ok.wait(60)  # let the burst actually reach the server
    handle.stop()  # drain while the burst is in flight
    for t in threads:
        t.join(120)
    assert "ok" in outcomes  # in-flight work completed
    # The segment must be gone from /dev/shm.
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=shm_name)
    # And the port must be closed.
    with pytest.raises(OSError):
        socket.create_connection((handle.host, handle.port), timeout=2)


def test_batching_off_mode_still_correct(road_ch, reference):
    service = PhastService(
        road_ch, config=ServerConfig(batching=False, batch_max=8)
    )
    with serve_in_thread(service) as handle:
        with ServerClient(handle.host, handle.port) as c:
            assert c.info()["batching"] is False
            for s in (1, 2, 3):
                assert np.array_equal(c.tree(s), reference[s])


def test_same_source_requests_coalesce_into_one_lane(road_ch, reference):
    """Concurrent requests sharing a source share one sweep lane.

    Every request below uses source 3, so any batch of size > 1 needs
    exactly one lane — cumulative lanes must fall short of cumulative
    batched requests, and every answer must still be bit-identical.
    """
    service = PhastService(
        road_ch,
        config=ServerConfig(batch_max=8, max_wait_ms=25.0),
    )
    with serve_in_thread(service) as handle:
        failures: list[str] = []

        def hammer(tid: int) -> None:
            try:
                with ServerClient(handle.host, handle.port) as c:
                    for i in range(10):
                        targets = [tid, i, (tid + i) % 36]
                        got = c.one_to_many(3, targets)
                        want = [int(reference[3][t]) for t in targets]
                        if not np.array_equal(got, want):
                            failures.append(f"{got} != {want}")
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(repr(exc))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        with ServerClient(handle.host, handle.port) as c:
            batches = c.metrics()["batches"]
    assert not failures, failures[:3]
    sizes = {int(k): v for k, v in batches["size_histogram"].items()}
    assert any(size > 1 for size in sizes), sizes
    # mean_lanes counts distinct sources per dispatch; with one shared
    # source it stays at 1.0 while mean_size exceeds it.
    assert batches["mean_lanes"] == 1.0
    assert batches["mean_size"] > batches["mean_lanes"]


# ---------------------------------------------------------------------------
# Generation signals + persistent-connection client (router substrate)


def test_health_reports_generation_signals(client, server):
    """The ``health`` op carries the restart-detection fields a router
    keys generation changes on: pid, listening address, and a
    monotonic ``uptime_seconds`` that only moves backwards when the
    process is new."""
    health = client.health()
    assert health["pid"] == os.getpid()  # in-thread server, same process
    assert health["address"] == f"{server.host}:{server.port}"
    assert health["uptime_seconds"] >= 0.0
    assert client.health()["uptime_seconds"] >= health["uptime_seconds"]


def test_client_reuses_one_connection(server):
    with ServerClient(server.host, server.port) as c:
        for _ in range(10):
            assert c.ping()
        assert c.connected
        assert c.connects_total == 1
        assert c.reconnects_total == 0


def test_client_reconnects_after_connection_loss(server):
    with ServerClient(server.host, server.port) as c:
        assert c.ping()
        # Kill the transport under the client; the next call must
        # notice, reconnect, and succeed — counted as one reconnect.
        c._sock.shutdown(socket.SHUT_RDWR)
        assert c.ping()
        assert c.connects_total == 2
        assert c.reconnects_total == 1
