"""Tests for the persistent shared-memory batch pool."""

import glob

import numpy as np
import pytest

from repro.core import PhastPool, TreeReducer
from repro.graph import INF
from repro.sssp import dijkstra


def _shm_names() -> set:
    """Names of live POSIX shared-memory segments (Linux)."""
    # Pool segments are named repro-<pid>-<hex>; psm_* covers anything
    # that fell back to (or predates) the anonymous default naming.
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/repro-*"))


class MaxLabelReducer(TreeReducer):
    """Max finite label over all trees (module-level: spawn-picklable)."""

    def make_state(self, ctx):
        return -1

    def fold(self, ctx, state, index, source, dist):
        finite = dist < INF
        return max(state, int(dist[finite].max()) if finite.any() else 0)

    def merge(self, states):
        return max(states) if states else -1


class GraphUsingReducer(TreeReducer):
    """Touches a published graph + array to exercise WorkerContext."""

    def make_state(self, ctx):
        return np.zeros(ctx.n, dtype=np.int64)

    def fold(self, ctx, state, index, source, dist):
        assert ctx.graph("road").n == ctx.n
        assert ctx.array("weights").shape == (ctx.n,)
        np.maximum(state, np.where(dist < INF, dist, 0), out=state)
        return state

    def merge(self, states):
        out = states[0]
        for s in states[1:]:
            np.maximum(out, s, out=out)
        return out


class ExplodingReducer(TreeReducer):
    def make_state(self, ctx):
        return None

    def fold(self, ctx, state, index, source, dist):
        raise RuntimeError("boom in worker")

    def merge(self, states):
        return None


def _eccentricity(source, dist):
    finite = dist < INF
    return int(dist[finite].max()) if finite.any() else 0


@pytest.fixture(scope="module")
def reference(road):
    sources = list(range(0, 40, 5))
    ref = np.stack(
        [dijkstra(road, s, with_parents=False).dist for s in sources]
    )
    return sources, ref


def test_serial_pool_matches_dijkstra(road_ch, reference):
    sources, ref = reference
    with PhastPool(road_ch, num_workers=1) as pool:
        assert pool.serial
        assert np.array_equal(pool.trees(sources), ref)


@pytest.mark.parametrize("k", [1, 4])
def test_forced_pool_matches_serial(road_ch, reference, k):
    """force_pool exercises worker processes even on a 1-CPU host."""
    sources, ref = reference
    with PhastPool(
        road_ch, num_workers=2, force_pool=True, sources_per_sweep=k
    ) as pool:
        assert not pool.serial
        assert np.array_equal(pool.trees(sources), ref)
        # Warm engines: a second batch on the same workers.
        assert np.array_equal(pool.trees(sources[::-1]), ref[::-1])


def test_spawn_context_attach(road_ch, reference):
    """Shared-memory attach must work without fork's address-space copy."""
    sources, ref = reference
    with PhastPool(
        road_ch, num_workers=2, force_pool=True, context="spawn"
    ) as pool:
        assert np.array_equal(pool.trees(sources), ref)


@pytest.mark.parametrize("force", [False, True])
def test_reduce_matches_serial(road_ch, reference, force):
    sources, ref = reference
    expected = int(ref[ref < INF].max())
    with PhastPool(road_ch, num_workers=2, force_pool=force) as pool:
        assert pool.reduce(sources, MaxLabelReducer()) == expected


@pytest.mark.parametrize("force", [False, True])
def test_map_matches_serial(road_ch, reference, force):
    sources, ref = reference
    expected = [_eccentricity(s, row) for s, row in zip(sources, ref)]
    with PhastPool(
        road_ch, num_workers=2, force_pool=force, sources_per_sweep=3
    ) as pool:
        assert pool.map(sources, _eccentricity) == expected


def test_reducer_context_graphs_and_arrays(road, road_ch, reference):
    sources, ref = reference
    weights = np.arange(road.n, dtype=np.int64)
    expected = np.where(ref < INF, ref, 0).max(axis=0)
    for force in (False, True):
        with PhastPool(
            road_ch,
            num_workers=2,
            force_pool=force,
            graphs={"road": road},
            arrays={"weights": weights},
        ) as pool:
            got = pool.reduce(sources, GraphUsingReducer())
            assert np.array_equal(got, expected)


def test_missing_graph_raises(road_ch):
    # Serial raises the KeyError directly; the process path wraps the
    # worker traceback in a RuntimeError.  Both name the fix.
    with PhastPool(road_ch, num_workers=1) as pool:
        with pytest.raises((KeyError, RuntimeError), match="was not published"):
            pool.reduce([0], GraphUsingReducer())
    with PhastPool(road_ch, num_workers=2, force_pool=True) as pool:
        with pytest.raises(RuntimeError, match="was not published"):
            pool.reduce([0], GraphUsingReducer())


def test_no_segment_leak_on_close(road_ch):
    before = _shm_names()
    pool = PhastPool(road_ch, num_workers=2, force_pool=True)
    pool.trees([0, 5, 9])
    assert _shm_names() - before  # segments exist while the pool lives
    pool.close()
    assert _shm_names() <= before
    pool.close()  # idempotent


def test_no_segment_leak_on_exception(road_ch):
    before = _shm_names()
    with pytest.raises(RuntimeError, match="boom in worker"):
        with PhastPool(road_ch, num_workers=2, force_pool=True) as pool:
            pool.reduce([0, 1, 2], ExplodingReducer())
    assert _shm_names() <= before


def test_pool_survives_worker_batch_error(road_ch, reference):
    """A failed batch must not poison the next one (queues stay aligned)."""
    sources, ref = reference
    with PhastPool(road_ch, num_workers=2, force_pool=True) as pool:
        with pytest.raises(RuntimeError, match="boom in worker"):
            pool.reduce(sources, ExplodingReducer())
        assert np.array_equal(pool.trees(sources), ref)


def test_closed_pool_rejects_work(road_ch):
    pool = PhastPool(road_ch, num_workers=1)
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.trees([0])


def test_alloc_output_and_out_kwarg(road_ch, reference):
    sources, ref = reference
    with PhastPool(road_ch, num_workers=2, force_pool=True) as pool:
        out = pool.alloc_output(len(sources))
        got = pool.trees(sources, out=out)
        assert got is not None and np.array_equal(out, ref)
        with pytest.raises(ValueError, match="int64 matrix"):
            pool.trees(sources, out=np.zeros((2, 2), dtype=np.int64))
        foreign = np.zeros((len(sources), pool.n), dtype=np.int64)
        with pytest.raises(ValueError, match="alloc_output"):
            pool.trees(sources, out=foreign)


def test_empty_batches(road_ch):
    with PhastPool(road_ch, num_workers=1) as pool:
        assert pool.trees([]).shape == (0, pool.n)
        assert pool.map([], _eccentricity) == []
        assert pool.reduce([], MaxLabelReducer()) == -1


def test_counters(road_ch):
    with PhastPool(road_ch, num_workers=1) as pool:
        pool.trees([0, 1])
        pool.map([2], _eccentricity)
        assert pool.batches_run == 2
        assert pool.trees_computed == 3


def test_apps_pool_vs_serial(road, road_ch):
    """The ported applications give identical results on the pool path."""
    from repro.apps import betweenness, diameter, exact_reaches
    from repro.apps.betweenness import betweenness_pool

    sources = np.arange(0, 40, 5)
    d_ser = diameter(road, road_ch, sources=sources)
    r_ser = exact_reaches(road, road_ch, sources=sources)
    b_ser = betweenness(road, road_ch, sources=sources)
    with PhastPool(
        road_ch, num_workers=2, force_pool=True, graphs={"graph": road}
    ) as pool:
        d_pool = diameter(road, pool=pool, sources=sources)
        r_pool = exact_reaches(road, pool=pool, sources=sources)
    assert d_pool == d_ser
    assert np.array_equal(r_pool, r_ser)
    with betweenness_pool(
        road_ch, road, num_workers=2, force_pool=True
    ) as pool:
        b_pool = betweenness(road, pool=pool, sources=sources)
    assert np.allclose(b_pool, b_ser)


def test_arcflags_pool_vs_serial(small_road):
    from repro.apps import compute_arc_flags, partition_graph
    from repro.apps.arcflags import arcflag_pool
    from repro.ch import contract_graph

    part = partition_graph(small_road, num_cells=4, seed=0)
    ref = compute_arc_flags(small_road, part, method="dijkstra")
    rch = contract_graph(small_road.reverse())
    ser = compute_arc_flags(small_road, part, reverse_ch=rch)
    with arcflag_pool(
        rch, small_road, part, num_workers=2, force_pool=True
    ) as pool:
        pooled = compute_arc_flags(small_road, part, pool=pool)
    assert np.array_equal(ref.flags, ser.flags)
    assert np.array_equal(ref.flags, pooled.flags)


def test_trees_per_core_shim_uses_pool(road, road_ch):
    """The compatibility shim returns owning copies in source order."""
    from repro.core import trees_per_core

    sources = [7, 1, 13]
    out = trees_per_core(road_ch, sources, num_workers=2, force_pool=True)
    for s, dist in zip(sources, out):
        # Owning copies: the pool's shared buffer dies with the call.
        assert dist.flags["OWNDATA"]
        assert np.array_equal(
            dist, dijkstra(road, s, with_parents=False).dist
        )


# -- generic task pool --------------------------------------------------------


def _square_plus(ctx, common, item):
    return item * item + common["offset"]


def _sum_boot(ctx, common, item):
    return int(ctx.boot["base"].sum()) + item


def _sum_published(ctx, common, item):
    views = ctx.attach(*common["segment"])
    return int(views["vals"][item])


def _count_calls(ctx, common, item):
    ctx.state["calls"] = ctx.state.get("calls", 0) + 1
    return ctx.state["calls"]


@pytest.mark.parametrize("force", [False, True])
def test_task_pool_submit_ordering(force):
    from repro.core import TaskPool

    items = list(range(23))
    with TaskPool(num_workers=2, force_pool=force) as pool:
        got = pool.submit(_square_plus, items, common={"offset": 7})
        assert got == [i * i + 7 for i in items]
        assert pool.submit(_square_plus, [], common={"offset": 0}) == []


@pytest.mark.parametrize("force", [False, True])
def test_task_pool_boot_arrays(force):
    from repro.core import TaskPool

    base = np.arange(10, dtype=np.int64)
    with TaskPool(
        arrays={"base": base}, num_workers=2, force_pool=force
    ) as pool:
        assert pool.submit(_sum_boot, [0, 100]) == [45, 145]


@pytest.mark.parametrize("force", [False, True])
def test_task_pool_publish_and_retire(force):
    """Dynamic segments: publish → attach-by-name in handlers → retire.

    Published arrays are snapshots — mutating the source afterwards
    must not leak into what workers read — and closing the pool must
    leave no orphaned /dev/shm segments.
    """
    from repro.core import TaskPool

    before = _shm_names()
    vals = np.arange(0, 50, 5, dtype=np.int64)
    with TaskPool(num_workers=2, force_pool=force) as pool:
        segment = pool.publish_arrays({"vals": vals})
        vals += 1000  # snapshot semantics: workers must not see this
        got = pool.submit(
            _sum_published, [0, 3, 9], common={"segment": segment}
        )
        assert got == [0, 15, 45]
        pool.retire_publication(segment[0])
        # A fresh publication under a new name works after retiring.
        second = pool.publish_arrays({"vals": vals})
        assert pool.submit(
            _sum_published, [1], common={"segment": second}
        ) == [1005]
    assert _shm_names() <= before


def test_task_context_state_persists_across_submissions():
    """A worker's scratch state survives between submit() calls."""
    from repro.core import TaskPool

    with TaskPool(num_workers=1) as pool:
        first = pool.submit(_count_calls, [0, 0])
        second = pool.submit(_count_calls, [0])
        assert first == [1, 2]
        assert second == [3]


def test_task_pool_closed_rejects_work():
    from repro.core import TaskPool

    pool = TaskPool(num_workers=1)
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.submit(_square_plus, [1], common={"offset": 0})


_GUARD_SCRIPT = r"""
import signal, sys, time

from repro.ch import contract_graph
from repro.core import PhastPool, install_signal_guard
from repro.graph import RoadNetworkParams, road_network

graph = road_network(RoadNetworkParams(rows=6, cols=6, seed=1))
pool = PhastPool(contract_graph(graph), num_workers=2, force_pool=True)
pool.trees([0])  # materialize the output segment too
install_signal_guard()
print(pool._shm.name, pool._out_shm.name, "READY", flush=True)
while True:  # keep sweeping until the parent kills us
    pool.trees([1, 2])
"""


def test_signal_guard_unlinks_shm_on_sigterm(tmp_path):
    """A SIGTERM mid-sweep must not leak /dev/shm segments."""
    import os
    import signal
    import subprocess
    import sys
    from multiprocessing import shared_memory

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src")
    proc = subprocess.Popen(
        [sys.executable, "-c", _GUARD_SCRIPT],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    try:
        line = proc.stdout.readline().split()
        assert line[-1] == "READY", line
        shm_names = line[:2]
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    # The guard re-raises with default semantics: killed by SIGTERM.
    assert rc == -signal.SIGTERM
    for name in shm_names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
