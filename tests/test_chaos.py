"""Chaos tests: the pool and server under injected worker faults.

PHAST sweeps are deterministic, so every recovery scenario has an
exact oracle — the distance matrix after a crash, hang, or respawn
must be bit-identical to the undisturbed run.  Each scenario also
asserts zero shared-memory leakage: fault tolerance that trades
crashes for /dev/shm exhaustion is no fault tolerance at all.
"""

import glob
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import ChunkQuarantined, FaultPlan, PhastPool, parse_fault_plan
from repro.server import (
    PhastService,
    ServerClient,
    ServerConfig,
    ServerError,
    protocol,
    serve_in_thread,
)
from repro.sssp import dijkstra


def _shm_names() -> set:
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/repro-*"))


@pytest.fixture(scope="module")
def reference(road):
    sources = list(range(0, 40, 5))
    ref = np.stack(
        [dijkstra(road, s, with_parents=False).dist for s in sources]
    )
    return sources, ref


# ---------------------------------------------------------------------------
# Fault plan parsing


def test_parse_fault_plan_specs():
    assert parse_fault_plan(None) is None
    assert parse_fault_plan("") is None
    assert parse_fault_plan("   ") is None

    plan = parse_fault_plan("crash")
    assert plan == FaultPlan(kind="crash", times=1)

    plan = parse_fault_plan("crash:chunk=2,times=2")
    assert (plan.kind, plan.chunk, plan.times) == ("crash", 2, 2)

    plan = parse_fault_plan("hang:chunk=1,worker=0")
    assert (plan.kind, plan.chunk, plan.worker, plan.times) == ("hang", 1, 0, 1)

    plan = parse_fault_plan("slow:ms=25")
    assert (plan.kind, plan.ms, plan.times) == ("slow", 25.0, None)

    plan = parse_fault_plan("slow:chunk=any,times=inf")
    assert (plan.chunk, plan.times) == (None, None)


@pytest.mark.parametrize("spec", [
    "explode",                 # unknown kind
    "crash:chunk",             # not key=value
    "crash:chunk=x",           # non-integer
    "crash:volume=11",         # unknown field
    "crash:times=0",           # budget must be >= 1
    "slow:ms=-5",              # negative sleep
])
def test_parse_fault_plan_rejects(spec):
    with pytest.raises(ValueError):
        parse_fault_plan(spec)


def test_fault_plan_env_pickup(road_ch, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT", "slow:ms=1,worker=0")
    with PhastPool(road_ch, num_workers=1) as pool:
        assert pool._fault_plan == FaultPlan(kind="slow", ms=1.0, worker=0)
    monkeypatch.delenv("REPRO_FAULT")
    with PhastPool(road_ch, num_workers=1) as pool:
        assert pool._fault_plan is None


# ---------------------------------------------------------------------------
# Pool-level chaos


def test_crash_fault_recovers_bit_identical(road_ch, reference):
    """A worker SIGKILLed mid-chunk: survivors redo its work exactly."""
    sources, ref = reference
    before = _shm_names()
    with PhastPool(
        road_ch, num_workers=2, force_pool=True,
        fault_plan="crash:chunk=1",
    ) as pool:
        assert np.array_equal(pool.trees(sources), ref)
        health = pool.health()
        assert health["deaths"] >= 1
        assert health["restarts"] >= 1
        assert health["chunk_retries"] >= 1
        assert health["workers_alive"] == 2  # replacement rejoined
        # The respawned worker re-attached to the same segments: a
        # second batch must also be exact.
        assert np.array_equal(pool.trees(sources), ref)
    assert _shm_names() <= before


def test_preprocessing_crash_recovers_bit_identical(road, monkeypatch):
    """A contraction worker SIGKILLed mid-round: the shard is
    re-dispatched and the finished hierarchy is bit-identical."""
    from repro.ch import CHParams, contract_graph_batched

    params = CHParams(strategy="batched")
    ref = contract_graph_batched(road, params)
    before = _shm_names()
    # The crash fault is a SIGKILL the worker sends itself at the top
    # of its first chunk (times=1: one death pool-wide, ever).
    monkeypatch.setenv("REPRO_FAULT", "crash:chunk=0,times=1")
    ch = contract_graph_batched(road, params, num_workers=2, force_pool=True)
    monkeypatch.delenv("REPRO_FAULT")
    health = ch.preprocessing_stats["pool_health"]
    assert health["deaths"] >= 1
    assert health["restarts"] >= 1
    assert health["chunk_retries"] >= 1
    assert np.array_equal(ref.rank, ch.rank)
    assert np.array_equal(ref.level, ch.level)
    assert np.array_equal(ref.upward.arc_head, ch.upward.arc_head)
    assert np.array_equal(ref.upward.arc_len, ch.upward.arc_len)
    assert np.array_equal(ref.downward_rev.arc_head, ch.downward_rev.arc_head)
    assert ref.num_shortcuts == ch.num_shortcuts
    assert _shm_names() <= before


def test_external_sigkill_recovers_bit_identical(road_ch, reference):
    """An OOM-style kill from outside (not injected in the chunk loop)."""
    sources, ref = reference
    before = _shm_names()
    with PhastPool(
        road_ch, num_workers=2, force_pool=True,
        # Stretch every chunk so the kill lands mid-batch.
        fault_plan="slow:ms=150",
    ) as pool:
        victim = pool.supervisor.processes()[0]
        done = threading.Event()

        def assassin():
            time.sleep(0.2)
            try:
                os.kill(victim.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            done.set()

        threading.Thread(target=assassin, daemon=True).start()
        got = pool.trees(sources)
        done.wait(5)
        assert np.array_equal(got, ref)
    assert _shm_names() <= before


def test_hang_fault_reclaimed_by_chunk_deadline(road_ch, reference):
    """A wedged worker (heartbeat alive, chunk stuck) hits the deadline."""
    sources, ref = reference
    before = _shm_names()
    with PhastPool(
        road_ch, num_workers=2, force_pool=True,
        heartbeat_interval=0.05, chunk_timeout=0.5,
        fault_plan="hang:chunk=3",
    ) as pool:
        assert np.array_equal(pool.trees(sources), ref)
        health = pool.health()
        assert health["wedged"] >= 1
        assert health["restarts"] >= 1
    assert _shm_names() <= before


def test_poison_chunk_quarantined_then_pool_usable(road, road_ch, reference):
    """A chunk that kills two workers fails structurally, not fatally."""
    sources, ref = reference
    before = _shm_names()
    with PhastPool(
        road_ch, num_workers=2, force_pool=True,
        max_chunk_retries=2,
        fault_plan="crash:chunk=2,times=2",
    ) as pool:
        with pytest.raises(ChunkQuarantined) as excinfo:
            pool.trees(sources)
        exc = excinfo.value
        assert exc.chunk_id == 2
        assert exc.sources == [sources[2]]
        assert exc.deaths == 2
        assert pool.health()["chunks_quarantined"] == 1
        # The fault budget is spent AND the failed batch's stale
        # writers are fenced, so the next batch must be exact over
        # *different* sources — these reuse the same output rows, and
        # a chunk of the failed batch still executing in a survivor
        # would overwrite them with the old batch's values.  (Reusing
        # identical sources would mask exactly that race: a stale
        # writer scatters the same bits the new batch expects.)
        sources2 = [s + 1 for s in sources]
        ref2 = np.stack(
            [dijkstra(road, s, with_parents=False).dist for s in sources2]
        )
        assert np.array_equal(pool.trees(sources2), ref2)
        # The rebuilt worker set also replays the original batch clean.
        assert np.array_equal(pool.trees(sources), ref)
    assert _shm_names() <= before


def test_degraded_pool_serves_without_respawn(road_ch, reference):
    """With the respawn budget at zero, survivors absorb a death.

    Also guards the wait-set hygiene: the dead incarnation's channel
    must be retired (its EOF'd result pipe is permanently "ready", so
    leaving it in the wait set would busy-spin the parent for the
    rest of the pool's degraded life).
    """
    sources, ref = reference
    before = _shm_names()
    with PhastPool(
        road_ch, num_workers=2, force_pool=True,
        max_respawns=0,
        fault_plan="crash:chunk=1",
    ) as pool:
        assert np.array_equal(pool.trees(sources), ref)
        health = pool.health()
        assert health["deaths"] == 1
        assert health["restarts"] == 0
        assert health["workers_alive"] == 1
        assert any(ch is None for ch in pool._channels)
        # The degraded pool keeps serving exact results.
        assert np.array_equal(pool.trees(sources), ref)
    assert _shm_names() <= before


class _FakeProc:
    """Stands in for a worker Process under supervisor unit tests."""

    def __init__(self) -> None:
        self.exitcode = None

    def kill(self) -> None:
        self.exitcode = -9

    def join(self, timeout=None) -> None:
        pass


def _wait_until(cond, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.01)
    return cond()


def test_supervisor_retries_empty_slot_after_transient_spawn_failure():
    """A fork failure leaves the slot empty; later scans refill it."""
    import multiprocessing as mp

    from repro.core import WorkerSupervisor

    ctx = mp.get_context("fork")
    sup = WorkerSupervisor(ctx, 1, heartbeat_interval=0.02, max_respawns=4)
    spawned: list[_FakeProc] = []
    fail_once = [True]

    def spawn(slot, incarnation):
        if incarnation >= 1 and fail_once:
            fail_once.pop()
            raise OSError("fork: EAGAIN")
        proc = _FakeProc()
        spawned.append(proc)
        return proc

    sup.start(spawn)
    try:
        spawned[0].exitcode = 1  # the boot worker "dies"
        assert _wait_until(lambda: sup.stats()["restarts"] == 1)
        assert sup.alive_count() == 1
        # Both the failed and the successful attempt spent budget.
        assert sup.respawn_budget == 2
        assert sup.stats()["spawn_failures"] == 1
        assert sup.healthy()
    finally:
        sup.stop()


def test_supervisor_persistent_spawn_failure_drains_budget():
    """Spawn failures must not wedge the pool in a can-respawn limbo.

    If the empty slot were never retried, ``healthy()`` would stay
    true forever (budget > 0, alive == 0) and a batch with
    outstanding chunks would loop instead of raising PoolBroken.
    """
    import multiprocessing as mp

    from repro.core import WorkerSupervisor

    ctx = mp.get_context("fork")
    sup = WorkerSupervisor(ctx, 1, heartbeat_interval=0.02, max_respawns=3)
    attempts = []

    def spawn(slot, incarnation):
        if incarnation >= 1:  # every respawn fails
            attempts.append(incarnation)
            raise OSError("fork: EAGAIN")
        return _FakeProc()

    sup.start(spawn)
    try:
        sup.processes()[0].exitcode = 1
        assert _wait_until(lambda: not sup.healthy())
        assert sup.respawn_budget == 0
        assert len(attempts) == 3  # every budget unit was retried
        assert sup.alive_count() == 0
        assert not sup.can_respawn()
    finally:
        sup.stop()


def test_capacity_fraction_tracks_lifecycle(road_ch):
    with PhastPool(road_ch, num_workers=2, force_pool=True) as pool:
        assert pool.capacity_fraction() == 1.0
    assert pool.capacity_fraction() == 0.0
    with PhastPool(road_ch, num_workers=1) as pool:  # serial path
        assert pool.capacity_fraction() == 1.0
        assert pool.health()["serial"] is True


# ---------------------------------------------------------------------------
# Server-level chaos


def test_server_survives_worker_kill(road, road_ch):
    """`repro serve` keeps answering (correctly) through a worker death."""
    before = _shm_names()
    service = PhastService(
        road_ch,
        config=ServerConfig(
            batch_max=4, num_workers=2, force_pool=True,
            heartbeat_interval_ms=50.0, health_poll_ms=50.0,
        ),
    )
    expected = {s: dijkstra(road, s, with_parents=False).dist
                for s in (0, 7, 21)}
    with serve_in_thread(service) as handle:
        with ServerClient(handle.host, handle.port, max_retries=3) as client:
            for s, ref in expected.items():
                assert np.array_equal(client.tree(s), ref)
            health = client.health()
            assert health["status"] == "ok"
            assert health["ready"] is True
            assert health["pool"]["workers_alive"] == 2

            os.kill(service.pool.supervisor.processes()[0].pid,
                    signal.SIGKILL)
            # Queries must keep succeeding throughout the respawn
            # window, bit-identical to the references.
            deadline = time.monotonic() + 30
            recovered = False
            while time.monotonic() < deadline and not recovered:
                for s, ref in expected.items():
                    assert np.array_equal(client.tree(s), ref)
                health = client.health()
                recovered = (health["pool"]["workers_alive"] == 2
                             and health["pool"]["restarts"] >= 1)
            assert recovered, f"no recovery before deadline: {health}"

            metrics = client.metrics()
            assert metrics["pool"]["restarts"] >= 1
            assert metrics["pool"]["deaths"] >= 1
    assert _shm_names() <= before


def test_health_op_reports_degraded_capacity():
    """The health payload tracks admission capacity, not just liveness."""
    from repro.server.admission import AdmissionController

    ac = AdmissionController(max_pending=8)
    ac.set_capacity(0.5)
    snap = ac.snapshot()
    assert snap["effective_max_pending"] == 4
    assert snap["capacity"] == 0.5


# ---------------------------------------------------------------------------
# Client transport failures


def _listener():
    srv = socket.socket()
    srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    srv.bind(("127.0.0.1", 0))
    srv.listen(4)
    return srv, srv.getsockname()[1]


def test_client_read_timeout_names_endpoint():
    srv, port = _listener()
    hold = threading.Event()

    def server():
        conn, _ = srv.accept()
        conn.recv(4096)          # swallow the request, never answer
        hold.wait(5)
        conn.close()

    threading.Thread(target=server, daemon=True).start()
    try:
        with ServerClient("127.0.0.1", port, max_retries=0) as client:
            with pytest.raises(TimeoutError, match=f"127.0.0.1:{port}"):
                client.call("ping", timeout=0.2)
            assert client._sock is None  # desynced stream was dropped
    finally:
        hold.set()
        srv.close()


def test_client_connection_error_names_endpoint():
    srv, port = _listener()

    def server():
        conn, _ = srv.accept()
        conn.close()             # hang up before answering

    threading.Thread(target=server, daemon=True).start()
    try:
        with ServerClient("127.0.0.1", port, max_retries=0) as client:
            with pytest.raises(ConnectionError, match=f"127.0.0.1:{port}"):
                client.call("ping")
    finally:
        srv.close()


def test_client_retries_transient_then_succeeds():
    srv, port = _listener()

    def server():
        conn, _ = srv.accept()
        conn.close()             # first attempt: server "restarts"
        conn, _ = srv.accept()   # retry lands on a healthy connection
        req = protocol.recv_message(conn)
        protocol.send_message(conn, protocol.ok_response(req["id"], pong=True))
        conn.close()

    threading.Thread(target=server, daemon=True).start()
    try:
        with ServerClient("127.0.0.1", port,
                          max_retries=2, backoff_s=0.01) as client:
            assert client.ping() is True
    finally:
        srv.close()


def test_client_never_retries_server_errors():
    srv, port = _listener()
    received = []

    def server():
        conn, _ = srv.accept()
        req = protocol.recv_message(conn)
        received.append(req)
        protocol.send_message(
            conn, protocol.error_response(req["id"], 400, "bad request")
        )
        conn.settimeout(0.5)     # a retry would arrive here
        try:
            more = protocol.recv_message(conn)
            if more is not None:
                received.append(more)
        except (OSError, protocol.ProtocolError):
            pass
        conn.close()

    t = threading.Thread(target=server, daemon=True)
    t.start()
    try:
        with ServerClient("127.0.0.1", port,
                          max_retries=3, backoff_s=0.01) as client:
            with pytest.raises(ServerError, match=r"\[400\]"):
                client.call("ping")
        t.join(5)
        assert len(received) == 1, "ServerError must not be retried"
    finally:
        srv.close()
