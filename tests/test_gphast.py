"""Tests for GPHAST and the GPU cost model."""

import numpy as np
import pytest

from repro.core import GphastEngine
from repro.simulator import GTX_480, GTX_580, GpuCostModel
from repro.sssp import dijkstra


def test_gphast_distances_exact(road, road_ch, rng):
    engine = GphastEngine(road_ch)
    sources = [int(s) for s in rng.integers(0, road.n, 4)]
    res = engine.trees(sources)
    for i, s in enumerate(sources):
        ref = dijkstra(road, s, with_parents=False).dist
        assert np.array_equal(res.dist[i], ref)


def test_gphast_single_source(road, road_ch):
    engine = GphastEngine(road_ch)
    res = engine.trees(3)
    assert res.dist.shape == (1, road.n)
    assert res.report.k == 1


def test_gphast_report_fields(road_ch):
    engine = GphastEngine(road_ch)
    res = engine.trees([0, 1])
    r = res.report
    assert r.kernels == engine.sweep.num_levels
    assert r.total_ms > 0
    assert r.per_tree_ms == pytest.approx(r.total_ms / 2)
    assert r.memory_mb > 0
    assert r.fits_in_memory


def test_gphast_more_trees_is_cheaper_per_tree(road_ch):
    engine = GphastEngine(road_ch)
    per_tree = [
        engine.model.sweep_cost(
            engine._level_verts, engine._level_arcs, k
        ).per_tree_ms
        for k in (1, 2, 4, 8, 16)
    ]
    assert all(a >= b for a, b in zip(per_tree, per_tree[1:]))


def test_gphast_memory_grows_with_k(road_ch):
    engine = GphastEngine(road_ch)
    m1 = engine.model.device_memory_mb(1000, 3000, 1)
    m16 = engine.model.device_memory_mb(1000, 3000, 16)
    assert m16 > m1


def test_gtx580_beats_gtx480(road_ch):
    e580 = GphastEngine(road_ch, gpu=GTX_580)
    e480 = GphastEngine(road_ch, gpu=GTX_480)
    r580 = e580.trees([0]).report
    r480 = e480.trees([0]).report
    assert r580.total_ms < r480.total_ms


def test_degree_ordering_is_worse(road_ch):
    """Paper Section VI: degree-ordered warps hurt gather locality."""
    engine = GphastEngine(road_ch)
    level_ordered = engine.trees([0]).report
    degree_ordered = engine.degree_ordered_report(k=1)
    assert degree_ordered.total_ms > level_ordered.total_ms


def test_check_memory_paper_scale():
    """Europe at k=16 just about fills the GTX 580's 1.5 GB."""
    model = GpuCostModel(GTX_580)
    mb = model.device_memory_mb(18_000_000, 33_800_000, 16)
    assert 1300 < mb < 1600


def test_europe_scale_model_anchors():
    """Modeled per-tree times track Table III's anchors."""
    model = GpuCostModel(GTX_580)
    levels = 140
    lv = np.full(levels, 9_000_000 / (levels - 1))
    lv[0] = 9_000_000
    la = np.full(levels, 33_800_000 / levels)
    k1 = model.sweep_cost(lv, la, 1).per_tree_ms
    k16 = model.sweep_cost(lv, la, 16).per_tree_ms
    assert 4.0 < k1 < 7.5  # paper: 5.53
    assert 1.5 < k16 < 3.0  # paper: 2.21


def test_trees_with_parents(road, road_ch):
    from repro.graph import INF

    engine = GphastEngine(road_ch)
    plain = engine.trees([3, 9])
    res = engine.trees_with_parents([3, 9])
    assert res.parents is not None and len(res.parents) == 2
    # Reconstruction costs extra modeled time, same distances.
    assert res.report.total_ms > plain.report.total_ms
    assert np.array_equal(res.dist, plain.dist)
    # Parents form valid chains.
    for i, s in enumerate((3, 9)):
        parent, dist = res.parents[i], res.dist[i]
        for v in range(road.n):
            if v == s or dist[v] >= INF:
                continue
            u, hops = v, 0
            while u != s:
                u = int(parent[u])
                assert u >= 0
                hops += 1
                assert hops <= road.n


def test_sweep_cost_shape_mismatch():
    model = GpuCostModel(GTX_580)
    with pytest.raises(ValueError):
        model.sweep_cost(np.ones(3), np.ones(4), 1)
