"""Unit tests for DIMACS file I/O."""

import io

import numpy as np
import pytest

from repro.graph import (
    RoadNetworkParams,
    read_co,
    read_gr,
    road_network,
    write_co,
    write_gr,
)


def test_gr_roundtrip_small():
    g = road_network(RoadNetworkParams(rows=6, cols=6, seed=4))
    buf = io.StringIO()
    write_gr(g, buf, comment="test instance")
    buf.seek(0)
    h = read_gr(buf)
    assert g == h


def test_gr_roundtrip_files(tmp_path):
    g = road_network(RoadNetworkParams(rows=5, cols=5, seed=8))
    path = tmp_path / "g.gr"
    write_gr(g, path)
    assert read_gr(path) == g


def test_read_gr_parses_known_format():
    text = "c comment\np sp 3 2\na 1 2 10\na 2 3 20\n"
    g = read_gr(io.StringIO(text))
    assert g.n == 3 and g.m == 2
    assert g.arc_length(0, 1) == 10
    assert g.arc_length(1, 2) == 20


def test_read_gr_blank_lines_ok():
    g = read_gr(io.StringIO("p sp 2 1\n\na 1 2 5\n"))
    assert g.m == 1


def test_read_gr_arc_count_mismatch():
    with pytest.raises(ValueError, match="declares"):
        read_gr(io.StringIO("p sp 2 2\na 1 2 5\n"))


def test_read_gr_missing_problem_line():
    with pytest.raises(ValueError):
        read_gr(io.StringIO("a 1 2 5\n"))
    with pytest.raises(ValueError, match="arc before"):
        read_gr(io.StringIO("a 1 2 5\np sp 2 1\n"))


def test_read_gr_bad_records():
    with pytest.raises(ValueError, match="unknown record"):
        read_gr(io.StringIO("p sp 1 0\nx nonsense\n"))
    with pytest.raises(ValueError, match="bad arc line"):
        read_gr(io.StringIO("p sp 2 1\na 1 2\n"))
    with pytest.raises(ValueError, match="bad problem line"):
        read_gr(io.StringIO("p xx 2 1\n"))


def test_co_roundtrip():
    coords = np.array([[100, 200], [-5, 7], [0, 0]])
    buf = io.StringIO()
    write_co(coords, buf)
    buf.seek(0)
    back = read_co(buf)
    assert np.array_equal(coords, back)


def test_read_co_errors():
    with pytest.raises(ValueError, match="vertex before"):
        read_co(io.StringIO("v 1 2 3\n"))
    with pytest.raises(ValueError, match="missing problem"):
        read_co(io.StringIO("c nothing\n"))
