"""Tests for the highway-dimension analysis helpers."""

import numpy as np
import pytest

from repro.graph import (
    INF,
    hitting_set_profile,
    long_path_hitting_set,
    path_graph,
    random_graph,
    sample_shortest_paths,
)
from repro.sssp import dijkstra


def _median_distance(g):
    d = dijkstra(g, 0, with_parents=False).dist
    return int(np.median(d[d < INF]))


def test_sampled_paths_are_long_and_interior(road):
    thr = _median_distance(road)
    paths = sample_shortest_paths(road, min_length=thr, num_sources=8, seed=1)
    assert paths
    d0 = dijkstra(road, 0, with_parents=False).dist
    for p in paths:
        assert p.size >= 1
        # Interior only: endpoints excluded by construction.
        assert np.all(p < road.n)


def test_hitting_set_covers_sampled_paths(road):
    thr = _median_distance(road)
    cover = long_path_hitting_set(road, min_length=thr, num_sources=8, seed=1)
    paths = sample_shortest_paths(road, min_length=thr, num_sources=8, seed=1)
    cover_set = set(cover.tolist())
    for p in paths:
        assert cover_set & set(p.tolist())


def test_road_cover_is_small(road):
    thr = _median_distance(road)
    paths = sample_shortest_paths(road, min_length=thr, num_sources=16, seed=0)
    cover = long_path_hitting_set(road, min_length=thr, num_sources=16, seed=0)
    # Low highway dimension: few hitters cover many paths.
    assert cover.size < len(paths) / 3


def test_random_graph_needs_bigger_cover(road):
    """Expander-like graphs lack the highway structure."""
    r = random_graph(road.n, road.m, max_len=100, seed=1, connected=True)
    thr_road = _median_distance(road)
    thr_rand = _median_distance(r)
    cov_road = long_path_hitting_set(road, min_length=thr_road, num_sources=16, seed=0)
    cov_rand = long_path_hitting_set(r, min_length=thr_rand, num_sources=16, seed=0)
    assert cov_rand.size > cov_road.size


def test_cover_shrinks_with_threshold(road):
    thr = _median_distance(road)
    prof = hitting_set_profile(road, [thr // 2, 2 * thr], num_sources=16, seed=0)
    (t1, p1, c1), (t2, p2, c2) = prof
    assert c2 <= c1  # longer paths -> fewer hitters needed


def test_hitters_are_high_in_hierarchy(road, road_ch):
    thr = _median_distance(road)
    cover = long_path_hitting_set(road, min_length=thr, num_sources=16, seed=0)
    assert cover.size > 0
    mean_pct = road_ch.rank[cover].mean() / road.n
    assert mean_pct > 0.6  # hitters sit near the top of the CH order


def test_no_long_paths_yields_empty():
    g = path_graph(4, length=1)
    cover = long_path_hitting_set(g, min_length=100, num_sources=4, seed=0)
    assert cover.size == 0
