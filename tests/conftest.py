"""Shared fixtures.

Expensive artifacts (road networks and their contraction hierarchies)
are session-scoped: CH preprocessing is the slow step, and every
correctness test can share one hierarchy because all algorithms treat
it as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ch import contract_graph
from repro.core import PhastEngine
from repro.graph import RoadNetworkParams, road_network, random_graph


@pytest.fixture(scope="session")
def road():
    """A ~400-vertex synthetic road network (travel-time metric)."""
    return road_network(RoadNetworkParams(rows=20, cols=20, seed=42))


@pytest.fixture(scope="session")
def road_ch(road):
    """Contraction hierarchy of :func:`road`."""
    return contract_graph(road)


@pytest.fixture(scope="session")
def road_engine(road_ch):
    """A reordered PHAST engine over :func:`road_ch`."""
    return PhastEngine(road_ch)


@pytest.fixture(scope="session")
def small_road():
    """A tiny road network for O(n^2)-ish exact checks."""
    return road_network(RoadNetworkParams(rows=8, cols=8, seed=7))


@pytest.fixture(scope="session")
def small_road_ch(small_road):
    return contract_graph(small_road)


@pytest.fixture(scope="session")
def sparse_random():
    """A connected random directed multigraph (not road-like)."""
    return random_graph(150, 450, max_len=50, seed=3, connected=True)


@pytest.fixture(scope="session")
def sparse_random_ch(sparse_random):
    return contract_graph(sparse_random)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
