"""Tests for the address-trace generators."""

import numpy as np

from repro.core import SweepStructure
from repro.simulator import (
    dijkstra_trace,
    nehalem_hierarchy,
    phast_sweep_trace,
    sequential_lower_bound_trace,
)
from repro.simulator.trace import ARC_BYTES, FIRST_BYTES, LABEL_BYTES
from repro.sssp import dijkstra


def test_phast_trace_length(road_ch):
    sw = SweepStructure(road_ch)
    trace = phast_sweep_trace(sw)
    # Per vertex: first + write; per arc: record + tail label.
    assert trace.size == 2 * sw.n + 2 * sw.num_arcs


def test_phast_trace_address_ranges(road_ch):
    sw = SweepStructure(road_ch)
    trace = phast_sweep_trace(sw)
    hi = (sw.n + 1) * FIRST_BYTES + sw.num_arcs * ARC_BYTES + sw.n * LABEL_BYTES
    assert trace.min() >= 0
    assert trace.max() < hi


def test_phast_trace_reorder_writes_sequential(road_ch):
    """Reordered sweeps write labels in strictly increasing addresses."""
    sw = SweepStructure(road_ch)
    trace = phast_sweep_trace(sw, reorder=True)
    dist_base = (sw.n + 1) * FIRST_BYTES + sw.num_arcs * ARC_BYTES
    writes = trace[trace >= dist_base]
    # Label writes are one per vertex, ascending; tail reads also land
    # here, so filter by exact position: every vertex's last access.
    # Simpler invariant: the set of label addresses covers all n slots.
    slots = np.unique((writes - dist_base) // LABEL_BYTES)
    assert slots.size == sw.n


def test_reordered_trace_misses_fewer(road_ch):
    """The level layout must beat the original layout in the cache sim
    (the locality effect behind Table I)."""
    sw = SweepStructure(road_ch)
    scale = sw.n / 18_000_000
    h1 = nehalem_hierarchy(scale)
    h1.access_array(phast_sweep_trace(sw, reorder=True))
    h2 = nehalem_hierarchy(scale)
    h2.access_array(phast_sweep_trace(sw, reorder=False))
    assert h1.dram_accesses < h2.dram_accesses


def test_dijkstra_trace_matches_scan(road):
    t = dijkstra(road, 0, record_order=True)
    trace = dijkstra_trace(road, t.extra["scan_order"])
    # Per scanned vertex: 1 first access + 2 per outgoing arc.
    degs = np.diff(road.first)[t.extra["scan_order"]]
    assert trace.size == t.scanned + 2 * int(degs.sum())


def test_lower_bound_trace_is_sequential():
    trace = sequential_lower_bound_trace(100, 300)
    # Four monotone segments (first, arcs, dist read, dist write).
    diffs = np.diff(trace)
    drops = int((diffs < 0).sum())
    assert drops <= 3


def test_lower_bound_trace_minimal_misses():
    n, m = 512, 1024
    h = nehalem_hierarchy(0.001)
    h.access_array(sequential_lower_bound_trace(n, m))
    line = 64
    total_bytes = (n + 1) * FIRST_BYTES + m * ARC_BYTES + 2 * n * LABEL_BYTES
    # Sequential streaming misses at most once per line (plus rounding).
    assert h.dram_accesses <= total_bytes // line + 8
