"""Unit tests for the CSR static graph."""

import numpy as np
import pytest

from repro.graph import INF, StaticGraph
from repro.graph.csr import arcs_sorted_by_tail


def test_empty_graph():
    g = StaticGraph(0, [], [], [])
    assert g.n == 0 and g.m == 0
    assert g.first.tolist() == [0]


def test_no_arcs():
    g = StaticGraph(3, [], [], [])
    assert g.n == 3 and g.m == 0
    assert g.out_degree(0) == 0
    assert list(g.arcs()) == []


def test_basic_adjacency():
    g = StaticGraph(4, [0, 0, 1, 3], [1, 2, 2, 0], [5, 7, 1, 9])
    assert g.n == 4 and g.m == 4
    assert sorted(g.neighbors(0).tolist()) == [1, 2]
    assert g.out_degree(1) == 1
    assert g.out_degree(2) == 0
    assert g.arc_length(3, 0) == 9


def test_arcs_grouped_by_tail():
    g = StaticGraph(3, [2, 0, 1, 0], [0, 1, 2, 2], [1, 2, 3, 4])
    tails = g.arc_tails()
    assert np.all(np.diff(tails) >= 0)
    assert set(g.arcs()) == {(2, 0, 1), (0, 1, 2), (1, 2, 3), (0, 2, 4)}


def test_arc_tails_memoized_and_read_only():
    g = StaticGraph(3, [2, 0, 1, 0], [0, 1, 2, 2], [1, 2, 3, 4])
    tails = g.arc_tails()
    assert g.arc_tails() is tails  # cached expansion
    with pytest.raises(ValueError):
        tails[0] = 99  # shared between callers, so frozen
    # Pickling must survive the optional cache slot either way.
    import pickle

    assert pickle.loads(pickle.dumps(g)) == g
    fresh = StaticGraph(3, [2, 0, 1, 0], [0, 1, 2, 2], [1, 2, 3, 4])
    assert pickle.loads(pickle.dumps(fresh)) == fresh


def test_stable_order_within_tail():
    # Arcs sharing a tail keep insertion order (stable sort).
    g = StaticGraph(2, [0, 0, 0], [1, 1, 1], [3, 1, 2])
    assert g.arc_lengths(0).tolist() == [3, 1, 2]


def test_parallel_arcs_and_self_loops_allowed():
    g = StaticGraph(2, [0, 0, 1], [1, 1, 1], [4, 2, 0])
    assert g.m == 3
    assert g.arc_length(0, 1) == 2  # min of parallels
    assert g.has_arc(1, 1)


def test_reverse_roundtrip():
    g = StaticGraph(4, [0, 1, 2, 3], [1, 2, 3, 0], [1, 2, 3, 4])
    rr = g.reverse().reverse()
    assert rr == g


def test_reverse_adjacency():
    g = StaticGraph(3, [0, 1], [2, 2], [5, 6])
    r = g.reverse()
    assert sorted(r.neighbors(2).tolist()) == [0, 1]
    assert r.out_degree(0) == 0


def test_permute_identity():
    g = StaticGraph(3, [0, 1], [1, 2], [1, 2])
    assert g.permute(np.arange(3)) == g


def test_permute_relabels():
    g = StaticGraph(3, [0, 1], [1, 2], [7, 8])
    p = np.array([2, 0, 1])  # 0->2, 1->0, 2->1
    h = g.permute(p)
    assert h.arc_length(2, 0) == 7
    assert h.arc_length(0, 1) == 8


def test_permute_rejects_non_permutation():
    g = StaticGraph(3, [0], [1], [1])
    with pytest.raises(ValueError):
        g.permute(np.array([0, 0, 1]))
    with pytest.raises(ValueError):
        g.permute(np.array([0, 1]))


def test_validation_errors():
    with pytest.raises(ValueError):
        StaticGraph(2, [0], [5], [1])  # head out of range
    with pytest.raises(ValueError):
        StaticGraph(2, [3], [0], [1])  # tail out of range
    with pytest.raises(ValueError):
        StaticGraph(2, [0], [1], [-1])  # negative length
    with pytest.raises(ValueError):
        StaticGraph(-1, [], [], [])


def test_arc_length_missing_raises():
    g = StaticGraph(2, [0], [1], [1])
    with pytest.raises(KeyError):
        g.arc_length(1, 0)


def test_from_arcs_and_from_csr():
    arcs = [(0, 1, 3), (1, 2, 4)]
    g = StaticGraph.from_arcs(3, arcs)
    h = StaticGraph.from_csr(g.first, g.arc_head, g.arc_len)
    assert g == h


def test_inf_headroom():
    # INF + max arc length must not overflow int64.
    assert INF + np.int64(2**31) > INF
    assert int(INF) + 2**62 - 1 <= np.iinfo(np.int64).max


def test_arcs_sorted_by_tail_counts():
    first, heads, lens = arcs_sorted_by_tail(
        3,
        np.array([2, 0, 2]),
        np.array([0, 1, 1]),
        np.array([1, 2, 3]),
    )
    assert first.tolist() == [0, 1, 1, 3]
    assert heads.tolist() == [1, 0, 1]


def test_degrees_and_nbytes():
    g = StaticGraph(3, [0, 0, 1], [1, 2, 0], [1, 1, 1])
    assert g.degrees().tolist() == [2, 1, 0]
    assert g.nbytes > 0


def test_not_hashable():
    g = StaticGraph(1, [], [], [])
    with pytest.raises(TypeError):
        hash(g)
