"""Unit tests for the mutable graph builder."""

import pytest

from repro.graph import GraphBuilder


def test_build_empty():
    g = GraphBuilder(5).build()
    assert g.n == 5 and g.m == 0


def test_add_arc_and_edge():
    b = GraphBuilder(3)
    b.add_arc(0, 1, 4)
    b.add_edge(1, 2, 7)
    g = b.build()
    assert g.m == 3
    assert g.arc_length(1, 2) == 7
    assert g.arc_length(2, 1) == 7
    with pytest.raises(KeyError):
        g.arc_length(1, 0)


def test_extend():
    b = GraphBuilder(4)
    b.extend([(0, 1, 1), (1, 2, 2), (2, 3, 3)])
    assert len(b) == 3
    assert b.build().m == 3


def test_out_of_range_rejected():
    b = GraphBuilder(2)
    with pytest.raises(ValueError):
        b.add_arc(0, 2, 1)
    with pytest.raises(ValueError):
        b.add_arc(-1, 0, 1)
    with pytest.raises(ValueError):
        b.add_arc(0, 1, -5)


def test_dedupe_keeps_minimum():
    b = GraphBuilder(2)
    b.add_arc(0, 1, 9)
    b.add_arc(0, 1, 3)
    b.add_arc(0, 1, 6)
    g = b.build(dedupe=True)
    assert g.m == 1
    assert g.arc_length(0, 1) == 3


def test_dedupe_preserves_distinct_pairs():
    b = GraphBuilder(3)
    b.add_arc(0, 1, 1)
    b.add_arc(0, 2, 2)
    b.add_arc(1, 2, 3)
    g = b.build(dedupe=True)
    assert g.m == 3


def test_drop_self_loops():
    b = GraphBuilder(2)
    b.add_arc(0, 0, 5)
    b.add_arc(0, 1, 1)
    g = b.build(drop_self_loops=True)
    assert g.m == 1
    assert not g.has_arc(0, 0)


def test_negative_vertex_count():
    with pytest.raises(ValueError):
        GraphBuilder(-1)
