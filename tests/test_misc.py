"""Coverage for small utilities and cross-cutting properties."""

import io
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    StaticGraph,
    load_graph,
    random_order,
    read_gr,
    save_graph,
    write_gr,
)
from repro.sssp.result import ShortestPathTree
from repro.utils import Timer, median_of_repeats


# -- timing utilities ---------------------------------------------------


def test_timer_measures():
    with Timer() as t:
        time.sleep(0.01)
    assert 0.005 < t.seconds < 1.0
    assert t.millis == pytest.approx(t.seconds * 1e3)


def test_median_of_repeats():
    calls = []
    out = median_of_repeats(lambda: calls.append(1), repeats=5)
    assert len(calls) == 5
    assert out >= 0.0


def test_median_of_repeats_minimum_one():
    calls = []
    median_of_repeats(lambda: calls.append(1), repeats=0)
    assert len(calls) == 1


# -- result container -----------------------------------------------------


def test_shortest_path_tree_reached():
    from repro.graph.csr import INF

    t = ShortestPathTree(
        source=0, dist=np.array([0, 5, INF], dtype=np.int64)
    )
    assert t.reached().tolist() == [True, True, False]


def test_path_to_detects_broken_chain():
    dist = np.array([0, 1, 2], dtype=np.int64)
    parent = np.array([-1, 0, -1], dtype=np.int64)  # 2 has no parent
    t = ShortestPathTree(source=0, dist=dist, parent=parent)
    with pytest.raises(ValueError):
        t.path_to(2)


# -- hypothesis: serialization and format roundtrips ------------------------


@st.composite
def tiny_graphs(draw):
    n = draw(st.integers(1, 8))
    m = draw(st.integers(0, 16))
    tails = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    heads = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    lens = draw(st.lists(st.integers(0, 100), min_size=m, max_size=m))
    return StaticGraph(n, tails, heads, lens)


@given(g=tiny_graphs())
@settings(max_examples=40, deadline=None)
def test_npz_roundtrip_property(g, tmp_path_factory):
    path = tmp_path_factory.mktemp("ser") / "g.npz"
    save_graph(g, path)
    assert load_graph(path) == g


@given(g=tiny_graphs())
@settings(max_examples=40, deadline=None)
def test_gr_roundtrip_property(g):
    buf = io.StringIO()
    write_gr(g, buf)
    buf.seek(0)
    assert read_gr(buf) == g


# -- hypothesis: distances are invariant under relabeling -------------------


@given(g=tiny_graphs(), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_ch_distance_permutation_invariance(g, seed):
    from repro.ch import ch_query, contract_graph

    perm = random_order(g.n, seed=seed)
    h = g.permute(perm)
    ch_g = contract_graph(g)
    ch_h = contract_graph(h)
    s, t = 0, g.n - 1
    assert (
        ch_query(ch_g, s, t).distance
        == ch_query(ch_h, int(perm[s]), int(perm[t])).distance
    )


# -- latency histogram -------------------------------------------------------


def test_latency_histogram_percentiles_bounded_error():
    from repro.utils import LatencyHistogram

    h = LatencyHistogram()
    rng = np.random.default_rng(0)
    samples = rng.lognormal(mean=-6.0, sigma=1.0, size=5000)  # ~2.5ms median
    for s in samples:
        h.observe(float(s))
    assert h.count == len(samples)
    assert np.isclose(h.mean, samples.mean())
    assert np.isclose(h.min, samples.min())
    assert np.isclose(h.max, samples.max())
    for p in (10, 50, 90, 99):
        exact = float(np.percentile(samples, p))
        got = h.percentile(p)
        # One geometric bucket of relative error at 12 buckets/decade.
        assert abs(got - exact) / exact < 0.25, (p, got, exact)
    # Percentiles are monotone and clamped to the observed range.
    qs = [h.percentile(p) for p in range(0, 101, 5)]
    assert qs == sorted(qs)
    assert h.min <= qs[0] and qs[-1] <= h.max


def test_latency_histogram_merge_equals_union():
    from repro.utils import LatencyHistogram

    a, b, union = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    rng = np.random.default_rng(1)
    xs, ys = rng.exponential(0.01, 300), rng.exponential(0.05, 200)
    for x in xs:
        a.observe(float(x))
        union.observe(float(x))
    for y in ys:
        b.observe(float(y))
        union.observe(float(y))
    a.merge(b)
    assert a.count == union.count
    assert np.isclose(a.total, union.total)
    assert a.summary() == union.summary()


def test_latency_histogram_edge_cases():
    from repro.utils import LatencyHistogram

    h = LatencyHistogram()
    assert h.summary() == {"count": 0}
    assert h.percentile(50) == 0.0
    h.observe(0.0)          # below min_value: clamped into first bucket
    h.observe(500.0)        # above max_value: overflow bucket
    assert h.count == 2
    assert h.max == 500.0 and h.min == 0.0
    assert h.percentile(100) == 500.0
    with pytest.raises(ValueError):
        h.observe(-1.0)
    with pytest.raises(ValueError):
        h.percentile(101)
    with pytest.raises(ValueError):
        h.merge(LatencyHistogram(buckets_per_decade=5))
