"""End-to-end integration tests across the whole library."""

import numpy as np

from repro import (
    GphastEngine,
    PhastEngine,
    ch_query,
    contract_graph,
    dijkstra,
    europe_like,
    parents_in_original_graph,
    trees_per_core,
)
from repro.apps import arcflags_query, compute_arc_flags, partition_graph
from repro.core.trees import validate_tree
from repro.graph import INF, dfs_order
from repro.simulator import CostModel, machine, phast_counts


def test_full_pipeline_europe_like():
    """Generate → layout → CH → PHAST → applications, one flow."""
    g = europe_like(scale=12, seed=1)
    # DFS layout, as the paper's experimental setup prescribes.
    g = g.permute(dfs_order(g))
    ch = contract_graph(g)
    ch.validate()

    engine = PhastEngine(ch)
    ref = dijkstra(g, 0, with_parents=False).dist
    tree = engine.tree(0)
    assert np.array_equal(tree.dist, ref)

    # Point-to-point query agrees.
    q = ch_query(ch, 0, g.n - 1, unpack=True)
    assert q.distance == ref[g.n - 1]

    # Tree recovery validates.
    parent = parents_in_original_graph(g, tree.dist, 0)
    assert validate_tree(g, tree.dist, parent, 0)

    # Arc flags built from PHAST answer queries exactly.
    part = partition_graph(g, 4)
    af = compute_arc_flags(g, part, method="phast")
    got, _ = arcflags_query(af, 0, g.n - 1)
    assert got == ref[g.n - 1]

    # GPHAST produces identical labels with a plausible report.
    gp = GphastEngine(ch)
    res = gp.trees([0, 1])
    assert np.array_equal(res.dist[0], ref)
    assert res.report.per_tree_ms > 0

    # The cost model accepts real sweep counts.
    cm = CostModel(machine("M1-4"))
    counts = phast_counts(engine.sweep)
    assert cm.phast_single(counts) > 0


def test_apsp_subset_consistency(road, road_ch):
    """APSP rows from worker processes match direct computation."""
    sources = list(range(0, road.n, 50))
    rows = trees_per_core(road_ch, sources, num_workers=2, sources_per_sweep=4)
    for s, row in zip(sources, rows):
        assert np.array_equal(row, dijkstra(road, s, with_parents=False).dist)


def test_metric_changes_hierarchy_depth():
    """Section VIII-G: distance metric yields deeper hierarchies."""
    from repro.graph import RoadNetworkParams, road_network

    time_g = road_network(
        RoadNetworkParams(rows=24, cols=24, metric="time", seed=2)
    )
    dist_g = road_network(
        RoadNetworkParams(rows=24, cols=24, metric="distance", seed=2)
    )
    ch_time = contract_graph(time_g)
    ch_dist = contract_graph(dist_g)
    # Weaker hierarchy: at least as many levels and shortcuts.
    assert ch_dist.num_levels >= ch_time.num_levels
    assert ch_dist.num_shortcuts >= ch_time.num_shortcuts


def test_query_after_layout_permutation(road, road_ch):
    """Distances are layout-invariant end to end."""
    perm = dfs_order(road)
    g2 = road.permute(perm)
    ch2 = contract_graph(g2)
    e1 = PhastEngine(road_ch)
    e2 = PhastEngine(ch2)
    d1 = e1.tree(0).dist
    d2 = e2.tree(int(perm[0])).dist
    assert np.array_equal(d1, d2[perm])


def test_unreachable_handling_through_stack():
    from repro.graph import StaticGraph

    g = StaticGraph(6, [0, 1, 2, 3, 4, 5], [1, 0, 3, 2, 5, 4], [1, 1, 2, 2, 3, 3])
    ch = contract_graph(g)
    engine = PhastEngine(ch)
    t = engine.tree(0)
    assert t.dist[1] == 1
    assert all(t.dist[v] == INF for v in (2, 3, 4, 5))
    q = ch_query(ch, 0, 4)
    assert q.distance == INF
