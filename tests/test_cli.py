"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import load_graph, load_hierarchy, save_graph


@pytest.fixture()
def artifacts(tmp_path, small_road, small_road_ch):
    from repro.graph import save_hierarchy

    gpath = tmp_path / "g.npz"
    cpath = tmp_path / "g.ch.npz"
    save_graph(small_road, gpath)
    save_hierarchy(small_road_ch, cpath)
    return gpath, cpath


def test_generate(tmp_path, capsys):
    out = tmp_path / "map.npz"
    rc = main(
        ["generate", "--kind", "europe", "--scale", "8", "-o", str(out)]
    )
    assert rc == 0
    g = load_graph(out)
    assert g.n == 64
    assert "64 vertices" in capsys.readouterr().out


def test_generate_usa_distance(tmp_path):
    out = tmp_path / "map.npz"
    assert (
        main(
            [
                "generate", "--kind", "usa", "--scale", "6",
                "--metric", "distance", "--layout", "input",
                "-o", str(out),
            ]
        )
        == 0
    )
    assert load_graph(out).n == 6 * (int(6 * 1.33) + 1)


def test_preprocess_and_tree(tmp_path, artifacts, capsys):
    gpath, _ = artifacts
    cpath = tmp_path / "new.ch.npz"
    assert main(["preprocess", str(gpath), "-o", str(cpath)]) == 0
    load_hierarchy(cpath).validate()
    out = tmp_path / "dist.npz"
    assert main(
        ["tree", str(gpath), str(cpath), "--source", "0", "-o", str(out)]
    ) == 0
    with np.load(out) as data:
        from repro.sssp import dijkstra

        g = load_graph(gpath)
        assert np.array_equal(
            data["dist"], dijkstra(g, 0, with_parents=False).dist
        )


def test_batch(tmp_path, artifacts, small_road, capsys):
    gpath, cpath = artifacts
    out = tmp_path / "mat.npz"
    rc = main(
        [
            "batch", str(gpath), str(cpath),
            "--sources", "0,5,9", "--sweep-k", "2",
            "--force-pool", "--workers", "2", "-o", str(out),
        ]
    )
    assert rc == 0
    assert "trees/s" in capsys.readouterr().out
    with np.load(out) as data:
        from repro.sssp import dijkstra

        assert data["sources"].tolist() == [0, 5, 9]
        for i, s in enumerate((0, 5, 9)):
            assert np.array_equal(
                data["dist"][i],
                dijkstra(small_road, s, with_parents=False).dist,
            )


def test_batch_random_sources(artifacts, capsys):
    gpath, cpath = artifacts
    assert main(["batch", str(gpath), str(cpath), "--count", "6"]) == 0
    assert "6 trees" in capsys.readouterr().out


def test_query(artifacts, capsys):
    gpath, cpath = artifacts
    rc = main(
        ["query", str(cpath), "--source", "0", "--target", "5", "--path"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "distance" in out
    assert "->" in out


def test_query_stall(artifacts):
    _, cpath = artifacts
    assert (
        main(
            ["query", str(cpath), "--source", "0", "--target", "63", "--stall"]
        )
        == 0
    )


def test_query_unreachable(tmp_path, capsys):
    from repro.ch import contract_graph
    from repro.graph import StaticGraph, save_hierarchy

    g = StaticGraph(3, [0], [1], [1])
    cpath = tmp_path / "c.npz"
    save_hierarchy(contract_graph(g), cpath)
    rc = main(["query", str(cpath), "--source", "0", "--target", "2"])
    assert rc == 1
    assert "unreachable" in capsys.readouterr().out


def test_stats(artifacts, capsys):
    gpath, cpath = artifacts
    assert main(["stats", str(gpath), str(cpath)]) == 0
    out = capsys.readouterr().out
    assert "graph:" in out and "hierarchy:" in out


def test_convert_gr_roundtrip(tmp_path, artifacts):
    gpath, _ = artifacts
    grpath = tmp_path / "g.gr"
    back = tmp_path / "g2.npz"
    assert main(["convert", str(gpath), "-o", str(grpath)]) == 0
    assert main(["convert", str(grpath), "-o", str(back)]) == 0
    assert load_graph(back) == load_graph(gpath)


def test_unknown_command_fails():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
