"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import load_graph, load_hierarchy, save_graph


@pytest.fixture()
def artifacts(tmp_path, small_road, small_road_ch):
    from repro.graph import save_hierarchy

    gpath = tmp_path / "g.npz"
    cpath = tmp_path / "g.ch.npz"
    save_graph(small_road, gpath)
    save_hierarchy(small_road_ch, cpath)
    return gpath, cpath


def test_generate(tmp_path, capsys):
    out = tmp_path / "map.npz"
    rc = main(
        ["generate", "--kind", "europe", "--scale", "8", "-o", str(out)]
    )
    assert rc == 0
    g = load_graph(out)
    assert g.n == 64
    assert "64 vertices" in capsys.readouterr().out


def test_generate_usa_distance(tmp_path):
    out = tmp_path / "map.npz"
    assert (
        main(
            [
                "generate", "--kind", "usa", "--scale", "6",
                "--metric", "distance", "--layout", "input",
                "-o", str(out),
            ]
        )
        == 0
    )
    assert load_graph(out).n == 6 * (int(6 * 1.33) + 1)


def test_preprocess_and_tree(tmp_path, artifacts, capsys):
    gpath, _ = artifacts
    cpath = tmp_path / "new.ch.npz"
    assert main(["preprocess", str(gpath), "-o", str(cpath)]) == 0
    load_hierarchy(cpath).validate()
    out = tmp_path / "dist.npz"
    assert main(
        ["tree", str(gpath), str(cpath), "--source", "0", "-o", str(out)]
    ) == 0
    with np.load(out) as data:
        from repro.sssp import dijkstra

        g = load_graph(gpath)
        assert np.array_equal(
            data["dist"], dijkstra(g, 0, with_parents=False).dist
        )


def test_batch(tmp_path, artifacts, small_road, capsys):
    gpath, cpath = artifacts
    out = tmp_path / "mat.npz"
    rc = main(
        [
            "batch", str(gpath), str(cpath),
            "--sources", "0,5,9", "--sweep-k", "2",
            "--force-pool", "--workers", "2", "-o", str(out),
        ]
    )
    assert rc == 0
    assert "trees/s" in capsys.readouterr().out
    with np.load(out) as data:
        from repro.sssp import dijkstra

        assert data["sources"].tolist() == [0, 5, 9]
        for i, s in enumerate((0, 5, 9)):
            assert np.array_equal(
                data["dist"][i],
                dijkstra(small_road, s, with_parents=False).dist,
            )


def test_batch_random_sources(artifacts, capsys):
    gpath, cpath = artifacts
    assert main(["batch", str(gpath), str(cpath), "--count", "6"]) == 0
    assert "6 trees" in capsys.readouterr().out


def test_query(artifacts, capsys):
    gpath, cpath = artifacts
    rc = main(
        ["query", str(cpath), "--source", "0", "--target", "5", "--path"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "distance" in out
    assert "->" in out


def test_query_stall(artifacts):
    _, cpath = artifacts
    assert (
        main(
            ["query", str(cpath), "--source", "0", "--target", "63", "--stall"]
        )
        == 0
    )


def test_query_unreachable(tmp_path, capsys):
    from repro.ch import contract_graph
    from repro.graph import StaticGraph, save_hierarchy

    g = StaticGraph(3, [0], [1], [1])
    cpath = tmp_path / "c.npz"
    save_hierarchy(contract_graph(g), cpath)
    rc = main(["query", str(cpath), "--source", "0", "--target", "2"])
    assert rc == 1
    assert "unreachable" in capsys.readouterr().out


def test_stats(artifacts, capsys):
    gpath, cpath = artifacts
    assert main(["stats", str(gpath), str(cpath)]) == 0
    out = capsys.readouterr().out
    assert "graph:" in out and "hierarchy:" in out


def test_convert_gr_roundtrip(tmp_path, artifacts):
    gpath, _ = artifacts
    grpath = tmp_path / "g.gr"
    back = tmp_path / "g2.npz"
    assert main(["convert", str(gpath), "-o", str(grpath)]) == 0
    assert main(["convert", str(grpath), "-o", str(back)]) == 0
    assert load_graph(back) == load_graph(gpath)


def test_unknown_command_fails():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# -- error paths: every operational failure is rc 2 + one error: line --------


def _fails(argv, capsys, *, needle=None):
    rc = main(argv)
    err = capsys.readouterr().err
    assert rc == 2, (argv, err)
    assert err.startswith("error:"), (argv, err)
    if needle is not None:
        assert needle in err, (argv, err)
    return err


def test_query_missing_file(capsys):
    _fails(
        ["query", "/nope/ch.npz", "--source", "0", "--target", "1"], capsys
    )


def test_tree_missing_files(tmp_path, artifacts, capsys):
    gpath, cpath = artifacts
    _fails(["tree", str(tmp_path / "no.npz"), str(cpath), "--source", "0"],
           capsys)
    _fails(["tree", str(gpath), str(tmp_path / "no.ch.npz"), "--source", "0"],
           capsys)


def test_batch_missing_file(artifacts, capsys):
    gpath, _ = artifacts
    _fails(["batch", str(gpath), "/nope/ch.npz", "--count", "2"], capsys)


def test_serve_missing_file(capsys):
    _fails(["serve", "/nope/g.npz", "/nope/ch.npz"], capsys)


def test_query_source_out_of_range(artifacts, capsys):
    _, cpath = artifacts
    _fails(["query", str(cpath), "--source", "64", "--target", "0"],
           capsys, needle="source")
    _fails(["query", str(cpath), "--source", "-1", "--target", "0"],
           capsys, needle="source")
    _fails(["query", str(cpath), "--source", "0", "--target", "9999"],
           capsys, needle="target")


def test_tree_source_out_of_range(artifacts, capsys):
    gpath, cpath = artifacts
    _fails(["tree", str(gpath), str(cpath), "--source", "64"],
           capsys, needle="source")


def test_batch_bad_sources(artifacts, capsys):
    gpath, cpath = artifacts
    _fails(["batch", str(gpath), str(cpath), "--sources", "0,x,2"],
           capsys, needle="comma-separated")
    _fails(["batch", str(gpath), str(cpath), "--sources", "0,9999"],
           capsys, needle="source")


def test_batch_bad_sweep_k(artifacts, capsys):
    gpath, cpath = artifacts
    _fails(["batch", str(gpath), str(cpath), "--count", "2",
            "--sweep-k", "0"], capsys)


def test_serve_mismatched_graph_and_hierarchy(tmp_path, artifacts, capsys):
    from repro.ch import contract_graph
    from repro.graph import RoadNetworkParams, road_network, save_hierarchy

    gpath, _ = artifacts
    other = road_network(RoadNetworkParams(rows=3, cols=3, seed=0))
    cpath = tmp_path / "other.ch.npz"
    save_hierarchy(contract_graph(other), cpath)
    _fails(["serve", str(gpath), str(cpath)], capsys, needle="vertices")


def test_serve_stale_artifact(tmp_path, artifacts, capsys):
    import numpy as np

    gpath, cpath = artifacts
    stale = tmp_path / "stale.ch.npz"
    with np.load(cpath, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != "magic"}
    np.savez_compressed(stale, magic=np.array("repro-ch-v0"), **arrays)
    _fails(["serve", str(gpath), str(stale)], capsys, needle="version")


def test_client_connection_refused(capsys):
    _fails(["client", "--port", "1", "--op", "ping"], capsys)


def test_client_missing_op_args(capsys):
    _fails(["client", "--port", "1", "--op", "query"], capsys)


def test_doctor_lists_and_reaps_orphans(capsys):
    """Orphaned pool segments are reported then reaped; live ones kept."""
    import json
    import os
    import subprocess
    import sys

    # A verifiably dead pid: a child that has already exited.
    proc = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True, text=True, check=True,
    )
    dead_pid = int(proc.stdout)
    orphan = f"/dev/shm/repro-{dead_pid}-cafe0001"
    live = f"/dev/shm/repro-{os.getpid()}-cafe0002"
    unattributed = "/dev/shm/repro-garbage"
    try:
        for path in (orphan, live, unattributed):
            with open(path, "wb") as fh:
                fh.write(b"\0" * 16)
        rc = main(["doctor", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        by_name = {seg["name"]: seg for seg in report["segments"]}
        assert by_name[os.path.basename(orphan)]["orphaned"] is True
        assert by_name[os.path.basename(live)]["orphaned"] is False
        assert by_name[os.path.basename(unattributed)]["orphaned"] is False

        assert main(["doctor", "--unlink"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert not os.path.exists(orphan)
        assert os.path.exists(live)          # owner alive: untouched
        assert os.path.exists(unattributed)  # unattributable: untouched
    finally:
        for path in (orphan, live, unattributed):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
