"""Unit tests for vertex orderings (graph layouts)."""

import numpy as np
import pytest

from repro.graph import (
    StaticGraph,
    compose_permutations,
    dfs_order,
    grid_graph,
    identity_order,
    invert_permutation,
    level_order,
    path_graph,
    random_order,
)


def _is_permutation(p: np.ndarray) -> bool:
    return np.array_equal(np.sort(p), np.arange(p.size))


def test_identity_order():
    assert identity_order(4).tolist() == [0, 1, 2, 3]


def test_random_order_is_permutation_and_seeded():
    p1 = random_order(100, seed=1)
    p2 = random_order(100, seed=1)
    p3 = random_order(100, seed=2)
    assert _is_permutation(p1)
    assert np.array_equal(p1, p2)
    assert not np.array_equal(p1, p3)


def test_dfs_order_path_graph():
    g = path_graph(5)
    p = dfs_order(g, start=0)
    # A path explored from one end is numbered in order.
    assert p.tolist() == [0, 1, 2, 3, 4]


def test_dfs_order_is_permutation_on_grid():
    g = grid_graph(6, 7)
    p = dfs_order(g)
    assert _is_permutation(p)


def test_dfs_order_covers_disconnected():
    g = StaticGraph(4, [0], [1], [1])  # 2,3 isolated
    p = dfs_order(g)
    assert _is_permutation(p)


def test_dfs_order_locality_beats_random():
    """DFS layouts put arc endpoints closer together than random ones."""
    g = grid_graph(16, 16)
    dfs = dfs_order(g)
    rnd = random_order(g.n, seed=0)
    tails = g.arc_tails()

    def mean_gap(p):
        return float(np.abs(p[tails] - p[g.arc_head]).mean())

    assert mean_gap(dfs) < mean_gap(rnd) / 2


def test_dfs_start_out_of_range():
    g = path_graph(3)
    with pytest.raises(ValueError):
        dfs_order(g, start=5)


def test_level_order_puts_high_levels_first():
    levels = np.array([0, 2, 1, 2, 0])
    p = level_order(levels)
    # Positions of the two level-2 vertices must be 0 and 1.
    assert sorted([p[1], p[3]]) == [0, 1]
    # Level-0 vertices occupy the last two positions.
    assert sorted([p[0], p[4]]) == [3, 4]


def test_level_order_tie_break_preserved():
    levels = np.zeros(4, dtype=np.int64)
    tie = np.array([3, 1, 0, 2])
    p = level_order(levels, tie_break=tie)
    # Sweep order must follow the tie-break key.
    order = np.argsort(p)
    assert tie[order].tolist() == [0, 1, 2, 3]


def test_level_order_size_mismatch():
    with pytest.raises(ValueError):
        level_order(np.zeros(3), tie_break=np.zeros(2))


def test_invert_permutation():
    p = np.array([2, 0, 1])
    inv = invert_permutation(p)
    assert inv[p].tolist() == [0, 1, 2]


def test_compose_permutations():
    inner = np.array([1, 2, 0])
    outer = np.array([2, 0, 1])
    c = compose_permutations(outer, inner)
    assert c.tolist() == [outer[1], outer[2], outer[0]]
    with pytest.raises(ValueError):
        compose_permutations(np.arange(2), np.arange(3))


def test_permuted_graph_preserves_shortest_paths():
    from repro.sssp import dijkstra

    g = grid_graph(5, 5, length=3)
    p = random_order(g.n, seed=9)
    h = g.permute(p)
    d_g = dijkstra(g, 0, with_parents=False).dist
    d_h = dijkstra(h, int(p[0]), with_parents=False).dist
    assert np.array_equal(d_g, d_h[p])
