"""Tests for stall-on-demand CH queries and the Fibonacci heap."""

import numpy as np
import pytest

from repro.ch import ch_query
from repro.pq import FibonacciHeap
from repro.sssp import dijkstra


# -- stall-on-demand -------------------------------------------------------


def test_stall_distances_unchanged(road, road_ch, rng):
    for _ in range(30):
        s, t = (int(x) for x in rng.integers(0, road.n, 2))
        plain = ch_query(road_ch, s, t)
        stalled = ch_query(road_ch, s, t, stall=True)
        assert plain.distance == stalled.distance


def test_stall_never_scans_more(road_ch, rng):
    total_plain = total_stall = 0
    for _ in range(25):
        s, t = (int(x) for x in rng.integers(0, road_ch.n, 2))
        p = ch_query(road_ch, s, t)
        q = ch_query(road_ch, s, t, stall=True)
        total_plain += p.settled_forward + p.settled_backward
        total_stall += q.settled_forward + q.settled_backward
    assert total_stall <= total_plain


def test_stall_with_path(road, road_ch):
    q = ch_query(road_ch, 0, road.n - 1, stall=True, unpack=True)
    ref = dijkstra(road, 0, with_parents=False).dist[road.n - 1]
    assert q.distance == ref
    total = sum(road.arc_length(a, b) for a, b in zip(q.path, q.path[1:]))
    assert total == ref


def test_stall_on_random_graph(sparse_random, sparse_random_ch, rng):
    for _ in range(20):
        s, t = (int(x) for x in rng.integers(0, sparse_random.n, 2))
        ref = dijkstra(sparse_random, s, with_parents=False).dist[t]
        assert ch_query(sparse_random_ch, s, t, stall=True).distance == ref


# -- Fibonacci heap ------------------------------------------------------------


def test_fib_empty():
    h = FibonacciHeap(8)
    assert len(h) == 0
    with pytest.raises(IndexError):
        h.pop_min()
    with pytest.raises(IndexError):
        h.peek_min()


def test_fib_basic_ops():
    h = FibonacciHeap(16)
    h.insert(3, 30)
    h.insert(5, 10)
    h.insert(7, 20)
    assert h.peek_min() == (5, 10)
    assert h.key_of(7) == 20
    assert h.contains(3)
    assert h.pop_min() == (5, 10)
    assert h.pop_min() == (7, 20)
    assert h.pop_min() == (3, 30)
    assert not h.contains(3)


def test_fib_sorted_extraction():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 10_000, size=300)
    h = FibonacciHeap(300)
    for i, k in enumerate(keys):
        h.insert(i, int(k))
    out = [h.pop_min()[1] for _ in range(300)]
    assert out == sorted(keys.tolist())


def test_fib_decrease_key_and_cascade():
    h = FibonacciHeap(64)
    for i in range(32):
        h.insert(i, 1000 + i)
    # Force consolidation, then decrease deep nodes.
    h.insert(40, 1)
    assert h.pop_min() == (40, 1)
    for i in range(31, 15, -1):
        h.decrease_key(i, i)
    out = [h.pop_min() for _ in range(16)]
    assert [k for _, k in out] == list(range(16, 32))


def test_fib_errors():
    h = FibonacciHeap(8)
    h.insert(0, 5)
    with pytest.raises(ValueError):
        h.insert(0, 1)
    with pytest.raises(ValueError):
        h.decrease_key(0, 9)
    with pytest.raises(KeyError):
        h.decrease_key(3, 1)
    with pytest.raises(KeyError):
        h.key_of(3)


def test_fib_randomized_against_reference():
    rng = np.random.default_rng(9)
    h = FibonacciHeap(128)
    ref: dict[int, int] = {}
    for _ in range(3000):
        op = rng.integers(0, 3)
        if op == 0 and len(ref) < 100:
            free = [i for i in range(128) if i not in ref]
            item = int(rng.choice(free))
            key = int(rng.integers(0, 50_000))
            h.insert(item, key)
            ref[item] = key
        elif op == 1 and ref:
            item = int(rng.choice(list(ref)))
            new = int(rng.integers(0, ref[item] + 1))
            h.decrease_key(item, new)
            ref[item] = new
        elif op == 2 and ref:
            item, key = h.pop_min()
            assert key == min(ref.values())
            assert ref.pop(item) == key
    while ref:
        item, key = h.pop_min()
        assert key == min(ref.values())
        assert ref.pop(item) == key


def test_fib_dijkstra_integration(road):
    ref = dijkstra(road, 0, queue="binary", with_parents=False).dist
    got = dijkstra(road, 0, queue="fibonacci", with_parents=False).dist
    assert np.array_equal(ref, got)
