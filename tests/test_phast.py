"""Unit and integration tests for the PHAST engines."""

import numpy as np
import pytest

from repro.core import PhastEngine, SweepStructure, phast_scalar
from repro.graph import INF, StaticGraph
from repro.sssp import dijkstra


# -- sweep structure ----------------------------------------------------


def test_sweep_positions_are_level_sorted(road_ch):
    sw = SweepStructure(road_ch)
    levels_at_pos = road_ch.level[sw.vertex_at]
    assert np.all(np.diff(levels_at_pos) <= 0)  # descending


def test_sweep_permutation_roundtrip(road_ch):
    sw = SweepStructure(road_ch)
    assert np.array_equal(sw.pos_of[sw.vertex_at], np.arange(sw.n))


def test_sweep_level_slices_cover_everything(road_ch):
    sw = SweepStructure(road_ch)
    total_v = sum(
        sw.level_slice(i)[1] - sw.level_slice(i)[0] for i in range(sw.num_levels)
    )
    assert total_v == sw.n
    total_a = sum(
        sw.level_arc_slice(i)[1] - sw.level_arc_slice(i)[0]
        for i in range(sw.num_levels)
    )
    assert total_a == sw.num_arcs


def test_sweep_arcs_point_upward(road_ch):
    """Every arc's tail must be at a strictly earlier sweep position."""
    sw = SweepStructure(road_ch)
    heads = np.repeat(np.arange(sw.n), np.diff(sw.arc_first))
    assert np.all(sw.arc_tail_pos < heads)


def test_sweep_arrays_narrowed_to_gpu_layout(road_ch):
    """Small instances store 4-byte arc entries, matching the GPU
    model's ARC_BYTES=8 (tail+len) and FIRST_BYTES=4 accounting."""
    sw = SweepStructure(road_ch)
    assert sw.arc_tail_pos.dtype == np.int32
    assert sw.arc_len.dtype == np.int32
    assert sw.arc_first.dtype == np.int32
    assert sw.nbytes == (
        4 * (sw.n + 1) + 8 * sw.num_arcs + sw.level_first.nbytes
    )


def test_sweep_arc_count_matches_downward(road_ch):
    sw = SweepStructure(road_ch)
    assert sw.num_arcs == road_ch.downward_rev.m


def test_sweep_level_sizes_match_histogram(road_ch):
    sw = SweepStructure(road_ch)
    assert np.array_equal(
        sw.level_sizes(), road_ch.level_histogram()[::-1]
    )


# -- single-tree correctness ----------------------------------------------


@pytest.mark.parametrize("source", [0, 13, 150, 399])
def test_phast_matches_dijkstra(road, road_ch, road_engine, source):
    ref = dijkstra(road, source, with_parents=False).dist
    assert np.array_equal(road_engine.tree(source).dist, ref)


def test_phast_no_reorder_matches(road, road_ch):
    engine = PhastEngine(road_ch, reorder=False)
    ref = dijkstra(road, 42, with_parents=False).dist
    assert np.array_equal(engine.tree(42).dist, ref)


def test_phast_explicit_init_matches(road, road_ch):
    engine = PhastEngine(road_ch, explicit_init=True)
    ref = dijkstra(road, 42, with_parents=False).dist
    assert np.array_equal(engine.tree(42).dist, ref)


def test_phast_explicit_init_no_reorder(road, road_ch):
    engine = PhastEngine(road_ch, explicit_init=True, reorder=False)
    ref = dijkstra(road, 7, with_parents=False).dist
    assert np.array_equal(engine.tree(7).dist, ref)


def test_phast_scalar_reference(road, road_ch):
    ref = dijkstra(road, 9, with_parents=False).dist
    assert np.array_equal(phast_scalar(road_ch, 9).dist, ref)


def test_back_to_back_queries_no_stale_state(road, road_ch, road_engine, rng):
    """Implicit initialization must not leak labels across queries."""
    for s in rng.integers(0, road.n, 8):
        s = int(s)
        ref = dijkstra(road, s, with_parents=False).dist
        assert np.array_equal(road_engine.tree(s).dist, ref)


def test_phast_on_disconnected_graph():
    from repro.ch import contract_graph

    g = StaticGraph(5, [0, 1, 3, 4], [1, 0, 4, 3], [2, 2, 3, 3])
    ch = contract_graph(g)
    engine = PhastEngine(ch)
    t = engine.tree(0)
    assert t.dist[1] == 2
    assert t.dist[3] == INF and t.dist[4] == INF
    t = engine.tree(3)
    assert t.dist[4] == 3
    assert t.dist[0] == INF


def test_phast_sparse_random(sparse_random, sparse_random_ch, rng):
    """Correctness holds on non-road graphs too (only speed suffers)."""
    engine = PhastEngine(sparse_random_ch)
    for s in rng.integers(0, sparse_random.n, 5):
        s = int(s)
        ref = dijkstra(sparse_random, s, with_parents=False).dist
        assert np.array_equal(engine.tree(s).dist, ref)


# -- parents -------------------------------------------------------------


def test_phast_gplus_parents(road, road_ch, road_engine):
    t = road_engine.tree(8, with_parents=True)
    # Parents describe a connected tree in G+ rooted at the source;
    # walking up must terminate at the source with consistent labels.
    for v in range(road.n):
        if t.dist[v] >= INF or v == 8:
            continue
        hops = 0
        u = v
        while u != 8:
            u = int(t.parent[u])
            assert u >= 0
            hops += 1
            assert hops <= road.n
        assert t.dist[int(t.parent[v])] <= t.dist[v]


# -- multi-tree -----------------------------------------------------------


def test_multi_tree_matches_single(road, road_ch, road_engine, rng):
    sources = rng.integers(0, road.n, 8)
    multi = road_engine.trees(sources)
    assert multi.shape == (8, road.n)
    for i, s in enumerate(sources):
        assert np.array_equal(multi[i], road_engine.tree(int(s)).dist)


def test_multi_tree_duplicated_sources(road_engine):
    multi = road_engine.trees([5, 5, 5])
    assert np.array_equal(multi[0], multi[1])
    assert np.array_equal(multi[1], multi[2])


def test_multi_tree_k1(road, road_engine):
    ref = dijkstra(road, 3, with_parents=False).dist
    assert np.array_equal(road_engine.trees([3])[0], ref)


def test_multi_tree_k_change_reallocates(road_engine):
    a = road_engine.trees([1, 2])
    b = road_engine.trees([1, 2, 3])
    assert a.shape[0] == 2 and b.shape[0] == 3


def test_engine_stats_recorded(road_engine):
    road_engine.tree(0)
    assert road_engine.last_stats["ch_search_size"] > 0


# ---------------------------------------------------------------------------
# Upward search-space cache


def test_search_cache_bit_identical(road, road_ch, road_engine, rng):
    """Caching upward search spaces must not change a single distance."""
    cached = PhastEngine(road_ch, search_cache=8)
    sources = [int(s) for s in rng.integers(0, road.n, 6)]
    for _ in range(3):  # repeat visits hit the cache
        for s in sources:
            assert np.array_equal(cached.tree(s).dist, road_engine.tree(s).dist)
        multi = cached.trees(sources)
        for i, s in enumerate(sources):
            assert np.array_equal(multi[i], road_engine.tree(s).dist)
    assert cached.search_cache_hits > 0


def test_search_cache_counters_and_eviction(road_ch):
    cached = PhastEngine(road_ch, search_cache=4)
    for s in range(6):  # 6 distinct sources through a 4-entry cache
        cached.tree(s)
    assert cached.search_cache_misses == 6
    assert cached.search_cache_hits == 0
    assert len(cached._search_cache) == 4
    cached.tree(5)  # most recent entry: a hit, no new insertion
    assert cached.search_cache_hits == 1
    assert len(cached._search_cache) == 4
    cached.tree(0)  # LRU-evicted earlier: a miss again
    assert cached.search_cache_misses == 7


def test_search_cache_disabled_by_default(road_ch):
    engine = PhastEngine(road_ch)
    engine.tree(1)
    engine.tree(1)
    assert engine.search_cache_hits == 0
    assert len(engine._search_cache) == 0
