"""Property-based tests: every queue implements the same semantics.

Hypothesis drives random monotone operation sequences against a
dictionary reference; all four queues must agree with it exactly
(ties may resolve to any minimal item, so only keys are compared).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pq import BinaryHeap, DialQueue, KHeap, MultiLevelBucketQueue

N_ITEMS = 32
MAX_KEY = 2_000


def _make(name: str):
    if name == "binary":
        return BinaryHeap(N_ITEMS)
    if name == "kheap":
        return KHeap(N_ITEMS, arity=4)
    if name == "dial":
        return DialQueue(N_ITEMS, MAX_KEY)
    if name == "mlb":
        return MultiLevelBucketQueue(N_ITEMS, MAX_KEY * 2, base=8)
    raise AssertionError(name)


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "decrease", "pop"]),
        st.integers(0, N_ITEMS - 1),
        st.integers(0, MAX_KEY),
    ),
    max_size=120,
)


@given(ops=ops_strategy, queue_name=st.sampled_from(["binary", "kheap", "dial", "mlb"]))
@settings(max_examples=120, deadline=None)
def test_queue_matches_reference(ops, queue_name):
    q = _make(queue_name)
    reference: dict[int, int] = {}
    floor = 0  # monotone floor for bucket queues
    popped: set[int] = set()
    for op, item, raw_key in ops:
        if op == "insert":
            if item in reference:
                continue
            key = floor + raw_key % (MAX_KEY - floor + 1) if floor < MAX_KEY else floor
            q.insert(item, key)
            reference[item] = key
        elif op == "decrease":
            if item not in reference:
                continue
            lo, hi = floor, reference[item]
            key = lo + raw_key % (hi - lo + 1)
            q.decrease_key(item, key)
            reference[item] = key
        else:  # pop
            if not reference:
                continue
            got_item, got_key = q.pop_min()
            assert got_key == min(reference.values())
            assert reference.pop(got_item) == got_key
            floor = got_key
            popped.add(got_item)
    # Drain and compare the multiset of remaining keys.
    drained = sorted(q.pop_min()[1] for _ in range(len(reference)))
    assert drained == sorted(reference.values())
    assert len(q) == 0


@given(
    keys=st.lists(st.integers(0, MAX_KEY), min_size=1, max_size=N_ITEMS, unique=False),
    queue_name=st.sampled_from(["binary", "kheap", "dial", "mlb"]),
)
@settings(max_examples=80, deadline=None)
def test_heapsort_property(keys, queue_name):
    """Insert-all-then-pop-all sorts any key multiset."""
    q = _make(queue_name)
    for i, k in enumerate(keys[:N_ITEMS]):
        q.insert(i, k)
    out = [q.pop_min()[1] for _ in range(min(len(keys), N_ITEMS))]
    assert out == sorted(keys[:N_ITEMS])
