"""Unit tests for the Dijkstra and BFS baselines."""

import numpy as np
import pytest

from repro.graph import INF, StaticGraph, grid_graph, path_graph, random_graph
from repro.sssp import QUEUE_NAMES, bfs, bfs_tree_python, dijkstra, make_queue


def test_path_graph_distances():
    g = path_graph(5, length=3)
    t = dijkstra(g, 0)
    assert t.dist.tolist() == [0, 3, 6, 9, 12]
    assert t.parent.tolist() == [-1, 0, 1, 2, 3]
    assert t.scanned == 5


def test_unreachable_vertices():
    g = StaticGraph(4, [0, 1], [1, 0], [2, 2])  # 2, 3 isolated
    t = dijkstra(g, 0)
    assert t.dist[2] == INF and t.dist[3] == INF
    assert t.reached().tolist() == [True, True, False, False]


def test_all_queues_agree(road):
    ref = dijkstra(road, 0, queue="binary").dist
    for name in QUEUE_NAMES:
        assert np.array_equal(dijkstra(road, 0, queue=name).dist, ref), name


def test_queue_factory_rejects_unknown(road):
    with pytest.raises(ValueError):
        make_queue("splay", road)


def test_queue_factory_callable(road):
    from repro.pq import BinaryHeap

    t = dijkstra(road, 0, queue=lambda g: BinaryHeap(g.n))
    assert t.dist[0] == 0


def test_source_out_of_range(road):
    with pytest.raises(ValueError):
        dijkstra(road, road.n)
    with pytest.raises(ValueError):
        bfs(road, -1)


def test_zero_length_arcs():
    g = StaticGraph(3, [0, 1], [1, 2], [0, 0])
    t = dijkstra(g, 0)
    assert t.dist.tolist() == [0, 0, 0]


def test_target_early_exit(road):
    full = dijkstra(road, 0)
    t = dijkstra(road, 0, target=road.n - 1)
    assert t.dist[road.n - 1] == full.dist[road.n - 1]
    assert t.scanned <= full.scanned


def test_dist_bound(road):
    full = dijkstra(road, 0)
    bound = int(np.median(full.dist))
    t = dijkstra(road, 0, dist_bound=bound)
    settled = t.dist <= bound
    assert np.array_equal(t.dist[settled], full.dist[settled])
    assert t.scanned < road.n


def test_record_order(road):
    t = dijkstra(road, 3, record_order=True)
    order = t.extra["scan_order"]
    assert order.size == t.scanned
    assert order[0] == 3
    # Settling order must be by non-decreasing distance.
    assert np.all(np.diff(t.dist[order]) >= 0)


def test_parent_tree_consistency(road):
    t = dijkstra(road, 5)
    for v in range(road.n):
        if v == 5 or t.dist[v] >= INF:
            continue
        p = int(t.parent[v])
        assert t.dist[p] + road.arc_length(p, v) == t.dist[v]


def test_path_to(road):
    t = dijkstra(road, 0)
    path = t.path_to(road.n - 1)
    assert path[0] == 0 and path[-1] == road.n - 1
    total = sum(road.arc_length(a, b) for a, b in zip(path, path[1:]))
    assert total == t.dist[road.n - 1]


def test_path_to_errors():
    g = StaticGraph(3, [0], [1], [1])
    t = dijkstra(g, 0)
    with pytest.raises(ValueError):
        t.path_to(2)  # unreachable
    t2 = dijkstra(g, 0, with_parents=False)
    with pytest.raises(ValueError):
        t2.path_to(1)


# -- BFS ----------------------------------------------------------------


def test_bfs_matches_reference(road):
    for s in (0, 7, road.n - 1):
        a = bfs(road, s)
        b = bfs_tree_python(road, s)
        assert np.array_equal(a.dist, b.dist)


def test_bfs_on_grid():
    g = grid_graph(4, 4)
    t = bfs(g, 0)
    # Manhattan distances on the grid.
    expect = [(r + c) for r in range(4) for c in range(4)]
    assert t.dist.tolist() == expect


def test_bfs_parents_valid(road):
    t = bfs(road, 2)
    for v in range(road.n):
        if v == 2 or t.dist[v] >= INF:
            continue
        p = int(t.parent[v])
        assert p >= 0
        assert t.dist[p] + 1 == t.dist[v]
        assert road.has_arc(p, v)


def test_bfs_unreachable():
    g = StaticGraph(3, [0], [1], [1])
    t = bfs(g, 0)
    assert t.dist[2] == INF


def test_bfs_matches_dijkstra_on_unit_lengths():
    g = random_graph(80, 300, max_len=1, seed=5, connected=True)
    # Force all lengths to exactly 1.
    g = StaticGraph(80, g.arc_tails(), g.arc_head, np.ones(g.m, dtype=np.int64))
    assert np.array_equal(bfs(g, 0).dist, dijkstra(g, 0).dist)
