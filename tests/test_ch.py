"""Unit and integration tests for contraction hierarchies."""

import numpy as np
import pytest

from repro.ch import CHParams, ch_query, contract_graph, unpack_arc, upward_search
from repro.graph import INF, StaticGraph, grid_graph, path_graph
from repro.sssp import dijkstra


def test_hierarchy_invariants(road_ch):
    road_ch.validate()


def test_every_vertex_contracted(road_ch):
    assert np.array_equal(np.sort(road_ch.rank), np.arange(road_ch.n))


def test_level_zero_is_large(road_ch):
    """Road networks put a large share of vertices at level 0 (Fig. 1)."""
    hist = road_ch.level_histogram()
    assert hist[0] >= road_ch.n * 0.2
    # Counts are (weakly) top-heavy at the bottom: the lowest level is
    # the largest.
    assert hist[0] == hist.max()


def test_shortcut_counts_reasonable(road, road_ch):
    # The paper adds fewer shortcuts than original arcs on road graphs.
    assert road_ch.num_shortcuts < road.m
    stats = road_ch.preprocessing_stats
    assert stats["witness_searches"] > 0
    assert stats["upward_arcs"] > 0


def test_upward_downward_partition(road, road_ch):
    # Every original (non-loop) arc appears in exactly one direction.
    assert road_ch.upward.m + road_ch.downward_rev.m >= road.m
    # Symmetric input => both graphs have the same arc count.
    assert road_ch.upward.m == road_ch.downward_rev.m


def test_ch_query_matches_dijkstra(road, road_ch, rng):
    for _ in range(30):
        s, t = (int(x) for x in rng.integers(0, road.n, 2))
        ref = dijkstra(road, s, with_parents=False).dist[t]
        q = ch_query(road_ch, s, t)
        assert q.distance == ref, (s, t)


def test_ch_query_same_vertex(road_ch):
    q = ch_query(road_ch, 3, 3)
    assert q.distance == 0


def test_ch_query_search_space_is_small(road, road_ch, rng):
    """CH queries settle far fewer vertices than Dijkstra."""
    settled = []
    for _ in range(20):
        s, t = (int(x) for x in rng.integers(0, road.n, 2))
        q = ch_query(road_ch, s, t)
        settled.append(q.settled_forward + q.settled_backward)
    assert np.mean(settled) < road.n / 3


def test_ch_query_unreachable():
    g = StaticGraph(3, [0, 1], [1, 0], [1, 1])  # vertex 2 isolated
    ch = contract_graph(g)
    q = ch_query(ch, 0, 2)
    assert q.distance == INF
    assert q.meeting == -1


def test_ch_query_path_unpacking(road, road_ch, rng):
    for _ in range(15):
        s, t = (int(x) for x in rng.integers(0, road.n, 2))
        q = ch_query(road_ch, s, t, unpack=True)
        assert q.path is not None
        assert q.path[0] == s and q.path[-1] == t
        total = sum(
            road.arc_length(a, b) for a, b in zip(q.path, q.path[1:])
        )
        assert total == q.distance


def test_path_gplus_ranks_bitonic(road_ch, rng):
    """G+ paths ascend in rank to the meeting vertex, then descend."""
    for _ in range(10):
        s, t = (int(x) for x in rng.integers(0, road_ch.n, 2))
        q = ch_query(road_ch, s, t, with_path=True)
        if q.path_gplus is None or len(q.path_gplus) < 2:
            continue
        ranks = road_ch.rank[np.array(q.path_gplus)]
        peak = int(np.argmax(ranks))
        assert np.all(np.diff(ranks[: peak + 1]) > 0)
        assert np.all(np.diff(ranks[peak:]) < 0)


def test_unpack_arc_original(road, road_ch):
    # Unpacking an original arc returns its two endpoints.
    u = int(road_ch.upward.arc_tails()[0])
    v = int(road_ch.upward.arc_head[road_ch.upward.first[u]])
    if road_ch.upward_via[road_ch.upward.first[u]] < 0:
        assert unpack_arc(road_ch, u, v) == [u, v]


def test_upward_search_covers_source(road_ch):
    space = upward_search(road_ch, 11)
    assert 11 in space.vertices.tolist()
    i = space.vertices.tolist().index(11)
    assert space.dists[i] == 0
    assert space.parents[i] == -1


def test_upward_search_is_small(road_ch):
    sizes = [upward_search(road_ch, s).size for s in range(0, road_ch.n, 37)]
    assert np.mean(sizes) < road_ch.n / 4


def test_upward_search_labels_are_upper_bounds(road, road_ch):
    ref = dijkstra(road, 0, with_parents=False).dist
    space = upward_search(road_ch, 0)
    assert np.all(space.dists >= ref[space.vertices])


def test_path_graph_hierarchy():
    g = path_graph(6, length=2)
    ch = contract_graph(g)
    ch.validate()
    for t in range(6):
        assert ch_query(ch, 0, t).distance == 2 * t


def test_grid_with_ties():
    """Uniform lengths produce many ties; CH must stay correct."""
    g = grid_graph(6, 6)
    ch = contract_graph(g)
    for s in (0, 17, 35):
        ref = dijkstra(g, s, with_parents=False).dist
        for t in (0, 5, 30, 35):
            assert ch_query(ch, s, t).distance == ref[t]


def test_single_vertex_graph():
    g = StaticGraph(1, [], [], [])
    ch = contract_graph(g)
    assert ch.n == 1
    assert ch_query(ch, 0, 0).distance == 0


def test_two_vertex_graph():
    g = StaticGraph(2, [0, 1], [1, 0], [5, 7])
    ch = contract_graph(g)
    assert ch_query(ch, 0, 1).distance == 5
    assert ch_query(ch, 1, 0).distance == 7


def test_custom_params_still_correct(small_road):
    """Exotic priority weights change the order, never correctness."""
    params = CHParams(ed_weight=1, cn_weight=0, h_weight=0, level_weight=1)
    ch = contract_graph(small_road, params)
    ch.validate()
    ref = dijkstra(small_road, 0, with_parents=False).dist
    for t in (1, 20, 63):
        assert ch_query(ch, 0, t).distance == ref[t]


def test_hop_limit_schedule_affects_shortcuts(small_road):
    """Stricter hop limits may add more (but never fewer) shortcuts."""
    strict = CHParams(hop_schedule=((None, 1),))
    loose = CHParams(hop_schedule=((None, None),))
    ch_strict = contract_graph(small_road, strict)
    ch_loose = contract_graph(small_road, loose)
    assert ch_strict.num_shortcuts >= ch_loose.num_shortcuts
    # Both stay correct.
    ref = dijkstra(small_road, 3, with_parents=False).dist
    assert ch_query(ch_strict, 3, 60).distance == ref[60]
    assert ch_query(ch_loose, 3, 60).distance == ref[60]


def test_witness_max_settled_stays_correct(small_road):
    """Capping witness searches adds shortcuts but never breaks CH."""
    params = CHParams(witness_max_settled=3)
    ch = contract_graph(small_road, params)
    ch.validate()
    baseline = contract_graph(small_road)
    assert ch.num_shortcuts >= baseline.num_shortcuts
    ref = dijkstra(small_road, 1, with_parents=False).dist
    for t in (0, 30, 63):
        assert ch_query(ch, 1, t).distance == ref[t]


def test_parallel_arcs_and_self_loops():
    g = StaticGraph(
        3,
        [0, 0, 0, 1, 2, 1],
        [1, 1, 0, 2, 0, 1],
        [9, 4, 3, 2, 1, 5],
    )
    ch = contract_graph(g)
    ref = dijkstra(g, 0, with_parents=False).dist
    for t in range(3):
        assert ch_query(ch, 0, t).distance == ref[t]


def test_asymmetric_graph():
    """Directed cycle: upward/downward arc counts differ."""
    g = StaticGraph(4, [0, 1, 2, 3], [1, 2, 3, 0], [1, 1, 1, 1])
    ch = contract_graph(g)
    ref = dijkstra(g, 1, with_parents=False).dist
    for t in range(4):
        assert ch_query(ch, 1, t).distance == ref[t]
