"""Tests for the machine catalog and the CPU cost model."""

import pytest

from repro.simulator import (
    MACHINES,
    Calibration,
    CostModel,
    WorkloadCounts,
    apsp_report,
    energy_per_tree,
    machine,
)

EUROPE = WorkloadCounts(n=18_000_000, arcs=33_800_000, levels=140)
EUROPE_DIJ = WorkloadCounts(n=18_000_000, arcs=42_000_000)


def test_machine_catalog_complete():
    assert set(MACHINES) == {"M2-1", "M2-4", "M4-12", "M1-4", "M2-6"}
    m14 = machine("M1-4")
    assert m14.cores == 4
    assert m14.numa_nodes == 1
    assert m14.clock_ghz == pytest.approx(2.67)
    assert machine("M4-12").cores == 48
    assert machine("M4-12").numa_nodes == 8


def test_machine_unknown():
    with pytest.raises(KeyError):
        machine("M9-99")


def test_calibration_anchors_m1_4():
    """The model must land near the paper's measured M1-4 figures."""
    cm = CostModel(machine("M1-4"))
    assert cm.phast_single(EUROPE) == pytest.approx(172, rel=0.10)
    assert cm.phast_lower_bound(EUROPE) == pytest.approx(65.6, rel=0.10)
    assert cm.dijkstra_single(EUROPE_DIJ) == pytest.approx(2800, rel=0.10)


def test_table2_shape():
    """Multi-tree shape: more k and more cores help; SSE helps."""
    cm = CostModel(machine("M1-4"))
    t_1_1 = cm.phast_per_tree_parallel(EUROPE, 1, trees_per_sweep=1)
    t_16_1 = cm.phast_per_tree_parallel(EUROPE, 1, trees_per_sweep=16)
    t_16_4 = cm.phast_per_tree_parallel(EUROPE, 4, trees_per_sweep=16)
    t_16_4s = cm.phast_per_tree_parallel(EUROPE, 4, trees_per_sweep=16, sse=True)
    assert t_16_1 < t_1_1
    assert t_16_4 < t_16_1
    assert t_16_4s < t_16_4
    # Paper cells: 96.8 / 25.9 / 18.8.
    assert t_16_1 == pytest.approx(96.8, rel=0.15)
    assert t_16_4 == pytest.approx(25.9, rel=0.15)
    assert t_16_4s == pytest.approx(18.8, rel=0.20)


def test_level_parallel_anchor():
    cm = CostModel(machine("M1-4"))
    got = cm.phast_single_tree_level_parallel(EUROPE, 4)
    assert got == pytest.approx(49.7, rel=0.15)


def test_phast_dijkstra_ratio_constant_across_machines():
    """Paper: PHAST beats Dijkstra by a machine-independent factor."""
    ratios = []
    for name in MACHINES:
        cm = CostModel(machine(name))
        ratios.append(cm.dijkstra_single(EUROPE_DIJ) / cm.phast_single(EUROPE))
    assert max(ratios) / min(ratios) < 1.15
    assert 10 < min(ratios) < 25


def test_pinning_matters_on_numa():
    """Unpinned threads on M4-12 forfeit most of the speedup."""
    cm = CostModel(machine("M4-12"))
    spec = machine("M4-12")
    pinned = cm.phast_per_tree_parallel(EUROPE, spec.cores, pinned=True)
    free = cm.phast_per_tree_parallel(EUROPE, spec.cores, pinned=False)
    assert free > 3 * pinned
    single = cm.phast_single(EUROPE)
    assert 20 < single / pinned <= 48  # paper: 34x on 48 cores


def test_pinning_irrelevant_on_single_socket():
    cm = CostModel(machine("M1-4"))
    pinned = cm.phast_per_tree_parallel(EUROPE, 4, pinned=True)
    free = cm.phast_per_tree_parallel(EUROPE, 4, pinned=False)
    assert free == pytest.approx(pinned)


def test_m4_12_nearly_matches_gphast():
    """Paper VIII-F: the 48-core server is almost as fast as GPHAST."""
    cm = CostModel(machine("M4-12"))
    best_cpu = cm.phast_per_tree_parallel(
        EUROPE, 48, trees_per_sweep=16, pinned=True
    )
    assert 1.5 < best_cpu < 8.0  # GPHAST models at ~2.1 ms


def test_threads_capped_at_cores():
    cm = CostModel(machine("M1-4"))
    a = cm.phast_per_tree_parallel(EUROPE, 4)
    b = cm.phast_per_tree_parallel(EUROPE, 400)
    assert a == b


def test_lower_bound_scales_with_k():
    cm = CostModel(machine("M1-4"))
    lb1 = cm.phast_lower_bound(EUROPE, 4, trees_per_sweep=1)
    lb16 = cm.phast_lower_bound(EUROPE, 4, trees_per_sweep=16)
    assert lb16 < lb1
    assert lb16 == pytest.approx(12.8, rel=0.25)  # paper Section VIII-C


def test_custom_calibration():
    cal = Calibration(dijkstra_cycles_per_arc=10.0)
    cm = CostModel(machine("M1-4"), cal)
    assert cm.dijkstra_single(EUROPE_DIJ) < CostModel(
        machine("M1-4")
    ).dijkstra_single(EUROPE_DIJ)


def test_energy_helpers():
    j = energy_per_tree(100.0, 200.0)
    assert j == pytest.approx(20.0)
    rep = apsp_report("M1-4", 47.1, 163.0, 18_000_000)
    assert rep.total_seconds == pytest.approx(47.1e-3 * 18e6)
    assert rep.per_tree_joules == pytest.approx(7.68, rel=0.01)
    # d:hh:mm formatting
    assert rep.total_dhm.count(":") == 2


def test_energy_without_watts():
    import math

    rep = apsp_report("X", 10.0, None, 100)
    assert math.isnan(rep.per_tree_joules)


def test_gphast_energy_beats_m4_12():
    """Paper: M4-12 burns ~3x the energy per tree of the GTX 580 box."""
    cm = CostModel(machine("M4-12"))
    cpu_ms = cm.phast_per_tree_parallel(EUROPE, 48, trees_per_sweep=16)
    cpu_j = energy_per_tree(cpu_ms, machine("M4-12").watts_full_load)
    gpu_j = energy_per_tree(2.21, 375.0)
    assert 1.5 < cpu_j / gpu_j < 6.0
