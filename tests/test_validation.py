"""Unit tests for graph validation and component helpers."""

import numpy as np
import pytest

from repro.graph import (
    StaticGraph,
    check_graph,
    connected_components,
    cycle_graph,
    grid_graph,
    is_strongly_connected,
    largest_strongly_connected_component,
    path_graph,
)


def test_check_graph_accepts_valid(small_road):
    check_graph(small_road)


def test_check_graph_rejects_corrupt():
    g = grid_graph(2, 2)
    g.first = g.first[:-1]
    with pytest.raises(ValueError):
        check_graph(g)


def test_strongly_connected_cases():
    assert is_strongly_connected(cycle_graph(5))
    assert is_strongly_connected(StaticGraph(1, [], [], []))
    # One-way path is not strongly connected.
    one_way = StaticGraph(3, [0, 1], [1, 2], [1, 1])
    assert not is_strongly_connected(one_way)


def test_connected_components_counts():
    # Two separate bidirected paths.
    g = StaticGraph(6, [0, 1, 3, 4], [1, 0, 4, 3], [1, 1, 1, 1])
    labels = connected_components(g)
    assert labels[0] == labels[1]
    assert labels[3] == labels[4]
    assert labels[0] != labels[3]
    # Vertices 2 and 5 are isolated components.
    assert len(set(labels.tolist())) == 4


def test_largest_scc_on_connected(small_road):
    sub, keep = largest_strongly_connected_component(small_road)
    assert sub.n == small_road.n
    assert np.array_equal(np.sort(keep), np.arange(small_road.n))


def test_largest_scc_strips_appendage():
    # Cycle 0-1-2 plus a one-way tail 2 -> 3.
    g = StaticGraph(4, [0, 1, 2, 2], [1, 2, 0, 3], [1, 1, 1, 1])
    sub, keep = largest_strongly_connected_component(g)
    assert sub.n == 3
    assert 3 not in keep.tolist()
    assert is_strongly_connected(sub)


def test_largest_scc_two_components():
    # Two cycles of sizes 3 and 2: keep the bigger one.
    g = StaticGraph(
        5, [0, 1, 2, 3, 4], [1, 2, 0, 4, 3], [1, 1, 1, 1, 1]
    )
    sub, keep = largest_strongly_connected_component(g)
    assert sub.n == 3
    assert sorted(keep.tolist()) == [0, 1, 2]


def test_largest_scc_path_graph_bidirected():
    g = path_graph(10)
    sub, keep = largest_strongly_connected_component(g)
    assert sub.n == 10


def test_largest_scc_empty():
    g = StaticGraph(0, [], [], [])
    sub, keep = largest_strongly_connected_component(g)
    assert sub.n == 0 and keep.size == 0
