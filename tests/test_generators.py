"""Unit tests for the synthetic network generators."""

import numpy as np
import pytest

from repro.graph import (
    RoadNetworkParams,
    check_graph,
    complete_graph,
    cycle_graph,
    europe_like,
    grid_graph,
    is_strongly_connected,
    path_graph,
    random_graph,
    road_network,
    star_graph,
    usa_like,
)


def test_road_network_basic_shape():
    g = road_network(RoadNetworkParams(rows=10, cols=12, seed=0))
    assert g.n == 120
    check_graph(g)
    assert is_strongly_connected(g)


def test_road_network_symmetric_arcs():
    g = road_network(RoadNetworkParams(rows=8, cols=8, seed=1))
    arcs = {(t, h): l for t, h, l in g.arcs()}
    for (t, h), l in arcs.items():
        assert arcs.get((h, t)) == l


def test_road_network_deterministic():
    p = RoadNetworkParams(rows=9, cols=9, seed=5)
    assert road_network(p) == road_network(p)


def test_road_network_seeds_differ():
    a = road_network(RoadNetworkParams(rows=9, cols=9, seed=5))
    b = road_network(RoadNetworkParams(rows=9, cols=9, seed=6))
    assert a != b


def test_road_network_positive_lengths():
    for metric in ("time", "distance"):
        g = road_network(RoadNetworkParams(rows=8, cols=8, metric=metric, seed=2))
        assert int(g.arc_len.min()) >= 1


def test_road_network_metrics_differ():
    t = road_network(RoadNetworkParams(rows=8, cols=8, metric="time", seed=2))
    d = road_network(RoadNetworkParams(rows=8, cols=8, metric="distance", seed=2))
    assert not np.array_equal(t.arc_len, d.arc_len)


def test_road_network_highway_tier_is_faster():
    """Travel-time lengths on highway rows must undercut local rows."""
    p = RoadNetworkParams(rows=33, cols=33, removal_prob=0.0, seed=0)
    g = road_network(p)
    # Row 0 is a highway (0 % 32 == 0); row 1 is local.
    hw = [g.arc_length(c, c + 1) for c in range(5)]
    local = [g.arc_length(p.cols + c, p.cols + c + 1) for c in range(5)]
    assert np.mean(hw) < np.mean(local) / 2


def test_road_network_param_validation():
    with pytest.raises(ValueError):
        RoadNetworkParams(rows=1, cols=5)
    with pytest.raises(ValueError):
        RoadNetworkParams(metric="hops")
    with pytest.raises(ValueError):
        RoadNetworkParams(removal_prob=1.0)


def test_removal_keeps_connectivity():
    g = road_network(
        RoadNetworkParams(rows=12, cols=12, removal_prob=0.4, seed=3)
    )
    assert is_strongly_connected(g)


def test_europe_and_usa_like():
    eu = europe_like(scale=10)
    us = usa_like(scale=10)
    assert eu.n == 100
    assert us.n == 10 * (int(10 * 1.33) + 1)
    assert is_strongly_connected(eu)
    assert is_strongly_connected(us)


def test_grid_graph():
    g = grid_graph(3, 4, length=2)
    assert g.n == 12
    assert g.m == 2 * (3 * 3 + 2 * 4)  # bidirected edges
    assert g.arc_length(0, 1) == 2


def test_path_cycle_star_complete():
    assert path_graph(4).m == 6
    assert cycle_graph(4).m == 8
    assert star_graph(5).m == 8
    assert complete_graph(4).m == 12


def test_random_graph_connected_flag():
    g = random_graph(50, 20, seed=1, connected=True)
    assert is_strongly_connected(g)
    assert g.m == 2 * 50 + 20


def test_random_graph_zero_arcs():
    g = random_graph(10, 0, seed=0)
    assert g.m == 0
