"""Tests for the batched independent-set contraction engine.

The batched engine must be *observationally identical* to the lazy
sequential reference: every p2p query and every PHAST tree returns the
exact Dijkstra distances, ranks/levels form a valid topological order
of the downward graph, and the shortcut count stays close (within 15%
on road-like inputs — the batched rounds decide shortcuts with
slightly less information than the strictly sequential order).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ch import CHParams, ch_query, contract_graph
from repro.core import PhastEngine
from repro.graph import (
    DynamicAdjacency,
    GraphBuilder,
    RoadNetworkParams,
    StaticGraph,
    cycle_graph,
    europe_like,
    grid_graph,
    road_network,
)
from repro.sssp import dijkstra

BATCHED = CHParams(strategy="batched")


@pytest.fixture(scope="module")
def road_batched_ch(road):
    return contract_graph(road, BATCHED)


# -- hierarchy validity -------------------------------------------------------


def test_batched_hierarchy_validates(road_batched_ch):
    road_batched_ch.validate()


def test_batched_stats_shape(road_batched_ch):
    stats = road_batched_ch.preprocessing_stats
    assert stats["strategy"] == "batched"
    assert stats["rounds"] == len(stats["round_log"])
    assert stats["peak_batch"] == max(r["batch"] for r in stats["round_log"])
    assert stats["witness_searches"] > 0
    assert sum(r["batch"] for r in stats["round_log"]) == road_batched_ch.n


def test_ranks_and_levels_topological_on_downward(road_batched_ch):
    """rank is a permutation; downward arcs decrease in both rank and
    level — i.e. a valid topological order of G-down."""
    ch = road_batched_ch
    rank = ch.rank
    assert np.array_equal(np.sort(rank), np.arange(ch.n))
    down = ch.downward_rev  # stored per head: tails have higher rank
    heads = down.arc_tails()
    tails = down.arc_head
    assert np.all(ch.rank[tails] > ch.rank[heads])
    assert np.all(ch.level[tails] > ch.level[heads])


def test_independent_rounds_never_contract_neighbours(road):
    """No arc of the original graph connects two same-round vertices.

    Round membership is recovered from the round log: ranks are
    assigned contiguously per round in round order.
    """
    ch = contract_graph(road, BATCHED)
    sizes = [r["batch"] for r in ch.preprocessing_stats["round_log"]]
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    round_of_rank = np.searchsorted(bounds, np.arange(ch.n), side="right") - 1
    round_of_vertex = round_of_rank[ch.rank]
    tails = road.arc_tails()
    heads = road.arc_head
    proper = tails != heads
    assert np.all(
        round_of_vertex[tails[proper]] != round_of_vertex[heads[proper]]
    )


# -- distances ----------------------------------------------------------------


def test_batched_p2p_equals_dijkstra(road, road_batched_ch):
    rng = np.random.default_rng(5)
    for _ in range(40):
        s, t = (int(x) for x in rng.integers(0, road.n, 2))
        ref = dijkstra(road, s, with_parents=False).dist[t]
        assert ch_query(road_batched_ch, s, t).distance == ref


def test_batched_phast_trees_equal_dijkstra(road, road_batched_ch):
    engine = PhastEngine(road_batched_ch)
    for s in (0, 17, 123, road.n - 1):
        ref = dijkstra(road, s, with_parents=False).dist
        assert np.array_equal(engine.tree(s).dist, ref)


@pytest.mark.parametrize(
    "graph",
    [
        grid_graph(5, 5),
        cycle_graph(9),
        road_network(RoadNetworkParams(rows=6, cols=6, seed=11)),
        europe_like(scale=9, metric="time", seed=3),
    ],
    ids=["grid", "cycle", "road6", "europe9"],
)
def test_batched_trees_on_graph_zoo(graph):
    ch = contract_graph(graph, BATCHED)
    ch.validate()
    engine = PhastEngine(ch)
    rng = np.random.default_rng(0)
    for s in rng.integers(0, graph.n, 3):
        ref = dijkstra(graph, int(s), with_parents=False).dist
        assert np.array_equal(engine.tree(int(s)).dist, ref)


def test_batched_handles_isolated_and_singleton():
    b = GraphBuilder(4)
    b.add_arc(0, 1, 2)
    b.add_arc(1, 0, 2)
    ch = contract_graph(b.build(), BATCHED)
    ch.validate()
    assert ch_query(ch, 0, 1).distance == 2
    one = contract_graph(GraphBuilder(1).build(), BATCHED)
    one.validate()
    assert one.n == 1


# -- shortcut parity ----------------------------------------------------------


def test_shortcut_count_within_15_percent(road):
    seq = contract_graph(road, CHParams(strategy="lazy"))
    bat = contract_graph(road, BATCHED)
    assert bat.num_shortcuts <= 1.15 * seq.num_shortcuts


def test_unknown_strategy_rejected(road):
    with pytest.raises(ValueError):
        contract_graph(road, CHParams(strategy="greedy"))


# -- parallel preprocessing determinism ---------------------------------------


def _assert_hierarchies_identical(a, b):
    """Every array that defines the hierarchy must match bit for bit."""
    assert np.array_equal(a.rank, b.rank)
    assert np.array_equal(a.level, b.level)
    assert a.num_shortcuts == b.num_shortcuts
    for side in ("upward", "downward_rev"):
        ga, gb = getattr(a, side), getattr(b, side)
        assert np.array_equal(ga.first, gb.first), side
        assert np.array_equal(ga.arc_head, gb.arc_head), side
        assert np.array_equal(ga.arc_len, gb.arc_len), side
    assert np.array_equal(a.upward_via, b.upward_via)
    assert np.array_equal(a.downward_via, b.downward_via)


def test_parallel_preprocessing_bit_identical_to_serial(road):
    from repro.ch import contract_graph_batched

    serial = contract_graph_batched(road, BATCHED)
    par = contract_graph_batched(
        road, BATCHED, num_workers=2, force_pool=True
    )
    _assert_hierarchies_identical(serial, par)
    stats = par.preprocessing_stats
    assert stats["parallel"] is True
    assert stats["workers"] == 2
    assert stats["pool_health"]["workers_configured"] == 2
    # Same work was done, just elsewhere.
    assert (
        stats["witness_searches"]
        == serial.preprocessing_stats["witness_searches"]
    )
    # Query distances (the observable contract) agree everywhere the
    # arrays already forced them to.
    rng = np.random.default_rng(9)
    for _ in range(10):
        s, t = (int(x) for x in rng.integers(0, road.n, 2))
        assert (
            ch_query(serial, s, t).distance == ch_query(par, s, t).distance
        )


def test_parallel_preprocessing_worker_count_invariance():
    from repro.ch import contract_graph_batched

    g = road_network(RoadNetworkParams(rows=8, cols=8, seed=21))
    two = contract_graph_batched(g, BATCHED, num_workers=2, force_pool=True)
    three = contract_graph_batched(g, BATCHED, num_workers=3, force_pool=True)
    _assert_hierarchies_identical(two, three)


def test_preprocess_workers_param_falls_back_serially(road, monkeypatch):
    """CHParams.preprocess_workers flows through contract_graph; on a
    single-CPU host (forced here) it degrades to the serial engine with
    the fallback flagged, and the result is the serial result."""
    import repro.utils.workers as workers_mod

    monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 1)
    ref = contract_graph(road, BATCHED)
    ch = contract_graph(
        road, CHParams(strategy="batched", preprocess_workers=4)
    )
    stats = ch.preprocessing_stats
    assert stats["parallel"] is False
    assert stats["fell_back"] is True
    assert stats["workers"] == 1
    _assert_hierarchies_identical(ref, ch)


# -- dynamic adjacency --------------------------------------------------------


def test_dynamic_adjacency_rebuild_preserves_arcs():
    g = grid_graph(4, 4)
    dyn = DynamicAdjacency(g, rebuild_every=1)
    before = {
        (int(t), int(h))
        for t, h in zip(*dyn.live_arc_pairs())
    }
    dyn.add_arcs(
        np.array([0, 5]), np.array([10, 12]), np.array([7, 7]),
        np.array([2, 2]),
    )
    dyn.retire(np.array([1]), removed_arcs=0)
    dyn.end_round()  # forces a rebuild (rebuild_every=1)
    after = {
        (int(t), int(h))
        for t, h in zip(*dyn.live_arc_pairs())
    }
    assert (0, 10) in after and (5, 12) in after
    assert all(1 not in pair for pair in after)
    # Every surviving original arc is still there.
    expect = {p for p in before if 1 not in p} | {(0, 10), (5, 12)}
    assert after == expect


# -- property tests -----------------------------------------------------------


@st.composite
def graphs(draw, max_n=14, max_m=40):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    tails = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    heads = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    lens = draw(st.lists(st.integers(0, 30), min_size=m, max_size=m))
    return StaticGraph(n, tails, heads, lens)


@given(g=graphs(), source=st.integers(0, 13))
@settings(max_examples=50, deadline=None)
def test_batched_phast_equals_dijkstra_on_random_graphs(g, source):
    source %= g.n
    ch = contract_graph(g, BATCHED)
    ch.validate()
    ref = dijkstra(g, source, with_parents=False).dist
    assert np.array_equal(PhastEngine(ch).tree(source).dist, ref)


@given(g=graphs(), s=st.integers(0, 13), t=st.integers(0, 13))
@settings(max_examples=50, deadline=None)
def test_batched_query_equals_dijkstra_on_random_graphs(g, s, t):
    s %= g.n
    t %= g.n
    ch = contract_graph(g, BATCHED)
    ref = dijkstra(g, s, with_parents=False).dist[t]
    assert ch_query(ch, s, t).distance == ref
