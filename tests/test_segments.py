"""Unit tests for the segmented-array helpers."""

import numpy as np
import pytest

from repro.utils import gather_ranges, repeat_per_segment, segment_minimum


def test_gather_ranges_simple():
    first = np.array([0, 2, 2, 5])
    idx, owner = gather_ranges(first, np.array([0, 2]))
    assert idx.tolist() == [0, 1, 2, 3, 4]
    assert owner.tolist() == [0, 0, 1, 1, 1]


def test_gather_ranges_empty_vertex():
    first = np.array([0, 2, 2, 5])
    idx, owner = gather_ranges(first, np.array([1]))
    assert idx.size == 0 and owner.size == 0


def test_gather_ranges_repeats_and_order():
    first = np.array([0, 1, 3])
    idx, owner = gather_ranges(first, np.array([1, 0, 1]))
    assert idx.tolist() == [1, 2, 0, 1, 2]
    assert owner.tolist() == [0, 0, 1, 2, 2]


def test_repeat_per_segment():
    first = np.array([0, 2, 2, 3])
    out = repeat_per_segment(np.array([10, 20, 30]), first)
    assert out.tolist() == [10, 10, 30]


def test_segment_minimum_basic():
    values = np.array([5, 3, 9, 1], dtype=np.int64)
    boundaries = np.array([0, 2, 4])
    out = segment_minimum(values, boundaries)
    assert out.tolist() == [3, 1]


def test_segment_minimum_empty_segments():
    values = np.array([5, 3], dtype=np.int64)
    boundaries = np.array([0, 0, 2, 2])
    out = segment_minimum(values, boundaries)
    assert out[0] == np.iinfo(np.int64).max
    assert out[1] == 3
    assert out[2] == np.iinfo(np.int64).max


def test_segment_minimum_with_initial():
    values = np.array([5, 3], dtype=np.int64)
    boundaries = np.array([0, 1, 2])
    initial = np.array([4, 10], dtype=np.int64)
    out = segment_minimum(values, boundaries, initial=initial)
    assert out.tolist() == [4, 3]


def test_segment_minimum_all_empty():
    values = np.zeros(0, dtype=np.int64)
    boundaries = np.array([0, 0, 0])
    initial = np.array([7, 8], dtype=np.int64)
    out = segment_minimum(values, boundaries, initial=initial)
    assert out.tolist() == [7, 8]


def test_segment_minimum_2d():
    values = np.array([[5, 1], [3, 2], [9, 0]], dtype=np.int64)
    boundaries = np.array([0, 2, 3])
    out = segment_minimum(values, boundaries)
    assert out.tolist() == [[3, 1], [9, 0]]


def test_segment_minimum_trailing_empty():
    values = np.array([4], dtype=np.int64)
    boundaries = np.array([0, 1, 1])
    out = segment_minimum(values, boundaries)
    assert out[0] == 4
    assert out[1] == np.iinfo(np.int64).max


def test_segment_minimum_matches_python_reference():
    rng = np.random.default_rng(0)
    for _ in range(20):
        k = int(rng.integers(1, 12))
        counts = rng.integers(0, 5, size=k)
        boundaries = np.concatenate(([0], np.cumsum(counts)))
        values = rng.integers(0, 100, size=int(boundaries[-1])).astype(np.int64)
        out = segment_minimum(values, boundaries)
        for i in range(k):
            seg = values[boundaries[i] : boundaries[i + 1]]
            expect = seg.min() if seg.size else np.iinfo(np.int64).max
            assert out[i] == expect
