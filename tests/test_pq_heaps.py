"""Unit tests for the binary and d-ary heaps."""

import numpy as np
import pytest

from repro.pq import BinaryHeap, KHeap


@pytest.fixture(params=["binary", "kheap2", "kheap4", "kheap8"])
def heap(request):
    n = 256
    if request.param == "binary":
        return BinaryHeap(n)
    arity = int(request.param.removeprefix("kheap"))
    return KHeap(n, arity=arity)


def test_empty(heap):
    assert len(heap) == 0
    assert not heap
    with pytest.raises(IndexError):
        heap.pop_min()
    with pytest.raises(IndexError):
        heap.peek_min()


def test_single_item(heap):
    heap.insert(7, 42)
    assert len(heap) == 1
    assert heap.contains(7)
    assert heap.key_of(7) == 42
    assert heap.peek_min() == (7, 42)
    assert heap.pop_min() == (7, 42)
    assert not heap.contains(7)
    assert len(heap) == 0


def test_sorted_extraction(heap):
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1000, size=100)
    for i, k in enumerate(keys):
        heap.insert(i, int(k))
    out = [heap.pop_min()[1] for _ in range(100)]
    assert out == sorted(keys.tolist())


def test_decrease_key_moves_up(heap):
    for i in range(10):
        heap.insert(i, 100 + i)
    heap.decrease_key(9, 1)
    assert heap.pop_min() == (9, 1)


def test_decrease_key_same_value_ok(heap):
    heap.insert(0, 5)
    heap.decrease_key(0, 5)
    assert heap.pop_min() == (0, 5)


def test_decrease_key_rejects_increase(heap):
    heap.insert(0, 5)
    with pytest.raises(ValueError):
        heap.decrease_key(0, 6)


def test_decrease_key_missing_item(heap):
    with pytest.raises(KeyError):
        heap.decrease_key(3, 1)
    with pytest.raises(KeyError):
        heap.key_of(3)


def test_double_insert_rejected(heap):
    heap.insert(0, 1)
    with pytest.raises(ValueError):
        heap.insert(0, 2)


def test_reinsert_after_pop(heap):
    heap.insert(0, 1)
    heap.pop_min()
    heap.insert(0, 2)
    assert heap.pop_min() == (0, 2)


def test_clear(heap):
    for i in range(5):
        heap.insert(i, i)
    heap.clear()
    assert len(heap) == 0
    assert not heap.contains(2)
    heap.insert(2, 9)  # usable again
    assert heap.pop_min() == (2, 9)


def test_push_or_decrease(heap):
    heap.push_or_decrease(1, 10)
    heap.push_or_decrease(1, 4)
    assert heap.pop_min() == (1, 4)


def test_duplicate_keys(heap):
    for i in range(20):
        heap.insert(i, 7)
    keys = [heap.pop_min()[1] for _ in range(20)]
    assert keys == [7] * 20


def test_kheap_rejects_bad_arity():
    with pytest.raises(ValueError):
        KHeap(10, arity=1)


def test_interleaved_ops(heap):
    """Mixed inserts/pops/decreases keep the min invariant."""
    rng = np.random.default_rng(42)
    reference: dict[int, int] = {}
    for step in range(500):
        op = rng.integers(0, 3)
        if op == 0 and len(reference) < 200:
            free = [i for i in range(256) if i not in reference]
            item = int(rng.choice(free))
            key = int(rng.integers(0, 10_000))
            heap.insert(item, key)
            reference[item] = key
        elif op == 1 and reference:
            item = int(rng.choice(list(reference)))
            new = int(rng.integers(0, reference[item] + 1))
            heap.decrease_key(item, new)
            reference[item] = new
        elif op == 2 and reference:
            item, key = heap.pop_min()
            assert key == min(reference.values())
            assert reference.pop(item) == key
    while reference:
        item, key = heap.pop_min()
        assert key == min(reference.values())
        assert reference.pop(item) == key
