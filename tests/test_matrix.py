"""Matrix serving tests: RPHAST engine, selection cache, pool, server.

The acceptance bar of the matrix op: every backend and every execution
path (serial pool, worker pool at any width, with and without cache
hits, across an injected worker crash) returns a matrix bit-identical
to full-PHAST slices — and nothing leaks shared memory.
"""

from __future__ import annotations

import glob
import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ch import contract_graph
from repro.core import (
    PhastEngine,
    PhastPool,
    RPhastEngine,
    SelectionCache,
    many_to_many_buckets,
)
from repro.graph import StaticGraph
from repro.server import (
    PhastService,
    ServerClient,
    ServerConfig,
    ServerError,
    serve_in_thread,
)
from repro.sssp import dijkstra


def _shm_names() -> set:
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/repro-*"))


TARGETS = [3, 17, 44, 101, 250, 399]
SOURCES = [0, 5, 42, 77, 123, 200, 388]


@pytest.fixture(scope="module")
def reference(road, road_ch):
    """Full-PHAST slices: the bit-exactness oracle for every backend."""
    engine = PhastEngine(road_ch)
    return np.stack([engine.tree(s).dist[TARGETS] for s in SOURCES])


# ---------------------------------------------------------------------------
# Engine: vectorized selection, lane sweeps, buffers, search cache


def test_matrix_parity_three_ways(road, road_ch, reference):
    """RPHAST == buckets == full-PHAST slices on the road fixture."""
    eng = RPhastEngine(road_ch, TARGETS)
    assert np.array_equal(eng.many_to_many(SOURCES), reference)
    assert np.array_equal(
        many_to_many_buckets(road_ch, SOURCES, TARGETS), reference
    )


def test_sweep_lanes_equals_per_source(road_ch, reference):
    eng = RPhastEngine(road_ch, TARGETS)
    singles = np.stack([eng.distances(s) for s in SOURCES])
    assert np.array_equal(singles, reference)
    assert np.array_equal(eng.sweep_lanes(SOURCES), reference)


@pytest.mark.parametrize("lanes", [1, 2, 3, 16])
def test_many_to_many_lane_width_invariance(road_ch, reference, lanes):
    eng = RPhastEngine(road_ch, TARGETS)
    assert np.array_equal(eng.many_to_many(SOURCES, lanes=lanes), reference)


def test_many_to_many_rejects_bad_lanes(road_ch):
    eng = RPhastEngine(road_ch, TARGETS)
    with pytest.raises(ValueError):
        eng.many_to_many(SOURCES, lanes=0)


def test_repeated_queries_reuse_buffers(road_ch, reference):
    """Back-to-back sweeps (the serving pattern) stay bit-identical."""
    eng = RPhastEngine(road_ch, TARGETS)
    for _ in range(3):
        assert np.array_equal(eng.many_to_many(SOURCES, lanes=4), reference)
        assert np.array_equal(eng.distances(SOURCES[0]), reference[0])


def test_search_cache_counters(road_ch, reference):
    eng = RPhastEngine(road_ch, TARGETS, search_cache=len(SOURCES))
    eng.many_to_many(SOURCES)
    info = eng.cache_info()
    assert info["misses"] == len(SOURCES)
    assert info["hits"] == 0
    assert info["entries"] == len(SOURCES)
    assert np.array_equal(eng.many_to_many(SOURCES), reference)
    assert eng.cache_info()["hits"] == len(SOURCES)

    bounded = RPhastEngine(road_ch, TARGETS, search_cache=2)
    bounded.many_to_many(SOURCES)
    assert bounded.cache_info()["entries"] == 2  # LRU capacity bound


def test_unreachable_targets_stay_inf():
    """Two components: the INF sentinel must survive the relaxations."""
    from repro.graph import INF

    g = StaticGraph(4, [0, 1], [1, 0], [5, 5])  # {0,1} and isolated {2,3}
    ch = contract_graph(g)
    eng = RPhastEngine(ch, [1, 3])
    row = eng.distances(0)
    assert row[0] == 5  # target 1
    assert row[1] == INF  # target 3, unreachable
    assert np.array_equal(
        eng.sweep_lanes([0, 2]),
        np.array([[5, INF], [INF, INF]], dtype=np.int64),
    )


def test_selection_arrays_round_trip(road_ch, reference):
    eng = RPhastEngine(road_ch, TARGETS, search_cache=2)
    rebuilt = RPhastEngine.from_arrays(
        road_ch, eng.selection_arrays(), search_cache=2
    )
    assert rebuilt.size == eng.size
    assert np.array_equal(rebuilt.targets, eng.targets)
    assert np.array_equal(rebuilt.many_to_many(SOURCES), reference)


def test_freeze_keeps_engine_usable(road_ch, reference):
    eng = RPhastEngine(road_ch, TARGETS).freeze()
    assert not eng.vertex_at.flags.writeable
    assert np.array_equal(eng.many_to_many(SOURCES), reference)


@st.composite
def graphs(draw, max_n=12, max_m=30):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    tails = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    heads = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    lens = draw(st.lists(st.integers(0, 30), min_size=m, max_size=m))
    return StaticGraph(n, tails, heads, lens)


@given(
    g=graphs(),
    sources=st.lists(st.integers(0, 11), min_size=1, max_size=4),
    targets=st.lists(st.integers(0, 11), min_size=1, max_size=4),
)
@settings(max_examples=30, deadline=None)
def test_matrix_parity_on_random_graphs(g, sources, targets):
    """RPHAST lanes == buckets == Dijkstra on adversarial random graphs."""
    S = [s % g.n for s in sources]
    T = np.unique([t % g.n for t in targets])
    ch = contract_graph(g)
    ref = np.stack([dijkstra(g, s, with_parents=False).dist[T] for s in S])
    eng = RPhastEngine(ch, T, search_cache=4)
    assert np.array_equal(eng.many_to_many(S, lanes=2), ref)
    assert np.array_equal(many_to_many_buckets(ch, S, T), ref)


# ---------------------------------------------------------------------------
# SelectionCache


def test_selection_cache_counters_and_lru():
    cache = SelectionCache(2)
    assert cache.get("a") is None
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # bumps a over b
    cache.put("c", 3)  # evicts b (LRU)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    snap = cache.snapshot()
    assert snap["hits"] == 2 and snap["misses"] == 2
    assert snap["evictions"] == 1 and snap["entries"] == 2


def test_selection_cache_on_evict_and_clear():
    evicted: list = []
    cache = SelectionCache(1, on_evict=lambda k, v: evicted.append((k, v)))
    cache.put("a", "A")
    cache.put("b", "B")
    assert evicted == [("a", "A")]
    cache.clear()
    assert evicted == [("a", "A"), ("b", "B")]
    assert len(cache) == 0


def test_selection_cache_key_is_order_insensitive():
    assert SelectionCache.key_of([3, 1, 2]) == SelectionCache.key_of([1, 2, 3])
    assert SelectionCache.key_of([1, 1, 2]) == SelectionCache.key_of([2, 1])
    assert SelectionCache.key_of([1]) != SelectionCache.key_of([2])


def test_selection_cache_engine_helper(road_ch, reference):
    cache = SelectionCache(4)
    eng = cache.engine(road_ch, TARGETS)
    assert cache.engine(road_ch, list(reversed(TARGETS))) is eng
    assert cache.snapshot()["hits"] == 1
    assert np.array_equal(eng.many_to_many(SOURCES), reference)


def test_selection_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        SelectionCache(0)


# ---------------------------------------------------------------------------
# Pool execution


@pytest.mark.parametrize(
    "pool_kwargs",
    [
        {"num_workers": 1},  # serial, no shared memory
        {"num_workers": 2, "force_pool": True},
        {"num_workers": 3, "force_pool": True, "sources_per_sweep": 4},
    ],
)
def test_pool_matrix_bit_identical(road_ch, reference, pool_kwargs):
    eng = RPhastEngine(road_ch, TARGETS)
    with PhastPool(road_ch, **pool_kwargs) as pool:
        pub = pool.publish_arrays(eng.selection_arrays())
        assert np.array_equal(
            pool.matrix(SOURCES, selection=pub), reference
        )
        # Second call rides the worker-side engine cache.
        assert np.array_equal(
            pool.matrix(SOURCES, selection=pub, search_cache=8), reference
        )
        assert np.array_equal(
            pool.matrix([], selection=pub),
            np.empty((0, 0), dtype=np.int64),
        )


def test_pool_matrix_selection_retirement(road_ch, reference):
    before = _shm_names()
    eng = RPhastEngine(road_ch, TARGETS)
    with PhastPool(road_ch, num_workers=2, force_pool=True) as pool:
        name, specs = pool.publish_arrays(eng.selection_arrays())
        assert os.path.exists(f"/dev/shm/{name}")
        assert np.array_equal(
            pool.matrix(SOURCES, selection=(name, specs)), reference
        )
        pool.retire_publication(name)
        assert not os.path.exists(f"/dev/shm/{name}")
    assert _shm_names() <= before


def test_pool_matrix_serial_retirement(road_ch, reference):
    with PhastPool(road_ch, num_workers=1) as pool:
        pub = pool.publish_arrays(RPhastEngine(road_ch, TARGETS).selection_arrays())
        assert np.array_equal(pool.matrix(SOURCES, selection=pub), reference)
        pool.retire_publication(pub[0])
        assert pub[0] not in pool._local_segments
        assert pub[0] not in pool._restricted_local


def test_pool_matrix_bitidentical_across_injected_crash(road_ch, reference):
    """A worker dying mid-matrix is invisible: same bits, no shm leak."""
    eng = RPhastEngine(road_ch, TARGETS)
    S = list(range(0, 120, 2))
    expected = eng.many_to_many(S)
    before = _shm_names()
    with PhastPool(
        road_ch,
        num_workers=2,
        force_pool=True,
        chunk_size=8,
        heartbeat_interval=0.05,
        fault_plan="crash:chunk=1,times=1",
    ) as pool:
        pub = pool.publish_arrays(eng.selection_arrays())
        assert np.array_equal(pool.matrix(S, selection=pub), expected)
        assert pool.health()["deaths"] >= 1
        # And again on the recovered pool.
        assert np.array_equal(pool.matrix(S, selection=pub), expected)
    assert _shm_names() <= before


# ---------------------------------------------------------------------------
# Server op


@pytest.fixture(scope="module")
def matrix_server(road, road_ch):
    service = PhastService(
        road_ch,
        graph=road,
        config=ServerConfig(
            batch_max=4,
            max_wait_ms=10.0,
            selection_cache=2,
            # Slow poll so tests can pin admission capacity directly.
            health_poll_ms=60_000.0,
        ),
    )
    with serve_in_thread(service) as handle:
        yield handle


@pytest.fixture()
def matrix_client(matrix_server):
    with ServerClient(matrix_server.host, matrix_server.port) as c:
        yield c


def test_server_matrix_parity_and_cache(matrix_server, matrix_client, reference):
    assert np.array_equal(matrix_client.matrix(SOURCES, TARGETS), reference)
    # Same target set again: selection must come from the cache.
    resp = matrix_client.call(
        "matrix", sources=list(SOURCES), targets=list(TARGETS)
    )
    assert resp["selection_cached"] is True
    assert resp["rows"] == len(SOURCES) and resp["cols"] == len(TARGETS)
    snap = matrix_client.metrics()["selection_cache"]
    assert snap["hits"] >= 1
    assert matrix_client.metrics()["matrix"]["requests"] >= 2


def test_server_matrix_request_order_columns(matrix_client, road_ch):
    """Duplicated, unsorted targets map back to request order."""
    T = [44, 3, 44, 101]
    S = SOURCES[:3]
    eng = RPhastEngine(road_ch, T)
    cols = np.searchsorted(eng.targets, np.asarray(T))
    expected = eng.many_to_many(S)[:, cols]
    assert np.array_equal(matrix_client.matrix(S, T), expected)


def test_server_matrix_buckets_backend(matrix_client, reference):
    mat = matrix_client.matrix(SOURCES, TARGETS, backend="buckets")
    assert np.array_equal(mat, reference)


def test_server_matrix_bad_requests(matrix_client):
    for params in (
        {"targets": list(TARGETS)},  # missing sources
        {"sources": [], "targets": list(TARGETS)},
        {"sources": list(SOURCES), "targets": [10**9]},
        {"sources": list(SOURCES), "targets": list(TARGETS),
         "backend": "magic"},
    ):
        with pytest.raises(ServerError) as exc_info:
            matrix_client.call("matrix", **params)
        assert exc_info.value.code == 400


def test_server_matrix_deadline(matrix_client):
    with pytest.raises(ServerError) as exc_info:
        matrix_client.matrix(SOURCES, TARGETS, timeout_ms=-1)
    assert exc_info.value.code == 504


def test_server_matrix_degraded_admission(matrix_server, matrix_client):
    """Matrix requests shed like any work op when capacity collapses."""
    admission = matrix_server.service.admission
    # Degraded capacity shrinks the effective bound to 1; occupy that
    # one slot so the next matrix request is deterministically shed.
    admission.set_capacity(0.0)
    assert admission.try_acquire() is None
    try:
        with pytest.raises(ServerError) as exc_info:
            matrix_client.matrix(SOURCES, TARGETS)
        assert exc_info.value.code == 429
    finally:
        admission.release()
        admission.set_capacity(1.0)
    assert np.array_equal(
        matrix_client.matrix(SOURCES[:2], TARGETS),
        matrix_client.matrix(SOURCES[:2], TARGETS, backend="buckets"),
    )


def test_server_selection_cache_evicts_publications(road, road_ch):
    """Distinct target sets beyond capacity retire their publications."""
    before = _shm_names()
    service = PhastService(
        road_ch,
        config=ServerConfig(
            batch_max=4, selection_cache=2,
            num_workers=2, force_pool=True,
        ),
    )
    with serve_in_thread(service) as handle:
        with ServerClient(handle.host, handle.port) as client:
            full = PhastEngine(road_ch)
            for shift in range(4):  # 4 distinct target sets, capacity 2
                T = [t - shift for t in TARGETS]
                ref = np.stack(
                    [full.tree(s).dist[T] for s in SOURCES[:3]]
                )
                assert np.array_equal(client.matrix(SOURCES[:3], T), ref)
            snap = client.metrics()["selection_cache"]
            assert snap["evictions"] >= 2
            assert snap["entries"] <= 2
    assert _shm_names() <= before


def test_server_matrix_survives_worker_kill(road, road_ch):
    """Matrix answers stay bit-identical through a worker SIGKILL."""
    before = _shm_names()
    service = PhastService(
        road_ch,
        config=ServerConfig(
            batch_max=4,
            num_workers=2,
            force_pool=True,
            heartbeat_interval_ms=50.0,
            health_poll_ms=50.0,
            selection_cache=4,
        ),
    )
    eng = RPhastEngine(road_ch, TARGETS)
    expected = eng.many_to_many(SOURCES)
    with serve_in_thread(service) as handle:
        with ServerClient(handle.host, handle.port, max_retries=3) as client:
            assert np.array_equal(client.matrix(SOURCES, TARGETS), expected)
            os.kill(
                service.pool.supervisor.processes()[0].pid, signal.SIGKILL
            )
            deadline = time.monotonic() + 30
            recovered = False
            while time.monotonic() < deadline and not recovered:
                assert np.array_equal(
                    client.matrix(SOURCES, TARGETS), expected
                )
                health = client.health()
                recovered = (
                    health["pool"]["workers_alive"] == 2
                    and health["pool"]["restarts"] >= 1
                )
            assert recovered, f"no recovery before deadline: {health}"
            metrics = client.metrics()
            assert metrics["pool"]["deaths"] >= 1
    assert _shm_names() <= before
