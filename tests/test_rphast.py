"""Tests for RPHAST (target-restricted one-to-many sweeps)."""

import numpy as np
import pytest

from repro.core import RPhastEngine
from repro.graph import INF
from repro.sssp import dijkstra


def test_distances_match_dijkstra(road, road_ch, rng):
    targets = rng.integers(0, road.n, 12)
    engine = RPhastEngine(road_ch, targets)
    for s in rng.integers(0, road.n, 6):
        s = int(s)
        ref = dijkstra(road, s, with_parents=False).dist
        got = engine.distances(s)
        assert np.array_equal(got, ref[engine.targets])


def test_single_target(road, road_ch):
    engine = RPhastEngine(road_ch, [17])
    ref = dijkstra(road, 3, with_parents=False).dist[17]
    assert engine.distances(3)[0] == ref


def test_duplicate_targets_collapsed(road_ch):
    engine = RPhastEngine(road_ch, [5, 5, 9, 9, 5])
    assert engine.targets.tolist() == [5, 9]


def test_all_targets_equals_phast(road, road_ch, road_engine):
    engine = RPhastEngine(road_ch, np.arange(road.n))
    assert engine.size == road.n
    ref = road_engine.tree(7).dist
    got = engine.distances(7)
    assert np.array_equal(got, ref[engine.targets])


def test_selection_is_small_for_few_targets(road, road_ch):
    engine = RPhastEngine(road_ch, [0, 1])
    assert engine.size < road.n
    full_arcs = road_ch.downward_rev.m
    assert engine.num_arcs < full_arcs


def test_selection_grows_with_targets(road, road_ch, rng):
    few = RPhastEngine(road_ch, rng.integers(0, road.n, 2))
    many = RPhastEngine(road_ch, rng.integers(0, road.n, 64))
    assert few.size <= many.size


def test_all_selected_labels_consistent(road, road_ch, rng):
    """Labels of every selected vertex are correct (not just targets)."""
    targets = rng.integers(0, road.n, 8)
    engine = RPhastEngine(road_ch, targets)
    s = 11
    ref = dijkstra(road, s, with_parents=False).dist
    labels = engine.distances(s, all_selected=True)
    # Selected labels may exceed true distances only for non-target
    # vertices whose shortest path leaves the restricted cone — but the
    # PHAST argument makes every selected vertex's label exact, since
    # selection is closed under downward predecessors.
    assert np.array_equal(labels, ref[engine.vertex_at])


def test_many_to_many_matrix(road, road_ch, rng):
    sources = [int(x) for x in rng.integers(0, road.n, 4)]
    targets = rng.integers(0, road.n, 6)
    engine = RPhastEngine(road_ch, targets)
    matrix = engine.many_to_many(sources)
    assert matrix.shape == (4, engine.targets.size)
    for i, s in enumerate(sources):
        ref = dijkstra(road, s, with_parents=False).dist
        assert np.array_equal(matrix[i], ref[engine.targets])


def test_unreachable_targets():
    from repro.ch import contract_graph
    from repro.graph import StaticGraph

    g = StaticGraph(4, [0, 1, 2, 3], [1, 0, 3, 2], [1, 1, 2, 2])
    ch = contract_graph(g)
    engine = RPhastEngine(ch, [1, 3])
    d = engine.distances(0)
    assert d[engine.targets.tolist().index(1)] == 1
    assert d[engine.targets.tolist().index(3)] == INF


def test_validation():
    import pytest

    from repro.ch import contract_graph
    from repro.graph import path_graph

    ch = contract_graph(path_graph(4))
    with pytest.raises(ValueError):
        RPhastEngine(ch, [])
    with pytest.raises(ValueError):
        RPhastEngine(ch, [9])


def test_repeated_queries_no_stale_state(road, road_ch, rng):
    engine = RPhastEngine(road_ch, rng.integers(0, road.n, 10))
    for s in rng.integers(0, road.n, 6):
        s = int(s)
        ref = dijkstra(road, s, with_parents=False).dist
        assert np.array_equal(engine.distances(s), ref[engine.targets])
