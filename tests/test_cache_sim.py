"""Tests for the cache simulator on hand-computable access patterns."""

import numpy as np
import pytest

from repro.simulator import CacheHierarchy, CacheLevel, nehalem_hierarchy


def direct_mapped(size=1024, line=64):
    return CacheLevel("L1", size, line, 1, latency_cycles=4)


def test_cold_miss_then_hit():
    c = direct_mapped()
    assert c.access(0) is False  # cold miss
    assert c.access(0) is True
    assert c.access(32) is True  # same 64-byte line
    assert c.access(64) is False  # next line


def test_direct_mapped_conflict():
    c = direct_mapped(size=1024, line=64)  # 16 sets
    a, b = 0, 1024  # same set, different tags
    assert c.access(a) is False
    assert c.access(b) is False
    assert c.access(a) is False  # evicted by b
    assert c.stats.hits == 0 and c.stats.misses == 3


def test_two_way_no_conflict():
    c = CacheLevel("L1", 2048, 64, 2, latency_cycles=4)
    a, b = 0, 2048 // 2  # map to the same set in a 2-way cache
    c.access(a)
    c.access(b)
    assert c.access(a) is True
    assert c.access(b) is True


def test_lru_eviction_order():
    c = CacheLevel("L1", 64 * 2, 64, 2, latency_cycles=1)  # 1 set, 2 ways
    c.access(0)
    c.access(64)
    c.access(0)  # refresh 0: LRU is now 64
    c.access(128)  # evicts 64
    assert c.access(0) is True
    assert c.access(64) is False


def test_sequential_streaming_miss_rate():
    """Streaming touches each line once: miss rate = 4/64 per int32."""
    c = direct_mapped(size=8192)
    addrs = np.arange(0, 64 * 100, 4)
    for a in addrs:
        c.access(int(a))
    assert c.stats.misses == 100
    assert c.stats.miss_rate == pytest.approx(100 / addrs.size)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheLevel("L1", 1000, 64, 3, latency_cycles=1)


def test_hierarchy_levels_and_dram():
    h = CacheHierarchy(
        levels=[
            CacheLevel("L1", 256, 64, 1, 4),
            CacheLevel("L2", 1024, 64, 2, 10),
        ]
    )
    assert h.access(0) == "DRAM"
    assert h.access(0) == "L1"
    # Evict from tiny L1 (4 sets) but keep in L2.
    h.access(256)  # set 0 conflict in L1
    assert h.access(0) == "L2"
    rep = h.report()
    assert rep["dram_accesses"] == 2.0
    assert rep["total_accesses"] == 4.0


def test_hierarchy_reset():
    h = nehalem_hierarchy(scale=0.01)
    h.access(0)
    h.reset()
    assert h.total_accesses == 0
    assert h.access(0) == "DRAM"


def test_access_array():
    h = nehalem_hierarchy(scale=0.01)
    h.access_array(np.zeros(10, dtype=np.int64))
    assert h.total_accesses == 10
    assert h.dram_accesses == 1


def test_nehalem_shape():
    h = nehalem_hierarchy()
    names = [l.name for l in h.levels]
    assert names == ["L1", "L2", "L3"]
    sizes = [l.num_sets * l.associativity * l.line_bytes for l in h.levels]
    assert sizes == [32 * 1024, 256 * 1024, 8 * 1024 * 1024]
