"""Tests for extension features: approximate betweenness, coordinates,
partition quality."""

import numpy as np
import pytest

from repro.apps import betweenness, betweenness_approx, partition_graph, partition_quality
from repro.graph import (
    RoadNetworkParams,
    road_network,
    road_network_coordinates,
    write_co,
)


def test_betweenness_approx_near_exact(small_road, small_road_ch):
    n = small_road.n
    exact = betweenness(small_road, small_road_ch)
    approx, m = betweenness_approx(
        small_road, small_road_ch, epsilon=0.05, delta=0.1, seed=0
    )
    assert 0 < m <= n
    # The guarantee is on the normalized scale.
    err = np.abs(approx - exact) / (n * (n - 1))
    assert err.max() <= 0.05 + 1e-12


def test_betweenness_approx_all_pivots_is_exact(small_road, small_road_ch):
    """epsilon small enough forces m = n, recovering the exact values."""
    exact = betweenness(small_road, small_road_ch)
    approx, m = betweenness_approx(
        small_road, small_road_ch, epsilon=0.01, delta=0.1, seed=1
    )
    if m == small_road.n:
        assert np.allclose(approx, exact)


def test_betweenness_approx_pivot_count_grows():
    from repro.ch import contract_graph
    from repro.graph import grid_graph

    g = grid_graph(6, 6)
    ch = contract_graph(g)
    _, m_loose = betweenness_approx(g, ch, epsilon=0.5, delta=0.5, seed=0)
    _, m_tight = betweenness_approx(g, ch, epsilon=0.1, delta=0.1, seed=0)
    assert m_tight >= m_loose


def test_betweenness_approx_validation(small_road, small_road_ch):
    with pytest.raises(ValueError):
        betweenness_approx(small_road, small_road_ch, epsilon=0.0)
    with pytest.raises(ValueError):
        betweenness_approx(small_road, small_road_ch, delta=1.5)


# -- coordinates ----------------------------------------------------------


def test_coordinates_shape_and_determinism():
    p = RoadNetworkParams(rows=6, cols=9, seed=3)
    a = road_network_coordinates(p)
    b = road_network_coordinates(p)
    assert a.shape == (54, 2)
    assert np.array_equal(a, b)


def test_coordinates_respect_grid():
    p = RoadNetworkParams(rows=4, cols=4, cell_meters=100.0, seed=0)
    coords = road_network_coordinates(p)
    # Vertex (r=0, c=3) lies near x = 300, y = 0.
    x, y = coords[3]
    assert abs(x - 300) <= 30
    assert abs(y) <= 30


def test_coordinates_roundtrip_dimacs(tmp_path):
    from repro.graph import read_co

    p = RoadNetworkParams(rows=5, cols=5, seed=1)
    coords = road_network_coordinates(p)
    path = tmp_path / "g.co"
    write_co(coords, path)
    assert np.array_equal(read_co(path), coords)


def test_coordinates_match_arc_lengths():
    """Geometric neighbours should be roughly cell_meters apart."""
    p = RoadNetworkParams(rows=6, cols=6, removal_prob=0.0, seed=2)
    coords = road_network_coordinates(p).astype(float)
    d = np.linalg.norm(coords[0] - coords[1])
    assert 40 < d < 160  # 100m grid with +-25% jitter per endpoint


# -- partition quality ----------------------------------------------------


def test_partition_quality_fields(road):
    part = partition_graph(road, 6)
    q = partition_quality(road, part)
    assert set(q) == {"cut_arcs", "cut_fraction", "boundary_vertices", "balance"}
    assert 0 < q["cut_fraction"] < 1
    assert q["balance"] >= 1.0
    assert q["boundary_vertices"] <= road.n


def test_partition_quality_single_cell(road):
    part = partition_graph(road, 1)
    q = partition_quality(road, part)
    assert q["cut_arcs"] == 0
    assert q["boundary_vertices"] == 0
    assert q["balance"] == pytest.approx(1.0)


def test_more_cells_more_boundary(road):
    q4 = partition_quality(road, partition_graph(road, 4))
    q16 = partition_quality(road, partition_graph(road, 16))
    assert q16["boundary_vertices"] >= q4["boundary_vertices"]
