"""Tests for the applications: diameter, partition, arc flags, reach,
betweenness."""

import numpy as np
import pytest

from repro.apps import (
    arcflags_query,
    betweenness,
    boundary_vertices,
    brandes_single_source,
    compute_arc_flags,
    diameter,
    eccentricities,
    exact_reaches,
    partition_graph,
    reach_from_tree,
)
from repro.graph import INF, StaticGraph, path_graph, star_graph
from repro.sssp import dijkstra


# -- diameter -------------------------------------------------------------


def test_diameter_methods_agree(small_road, small_road_ch):
    a = diameter(small_road, small_road_ch, method="phast")
    b = diameter(small_road, method="dijkstra")
    assert a.value == b.value
    assert a.trees_computed == small_road.n


def test_diameter_pair_realizes_value(small_road, small_road_ch):
    r = diameter(small_road, small_road_ch, method="phast")
    d = dijkstra(small_road, r.source, with_parents=False).dist[r.target]
    assert d == r.value


def test_diameter_path_graph():
    g = path_graph(6, length=3)
    from repro.ch import contract_graph

    r = diameter(g, contract_graph(g), method="phast")
    assert r.value == 15


def test_diameter_sampled(small_road, small_road_ch):
    r = diameter(small_road, small_road_ch, sources=np.array([0, 1]))
    full = diameter(small_road, small_road_ch)
    assert r.value <= full.value
    assert r.trees_computed == 2


def test_diameter_requires_ch_for_phast(small_road):
    with pytest.raises(ValueError):
        diameter(small_road, method="phast")
    with pytest.raises(ValueError):
        diameter(small_road, method="bogus")


def test_eccentricities(small_road, small_road_ch):
    e_ph = eccentricities(small_road, small_road_ch, method="phast")
    e_dj = eccentricities(small_road, method="dijkstra")
    assert np.array_equal(e_ph, e_dj)
    full = diameter(small_road, small_road_ch)
    assert e_ph.max() == full.value


# -- partition -------------------------------------------------------------


def test_partition_covers_all(small_road):
    part = partition_graph(small_road, 4)
    assert part.cell.min() >= 0
    assert part.cell.max() < 4
    assert part.sizes().sum() == small_road.n


def test_partition_balanced_enough(road):
    part = partition_graph(road, 8)
    sizes = part.sizes()
    assert sizes.min() > 0
    assert sizes.max() < road.n / 2


def test_partition_single_cell(small_road):
    part = partition_graph(small_road, 1)
    assert part.num_cells == 1
    assert np.all(part.cell == 0)
    assert boundary_vertices(small_road, part).size == 0


def test_partition_invalid(small_road):
    with pytest.raises(ValueError):
        partition_graph(small_road, 0)
    with pytest.raises(ValueError):
        partition_graph(small_road, small_road.n + 1)


def test_boundary_vertices_touch_crossing_arcs(small_road):
    part = partition_graph(small_road, 4)
    boundary = set(boundary_vertices(small_road, part).tolist())
    cell = part.cell
    for t, h, _ in small_road.arcs():
        if cell[t] != cell[h]:
            assert t in boundary and h in boundary


# -- arc flags ----------------------------------------------------------------


@pytest.fixture(scope="module")
def flagged(small_road):
    part = partition_graph(small_road, 4)
    return compute_arc_flags(small_road, part, method="dijkstra")


def test_arcflags_methods_agree(small_road, flagged):
    af_ph = compute_arc_flags(
        small_road, flagged.partition, method="phast"
    )
    assert np.array_equal(af_ph.flags, flagged.flags)


def test_arcflags_queries_exact(small_road, flagged, rng):
    for _ in range(30):
        s, t = (int(x) for x in rng.integers(0, small_road.n, 2))
        ref = dijkstra(small_road, s, with_parents=False).dist[t]
        got, _ = arcflags_query(flagged, s, t)
        assert got == ref


def test_arcflags_prune_search(small_road, flagged, rng):
    af_scans = dij_scans = 0
    for _ in range(20):
        s, t = (int(x) for x in rng.integers(0, small_road.n, 2))
        _, sc = arcflags_query(flagged, s, t)
        af_scans += sc
        dij_scans += dijkstra(small_road, s, target=t).scanned
    assert af_scans < dij_scans


def test_arcflags_fraction_sane(flagged):
    assert 0.0 < flagged.bits_set_fraction < 1.0


def test_arcflags_trees_grown_matches_boundary(small_road, flagged):
    assert flagged.trees_grown == boundary_vertices(
        small_road, flagged.partition
    ).size


def test_arcflags_bad_method(small_road, flagged):
    with pytest.raises(ValueError):
        compute_arc_flags(small_road, flagged.partition, method="x")


# -- reach ----------------------------------------------------------------------


def test_reach_from_tree_path():
    g = path_graph(5, length=1)
    t = dijkstra(g, 0)
    r = reach_from_tree(t.dist, t.parent, 0)
    # Middle vertices see min(depth, height): [0,1,2,1,0].
    assert r.tolist() == [0, 1, 2, 1, 0]


def test_reach_star_center():
    g = star_graph(7, length=2)
    from repro.ch import contract_graph

    reaches = exact_reaches(g, contract_graph(g), method="phast")
    # The hub lies on all paths; leaves lie on none (reach 0... well,
    # min(depth, height) for a leaf as endpoint is 0).
    assert reaches[0] == 2
    assert np.all(reaches[1:] == 0)


def test_reach_methods_agree(small_road, small_road_ch):
    a = exact_reaches(small_road, small_road_ch, method="phast")
    b = exact_reaches(small_road, method="dijkstra")
    assert np.array_equal(a, b)


def test_reach_highways_have_high_reach(road, road_ch):
    """The top CH vertices should be exactly the high-reach ones."""
    reaches = exact_reaches(road, road_ch, method="phast")
    top_rank = np.argsort(-road_ch.rank)[:20]
    assert reaches[top_rank].mean() > 1.4 * reaches.mean()


def test_reach_sampled_is_lower_bound(small_road, small_road_ch):
    full = exact_reaches(small_road, small_road_ch)
    sample = exact_reaches(
        small_road, small_road_ch, sources=np.arange(0, small_road.n, 4)
    )
    assert np.all(sample <= full)


# -- betweenness -------------------------------------------------------------------


def test_betweenness_matches_networkx(small_road, small_road_ch):
    nx = pytest.importorskip("networkx")
    G = nx.DiGraph()
    for t, h, l in small_road.arcs():
        if G.has_edge(t, h):
            G[t][h]["weight"] = min(G[t][h]["weight"], l)
        else:
            G.add_edge(t, h, weight=l)
    ref = nx.betweenness_centrality(G, weight="weight", normalized=False)
    got = betweenness(small_road, small_road_ch, method="phast")
    for v in range(small_road.n):
        assert got[v] == pytest.approx(ref[v], abs=1e-9)


def test_betweenness_methods_agree(small_road, small_road_ch):
    a = betweenness(small_road, small_road_ch, method="phast")
    b = betweenness(small_road, method="dijkstra")
    assert np.allclose(a, b)


def test_betweenness_path_graph():
    g = path_graph(5)
    from repro.ch import contract_graph

    bc = betweenness(g, contract_graph(g))
    # Middle vertex of a path lies on the most paths.
    assert bc[2] == bc.max()
    assert bc[0] == 0 and bc[4] == 0


def test_betweenness_normalized(small_road, small_road_ch):
    n = small_road.n
    raw = betweenness(small_road, small_road_ch)
    norm = betweenness(small_road, small_road_ch, normalized=True)
    assert np.allclose(norm, raw / ((n - 1) * (n - 2)))


def test_betweenness_sampling_runs(small_road, small_road_ch):
    bc = betweenness(
        small_road, small_road_ch, sources=np.array([0, 5, 9])
    )
    assert bc.shape == (small_road.n,)
    assert np.all(bc >= 0)


def test_brandes_rejects_zero_lengths():
    g = StaticGraph(2, [0], [1], [0])
    with pytest.raises(ValueError):
        brandes_single_source(g, g.reverse(), 0, np.array([0, 0], dtype=np.int64))


def test_betweenness_top_vertices_are_arterial(road, road_ch):
    """Betweenness concentrates on the same vertices CH ranks highest."""
    bc = betweenness(road, road_ch, sources=np.arange(0, road.n, 5))
    top_bc = np.argsort(-bc)[:40]
    mean_rank_top = road_ch.rank[top_bc].mean()
    assert mean_rank_top > road_ch.rank.mean()
