"""Tests for the NUMA topology model."""

import pytest

from repro.simulator import CostModel, WorkloadCounts, machine
from repro.simulator.numa import NumaTopology, ThreadStream, waterfill

EUROPE = WorkloadCounts(n=18_000_000, arcs=33_800_000, levels=140)


# -- waterfilling ---------------------------------------------------------


def test_waterfill_no_contention():
    assert waterfill(100.0, [10.0, 20.0]) == [10.0, 20.0]


def test_waterfill_equal_split():
    assert waterfill(10.0, [50.0, 50.0]) == [5.0, 5.0]


def test_waterfill_redistribution():
    # The capped user's surplus goes to the hungry one.
    alloc = waterfill(10.0, [2.0, 50.0])
    assert alloc[0] == pytest.approx(2.0)
    assert alloc[1] == pytest.approx(8.0)


def test_waterfill_three_way():
    alloc = waterfill(10.0, [2.0, 3.0, 50.0])
    assert alloc == pytest.approx([2.0, 3.0, 5.0])


def test_waterfill_empty_and_conservation():
    assert waterfill(5.0, []) == []
    alloc = waterfill(7.0, [3.0, 3.0, 3.0])
    assert sum(alloc) == pytest.approx(7.0)


# -- topology -----------------------------------------------------------------


def topo(name: str) -> NumaTopology:
    return NumaTopology.from_machine(machine(name))


def test_from_machine_shapes():
    t = topo("M4-12")
    assert t.num_banks == 8
    assert t.cores_per_bank == 6
    assert t.total_cores == 48


def test_bad_topology_rejected():
    with pytest.raises(ValueError):
        NumaTopology(0, 4, 1e9, 1e8)


def test_pinned_placement_is_local():
    t = topo("M4-12")
    streams = t.placement(48, pinned=True)
    assert all(not s.remote for s in streams)
    banks = [s.home_bank for s in streams]
    assert set(banks) == set(range(8))


def test_unpinned_placement_mostly_remote():
    t = topo("M4-12")
    streams = t.placement(48, pinned=False)
    assert all(s.data_bank == 0 for s in streams)
    assert sum(s.remote for s in streams) > 24


def test_allocation_remote_penalty():
    t = NumaTopology(2, 1, 10.0, 10.0, remote_penalty=2.0)
    local = t.allocate([ThreadStream(0, 0)])[0]
    remote = t.allocate([ThreadStream(1, 0)])[0]
    assert remote == pytest.approx(local / 2.0)


def test_allocation_bank_sharing():
    t = NumaTopology(1, 4, 8.0, 8.0)
    streams = [ThreadStream(0, 0)] * 4
    alloc = t.allocate(streams)
    assert sum(alloc) == pytest.approx(8.0)
    assert all(a == pytest.approx(2.0) for a in alloc)


def _phast_inputs(name: str):
    spec = machine(name)
    cm = CostModel(spec)
    bytes_tree = cm._phast_bytes_per_tree(EUROPE, 1)
    cpu = cm._cpu_ms(cm._phast_cycles_per_tree(EUROPE, 1, sse=False))
    return spec, cm, bytes_tree, cpu


@pytest.mark.parametrize("name", ["M1-4", "M2-6", "M4-12"])
def test_pinned_matches_closed_form(name):
    """The structural model must reproduce the calibrated closed form."""
    spec, cm, bytes_tree, cpu = _phast_inputs(name)
    t = NumaTopology.from_machine(spec)
    structural = t.per_tree_ms(bytes_tree, cpu, spec.cores, pinned=True)
    closed = cm.phast_per_tree_parallel(EUROPE, spec.cores, pinned=True)
    assert structural == pytest.approx(closed, rel=0.2)


def test_unpinned_collapse_on_multi_socket():
    spec, cm, bytes_tree, cpu = _phast_inputs("M4-12")
    t = NumaTopology.from_machine(spec)
    pin = t.per_tree_ms(bytes_tree, cpu, 48, pinned=True)
    free = t.per_tree_ms(bytes_tree, cpu, 48, pinned=False)
    assert free > 5 * pin  # paper: pinning essential on M4-12


def test_pinning_neutral_on_single_socket():
    spec, cm, bytes_tree, cpu = _phast_inputs("M1-4")
    t = NumaTopology.from_machine(spec)
    pin = t.per_tree_ms(bytes_tree, cpu, 4, pinned=True)
    free = t.per_tree_ms(bytes_tree, cpu, 4, pinned=False)
    assert free == pytest.approx(pin)


def test_more_threads_never_slower_pinned():
    spec, cm, bytes_tree, cpu = _phast_inputs("M2-6")
    t = NumaTopology.from_machine(spec)
    times = [
        t.per_tree_ms(bytes_tree, cpu, c, pinned=True) for c in (1, 2, 6, 12)
    ]
    assert all(a >= b for a, b in zip(times, times[1:]))
