"""Tests for npz serialization of graphs and hierarchies."""

import numpy as np
import pytest

from repro.core import PhastEngine
from repro.graph import (
    load_graph,
    load_hierarchy,
    save_graph,
    save_hierarchy,
)
from repro.sssp import dijkstra


def test_graph_roundtrip(road, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(road, path)
    assert load_graph(path) == road


def test_empty_graph_roundtrip(tmp_path):
    from repro.graph import StaticGraph

    g = StaticGraph(3, [], [], [])
    path = tmp_path / "empty.npz"
    save_graph(g, path)
    assert load_graph(path) == g


def test_hierarchy_roundtrip(road, road_ch, tmp_path):
    path = tmp_path / "ch.npz"
    save_hierarchy(road_ch, path)
    back = load_hierarchy(path)
    back.validate()
    assert np.array_equal(back.rank, road_ch.rank)
    assert np.array_equal(back.level, road_ch.level)
    assert back.upward == road_ch.upward
    assert back.downward_rev == road_ch.downward_rev
    assert np.array_equal(back.upward_via, road_ch.upward_via)
    assert back.num_shortcuts == road_ch.num_shortcuts


def test_loaded_hierarchy_is_queryable(road, road_ch, tmp_path):
    path = tmp_path / "ch.npz"
    save_hierarchy(road_ch, path)
    engine = PhastEngine(load_hierarchy(path))
    ref = dijkstra(road, 5, with_parents=False).dist
    assert np.array_equal(engine.tree(5).dist, ref)


def test_magic_rejects_wrong_kind(road, road_ch, tmp_path):
    gpath = tmp_path / "g.npz"
    cpath = tmp_path / "c.npz"
    save_graph(road, gpath)
    save_hierarchy(road_ch, cpath)
    with pytest.raises(ValueError):
        load_graph(cpath)
    with pytest.raises(ValueError):
        load_hierarchy(gpath)


def test_garbage_file_rejected(tmp_path):
    path = tmp_path / "x.npz"
    np.savez(path, foo=np.arange(3))
    with pytest.raises(ValueError):
        load_graph(path)


def _rewrite_magic(src, dst, magic):
    """Copy an npz artifact, replacing its magic header."""
    with np.load(src, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != "magic"}
    np.savez_compressed(dst, magic=np.array(magic), **arrays)


def test_graph_version_mismatch_is_actionable(road, tmp_path):
    from repro.graph import ArtifactFormatError

    good = tmp_path / "g.npz"
    stale = tmp_path / "g-old.npz"
    save_graph(road, good)
    _rewrite_magic(good, stale, "repro-graph-v0")
    with pytest.raises(ArtifactFormatError, match="version mismatch"):
        load_graph(stale)
    with pytest.raises(ArtifactFormatError, match="regenerate"):
        load_graph(stale)


def test_hierarchy_version_mismatch_is_actionable(road_ch, tmp_path):
    from repro.graph import ArtifactFormatError

    good = tmp_path / "c.npz"
    stale = tmp_path / "c-old.npz"
    save_hierarchy(road_ch, good)
    _rewrite_magic(good, stale, "repro-ch-v99")
    with pytest.raises(ArtifactFormatError, match="version mismatch"):
        load_hierarchy(stale)


def test_foreign_magic_named_as_foreign(road, tmp_path):
    from repro.graph import ArtifactFormatError

    good = tmp_path / "g.npz"
    alien = tmp_path / "alien.npz"
    save_graph(road, good)
    _rewrite_magic(good, alien, "someone-elses-format-v3")
    with pytest.raises(ArtifactFormatError, match="not a repro graph"):
        load_graph(alien)


def test_artifact_error_is_a_value_error(road, road_ch, tmp_path):
    """Pre-existing except ValueError handlers keep working."""
    from repro.graph import ArtifactFormatError

    assert issubclass(ArtifactFormatError, ValueError)
