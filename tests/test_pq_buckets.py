"""Unit tests for the monotone bucket queues (Dial, multi-level)."""

import numpy as np
import pytest

from repro.pq import DialQueue, MultiLevelBucketQueue


def make_dial(n=64, c=100):
    return DialQueue(n, c)


def make_mlb(n=64, max_key=10_000_000, base=4):
    return MultiLevelBucketQueue(n, max_key, base=base)


@pytest.fixture(params=["dial", "mlb4", "mlb64"])
def queue(request):
    if request.param == "dial":
        return make_dial(c=10_000)
    base = int(request.param.removeprefix("mlb"))
    return make_mlb(base=base)


def test_empty(queue):
    assert len(queue) == 0
    with pytest.raises(IndexError):
        queue.pop_min()


def test_fifo_like_extraction(queue):
    rng = np.random.default_rng(1)
    keys = sorted(rng.integers(0, 5_000, size=50).tolist())
    for i, k in enumerate(keys):
        queue.insert(i, k)
    out = [queue.pop_min()[1] for _ in range(50)]
    assert out == keys


def test_monotone_interleaving(queue):
    queue.insert(0, 10)
    item, key = queue.pop_min()
    assert key == 10
    # New keys may not go below the last minimum.
    queue.insert(1, 10)
    queue.insert(2, 15)
    assert queue.pop_min() == (1, 10)
    assert queue.pop_min() == (2, 15)


def test_rejects_key_below_minimum(queue):
    queue.insert(0, 100)
    queue.pop_min()
    with pytest.raises(ValueError):
        queue.insert(1, 50)


def test_decrease_key(queue):
    queue.insert(0, 500)
    queue.insert(1, 400)
    queue.decrease_key(0, 300)
    assert queue.pop_min() == (0, 300)
    assert queue.pop_min() == (1, 400)


def test_decrease_key_validations(queue):
    queue.insert(0, 10)
    with pytest.raises(ValueError):
        queue.decrease_key(0, 11)
    with pytest.raises(KeyError):
        queue.decrease_key(5, 1)


def test_key_of_and_contains(queue):
    queue.insert(3, 77)
    assert queue.contains(3)
    assert queue.key_of(3) == 77
    queue.pop_min()
    assert not queue.contains(3)
    with pytest.raises(KeyError):
        queue.key_of(3)


def test_many_decreases_same_item(queue):
    queue.insert(0, 1000)
    for k in (800, 600, 400, 200):
        queue.decrease_key(0, k)
    assert queue.pop_min() == (0, 200)
    assert len(queue) == 0


def test_dial_span_enforced():
    q = DialQueue(8, max_arc_len=10)
    q.insert(0, 0)
    q.insert(1, 10)
    with pytest.raises(ValueError):
        q.insert(2, 11)  # beyond min + C
    q.pop_min()  # min now 0 -> popped; cursor at 0
    # After popping key 0, inserting key 10 is fine; key 11 only after
    # the cursor advances.
    assert q.pop_min() == (1, 10)
    q.insert(3, 15)
    assert q.pop_min() == (3, 15)


def test_dial_zero_max_len():
    q = DialQueue(4, max_arc_len=0)
    q.insert(0, 0)
    q.insert(1, 0)
    assert {q.pop_min()[0], q.pop_min()[0]} == {0, 1}


def test_mlb_max_key_enforced():
    q = MultiLevelBucketQueue(4, max_key=100)
    with pytest.raises(ValueError):
        q.insert(0, 101)


def test_mlb_bad_base():
    with pytest.raises(ValueError):
        MultiLevelBucketQueue(4, 100, base=3)
    with pytest.raises(ValueError):
        MultiLevelBucketQueue(4, 100, base=1)


def test_mlb_power_boundary_crossing():
    """Keys straddling a power-of-base boundary expand correctly."""
    q = MultiLevelBucketQueue(8, max_key=1000, base=4)
    q.insert(0, 15)  # 033 in base 4
    q.insert(1, 16)  # 100 in base 4
    q.insert(2, 17)
    assert q.pop_min() == (0, 15)
    assert q.pop_min() == (1, 16)
    assert q.pop_min() == (2, 17)


def test_mlb_stale_copies_discarded():
    q = MultiLevelBucketQueue(4, max_key=1000, base=4)
    q.insert(0, 900)
    q.decrease_key(0, 500)
    q.decrease_key(0, 100)
    q.insert(1, 200)
    assert q.pop_min() == (0, 100)
    assert q.pop_min() == (1, 200)
    assert len(q) == 0


def test_bucket_queue_against_reference(queue):
    """Randomized monotone workload cross-checked against a dict."""
    rng = np.random.default_rng(7)
    reference: dict[int, int] = {}
    floor = 0
    next_id = 0
    for _ in range(400):
        op = rng.integers(0, 3)
        if op == 0 and next_id < 64 and len(reference) < 30:
            key = floor + int(rng.integers(0, 2_000))
            queue.insert(next_id, key)
            reference[next_id] = key
            next_id += 1
        elif op == 1 and reference:
            item = int(rng.choice(list(reference)))
            new = int(rng.integers(floor, reference[item] + 1))
            queue.decrease_key(item, new)
            reference[item] = new
        elif op == 2 and reference:
            item, key = queue.pop_min()
            assert key == min(reference.values())
            assert reference.pop(item) == key
            floor = key
    while reference:
        item, key = queue.pop_min()
        assert key == min(reference.values())
        assert reference.pop(item) == key
