"""Property-based tests on the core pipeline.

The headline invariant — PHAST computes exactly Dijkstra's labels for
*every* graph and source — is checked on hypothesis-generated random
directed graphs, including degenerate shapes (self-loops, parallel
arcs, zero lengths, disconnected pieces) no road network would exhibit.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ch import ch_query, contract_graph
from repro.core import PhastEngine, phast_scalar
from repro.graph import StaticGraph
from repro.sssp import dijkstra


@st.composite
def graphs(draw, max_n=14, max_m=40):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    tails = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    heads = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    lens = draw(st.lists(st.integers(0, 30), min_size=m, max_size=m))
    return StaticGraph(n, tails, heads, lens)


@given(g=graphs(), source=st.integers(0, 13))
@settings(max_examples=60, deadline=None)
def test_phast_equals_dijkstra_on_random_graphs(g, source):
    source %= g.n
    ch = contract_graph(g)
    ch.validate()
    ref = dijkstra(g, source, with_parents=False).dist
    engine = PhastEngine(ch)
    assert np.array_equal(engine.tree(source).dist, ref)
    assert np.array_equal(phast_scalar(ch, source).dist, ref)


@given(g=graphs(), s=st.integers(0, 13), t=st.integers(0, 13))
@settings(max_examples=60, deadline=None)
def test_ch_query_equals_dijkstra_on_random_graphs(g, s, t):
    s %= g.n
    t %= g.n
    ch = contract_graph(g)
    ref = dijkstra(g, s, with_parents=False).dist[t]
    assert ch_query(ch, s, t).distance == ref


@given(g=graphs(max_n=10, max_m=25), sources=st.lists(st.integers(0, 9), min_size=2, max_size=4))
@settings(max_examples=30, deadline=None)
def test_multi_tree_equals_singles(g, sources):
    sources = [s % g.n for s in sources]
    ch = contract_graph(g)
    engine = PhastEngine(ch)
    multi = engine.trees(sources)
    for i, s in enumerate(sources):
        assert np.array_equal(multi[i], dijkstra(g, s, with_parents=False).dist)


@given(g=graphs(max_n=12, max_m=30), source=st.integers(0, 11))
@settings(max_examples=40, deadline=None)
def test_gplus_parents_form_valid_tree(g, source):
    """Parent chains in G+ terminate at the source with consistent labels."""
    source %= g.n
    ch = contract_graph(g)
    engine = PhastEngine(ch)
    t = engine.tree(source, with_parents=True)
    from repro.graph import INF

    for v in range(g.n):
        if t.dist[v] >= INF or v == source:
            continue
        seen = set()
        u = v
        while u != source:
            assert u not in seen, "parent cycle"
            seen.add(u)
            u = int(t.parent[u])
            assert u >= 0, "broken chain"


@given(
    rows=st.integers(2, 5),
    cols=st.integers(2, 5),
    seed=st.integers(0, 10),
    metric=st.sampled_from(["time", "distance"]),
)
@settings(max_examples=20, deadline=None)
def test_road_network_pipeline_property(rows, cols, seed, metric):
    """Full pipeline on tiny generated road networks of any shape."""
    from repro.graph import RoadNetworkParams, road_network

    g = road_network(
        RoadNetworkParams(rows=rows, cols=cols, metric=metric, seed=seed)
    )
    ch = contract_graph(g)
    engine = PhastEngine(ch)
    source = seed % g.n
    assert np.array_equal(
        engine.tree(source).dist,
        dijkstra(g, source, with_parents=False).dist,
    )
