"""Tests for the parallel PHAST drivers."""

import numpy as np
import pytest

from repro.core import (
    PhastEngine,
    block_boundaries,
    tree_level_parallel,
    trees_per_core,
)
from repro.sssp import dijkstra


def test_block_boundaries_cover_range():
    blocks = block_boundaries(10, 55, 4)
    assert blocks[0][0] == 10 and blocks[-1][1] == 55
    for (a, b), (c, d) in zip(blocks, blocks[1:]):
        assert b == c
        assert a < b


def test_block_boundaries_more_blocks_than_items():
    blocks = block_boundaries(0, 3, 10)
    assert len(blocks) <= 3
    assert blocks[0][0] == 0 and blocks[-1][1] == 3


def test_block_boundaries_empty():
    assert block_boundaries(5, 5, 4) == []


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_level_parallel_matches(road, road_ch, threads):
    engine = PhastEngine(road_ch)
    ref = dijkstra(road, 17, with_parents=False).dist
    out = tree_level_parallel(engine, 17, num_threads=threads, min_block=8)
    assert np.array_equal(out, ref)


def test_level_parallel_requires_reorder(road_ch):
    engine = PhastEngine(road_ch, reorder=False)
    with pytest.raises(ValueError):
        tree_level_parallel(engine, 0)


def test_trees_per_core_single_worker(road, road_ch):
    sources = [0, 3, 9]
    out = trees_per_core(road_ch, sources, num_workers=1)
    for s, dist in zip(sources, out):
        assert np.array_equal(dist, dijkstra(road, s, with_parents=False).dist)


def test_trees_per_core_multi_worker(road, road_ch):
    sources = list(range(0, 60, 7))
    out = trees_per_core(road_ch, sources, num_workers=3)
    for s, dist in zip(sources, out):
        assert np.array_equal(dist, dijkstra(road, s, with_parents=False).dist)


def test_trees_per_core_with_sweep_k(road, road_ch):
    sources = list(range(0, 30, 3))
    out = trees_per_core(road_ch, sources, num_workers=2, sources_per_sweep=4)
    for s, dist in zip(sources, out):
        assert np.array_equal(dist, dijkstra(road, s, with_parents=False).dist)


def test_trees_per_core_reduce(road, road_ch):
    from repro.graph import INF

    def reducer(source, dist):
        return int(dist[dist < INF].max())

    sources = [0, 5]
    out = trees_per_core(road_ch, sources, num_workers=2, reduce=reducer)
    for s, got in zip(sources, out):
        dist = dijkstra(road, s, with_parents=False).dist
        assert got == int(dist[dist < INF].max())


def test_trees_per_core_empty(road_ch):
    assert trees_per_core(road_ch, []) == []


def test_trees_per_core_more_workers_than_sources(road, road_ch):
    out = trees_per_core(road_ch, [4], num_workers=8)
    assert len(out) == 1
    assert np.array_equal(out[0], dijkstra(road, 4, with_parents=False).dist)


def test_trees_per_core_order_preserved(road, road_ch):
    sources = [9, 1, 5, 3, 7]
    out = trees_per_core(road_ch, sources, num_workers=2)
    for s, dist in zip(sources, out):
        assert dist[s] == 0


def test_resolve_workers_single_cpu_fallback(monkeypatch):
    import os

    from repro.core import resolve_workers

    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert resolve_workers(4) == (1, True)
    assert resolve_workers(None) == (1, False)
    assert resolve_workers(1) == (1, False)
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    assert resolve_workers(4) == (4, False)
    assert resolve_workers(None) == (8, False)


def test_resolve_workers_cap_overrides(monkeypatch):
    import os

    from repro.core import resolve_workers

    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
    # Default cap stays 8, but both override channels lift it.
    assert resolve_workers(None) == (8, False)
    assert resolve_workers(None, max_workers=32) == (32, False)
    monkeypatch.setenv("REPRO_MAX_WORKERS", "16")
    assert resolve_workers(None) == (16, False)
    # The explicit argument wins over the environment.
    assert resolve_workers(None, max_workers=24) == (24, False)
    # An explicit worker count is honoured as-is, above any cap.
    assert resolve_workers(48) == (48, False)
    # Caps never exceed the machine.
    monkeypatch.setenv("REPRO_MAX_WORKERS", "128")
    assert resolve_workers(None) == (64, False)


def test_trees_per_core_force_pool(road, road_ch):
    """The multiprocessing path stays exercised even on 1-CPU hosts,
    where multi-worker requests normally fall back to serial."""
    sources = [2, 11, 23]
    out = trees_per_core(road_ch, sources, num_workers=2, force_pool=True)
    for s, dist in zip(sources, out):
        assert np.array_equal(dist, dijkstra(road, s, with_parents=False).dist)
