"""Tests for isochrones and nearest-POI queries."""

import numpy as np
import pytest

from repro.apps import NearestPoiIndex, Poi, isochrone
from repro.graph import INF, path_graph
from repro.sssp import dijkstra


def test_isochrone_methods_agree(road, road_engine, rng):
    full = dijkstra(road, 0, with_parents=False).dist
    budget = int(np.median(full))
    ph = isochrone(road, 0, budget, engine=road_engine, method="phast")
    dj = isochrone(road, 0, budget, method="dijkstra")
    assert np.array_equal(ph, dj)
    assert np.array_equal(ph, np.flatnonzero(full <= budget))


def test_isochrone_zero_budget(road, road_engine):
    out = isochrone(road, 7, 0, engine=road_engine)
    assert out.tolist() == [7]


def test_isochrone_grows_with_budget(road, road_engine):
    a = isochrone(road, 0, 100, engine=road_engine)
    b = isochrone(road, 0, 1000, engine=road_engine)
    assert set(a.tolist()) <= set(b.tolist())


def test_isochrone_validation(road, road_engine):
    with pytest.raises(ValueError):
        isochrone(road, 0, -1, engine=road_engine)
    with pytest.raises(ValueError):
        isochrone(road, 0, 5, method="phast")  # engine missing
    with pytest.raises(ValueError):
        isochrone(road, 0, 5, method="bogus")


def test_poi_index_matches_dijkstra(road, road_ch, rng):
    pois = [Poi(int(v), f"poi{v}") for v in rng.integers(0, road.n, 10)]
    index = NearestPoiIndex(road_ch, pois)
    for s in rng.integers(0, road.n, 5):
        s = int(s)
        full = dijkstra(road, s, with_parents=False).dist
        got = index.distances(s)
        for poi, d in zip(pois, got):
            assert d == full[poi.vertex]


def test_poi_query_returns_closest(road, road_ch):
    pois = [Poi(10, "a"), Poi(200, "b"), Poi(399, "c")]
    index = NearestPoiIndex(road_ch, pois)
    full = dijkstra(road, 0, with_parents=False).dist
    results = index.query(0, k=3)
    dists = [d for _, d in results]
    assert dists == sorted(dists)
    best_poi, best_d = results[0]
    assert best_d == min(full[10], full[200], full[399])
    assert full[best_poi.vertex] == best_d


def test_poi_query_k_limits(road, road_ch):
    index = NearestPoiIndex(road_ch, [Poi(5), Poi(9)])
    assert len(index.query(0, k=1)) == 1
    assert len(index.query(0, k=5)) == 2  # only two POIs exist
    with pytest.raises(ValueError):
        index.query(0, k=0)


def test_poi_unreachable_omitted():
    from repro.ch import contract_graph
    from repro.graph import StaticGraph

    g = StaticGraph(4, [0, 1, 2, 3], [1, 0, 3, 2], [1, 1, 1, 1])
    ch = contract_graph(g)
    index = NearestPoiIndex(ch, [Poi(1), Poi(3)])
    results = index.query(0, k=2)
    assert len(results) == 1
    assert results[0][0].vertex == 1


def test_poi_duplicate_vertices(road, road_ch):
    """Two POIs on the same vertex both resolve."""
    index = NearestPoiIndex(road_ch, [Poi(5, "x"), Poi(5, "y")])
    d = index.distances(0)
    assert d[0] == d[1]


def test_poi_empty_rejected(road_ch):
    with pytest.raises(ValueError):
        NearestPoiIndex(road_ch, [])


def test_poi_on_path_graph():
    from repro.ch import contract_graph

    g = path_graph(10, length=2)
    ch = contract_graph(g)
    index = NearestPoiIndex(ch, [Poi(0), Poi(9)])
    results = index.query(2, k=2)
    assert results[0][0].vertex == 0 and results[0][1] == 4
    assert results[1][0].vertex == 9 and results[1][1] == 14
