"""Metric customization and hot weight swap.

The topology/metric split's contract is *bit-exactness*: distances
computed over a customized hierarchy must equal the full
re-contraction's (and Dijkstra's) exactly, for any nonnegative weight
vector over the same structure.  The serving half's contract is
*atomicity*: a hot swap under load answers every request from exactly
one metric generation — old or new, never a mixture.
"""

from __future__ import annotations

import glob
import os
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ch import build_topology, contract_graph, customize, customize_many
from repro.ch.customize import CHTopology, INF
from repro.core import PhastEngine, PhastPool
from repro.graph import (
    RoadNetworkParams,
    load_metric,
    load_topology,
    random_graph,
    road_network,
    save_metric,
    save_topology,
)
from repro.graph.serialize import ArtifactFormatError
from repro.server import (
    PhastService,
    ServerClient,
    ServerConfig,
    ServerError,
    serve_in_thread,
)
from repro.server import protocol
from repro.sssp import dijkstra


def _shm_names() -> set:
    return set(glob.glob("/dev/shm/repro-*"))


@pytest.fixture(scope="module")
def topo(road):
    return build_topology(road)


@pytest.fixture(scope="module")
def weights(road):
    return np.asarray(road.arc_len, dtype=np.int64)


def _reweigh(graph, weights):
    """The same structure with a different weight vector."""
    from repro.graph import StaticGraph

    return StaticGraph.from_csr(
        graph.first, graph.arc_head, np.asarray(weights, dtype=np.int64)
    )


# ---------------------------------------------------------------------------
# Correctness: customize == re-contraction == Dijkstra, bit for bit


def test_customize_matches_dijkstra(road, topo, weights):
    metric = customize(topo, weights)
    engine = PhastEngine(topo.instantiate(metric))
    for s in range(0, road.n, 37):
        assert np.array_equal(engine.tree(s).dist, dijkstra(road, s).dist)


def test_recustomize_matches_full_recontraction(road, topo):
    """New weights via customize == contracting the reweighed graph."""
    rng = np.random.default_rng(5)
    new_w = rng.integers(1, 10_000, size=road.m, dtype=np.int64)
    reweighed = _reweigh(road, new_w)
    fresh = PhastEngine(contract_graph(reweighed))
    swapped = PhastEngine(topo.instantiate(customize(topo, new_w)))
    for s in range(0, road.n, 41):
        want = fresh.tree(s).dist
        assert np.array_equal(swapped.tree(s).dist, want)
        assert np.array_equal(want, dijkstra(reweighed, s).dist)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_customize_property_random_weights(road, topo, seed):
    """Any weight vector: customized distances == Dijkstra's, exactly."""
    rng = np.random.default_rng(seed)
    w = rng.integers(1, 1_000_000, size=road.m, dtype=np.int64)
    engine = PhastEngine(topo.instantiate(customize(topo, w)))
    reweighed = _reweigh(road, w)
    for s in (0, road.n // 2, road.n - 1):
        assert np.array_equal(engine.tree(s).dist, dijkstra(reweighed, s).dist)


def test_customize_random_multigraph():
    """Non-road structure (parallel arcs, asymmetric) customizes too."""
    g = random_graph(120, 420, max_len=50, seed=11, connected=True)
    topo = build_topology(g)
    rng = np.random.default_rng(2)
    w = rng.integers(1, 500, size=g.m, dtype=np.int64)
    engine = PhastEngine(topo.instantiate(customize(topo, w)))
    reweighed = _reweigh(g, w)
    for s in range(0, g.n, 17):
        assert np.array_equal(engine.tree(s).dist, dijkstra(reweighed, s).dist)


def test_customize_many_matches_single(topo, weights):
    rng = np.random.default_rng(7)
    vectors = [weights,
               rng.integers(1, 100, size=weights.size, dtype=np.int64)]
    many = customize_many(topo, vectors)
    for metric, w in zip(many, vectors):
        single = customize(topo, w)
        assert np.array_equal(metric.weights, single.weights)
        assert metric.topology_key == single.topology_key


def test_customize_rejects_wrong_length(topo, weights):
    with pytest.raises(ValueError):
        customize(topo, weights[:-1])


def test_instantiate_refuses_foreign_metric(road, topo, weights):
    other = build_topology(
        road_network(RoadNetworkParams(rows=8, cols=8, seed=7))
    )
    metric = customize(other, np.asarray(
        road_network(RoadNetworkParams(rows=8, cols=8, seed=7)).arc_len,
        dtype=np.int64))
    with pytest.raises(ValueError):
        topo.instantiate(metric)


def test_instantiate_refuses_infinite_weights(topo, weights):
    w = weights.copy()
    w[0] = INF
    with pytest.raises(ValueError):
        topo.instantiate(customize(topo, w))


# ---------------------------------------------------------------------------
# Artifact round trips


def test_topology_metric_roundtrip(tmp_path, road, topo, weights):
    tp = tmp_path / "road.topo.npz"
    mp = tmp_path / "road.metric.npz"
    save_topology(topo, tp)
    metric = customize(topo, weights)
    save_metric(metric, mp)
    topo2 = load_topology(tp)
    assert topo2.key == topo.key
    metric2 = load_metric(mp, topology=topo2)
    assert np.array_equal(metric2.weights, metric.weights)
    engine = PhastEngine(topo2.instantiate(metric2))
    assert np.array_equal(engine.tree(0).dist, dijkstra(road, 0).dist)


def test_load_metric_cross_checks_topology(tmp_path, road, topo, weights):
    other = build_topology(
        road_network(RoadNetworkParams(rows=8, cols=8, seed=7))
    )
    mp = tmp_path / "foreign.metric.npz"
    save_metric(
        customize(other, np.asarray(
            road_network(RoadNetworkParams(rows=8, cols=8, seed=7)).arc_len,
            dtype=np.int64)),
        mp,
    )
    with pytest.raises(ArtifactFormatError):
        load_metric(mp, topology=topo)


# ---------------------------------------------------------------------------
# Pool-level hot swap


@pytest.fixture(scope="module")
def custom_ch(topo, weights):
    return topo.instantiate(customize(topo, weights))


def test_pool_swap_serial_bit_identical(road, topo, weights, custom_ch):
    rng = np.random.default_rng(3)
    new_w = rng.integers(1, 5_000, size=road.m, dtype=np.int64)
    new_ch = topo.instantiate(customize(topo, new_w))
    sources = list(range(0, road.n, 29))
    with PhastPool(custom_ch, num_workers=1) as pool:
        before = np.array(pool.trees(sources))
        gen = pool.swap_metric(new_ch)
        assert gen == 1 and pool.metric_generation == 1
        after = np.array(pool.trees(sources))
    ref_old = PhastEngine(custom_ch)
    ref_new = PhastEngine(new_ch)
    for i, s in enumerate(sources):
        assert np.array_equal(before[i], ref_old.tree(s).dist)
        assert np.array_equal(after[i], ref_new.tree(s).dist)


def test_pool_swap_processes_bit_identical(road, topo, weights, custom_ch):
    rng = np.random.default_rng(4)
    new_w = rng.integers(1, 5_000, size=road.m, dtype=np.int64)
    new_ch = topo.instantiate(customize(topo, new_w))
    sources = list(range(0, road.n, 29))
    leaked = _shm_names()
    with PhastPool(custom_ch, num_workers=2, force_pool=True) as pool:
        before = np.array(pool.trees(sources))
        assert pool.swap_metric(new_ch) == 1
        after = np.array(pool.trees(sources))
        # Swap back: generation keeps climbing, answers keep matching.
        assert pool.swap_metric(custom_ch) == 2
        again = np.array(pool.trees(sources))
    ref_old = PhastEngine(custom_ch)
    ref_new = PhastEngine(new_ch)
    for i, s in enumerate(sources):
        assert np.array_equal(before[i], ref_old.tree(s).dist)
        assert np.array_equal(after[i], ref_new.tree(s).dist)
        assert np.array_equal(again[i], before[i])
    assert _shm_names() <= leaked


def test_pool_swap_refuses_structure_change(road, custom_ch):
    other = contract_graph(road)  # witness CH: different closure
    with PhastPool(custom_ch, num_workers=1) as pool:
        with pytest.raises(ValueError, match="structure"):
            pool.swap_metric(other)


def test_pool_swap_after_worker_kill_recovers(road, topo, weights, custom_ch):
    """A respawned worker (gen-0 boot arrays) must adopt the live
    metric before answering — the never-stale path."""
    rng = np.random.default_rng(8)
    new_ch = topo.instantiate(customize(
        topo, rng.integers(1, 5_000, size=road.m, dtype=np.int64)))
    sources = list(range(0, road.n, 31))
    leaked = _shm_names()
    with PhastPool(custom_ch, num_workers=2, force_pool=True) as pool:
        pool.trees(sources[:2])  # warm
        victim = pool.supervisor.processes()[0]
        os.kill(victim.pid, signal.SIGKILL)
        assert pool.swap_metric(new_ch) == 1
        got = np.array(pool.trees(sources))
    ref = PhastEngine(new_ch)
    for i, s in enumerate(sources):
        assert np.array_equal(got[i], ref.tree(s).dist)
    assert _shm_names() <= leaked


# ---------------------------------------------------------------------------
# Service-level swap: atomicity under load, cache invalidation


@pytest.fixture(scope="module")
def swap_server(road, topo, weights):
    metric = customize(topo, weights)
    service = PhastService(
        topology=topo, metric=metric,
        config=ServerConfig(batch_max=4, max_wait_ms=5.0, max_pending=64),
    )
    with serve_in_thread(service) as handle:
        yield handle


def test_swap_under_load_never_mixes_metrics(road, topo, weights,
                                             swap_server):
    """Concurrent trees during a swap: every answer equals one full
    generation's distances — no request sees both metrics."""
    rng = np.random.default_rng(12)
    new_w = rng.integers(1, 5_000, size=road.m, dtype=np.int64)
    gen_dists = [
        PhastEngine(topo.instantiate(customize(topo, w))).tree(17).dist
        for w in (weights, new_w)
    ]
    stop = threading.Event()
    failures: list[str] = []
    seen_new = threading.Event()

    def hammer() -> None:
        try:
            with ServerClient(swap_server.host, swap_server.port) as c:
                while not stop.is_set():
                    got = c.tree(17)
                    if np.array_equal(got, gen_dists[1]):
                        seen_new.set()
                    elif not np.array_equal(got, gen_dists[0]):
                        failures.append("mixed-metric tree answer")
                        return
        except (ServerError, ConnectionError, OSError) as exc:
            failures.append(str(exc))

    threads = [threading.Thread(target=hammer, daemon=True)
               for _ in range(3)]
    for t in threads:
        t.start()
    time.sleep(0.1)
    with ServerClient(swap_server.host, swap_server.port) as c:
        report = c.swap_metric(weights=new_w, timeout=120)
    time.sleep(0.2)
    stop.set()
    for t in threads:
        t.join(30)
    assert not failures, failures
    assert report["metric_generation"] >= 1
    assert seen_new.wait(5), "no post-swap answer observed"
    # Restore the original metric for the other module tests.
    with ServerClient(swap_server.host, swap_server.port) as c:
        c.swap_metric(weights=weights, timeout=120)


def test_swap_invalidates_matrix_selection_cache(road, topo, weights,
                                                 swap_server):
    """Repeated target set: the cached restricted selection embeds arc
    lengths, so a swap must invalidate it, not serve stale rows."""
    sources = [3, 9, 27]
    targets = [5, 50, 100, 200]
    rng = np.random.default_rng(13)
    new_w = rng.integers(1, 5_000, size=road.m, dtype=np.int64)
    eng_old = PhastEngine(topo.instantiate(customize(topo, weights)))
    eng_new = PhastEngine(topo.instantiate(customize(topo, new_w)))
    want_old = np.stack([eng_old.tree(s).dist[targets] for s in sources])
    want_new = np.stack([eng_new.tree(s).dist[targets] for s in sources])
    with ServerClient(swap_server.host, swap_server.port) as c:
        first = c.matrix(sources, targets)
        assert np.array_equal(first, want_old)
        c.matrix(sources, targets)  # warm the selection cache
        gen_before = c.info()["metric_generation"]
        c.swap_metric(weights=new_w, timeout=120)
        after = c.matrix(sources, targets)
        assert np.array_equal(after, want_new)
        info = c.info()
        assert info["metric_generation"] == gen_before + 1
        c.swap_metric(weights=weights, timeout=120)


def test_info_health_report_protocol_and_generation(swap_server):
    with ServerClient(swap_server.host, swap_server.port) as c:
        info = c.info()
        health = c.health()
    for payload in (info, health):
        assert payload["protocol_version"] == protocol.PROTOCOL_VERSION
        assert "swap_metric" in payload["ops"]
        assert "metric_generation" in payload
    assert info["topology_resident"] is True


def test_swap_requires_weights_xor_path(swap_server):
    with ServerClient(swap_server.host, swap_server.port) as c:
        with pytest.raises(ServerError) as exc:
            c.call("swap_metric")
        assert exc.value.code == protocol.BAD_REQUEST
        with pytest.raises(ServerError) as exc:
            c.call("swap_metric", weights=[1, 2], path="x.npz")
        assert exc.value.code == protocol.BAD_REQUEST


def test_swap_rejected_without_topology(road, road_ch):
    """A hierarchy-only server cannot customize; swap is a clean 400."""
    service = PhastService(
        road_ch, config=ServerConfig(max_pending=8),
    )
    with serve_in_thread(service) as handle:
        with ServerClient(handle.host, handle.port) as c:
            with pytest.raises(ServerError) as exc:
                c.swap_metric(weights=[1] * road.m)
            assert exc.value.code == protocol.BAD_REQUEST
            assert c.info()["topology_resident"] is False


# ---------------------------------------------------------------------------
# Registry-derived surfaces


def test_registry_partitions_ops():
    names = {spec.name for spec in protocol.OPS}
    assert set(protocol.WORK_OPS) | set(protocol.ADMIN_OPS) \
        | set(protocol.CONTROL_OPS) == names
    assert set(protocol.WORK_OPS) == {
        "query", "tree", "one_to_many", "isochrone", "matrix"}
    assert protocol.CONTROL_OPS == ("swap_metric",)


def test_validate_request_defaults_and_errors():
    spec = protocol.OPS_BY_NAME["one_to_many"]
    fields = protocol.validate_request(
        spec, {"source": 3, "targets": [1, 2]}, 10)
    assert fields == {"source": 3, "targets": [1, 2],
                      "timeout_ms": "unset"}
    with pytest.raises(protocol.RequestValidationError):
        protocol.validate_request(spec, {"targets": [1]}, 10)
    with pytest.raises(protocol.RequestValidationError):
        protocol.validate_request(spec, {"source": 11, "targets": [1]}, 10)
    with pytest.raises(protocol.RequestValidationError):
        protocol.validate_request(spec, {"source": 1, "targets": []}, 10)


def test_client_plural_keywords_and_deprecation(swap_server):
    with ServerClient(swap_server.host, swap_server.port) as c:
        a = c.tree(sources=17)
        b = c.tree(sources=[17])
        with pytest.warns(DeprecationWarning):
            legacy = c.tree(source=17)
        assert np.array_equal(a, b)
        assert np.array_equal(a, legacy)
        with pytest.raises(TypeError):
            c.tree(sources=17, source=17)
        with pytest.raises(ValueError):
            c.query(sources=[1, 2], targets=3)
